"""Jain's fairness index, plain and weighted.

The paper adopts Jain's index from network research (§II-B): with
allocations ``x_i``, ``J = (sum x)^2 / (n * sum x^2)``; 1.0 is perfectly
fair, ``1/n`` is maximally unfair. For *proportional* fairness each
bandwidth is first normalized by its relative weight, so an app holding
exactly ``w_i / sum(w)`` of the total scores 1.0.

As the paper notes, the metric does not credit an app for demanding less
than its share -- the reason io.cost's deliberate read preference scores
"unfair" in mixed read/write workloads (O5).
"""

from __future__ import annotations

from typing import Sequence


def jain_index(allocations: Sequence[float]) -> float:
    """Plain Jain's fairness index over non-negative allocations."""
    if not allocations:
        raise ValueError("jain_index of empty allocation set")
    if any(value < 0 for value in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    if total == 0:
        # No one received anything; conventionally fair.
        return 1.0
    square_sum = sum(value * value for value in allocations)
    return total * total / (len(allocations) * square_sum)


def weighted_jain_index(
    allocations: Sequence[float], weights: Sequence[float]
) -> float:
    """Jain's index over weight-normalized allocations (§VI-A).

    Each allocation is divided by its weight before computing the index,
    so the ideal proportional split scores exactly 1.0 regardless of the
    weight distribution.
    """
    if len(allocations) != len(weights):
        raise ValueError(
            f"{len(allocations)} allocations but {len(weights)} weights"
        )
    if any(weight <= 0 for weight in weights):
        raise ValueError("weights must be positive")
    normalized = [alloc / weight for alloc, weight in zip(allocations, weights)]
    return jain_index(normalized)
