"""Unit tests for knob parameter spaces and their device-derived bounds."""

import pytest

from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
)
from repro.sim.rng import RngStreams
from repro.ssd.model import describe_model_dict
from repro.ssd.presets import samsung_980pro_like
from repro.tune.space import (
    MQ_CLASS_PAIRS,
    TUNABLE_KNOBS,
    Parameter,
    build_space,
)

PRIO = "/tenants/prio"
BE = "/tenants/be"


def space_for(knob_name, device_scale=8.0):
    return build_space(
        knob_name,
        samsung_980pro_like(),
        device_scale=device_scale,
        priority_group=PRIO,
        be_group=BE,
    )


class TestParameter:
    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="lo < hi"):
            Parameter("x", 2.0, 1.0)
        with pytest.raises(ValueError, match="log scale"):
            Parameter("x", 0.0, 1.0, log=True)

    def test_midpoint_linear_and_geometric(self):
        linear = Parameter("x", 0.0, 10.0)
        assert linear.midpoint(0.0, 10.0) == 5.0
        log = Parameter("x", 1.0, 100.0, log=True)
        assert log.midpoint(1.0, 100.0) == pytest.approx(10.0)

    def test_grid_spans_bounds_inclusively(self):
        param = Parameter("x", 1.0, 100.0, log=True)
        grid = param.grid(3)
        assert grid[0] == 1.0 and grid[-1] == 100.0
        assert grid[1] == pytest.approx(10.0)

    def test_integer_grid_dedupes_collisions(self):
        param = Parameter("x", 1, 3, integer=True)
        assert param.grid(10) == [1.0, 2.0, 3.0]

    def test_sample_respects_bounds_and_seed(self):
        param = Parameter("x", 10.0, 1000.0, log=True)
        a = [param.sample(RngStreams(7).stream("s")) for _ in range(50)]
        b = [param.sample(RngStreams(7).stream("s")) for _ in range(50)]
        assert a == b
        assert all(10.0 <= v <= 1000.0 for v in a)


class TestRegistry:
    def test_all_five_knobs_have_spaces(self):
        for name in TUNABLE_KNOBS:
            assert space_for(name).name == name

    def test_unknown_knob_rejected(self):
        with pytest.raises(KeyError, match="no parameter space"):
            build_space("io.imaginary", samsung_980pro_like())

    def test_labels_are_deterministic_and_distinct(self):
        for name in TUNABLE_KNOBS:
            space = space_for(name)
            defaults = space.default_values()
            assert space.label(defaults) == space.label(dict(defaults))
            params = space.parameters()
            other = {p.name: p.clamp(p.lo) for p in params}
            if other != defaults:
                assert space.label(other) != space.label(defaults)

    def test_normalize_rejects_unknown_and_missing(self):
        space = space_for("io.max")
        with pytest.raises(KeyError, match="unknown"):
            space.normalize({"bps_fraction": 0.5, "iops_fraction": 0.5, "zap": 1})
        with pytest.raises(KeyError, match="missing"):
            space.normalize({"bps_fraction": 0.5})

    def test_render_settings_mentions_the_groups(self):
        for name in TUNABLE_KNOBS:
            space = space_for(name)
            rendered = space.render_settings(space.default_values())
            assert isinstance(rendered, str) and rendered


class TestIoMaxSpace:
    def test_limits_are_fractions_of_scaled_saturation(self):
        scale = 8.0
        space = space_for("io.max", device_scale=scale)
        doc = describe_model_dict(samsung_980pro_like())
        knob = space.build({"bps_fraction": 0.5, "iops_fraction": 0.25})
        assert isinstance(knob, IoMaxKnob)
        limits = knob.limits[BE]
        read = doc["cases"]["rand-read-4k"]
        write = doc["cases"]["rand-write-4k"]
        assert limits["rbps"] == pytest.approx(0.5 * read["bandwidth_bps"] / scale)
        assert limits["wbps"] == pytest.approx(0.5 * write["bandwidth_bps"] / scale)
        assert limits["riops"] == pytest.approx(0.25 * read["iops"] / scale)
        assert limits["wiops"] == pytest.approx(0.25 * write["iops"] / scale)

    def test_default_knob_is_unconfigured(self):
        knob = space_for("io.max").default_knob()
        assert isinstance(knob, IoMaxKnob) and not knob.limits


class TestIoLatencySpace:
    def test_target_scales_with_device(self):
        scale = 16.0
        space = space_for("io.latency", device_scale=scale)
        knob = space.build({"target_us": 100.0})
        assert isinstance(knob, IoLatencyKnob)
        assert knob.targets_us[PRIO] == pytest.approx(100.0 * scale)

    def test_bounds_start_under_the_read_cost(self):
        space = space_for("io.latency")
        (param,) = space.parameters()
        assert param.lo == pytest.approx(samsung_980pro_like().read_fixed_us * 0.9)
        assert param.log and param.stricter_low

    def test_default_knob_is_unconfigured(self):
        knob = space_for("io.latency").default_knob()
        assert isinstance(knob, IoLatencyKnob) and not knob.targets_us


class TestBfqSpace:
    def test_weight_builds_both_groups(self):
        space = space_for("bfq")
        knob = space.build({"prio_weight": 700})
        assert isinstance(knob, BfqKnob)
        assert knob.weights == {PRIO: 700, BE: 100}

    def test_higher_weight_is_stricter(self):
        (param,) = space_for("bfq").parameters()
        assert param.stricter_low is False
        assert param.integer


class TestMqDeadlineSpace:
    def test_pairs_enumerate_all_class_combinations(self):
        assert len(MQ_CLASS_PAIRS) == 9
        assert len(set(MQ_CLASS_PAIRS)) == 9

    def test_build_and_label_agree(self):
        space = space_for("mq-deadline")
        index = MQ_CLASS_PAIRS.index(("realtime", "idle"))
        knob = space.build({"class_pair": float(index)})
        assert isinstance(knob, MqDeadlineKnob)
        assert knob.classes == {PRIO: "realtime", BE: "idle"}
        assert space.label({"class_pair": float(index)}) == "prio=realtime,be=idle"

    def test_dimension_is_unordered(self):
        (param,) = space_for("mq-deadline").parameters()
        assert param.stricter_low is None


class TestIoCostSpace:
    def test_build_pins_the_vrate_window(self):
        scale = 8.0
        space = space_for("io.cost", device_scale=scale)
        knob = space.build({"prio_weight": 5000, "rlat_us": 200.0, "vrate_pct": 60.0})
        assert isinstance(knob, IoCostKnob)
        assert knob.weights == {PRIO: 5000, BE: 100}
        assert knob.qos.ctrl == "user" and knob.qos.enable
        assert knob.qos.rpct == 99.0
        assert knob.qos.rlat_us == pytest.approx(200.0 * scale)
        assert knob.qos.vrate_min_pct == knob.qos.vrate_max_pct == 60.0

    def test_weight_dimension_comes_first(self):
        # Coordinate descent walks dimensions in declaration order; the
        # weight split must be explored before the QoS refinements.
        params = space_for("io.cost").parameters()
        assert params[0].name == "prio_weight"
