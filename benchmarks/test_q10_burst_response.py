"""§VI-C / O10: response time to high-priority bursts.

Regenerates the burst study: a BE app saturates the device, the priority
app (batch and LC) arrives mid-run, and the time until it reaches its
steady objective is measured per knob. The paper's headline numbers:
io.cost / io.max / the schedulers respond within milliseconds, io.latency
takes seconds (QD staircase: 1024 -> 1 at one halving per 500 ms window).
"""

from conftest import run_once

from repro.core.d4_bursts import burst_knobs, measure_burst_response
from repro.core.report import render_table
from repro.ssd.presets import samsung_980pro_like

DEVICE_SCALE = 16.0
KNOBS = ("mq-deadline", "bfq", "io.max", "io.latency", "io.cost")


def test_q10_burst_response(benchmark, figure_output):
    ssd = samsung_980pro_like()
    scaled = ssd.scaled(DEVICE_SCALE)

    def experiment():
        responses = {}
        for kind in ("batch", "lc"):
            knobs = burst_knobs(scaled, kind, lc_target_us=100.0 * DEVICE_SCALE)
            for knob_name in KNOBS:
                responses[(knob_name, kind)] = measure_burst_response(
                    knobs[knob_name],
                    kind,
                    burst_start_s=2.0,
                    duration_s=9.0,
                    ssd=ssd,
                    device_scale=DEVICE_SCALE,
                    bucket_ms=50.0,
                )
        return responses

    responses = run_once(benchmark, experiment)
    rows = [
        [
            knob,
            kind,
            r.response_ms if r.response_ms is not None else "never",
            r.steady_metric,
        ]
        for (knob, kind), r in sorted(responses.items())
    ]
    table = render_table(
        ["knob", "priority kind", "response ms", "steady metric"],
        rows,
        title=(
            "Q10 -- burst response time "
            f"(device 1/{DEVICE_SCALE:g}; paper: ms for io.cost/io.max/"
            "schedulers, seconds for io.latency)"
        ),
    )
    figure_output("q10_burst_response", table)

    # O10 shape guards (batch priority, the paper's headline case).
    for fast in ("io.max", "io.cost", "mq-deadline"):
        response = responses[(fast, "batch")]
        assert response.reached, fast
        assert response.response_ms <= 300.0, fast
    slow = responses[("io.latency", "batch")]
    assert slow.response_ms is None or slow.response_ms > 1000.0
