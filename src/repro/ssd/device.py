"""The simulated NVMe device: flash units in series with a data bus.

A request entering the device:

1. waits at the device boundary if ``nvme_max_qd`` requests are already in
   flight (the bound the paper's io.latency analysis depends on),
2. occupies one of ``parallelism`` flash units for its fixed access cost
   (noisy, op/pattern dependent, write-amplified under GC),
3. occupies the shared data bus for ``size / bus_bandwidth``,
4. completes.

Completions and byte counters feed the metrics layer; the device also
exposes idle-capacity probes used by the work-conservation metric.
"""

from __future__ import annotations

import random
from collections import deque
from functools import partial
from typing import Callable

from repro.iorequest import IoRequest, OpType, Pattern
from repro.sim.engine import Simulator
from repro.sim.resources import QueuedServer
from repro.ssd.gc import GcState
from repro.ssd.model import SsdModel

CompletionFn = Callable[[IoRequest], None]


class SimulatedNvmeDevice:
    """One NVMe namespace backed by the parametric SSD model."""

    def __init__(
        self,
        sim: Simulator,
        model: SsdModel,
        rng: random.Random,
        index: int = 0,
        preconditioned: bool = False,
    ):
        self.sim = sim
        self.model = model
        self.rng = rng
        self.index = index
        self.flash = QueuedServer(sim, model.parallelism, name=f"ssd{index}.flash")
        self.bus = QueuedServer(sim, 1, name=f"ssd{index}.bus")
        self.gc = GcState(model, preconditioned=preconditioned)
        self._in_flight = 0
        self._boundary_queue: deque[tuple[IoRequest, CompletionFn]] = deque()
        # Lifetime counters (bytes moved, requests completed) per op.
        self.bytes_completed = {OpType.READ: 0, OpType.WRITE: 0}
        self.requests_completed = {OpType.READ: 0, OpType.WRITE: 0}
        self.requests_failed = {OpType.READ: 0, OpType.WRITE: 0}
        # Optional fault runtime (repro.faults.FaultInjector): rolls
        # per-request errors and scales service costs when attached.
        self.injector = None
        # Deterministic cost components memoized by (op, pattern) and
        # (op, size): workloads draw from a handful of size/pattern
        # combinations, so the model arithmetic runs once per distinct key.
        self._fixed_cost_cache: dict[tuple, float] = {}
        self._bus_plan_cache: dict[tuple, tuple[int, float]] = {}

    # ------------------------------------------------------------------
    # Batch cost evaluation
    # ------------------------------------------------------------------
    def warm_costs(self, keys) -> None:
        """Populate the cost memos for ``(op, pattern, size)`` triples.

        Unseen keys are evaluated through :meth:`SsdModel.batch_costs`
        in one vectorized pass; because the batch path is bit-identical
        to the scalar methods, warming never changes results — it only
        moves the model arithmetic off the submission hot path.
        """
        fixed_cache = self._fixed_cost_cache
        bus_cache = self._bus_plan_cache
        new_fixed: dict[tuple, None] = {}
        new_bus: dict[tuple, None] = {}
        for op, pattern, size in keys:
            fixed_key = (op, pattern)
            if fixed_key not in fixed_cache:
                new_fixed[fixed_key] = None
            bus_key = (op, size)
            if bus_key not in bus_cache:
                new_bus[bus_key] = None
        if not new_fixed and not new_bus:
            return
        ops: list[OpType] = []
        patterns: list = []
        sizes: list[int] = []
        for op, pattern in new_fixed:
            ops.append(op)
            patterns.append(pattern)
            sizes.append(0)
        for op, size in new_bus:
            ops.append(op)
            patterns.append(Pattern.RANDOM)
            sizes.append(size)
        fixed, _bus, segments, per_segment = self.model.batch_costs(
            ops, patterns, sizes
        )
        for i, key in enumerate(new_fixed):
            fixed_cache[key] = fixed[i]
        offset = len(new_fixed)
        for i, key in enumerate(new_bus):
            bus_cache[key] = (segments[offset + i], per_segment[offset + i])

    def precompute_costs(self, reqs) -> None:
        """Vectorized cost warm-up for a batch of same-tick submissions."""
        self.warm_costs((req.op, req.pattern, req.size) for req in reqs)

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def submit_batch(self, pairs) -> None:
        """Submit ``(req, done)`` pairs arriving at the same tick.

        Equivalent to calling :meth:`submit` per pair in order, with the
        cost memos filled by one batch evaluation up front.
        """
        self.precompute_costs(req for req, _ in pairs)
        for req, done in pairs:
            self.submit(req, done)

    def submit(self, req: IoRequest, done: CompletionFn) -> None:
        """Accept a request; ``done(req)`` fires at device completion."""
        if self._in_flight >= self.model.nvme_max_qd:
            self._boundary_queue.append((req, done))
        else:
            self._start(req, done)

    def _start(self, req: IoRequest, done: CompletionFn) -> None:
        req.device_start_time = self.sim.now
        self._in_flight += 1
        key = (req.op, req.pattern)
        fixed = self._fixed_cost_cache.get(key)
        if fixed is None:
            fixed = self._fixed_cost_cache[key] = self.model.fixed_cost_us(*key)
        flash_cost = fixed * self._noise()
        if req.op == OpType.WRITE:
            flash_cost = self.gc.amplify(flash_cost)
        injector = self.injector
        if injector is not None:
            error_cost = injector.roll_error(self.sim.now)
            if error_cost > 0.0:
                # The failing attempt still occupies a flash unit for its
                # abort/ECC-retry cost, then completes with the error flag
                # set — the host's RetryCoordinator takes it from there.
                self.flash.submit(error_cost, partial(self._finish_failed, req, done))
                return
            flash_cost *= injector.service_multiplier(req.op, self.sim.now)
        self.flash.submit(flash_cost, partial(self._bus_phase, req, done))

    def _bus_phase(self, req: IoRequest, done: CompletionFn) -> None:
        # Large transfers occupy the bus one segment at a time so small
        # requests can interleave (see SsdModel.bus_segment_bytes).
        key = (req.op, req.size)
        plan = self._bus_plan_cache.get(key)
        if plan is None:
            segments = max(1, -(-req.size // self.model.bus_segment_bytes))
            plan = self._bus_plan_cache[key] = (
                segments,
                self.model.bus_cost_us(req.op, req.size) / segments,
            )
        remaining_segments, per_segment_cost = plan
        if req.op == OpType.WRITE:
            per_segment_cost = self.gc.amplify(per_segment_cost)
        if self.injector is not None:
            # Slowdown windows are re-evaluated per phase: a window that
            # opens while a request sits in a flash queue still slows its
            # transfer phase.
            per_segment_cost *= self.injector.service_multiplier(req.op, self.sim.now)
        self._bus_segment(req, done, per_segment_cost, remaining_segments)

    def _bus_segment(
        self, req: IoRequest, done: CompletionFn, cost: float, remaining: int
    ) -> None:
        if remaining <= 0:
            self._finish(req, done)
            return
        self.bus.submit(
            cost, partial(self._bus_segment, req, done, cost, remaining - 1)
        )

    def _finish(self, req: IoRequest, done: CompletionFn) -> None:
        self._in_flight -= 1
        self.bytes_completed[req.op] += req.size
        self.requests_completed[req.op] += 1
        if req.op == OpType.WRITE:
            self.gc.on_write(req.size)
        if self._boundary_queue:
            next_req, next_done = self._boundary_queue.popleft()
            self._start(next_req, next_done)
        done(req)

    def _finish_failed(self, req: IoRequest, done: CompletionFn) -> None:
        """Complete an errored attempt: no data moved, no GC accounting."""
        self._in_flight -= 1
        self.requests_failed[req.op] += 1
        req.failed = True
        if self._boundary_queue:
            next_req, next_done = self._boundary_queue.popleft()
            self._start(next_req, next_done)
        done(req)

    def _noise(self) -> float:
        model = self.model
        if model.noise_tail_mean <= 0:
            return model.noise_base
        return model.noise_base + self.rng.expovariate(1.0 / model.noise_tail_mean)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests currently inside the device (past the QD boundary)."""
        return self._in_flight

    @property
    def boundary_queue_depth(self) -> int:
        """Requests waiting because the NVMe queue bound was reached."""
        return len(self._boundary_queue)

    def has_idle_capacity(self) -> bool:
        """True when at least one flash unit is idle.

        The paper adopts the strict work-conservation definition: requests
        pending anywhere while this returns True mean the I/O control is
        non-work-conserving at that moment.
        """
        return self.flash.busy < self.model.parallelism

    def snapshot(self) -> dict[str, float]:
        """Instantaneous device state for the periodic sampler.

        Cumulative byte/request counters are included so the sampled
        series differentiate into per-interval throughput, like io.stat.
        """
        return {
            "in_flight": float(self._in_flight),
            "boundary_queue": float(len(self._boundary_queue)),
            "flash_busy": float(self.flash.busy),
            "bus_busy": float(self.bus.busy),
            "rbytes": float(self.bytes_completed[OpType.READ]),
            "wbytes": float(self.bytes_completed[OpType.WRITE]),
            "rios": float(self.requests_completed[OpType.READ]),
            "wios": float(self.requests_completed[OpType.WRITE]),
            "rerrs": float(self.requests_failed[OpType.READ]),
            "werrs": float(self.requests_failed[OpType.WRITE]),
            "gc_waf": self.gc.write_amplification,
            "gc_amplified_bytes": float(self.gc.amplified_bytes),
        }
