"""The closed-loop workload driver (fio's engine loop).

An :class:`App` keeps ``queue_depth`` requests outstanding while inside
an activity window, picks each request's direction from the job's read
fraction, honours the job's rate limit by delaying submissions (fio's
``rate=`` semantics), and stops issuing -- letting in-flight requests
drain -- when a window closes.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.iorequest import IoRequest, OpType
from repro.sim.engine import Simulator
from repro.sim.resources import TokenBucket
from repro.workloads.spec import JobSpec

SubmitFn = Callable[[IoRequest], None]


class App:
    """Runtime instance of one job spec."""

    def __init__(
        self,
        sim: Simulator,
        spec: JobSpec,
        submit: SubmitFn,
        rng: random.Random,
        device_index: int = 0,
        prio_class: int = 0,
    ):
        self.sim = sim
        self.spec = spec
        self._submit = submit
        self.rng = rng
        self.device_index = device_index
        self.prio_class = prio_class
        self.outstanding = 0
        self.issued = 0
        self._bucket: TokenBucket | None = None
        if spec.rate_limit_bps is not None:
            rate_per_us = spec.rate_limit_bps / 1e6
            self._bucket = TokenBucket(rate_per_us, burst=float(spec.size))

    def start(self) -> None:
        """Arm window-start events."""
        if self.spec.arrival_rate_iops is not None:
            for window in self.spec.windows:
                self.sim.schedule_at(
                    window.start_us, lambda w=window: self._arrive(w)
                )
        else:
            for window in self.spec.windows:
                self.sim.schedule_at(window.start_us, self._fill)

    # ------------------------------------------------------------------
    def _active(self) -> bool:
        return self.spec.active_at(self.sim.now)

    def _arrive(self, window) -> None:
        """Open-loop Poisson arrivals, one chain per activity window."""
        if not window.start_us <= self.sim.now < window.stop_us:
            return
        self.outstanding += 1
        self._issue_one()
        gap = self.rng.expovariate(self.spec.arrival_rate_iops / 1e6)
        self.sim.schedule(gap, lambda: self._arrive(window))

    def _fill(self) -> None:
        """Top the queue back up to the configured depth."""
        while self._active() and self.outstanding < self.spec.queue_depth:
            self.outstanding += 1
            delay = 0.0
            if self._bucket is not None:
                delay = self._bucket.reserve(float(self.spec.size), self.sim.now)
            if delay > 0:
                self.sim.schedule(delay, self._issue_one)
            else:
                self._issue_one()

    def _issue_one(self) -> None:
        if not self._active():
            # The window closed while this submission was rate-delayed.
            self.outstanding -= 1
            return
        op = (
            OpType.READ
            if self.rng.random() < self.spec.read_fraction
            else OpType.WRITE
        )
        req = IoRequest(
            app_name=self.spec.name,
            cgroup_path=self.spec.cgroup_path,
            op=op,
            pattern=self.spec.pattern,
            size=self.spec.size,
            device_index=self.device_index,
            prio_class=self.prio_class,
        )
        req.submit_time = self.sim.now
        self.issued += 1
        self._submit(req)

    def on_complete(self, req: IoRequest) -> None:
        """Called by the host when one of this app's requests completes."""
        self.outstanding -= 1
        if self.spec.arrival_rate_iops is None:
            self._fill()
