#!/usr/bin/env python3
"""Noisy neighbor: protecting a latency-critical cache from batch jobs.

The scenario from the paper's introduction: a tail-latency-sensitive
cache (LC-app, QD=1 4 KiB reads) co-located with four best-effort batch
jobs that saturate the SSD. We compare what each cgroups knob can do for
the cache's P99, and at what utilization cost.

Run:  python examples/noisy_neighbor.py
"""

from repro import (
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
    run_scenario,
)
from repro.cgroups.knobs import IoCostQosParams
from repro.core.scenarios import BE_GROUP, PRIORITY_GROUP, tradeoff_specs
from repro.iorequest import KIB, OpType, Pattern
from repro.ssd.presets import samsung_980pro_like

DEVICE_SCALE = 8.0


def knobs():
    ssd = samsung_980pro_like().scaled(DEVICE_SCALE)
    saturation = ssd.saturation_bandwidth_bps(OpType.READ, Pattern.RANDOM, 4 * KIB)
    target_us = 150.0 * DEVICE_SCALE  # 150us full-speed-equivalent P99 goal
    return {
        "none": NoneKnob(),
        "mq-dl (cache=rt)": MqDeadlineKnob(classes={PRIORITY_GROUP: "realtime"}),
        "io.max (cap batch 30%)": IoMaxKnob(
            limits={BE_GROUP: {"rbps": saturation * 0.3}}
        ),
        "io.latency": IoLatencyKnob(targets_us={PRIORITY_GROUP: target_us}),
        "io.cost": IoCostKnob(
            weights={PRIORITY_GROUP: 10000, BE_GROUP: 100},
            qos=IoCostQosParams(
                enable=True, ctrl="user", rpct=99.0, rlat_us=target_us,
                vrate_min_pct=25.0, vrate_max_pct=100.0,
            ),
        ),
    }


def main() -> None:
    duration = {"io.latency": 4.0}  # its 500 ms windows need room
    print(f"{'knob':<24s} {'cache P99 (equiv us)':>20s} {'aggregate GiB/s':>16s}")
    print("-" * 64)
    for name, knob in knobs().items():
        scenario = Scenario(
            name=f"noisy-{name}",
            knob=knob,
            apps=tradeoff_specs("lc", be_variant="rand-4k"),
            duration_s=duration.get(name, 0.6),
            warmup_s=duration.get(name, 0.6) * 0.4,
            device_scale=DEVICE_SCALE,
        )
        result = run_scenario(scenario)
        p99 = result.app_stats("prio").latency.p99_us / DEVICE_SCALE
        agg = result.equivalent_bandwidth_gib_s
        print(f"{name:<24s} {p99:>20.0f} {agg:>16.2f}")
    print(
        "\nTake-away (paper Table I): io.cost meets the latency goal while"
        "\nkeeping utilization configurable; io.max trades utilization"
        "\nstatically; io.latency reacts slowly; MQ-DL is coarse."
    )


if __name__ == "__main__":
    main()
