"""Unit tests for deterministic named RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_stream_sequence():
    a = RngStreams(7).stream("device")
    b = RngStreams(7).stream("device")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RngStreams(7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random()
    b = RngStreams(2).stream("x").random()
    assert a != b


def test_stream_identity_is_cached():
    streams = RngStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_adding_stream_does_not_perturb_existing():
    streams1 = RngStreams(7)
    s = streams1.stream("keep")
    first = s.random()

    streams2 = RngStreams(7)
    streams2.stream("other")  # create an unrelated stream first
    assert streams2.stream("keep").random() == first
