"""Unit tests for the experiment scenario builders."""

import math

import pytest

from repro.core.scenarios import (
    BE_VARIANTS,
    FairnessGroupSpec,
    batch_scaling_specs,
    burst_specs,
    fairness_specs,
    fig2_timeline_specs,
    lc_scaling_specs,
    linear_weight_fairness_groups,
    scaled_priority_qd,
    tradeoff_specs,
    uniform_fairness_groups,
)
from repro.iorequest import GIB, KIB, Pattern


class TestFig2Timeline:
    def test_three_apps_with_paper_windows(self):
        specs = fig2_timeline_specs()
        assert [s.name for s in specs] == ["A", "B", "C"]
        windows = {s.name: s.windows[0] for s in specs}
        assert windows["A"].start_us == 0.0
        assert windows["A"].stop_us == 50e6
        assert windows["B"].start_us == 10e6
        assert windows["B"].stop_us == 70e6
        assert windows["C"].start_us == 20e6
        assert windows["C"].stop_us == 50e6

    def test_paper_workload_shape(self):
        spec = fig2_timeline_specs()[0]
        assert spec.size == 64 * KIB
        assert spec.queue_depth == 8
        assert spec.rate_limit_bps == pytest.approx(1.5 * GIB)

    def test_time_scale_compresses_windows(self):
        specs = fig2_timeline_specs(time_scale=0.1)
        assert specs[0].windows[0].stop_us == pytest.approx(5e6)

    def test_rate_scale_divides_caps(self):
        specs = fig2_timeline_specs(rate_scale=8.0)
        assert specs[0].rate_limit_bps == pytest.approx(1.5 * GIB / 8)


class TestScalingSpecs:
    def test_lc_scaling(self):
        specs = lc_scaling_specs(4)
        assert len(specs) == 4
        assert all(s.queue_depth == 1 for s in specs)
        assert len({s.cgroup_path for s in specs}) == 4

    def test_lc_scaling_validates(self):
        with pytest.raises(ValueError):
            lc_scaling_specs(0)

    def test_batch_scaling(self):
        specs = batch_scaling_specs(3, queue_depth=64)
        assert len(specs) == 3
        assert all(s.queue_depth == 64 for s in specs)

    def test_batch_scaling_validates(self):
        with pytest.raises(ValueError):
            batch_scaling_specs(0)


class TestFairnessSpecs:
    def test_apps_per_group(self):
        groups = uniform_fairness_groups(3)
        specs = fairness_specs(groups, apps_per_group=4)
        assert len(specs) == 12
        per_group = {g.path: 0 for g in groups}
        for spec in specs:
            per_group[spec.cgroup_path] += 1
        assert all(count == 4 for count in per_group.values())

    def test_group_workload_propagates(self):
        groups = [
            FairnessGroupSpec(
                path="/t/w",
                weight=100,
                size=256 * KIB,
                pattern=Pattern.SEQUENTIAL,
                read_fraction=0.0,
            )
        ]
        spec = fairness_specs(groups, apps_per_group=1)[0]
        assert spec.size == 256 * KIB
        assert spec.pattern == Pattern.SEQUENTIAL
        assert spec.read_fraction == 0.0

    def test_uniform_groups_have_equal_weights(self):
        groups = uniform_fairness_groups(5)
        assert {g.weight for g in groups} == {100}

    def test_linear_weights_increase(self):
        groups = linear_weight_fairness_groups(4)
        assert [g.weight for g in groups] == [100, 200, 300, 400]

    def test_app_names_unique(self):
        specs = fairness_specs(uniform_fairness_groups(4), apps_per_group=4)
        names = [s.name for s in specs]
        assert len(set(names)) == len(names)


class TestTradeoffSpecs:
    def test_priority_plus_four_be(self):
        specs = tradeoff_specs("lc")
        assert specs[0].name == "prio"
        assert specs[0].queue_depth == 1
        assert len(specs) == 5

    def test_batch_priority_qd(self):
        specs = tradeoff_specs("batch", priority_queue_depth=16)
        assert specs[0].queue_depth == 16

    def test_unknown_priority_kind(self):
        with pytest.raises(ValueError):
            tradeoff_specs("background")

    @pytest.mark.parametrize("variant", sorted(BE_VARIANTS))
    def test_be_variants(self, variant):
        specs = tradeoff_specs("lc", be_variant=variant)
        be = specs[1]
        expected = BE_VARIANTS[variant]
        assert be.size == expected.size
        assert be.pattern == expected.pattern
        assert be.read_fraction == expected.read_fraction

    def test_burst_priority_starts_late(self):
        specs = burst_specs("batch", burst_start_us=2e6)
        assert specs[0].windows[0].start_us == 2e6
        assert math.isinf(specs[0].windows[0].stop_us)
        # BE apps run from the start.
        assert specs[1].windows[0].start_us == 0.0

    def test_scaled_priority_qd_is_scale_invariant(self):
        # Pure time dilation preserves in-flight regimes: no adjustment.
        assert scaled_priority_qd(1.0) == scaled_priority_qd(16.0) == 32
