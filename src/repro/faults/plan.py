"""Declarative fault plans: what goes wrong, when, and how hard.

A :class:`FaultPlan` is the *configuration* side of the fault-injection
subsystem: a frozen, hashable description that lives on
``Scenario.faults`` and therefore flows into the content-addressed cache
key exactly like a knob or a device preset. The *runtime* side — the
per-device :class:`~repro.faults.injector.FaultInjector` and the host's
:class:`~repro.faults.retry.RetryCoordinator` — is built from the plan
when the :class:`~repro.core.host.Host` is wired.

Four device-level fault classes are modelled, mirroring how real NVMe
drives misbehave (see docs/faults.md for the mapping to field failure
modes):

* :class:`LatencySpike` — periodic whole- or part-device stalls
  (firmware housekeeping, thermal throttling events);
* :class:`GcStorm` — windows of forced garbage collection: extra write
  amplification plus background chunk traffic competing for flash units;
* :class:`Slowdown` — a sustained per-op service-time multiplier over a
  time window (media wear, degraded overprovisioning);
* :class:`TransientErrors` — stochastic per-request device errors the
  host must retry (media ECC retries, command timeouts).

Host-side resilience is configured by :class:`RetryPolicy` (bounded
retries with exponential backoff + jitter, optional per-attempt
watchdog timeout).

All time-valued fields are in **simulated microseconds at device
scale 1**; use :meth:`FaultPlan.scaled` to dilate a plan together with
``Scenario.device_scale`` so the fault shape is preserved on slowed
devices (the same convention ``SsdModel.scaled`` follows).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LatencySpike:
    """Periodic device stalls occupying a fraction of the flash units.

    Every ``period_us`` (first at ``first_at_us``) the injector occupies
    ``unit_fraction`` of the device's flash units for ``stall_us``,
    so in-flight and newly arriving requests queue behind the stall —
    the tail-latency spike signature of firmware housekeeping.
    ``jitter`` > 0 makes the period stochastic: each gap is drawn
    uniformly from ``period_us * (1 ± jitter)`` using the scenario's
    seeded fault RNG stream, so runs stay deterministic.
    """

    first_at_us: float = 50_000.0
    period_us: float = 100_000.0
    stall_us: float = 5_000.0
    unit_fraction: float = 1.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.first_at_us < 0:
            raise ValueError("first_at_us must be >= 0")
        if self.period_us <= 0 or self.stall_us <= 0:
            raise ValueError("spike period and stall must be positive")
        if not 0 < self.unit_fraction <= 1:
            raise ValueError("unit_fraction must be in (0, 1]")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")


@dataclass(frozen=True)
class GcStorm:
    """A window of forced garbage collection.

    For ``storm_us`` out of every ``period_us`` (first window opening at
    ``first_at_us``) the device behaves as if GC debt crossed its high
    watermark: write service costs are amplified by an extra
    ``extra_waf`` on top of the model's steady-state WAF, and a
    background relocation loop occupies ``unit_fraction`` of the flash
    units for ``duty`` of the time (in ``chunk_period_us`` slices), so
    reads queue behind GC traffic too — the degraded regime where the
    paper's Fig. 6b read/write collapse lives.
    """

    first_at_us: float = 20_000.0
    period_us: float = 200_000.0
    storm_us: float = 80_000.0
    extra_waf: float = 2.0
    unit_fraction: float = 0.5
    duty: float = 0.5
    chunk_period_us: float = 2_000.0

    def __post_init__(self) -> None:
        if self.first_at_us < 0:
            raise ValueError("first_at_us must be >= 0")
        if self.period_us <= 0 or self.storm_us <= 0 or self.chunk_period_us <= 0:
            raise ValueError("storm periods must be positive")
        if self.storm_us > self.period_us:
            raise ValueError("storm_us must not exceed period_us")
        if self.extra_waf < 1.0:
            raise ValueError("extra_waf must be >= 1")
        if not 0 < self.unit_fraction <= 1:
            raise ValueError("unit_fraction must be in (0, 1]")
        if not 0 <= self.duty <= 1:
            raise ValueError("duty must be in [0, 1]")


@dataclass(frozen=True)
class Slowdown:
    """A sustained per-op service-time multiplier over a time window.

    Flash and bus occupancy of reads is multiplied by ``read_mult`` and
    of writes by ``write_mult`` while ``start_us <= now < stop_us``
    (``stop_us = inf`` means "until the end of the run"). Models media
    wear, thermal throttling plateaus and degraded overprovisioning.
    """

    read_mult: float = 1.0
    write_mult: float = 1.0
    start_us: float = 0.0
    stop_us: float = math.inf

    def __post_init__(self) -> None:
        if self.read_mult < 1.0 or self.write_mult < 1.0:
            raise ValueError("slowdown multipliers must be >= 1")
        if self.start_us < 0 or self.stop_us <= self.start_us:
            raise ValueError("need 0 <= start_us < stop_us")


@dataclass(frozen=True)
class TransientErrors:
    """Stochastic per-request device errors inside a time window.

    Each request entering device service while the window is active
    fails independently with ``probability``; a failing request occupies
    a flash unit for ``error_latency_us`` (the abort/ECC-retry cost)
    and completes with its error flag set, which triggers the host's
    :class:`RetryPolicy`. Draws come from the scenario's seeded fault
    RNG stream, so error placement is deterministic per seed.
    """

    probability: float = 0.01
    error_latency_us: float = 50.0
    start_us: float = 0.0
    stop_us: float = math.inf

    def __post_init__(self) -> None:
        if not 0 < self.probability <= 1:
            raise ValueError("error probability must be in (0, 1]")
        if self.error_latency_us < 0:
            raise ValueError("error_latency_us must be >= 0")
        if self.start_us < 0 or self.stop_us <= self.start_us:
            raise ValueError("need 0 <= start_us < stop_us")


@dataclass(frozen=True)
class RetryPolicy:
    """Host-side resilience: bounded retries, backoff, watchdog timeout.

    * ``max_attempts`` — total attempts per request (1 = no retries:
      the first device error is delivered to the app as a failure).
    * ``backoff_base_us`` / ``backoff_mult`` — attempt *n* (n >= 2) is
      resubmitted ``backoff_base_us * backoff_mult**(n - 2)`` after the
      failure, scaled by a uniform ``1 ± jitter`` factor drawn from the
      seeded retry RNG stream (decorrelates retry herds without losing
      determinism).
    * ``timeout_us`` — per-attempt watchdog: an attempt still incomplete
      this long after entering the block layer is abandoned (its stale
      completion is dropped when it eventually surfaces) and counted as
      a timeout; the request is retried if attempts remain, otherwise
      delivered to the app as failed. ``0`` disables the watchdog.
    """

    max_attempts: int = 3
    backoff_base_us: float = 100.0
    backoff_mult: float = 2.0
    jitter: float = 0.1
    timeout_us: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_us < 0:
            raise ValueError("backoff_base_us must be >= 0")
        if self.backoff_mult < 1.0:
            raise ValueError("backoff_mult must be >= 1")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if self.timeout_us < 0:
            raise ValueError("timeout_us must be >= 0 (0 disables)")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one scenario, plus the host response.

    Set on ``Scenario.faults``; the plan (like every Scenario field)
    participates in the content-addressed cache key, so two runs that
    differ only in their faults never share a cache entry.
    """

    label: str = "faults"
    spikes: tuple[LatencySpike, ...] = ()
    storms: tuple[GcStorm, ...] = ()
    slowdowns: tuple[Slowdown, ...] = ()
    errors: tuple[TransientErrors, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("a fault plan needs a non-empty label")
        for name in ("spikes", "storms", "slowdowns", "errors"):
            if not isinstance(getattr(self, name), tuple):
                raise ValueError(f"{name} must be a tuple (hashable plan)")

    @property
    def device_faults(self) -> bool:
        """True when any device-level fault is configured."""
        return bool(self.spikes or self.storms or self.slowdowns or self.errors)

    def scaled(self, device_scale: float) -> "FaultPlan":
        """Dilate every time-valued field by ``device_scale``.

        Mirrors ``SsdModel.scaled``: on a device slowed ``N``-fold, a
        spike that hits every 100 ms of full-speed time must hit every
        ``N * 100`` ms of simulated time to preserve the fault shape
        (stalls per request served, errors per request, backoff relative
        to service time).
        """
        if device_scale < 1:
            raise ValueError("device_scale must be >= 1")
        if device_scale == 1:
            return self

        def dilate(value: float) -> float:
            return value if math.isinf(value) else value * device_scale

        return FaultPlan(
            label=self.label,
            spikes=tuple(
                dataclasses.replace(
                    s,
                    first_at_us=dilate(s.first_at_us),
                    period_us=dilate(s.period_us),
                    stall_us=dilate(s.stall_us),
                )
                for s in self.spikes
            ),
            storms=tuple(
                dataclasses.replace(
                    s,
                    first_at_us=dilate(s.first_at_us),
                    period_us=dilate(s.period_us),
                    storm_us=dilate(s.storm_us),
                    chunk_period_us=dilate(s.chunk_period_us),
                )
                for s in self.storms
            ),
            slowdowns=tuple(
                dataclasses.replace(
                    s, start_us=dilate(s.start_us), stop_us=dilate(s.stop_us)
                )
                for s in self.slowdowns
            ),
            errors=tuple(
                dataclasses.replace(
                    e,
                    error_latency_us=dilate(e.error_latency_us),
                    start_us=dilate(e.start_us),
                    stop_us=dilate(e.stop_us),
                )
                for e in self.errors
            ),
            retry=dataclasses.replace(
                self.retry,
                backoff_base_us=dilate(self.retry.backoff_base_us),
                timeout_us=dilate(self.retry.timeout_us),
            ),
        )
