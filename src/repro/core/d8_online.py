"""D8: online control — does re-tuning knobs mid-run hold the SLO?

The D6 study tunes a knob configuration against one load level and
freezes it. The paper's own remedy discussion (§VII) points out that
static settings go stale the moment the load does something the tuner
never saw: io.max "requires practitioners to [...] adjust values as new
groups start or stop", io.cost's QoS window is a fixed bet on the
device's behaviour, io.latency's target is a fixed bet on the tenant's.
D8 quantifies exactly that staleness and whether the :mod:`repro.ctl`
feedback plane repairs it.

The matrix is (knob x arrival pattern x {static, online}):

* **knobs** -- io.max (loose BE cap), io.cost (weights + default QoS),
  io.latency (loose target), each *tuned at the base load*: the static
  configuration demonstrably meets the SLO on the steady pattern.
* **patterns** -- steady (the tuning condition), a diurnal ramp, a
  flash crowd, a flash crowd during a GC storm (:mod:`repro.faults`
  adversary), and tenant start/stop churn.
* **modes** -- static keeps the knob files frozen; online attaches a
  :class:`~repro.ctl.CtlConfig` with the *same* static starting point
  and lets the matching controller rewrite the files from live drift.

The headline result is the set of (knob, pattern) cells where the
online controller holds a p99 SLO the static configuration violates --
pinned by the d8 golden. Everything fans out through the sweep executor
in one batch, so ``isol-bench ctl --workers N`` parallelizes the matrix
and reruns hit the result cache.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.core.config import (
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    KnobConfig,
    Scenario,
)
from repro.core.scenarios import BE_GROUP, PRIORITY_GROUP
from repro.ctl import CtlConfig, IoMaxCtlParams
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.faults import get_fault_plan
from repro.iorequest import KIB, OpType, Pattern
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like
from repro.tune.slo import GroupSlo, SloSpec
from repro.workloads.apps import be_app, lc_app
from repro.workloads.patterns import (
    churn_windows,
    diurnal_phases,
    flash_crowd_phases,
)
from repro.workloads.spec import ArrivalPhase, JobSpec

#: The arrival patterns of the D8 matrix, in report order. ``steady``
#: is the tuning condition (static must meet the SLO there, proving the
#: configurations are tuned-at-base rather than strawmen).
DEFAULT_PATTERNS = (
    "steady",
    "diurnal",
    "flash-crowd",
    "flash-crowd-gc",
    "churn",
)

#: The knobs under test (the three the ctl plane has controllers for).
CTL_KNOBS = ("io.max", "io.cost", "io.latency")

#: The two modes of every (knob, pattern) cell.
STATIC, ONLINE = "static", "online"


@dataclass
class OnlineControlSettings:
    """Effort level and matrix shape for the D8 evaluation."""

    ssd: SsdModel = None  # type: ignore[assignment]
    patterns: tuple[str, ...] = DEFAULT_PATTERNS
    knobs: tuple[str, ...] = CTL_KNOBS
    duration_s: float = 3.2
    warmup_s: float = 0.4
    device_scale: float = 32.0
    #: Full-device-speed p99 SLO on the priority group, microseconds.
    slo_p99_us: float = 300.0
    #: Open-loop BE arrival rates, as fractions of the scaled device's
    #: 4 KiB random-read saturation IOPS.
    base_fraction: float = 0.2
    peak_fraction: float = 1.0
    crowd_fraction: float = 1.1
    #: Flash-crowd timing, as fractions of ``duration_s``.
    crowd_start_fraction: float = 0.3
    crowd_duration_fraction: float = 0.4
    #: Static io.max cap on the BE group, as a fraction of saturation
    #: bandwidth -- loose enough to be harmless at base load, and (just)
    #: loose enough to admit the whole flash crowd: the cap is tuned to
    #: the base level, not the crowd.
    static_cap_fraction: float = 1.05
    #: Static io.latency target, as a multiple of the SLO target.
    static_target_slack: float = 2.5
    #: Churn population: closed-loop tenants with staggered windows.
    n_churn_tenants: int = 5
    churn_overlap: float = 3.0
    churn_queue_depth: int = 96
    #: Control-plane cadence (raw simulated microseconds).
    ctl_period_us: float = 100_000.0
    ctl_sample_period_us: float = 20_000.0
    #: NVMe submission queue depth of the modelled device. D8 lowers the
    #: preset's 1024: blk-iolatency adapts queue depths by *halving once
    #: per 500 ms window*, so from 1024 a binding limit is tens of
    #: seconds away (the paper's O10 slow-reaction observation) -- far
    #: beyond any d8 run. From 128 the halving cadence reaches a
    #: binding depth within a load shift, which is the regime where an
    #: adaptive target can matter at all.
    nvme_max_qd: int = 128
    cores: int = 10
    seed: int = 42

    def __post_init__(self) -> None:
        if self.ssd is None:
            self.ssd = samsung_980pro_like()
        if self.ssd.nvme_max_qd != self.nvme_max_qd:
            self.ssd = dataclasses.replace(self.ssd, nvme_max_qd=self.nvme_max_qd)
        if not self.patterns:
            raise ValueError("need at least one arrival pattern")
        unknown = set(self.patterns) - set(DEFAULT_PATTERNS)
        if unknown:
            raise ValueError(f"unknown patterns: {sorted(unknown)}")
        unknown = set(self.knobs) - set(CTL_KNOBS)
        if unknown:
            raise ValueError(f"unknown knobs: {sorted(unknown)}")

    @property
    def duration_us(self) -> float:
        """Scenario duration in simulated microseconds."""
        return self.duration_s * 1e6

    def saturation_iops(self) -> float:
        """4 KiB random-read saturation of the *scaled* device, IOPS."""
        scaled = self.ssd.scaled(self.device_scale)
        return scaled.saturation_bandwidth_bps(
            OpType.READ, Pattern.RANDOM, 4 * KIB
        ) / (4 * KIB)


def quick_settings() -> OnlineControlSettings:
    """The ``ctl --quick`` effort level (longer windows, same matrix)."""
    return OnlineControlSettings(
        duration_s=4.8,
        warmup_s=0.6,
        device_scale=24.0,
    )


def mini_settings() -> OnlineControlSettings:
    """Tier-1 / CI-smoke effort: the full matrix in seconds of wall time."""
    return OnlineControlSettings()


def slo_spec(settings: OnlineControlSettings) -> SloSpec:
    """The D8 contract: a p99 ceiling on the priority group."""
    return SloSpec(
        groups=(GroupSlo(PRIORITY_GROUP, p99_latency_us=settings.slo_p99_us),)
    )


def static_knobs(settings: OnlineControlSettings) -> dict[str, KnobConfig]:
    """Static configurations tuned at the base load, scaled-device units.

    Each is *correct* for the steady pattern (the d8 golden pins that)
    and *stale* under load shifts: the io.max cap admits a full crowd,
    the io.cost QoS window never shrinks, the io.latency target is
    slack enough that blk-iolatency's throttling never engages.
    """
    scaled = settings.ssd.scaled(settings.device_scale)
    saturation_bps = scaled.saturation_bandwidth_bps(
        OpType.READ, Pattern.RANDOM, 4 * KIB
    )
    return {
        "io.max": IoMaxKnob(
            limits={
                BE_GROUP: {"rbps": settings.static_cap_fraction * saturation_bps}
            }
        ),
        "io.cost": IoCostKnob(weights={PRIORITY_GROUP: 10000, BE_GROUP: 100}),
        "io.latency": IoLatencyKnob(
            targets_us={
                PRIORITY_GROUP: settings.slo_p99_us
                * settings.static_target_slack
                * settings.device_scale
            }
        ),
    }


def ctl_config(settings: OnlineControlSettings) -> CtlConfig:
    """The control-plane attachment shared by every online cell.

    The io.max loop gets a deeper per-step cut than the library default:
    a flash crowd shows up between two control windows, so the first
    drift reaction must shed most of the aggressor's admission at once
    -- the slow asymmetric recovery then reclaims it.
    """
    return CtlConfig(
        slo=slo_spec(settings),
        period_us=settings.ctl_period_us,
        sample_period_us=settings.ctl_sample_period_us,
        iomax=IoMaxCtlParams(max_step_fraction=0.75),
    )


def pattern_specs(settings: OnlineControlSettings, pattern: str) -> list[JobSpec]:
    """The app set of one pattern: LC priority app + shaped BE load.

    The priority app is the paper's LC archetype (closed-loop QD=1 4 KiB
    random reads), always on. The best-effort load is an open-loop
    phased aggressor shaped by the pattern -- except ``churn``, where it
    is a population of closed-loop tenants starting and stopping on
    staggered windows.
    """
    priority = lc_app("prio", PRIORITY_GROUP)
    sat_iops = settings.saturation_iops()
    base = settings.base_fraction * sat_iops
    if pattern == "churn":
        tenants = [
            be_app(
                f"be{i}",
                BE_GROUP,
                queue_depth=settings.churn_queue_depth,
                windows=churn_windows(
                    i,
                    settings.n_churn_tenants,
                    settings.duration_us,
                    overlap=settings.churn_overlap,
                ),
            )
            for i in range(settings.n_churn_tenants)
        ]
        return [priority] + tenants
    if pattern == "steady":
        phases = (ArrivalPhase(0.0, math.inf, base),)
    elif pattern == "diurnal":
        phases = diurnal_phases(
            base,
            settings.peak_fraction * sat_iops,
            period_us=settings.duration_us,
            steps=8,
        )
    elif pattern in ("flash-crowd", "flash-crowd-gc"):
        phases = flash_crowd_phases(
            base,
            settings.crowd_fraction * sat_iops,
            crowd_start_us=settings.crowd_start_fraction * settings.duration_us,
            crowd_duration_us=settings.crowd_duration_fraction
            * settings.duration_us,
        )
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    aggressor = JobSpec(
        name="be-load",
        cgroup_path=BE_GROUP,
        size=4 * KIB,
        pattern=Pattern.RANDOM,
        read_fraction=1.0,
        arrival_phases=phases,
        app_class="be",
    )
    return [priority, aggressor]


@dataclass
class CellOutcome:
    """One (knob, pattern, mode) run of the D8 matrix."""

    knob: str
    pattern: str
    mode: str
    #: Priority-group p99 at full device speed, microseconds.
    prio_p99_us: float
    prio_mib_s: float
    be_mib_s: float
    slo_met: bool
    #: Knob-file rewrites the controller applied (0 for static cells).
    ctl_applied: float = 0.0
    ctl_steps: float = 0.0

    def to_json_dict(self) -> dict:
        """Golden-friendly cell record."""
        return {
            "knob": self.knob,
            "pattern": self.pattern,
            "mode": self.mode,
            "prio_p99_us": self.prio_p99_us,
            "prio_mib_s": self.prio_mib_s,
            "be_mib_s": self.be_mib_s,
            "slo_met": self.slo_met,
            "ctl_applied": self.ctl_applied,
            "ctl_steps": self.ctl_steps,
        }


@dataclass
class CellPair:
    """The static and online outcomes of one (knob, pattern) cell."""

    knob: str
    pattern: str
    static: CellOutcome
    online: CellOutcome

    @property
    def online_holds(self) -> bool:
        """The headline condition: online meets the SLO static loses."""
        return self.online.slo_met and not self.static.slo_met

    @property
    def p99_improvement(self) -> float:
        """Static p99 over online p99 (>1 means the controller helped)."""
        if self.online.prio_p99_us <= 0:
            return float("inf")
        return self.static.prio_p99_us / self.online.prio_p99_us


@dataclass
class OnlineControlTable:
    """The D8 result: per-(knob, pattern) static vs online outcomes."""

    slo_p99_us: float
    patterns: list[str]
    knobs: list[str]
    pairs: dict[tuple[str, str], CellPair] = field(default_factory=dict)

    def pair(self, knob: str, pattern: str) -> CellPair:
        """One cell of the matrix."""
        return self.pairs[(knob, pattern)]

    def holds(self) -> list[tuple[str, str]]:
        """Cells where the online controller holds what static loses."""
        return [
            (knob, pattern)
            for knob in self.knobs
            for pattern in self.patterns
            if self.pairs[(knob, pattern)].online_holds
        ]

    def render(self) -> str:
        """Text matrix (the ``isol-bench ctl`` output).

        Each cell shows ``static -> online`` p99 in full-speed
        microseconds, each side marked with whether it met the SLO.
        """
        width = 24
        header = f"{'knob':<12}" + "".join(
            f"{name:>{width}}" for name in self.patterns
        )
        lines = [
            f"priority p99 SLO: {self.slo_p99_us:.0f}us "
            f"(static -> online, * = SLO met)",
            header,
            "-" * len(header),
        ]
        for knob in self.knobs:
            cells = []
            for pattern in self.patterns:
                pair = self.pairs[(knob, pattern)]
                cell = (
                    f"{pair.static.prio_p99_us:.0f}"
                    f"{'*' if pair.static.slo_met else ' '}"
                    f"->{pair.online.prio_p99_us:.0f}"
                    f"{'*' if pair.online.slo_met else ' '}"
                )
                cells.append(f"{cell:>{width}}")
            lines.append(f"{knob:<12}" + "".join(cells))
        held = self.holds()
        if held:
            lines.append(
                "online holds where static violates: "
                + ", ".join(f"{knob}/{pattern}" for knob, pattern in held)
            )
        else:
            lines.append("online holds where static violates: none")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """Golden-friendly document (cells keyed ``knob/pattern``)."""
        return {
            "slo_p99_us": self.slo_p99_us,
            "patterns": list(self.patterns),
            "knobs": list(self.knobs),
            "holds": [f"{knob}/{pattern}" for knob, pattern in self.holds()],
            "cells": {
                f"{knob}/{pattern}": {
                    STATIC: self.pairs[(knob, pattern)].static.to_json_dict(),
                    ONLINE: self.pairs[(knob, pattern)].online.to_json_dict(),
                }
                for knob in self.knobs
                for pattern in self.patterns
            },
        }


def _outcome(
    summary: ScenarioSummary,
    settings: OnlineControlSettings,
    knob: str,
    pattern: str,
    mode: str,
) -> CellOutcome:
    """Distill one run into its D8 cell."""
    prio = summary.cgroup_stats().get(PRIORITY_GROUP)
    if prio is None or prio.latency is None:
        raise RuntimeError(
            f"d8 run {knob}/{pattern}/{mode}: the priority app completed no "
            f"requests in the measurement window — the load shape starved "
            f"it entirely; lengthen duration_s or soften the pattern"
        )
    be = summary.cgroup_stats().get(BE_GROUP)
    p99_full_speed = prio.latency.p99_us / settings.device_scale
    counters = summary.ctl_counters
    applied = sum(
        value for key, value in counters.items() if key.endswith(".applied")
    )
    return CellOutcome(
        knob=knob,
        pattern=pattern,
        mode=mode,
        prio_p99_us=p99_full_speed,
        prio_mib_s=prio.bandwidth_mib_s * settings.device_scale,
        be_mib_s=(be.bandwidth_mib_s * settings.device_scale) if be else 0.0,
        slo_met=p99_full_speed <= settings.slo_p99_us,
        ctl_applied=applied,
        ctl_steps=counters.get("steps", 0.0),
    )


def build_scenarios(
    settings: OnlineControlSettings,
) -> tuple[list[Scenario], list[tuple[str, str, str]]]:
    """The full D8 scenario batch plus (knob, pattern, mode) labels."""
    knobs = static_knobs(settings)
    control = ctl_config(settings)
    scenarios: list[Scenario] = []
    labels: list[tuple[str, str, str]] = []
    for knob_name in settings.knobs:
        for pattern in settings.patterns:
            specs = pattern_specs(settings, pattern)
            faults = (
                get_fault_plan("gc-storm") if pattern == "flash-crowd-gc" else None
            )
            for mode in (STATIC, ONLINE):
                scenarios.append(
                    Scenario(
                        name=f"d8-{knob_name}-{pattern}-{mode}",
                        knob=knobs[knob_name],
                        apps=specs,
                        ssd_model=settings.ssd,
                        cores=settings.cores,
                        duration_s=settings.duration_s,
                        warmup_s=settings.warmup_s,
                        seed=settings.seed,
                        device_scale=settings.device_scale,
                        faults=faults,
                        ctl=control if mode == ONLINE else None,
                    )
                )
                labels.append((knob_name, pattern, mode))
    return scenarios, labels


def evaluate_online_control(
    settings: OnlineControlSettings | None = None,
    executor: SweepExecutor | None = None,
) -> OnlineControlTable:
    """Run the (knob x pattern x mode) matrix and pair the outcomes."""
    settings = settings or OnlineControlSettings()
    scenarios, labels = build_scenarios(settings)
    summaries = resolve_executor(executor).run_strict(scenarios)

    by_label = dict(zip(labels, summaries))
    table = OnlineControlTable(
        slo_p99_us=settings.slo_p99_us,
        patterns=list(settings.patterns),
        knobs=list(settings.knobs),
    )
    for knob_name in settings.knobs:
        for pattern in settings.patterns:
            static = _outcome(
                by_label[(knob_name, pattern, STATIC)],
                settings,
                knob_name,
                pattern,
                STATIC,
            )
            online = _outcome(
                by_label[(knob_name, pattern, ONLINE)],
                settings,
                knob_name,
                pattern,
                ONLINE,
            )
            table.pairs[(knob_name, pattern)] = CellPair(
                knob=knob_name, pattern=pattern, static=static, online=online
            )
    return table
