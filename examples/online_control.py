#!/usr/bin/env python3
"""Can a feedback loop hold an SLO that a static knob config loses?

The paper's §VII points out that cgroup knob settings are static bets:
an io.max cap tuned at today's load admits tomorrow's flash crowd.
This example drives `repro.ctl` end to end on the flagship D8 cell.

Part 1 runs the io.max flash-crowd cell both ways — knob file frozen
vs. a PID control plane rewriting it from live SLO drift — and prints
the static -> online p99 comparison.

Part 2 replays the online run in-process and walks its decision trace:
the observation windows where drift appeared, the cuts the PID applied,
and the slow asymmetric recovery after the crowd receded.

Part 3 runs a compact matrix slice (io.max x {steady, flash-crowd,
churn}) through the sweep executor, the `isol-bench ctl` view.

Run:  python examples/online_control.py

(The ``__main__`` guard is required: the sweep executor fans scenarios
over spawn-context worker processes, which re-import this module.)
"""

import dataclasses

from repro.core.d8_online import (
    build_scenarios,
    evaluate_online_control,
    mini_settings,
)
from repro.core.runner import run_scenario
from repro.exec import SweepExecutor


def one_cell_settings():
    return dataclasses.replace(
        mini_settings(), knobs=("io.max",), patterns=("flash-crowd",)
    )


def compare_one_cell(executor: SweepExecutor):
    settings = one_cell_settings()
    scenarios, labels = build_scenarios(settings)
    summaries = executor.run_strict(scenarios)
    print("io.max under a flash crowd (p99 at full device speed):")
    online_scenario = None
    for scenario, (knob, pattern, mode), summary in zip(
        scenarios, labels, summaries
    ):
        prio = summary.cgroup_stats()["/tenants/prio"]
        p99 = prio.latency.p99_us / settings.device_scale
        met = "meets" if p99 <= settings.slo_p99_us else "VIOLATES"
        print(f"  {mode:<7} p99 {p99:7.0f}us  ({met} the {settings.slo_p99_us:.0f}us SLO)")
        if mode == "online":
            online_scenario = scenario
    return online_scenario


def walk_decision_trace(online_scenario) -> None:
    print("\nReplaying the online run for its decision trace:")
    result = run_scenario(online_scenario)
    records = result.ctl_trace or []
    cuts = [
        r for r in records if r["type"] == "actuation" and r["reason"] == "drift"
    ]
    recoveries = [
        r
        for r in records
        if r["type"] == "actuation" and r["reason"] == "recover"
    ]
    print(f"  {len(records)} trace records "
          f"({len(cuts)} cuts, {len(recoveries)} recovery steps)")
    for record in cuts:
        print(
            f"  t={record['t_us'] / 1e6:5.2f}s  {record['controller']} cut "
            f"{record['knob']} cap {record['previous']:.3f} -> "
            f"{record['value']:.3f} of saturation"
        )
    if recoveries:
        first, last = recoveries[0], recoveries[-1]
        print(
            f"  recovery: {len(recoveries)} steps of <=10% each, "
            f"{first['previous']:.3f} -> {last['value']:.3f} "
            f"(cut fast, creep back slowly)"
        )


def matrix_slice(executor: SweepExecutor) -> None:
    print("\nA slice of the D8 matrix (isol-bench ctl view):")
    settings = dataclasses.replace(
        mini_settings(),
        knobs=("io.max",),
        patterns=("steady", "flash-crowd", "churn"),
    )
    table = evaluate_online_control(settings, executor=executor)
    print(table.render())


if __name__ == "__main__":
    with SweepExecutor(max_workers=2) as executor:
        online = compare_one_cell(executor)
        walk_decision_trace(online)
        matrix_slice(executor)
        print(f"\nsweep: {executor.stats}")
