"""CPU accounting: the simulation's `sar` / `perf` / fio counters.

The paper reports utilization (sar), context switches per I/O (fio) and
cycles per I/O (perf). This module derives all three from the simulated
core set plus the active knob's cost profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.cores import CoreSet
from repro.cpu.model import CYCLES_PER_US, CpuCostProfile


@dataclass
class CpuReport:
    """One measurement window's CPU profile."""

    utilization: float
    ios: int
    ctx_switches_per_io: float
    cycles_per_io: float
    busy_us: float

    def __str__(self) -> str:
        return (
            f"cpu util {self.utilization * 100:5.1f}%  "
            f"ctx/io {self.ctx_switches_per_io:4.2f}  "
            f"cycles/io {self.cycles_per_io / 1000.0:5.1f}K"
        )


class CpuAccounting:
    """Accumulates per-window CPU statistics for one core set."""

    def __init__(self, core_set: CoreSet, profile: CpuCostProfile):
        self.core_set = core_set
        self.profile = profile
        self._ios = 0
        self._snapshot = core_set.snapshot()
        self._ios_at_snapshot = 0

    def on_io_complete(self) -> None:
        """Count one completed I/O."""
        self._ios += 1

    def begin_window(self) -> None:
        """Start a fresh measurement window (e.g. after warmup)."""
        self._snapshot = self.core_set.snapshot()
        self._ios_at_snapshot = self._ios

    def report(self) -> CpuReport:
        """Close the current window and summarize it."""
        ios = self._ios - self._ios_at_snapshot
        busy_us = self.core_set.busy_time_us(self._snapshot)
        cycles_per_io = busy_us / ios * CYCLES_PER_US if ios else 0.0
        return CpuReport(
            utilization=self.core_set.utilization(self._snapshot),
            ios=ios,
            ctx_switches_per_io=self.profile.ctx_switches_per_io if ios else 0.0,
            cycles_per_io=cycles_per_io,
            busy_us=busy_us,
        )
