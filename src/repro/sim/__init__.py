"""Discrete-event simulation substrate for isol-bench.

This package provides the minimal, fast primitives the rest of the
reproduction is built on:

* :class:`~repro.sim.engine.Simulator` -- an event loop with a simulated
  microsecond clock.
* :class:`~repro.sim.resources.QueuedServer` -- a FIFO multi-server resource
  (used for SSD flash units, the shared device bus, CPU cores, and
  scheduler dispatch locks).
* :class:`~repro.sim.resources.TokenBucket` -- a rate limiter (used by the
  io.max controller and fio-style rate limits).
* :class:`~repro.sim.rng.RngStreams` -- deterministic, named random streams.

All times in the simulation are in **microseconds** (floats) and all sizes
in **bytes** (ints) unless stated otherwise.
"""

from repro.sim.engine import Simulator
from repro.sim.resources import QueuedServer, TokenBucket
from repro.sim.rng import RngStreams

__all__ = ["Simulator", "QueuedServer", "TokenBucket", "RngStreams"]
