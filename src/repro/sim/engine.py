"""Event loop and simulated clock.

The engine is deliberately callback-based rather than coroutine-based:
callback scheduling through a priority structure is the fastest portable
way to run millions of events in pure Python, and the I/O pipeline
modelled here (submit -> throttle -> schedule -> device -> complete) maps
naturally onto chained callbacks.

Two interchangeable cores produce bit-identical simulations:

* the **batched** core (default): plain-list event entries ordered by
  C-level tuple comparison, a calendar/slot-wheel front-end that buckets
  near-future events into ``wheel_slots`` rotating slots (far-future
  events wait in an overflow heap and migrate as the wheel turns), and a
  same-timestamp batch-pop inner loop that fires equal-time events
  without re-checking the stop condition between them;
* the **legacy** core: the original single-``heappop`` loop over
  ``_Event`` objects, kept as the differential-testing oracle behind
  ``ISOLBENCH_ENGINE=legacy`` / ``EngineConfig(batching=False)``.

Both cores preserve the exact (time, seq) total order — events scheduled
for the same timestamp fire in FIFO scheduling order — and the O(1)
cancellation accounting behind :meth:`Simulator.pending_events`, so every
scenario summary is bit-identical across cores (``tests/differential/``
asserts this end to end).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterator

# Batched-core entries are plain 4-item lists [time, seq, fn, consumed]:
# heapq compares them with C-level list comparison (seq is unique, so fn
# is never reached), which profiles ~1.8x faster than calling a Python
# __lt__ per comparison. Index of the consumed/cancelled flag:
_CANCELLED = 3


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


@dataclass(frozen=True)
class EngineConfig:
    """Engine-core selection and wheel geometry.

    ``batching=True`` (the default) selects the slot-wheel batched core;
    ``batching=False`` the legacy single-pop heap core. ``wheel_slots``
    must be a power of two (slot lookup is a bit-mask); ``wheel_width_us``
    is the simulated-time width of one slot, so the wheel covers a
    ``wheel_slots * wheel_width_us`` horizon before events spill into the
    overflow heap.
    """

    batching: bool = True
    wheel_slots: int = 256
    wheel_width_us: float = 4.0

    @classmethod
    def from_env(cls) -> "EngineConfig":
        """Resolve the default config, honouring ``ISOLBENCH_ENGINE``.

        ``ISOLBENCH_ENGINE=legacy`` selects the legacy single-pop core
        (the differential-testing oracle); anything else — including
        unset — selects the batched core. Spawned sweep workers inherit
        the environment, so the selection survives process boundaries.
        """
        mode = os.environ.get("ISOLBENCH_ENGINE", "").strip().lower()
        if mode == "legacy":
            return cls(batching=False)
        return cls()


class _Event:
    """A scheduled callback (legacy-core handle).

    Cancellation is implemented with a flag rather than heap removal:
    removing from the middle of a heap is O(n), flipping a flag is O(1)
    and cancelled events are simply skipped when popped. Fired events are
    flagged cancelled too (consumed), which both makes cancel-after-fire
    a no-op and lets the simulator keep an O(1) pending-event count as
    ``stored - (cancelled_total - cancelled_popped)`` with zero extra
    work in the fire path beyond the flag store.
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    # Set as a class attribute on a per-simulator subclass (see
    # _LegacySimulator.__init__) so the constructor stays four stores —
    # event creation is the hottest allocation in the simulator.
    sim: "Simulator"

    def __init__(self, time: float, seq: int, fn: Callable[[], Any]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        if not self.cancelled:
            self.cancelled = True
            self.sim._cancelled_total += 1

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return not self.cancelled


class Simulator:
    """A discrete-event simulator with a microsecond clock.

    Events scheduled for the same timestamp fire in FIFO scheduling
    order, which keeps runs deterministic. ``Simulator(config)`` is a
    factory: it returns the batched or legacy core per ``config``
    (default :meth:`EngineConfig.from_env`); both are subclasses, so
    ``isinstance(sim, Simulator)`` holds either way.

    Event handles returned by :meth:`schedule` are core-specific opaque
    objects — cancel and query them through the mode-agnostic
    :meth:`cancel` / :meth:`event_active` methods.
    """

    def __new__(cls, config: "EngineConfig | None" = None):
        if cls is Simulator:
            cfg = config if config is not None else EngineConfig.from_env()
            return object.__new__(
                _BatchedSimulator if cfg.batching else _LegacySimulator
            )
        return object.__new__(cls)

    def __init__(self, config: "EngineConfig | None" = None) -> None:
        self.config = config if config is not None else EngineConfig.from_env()
        # Current simulated time in microseconds. A plain attribute, not
        # a property: it is read on every schedule/accounting step across
        # the stack, and a descriptor call there is measurable. Clients
        # must treat it as read-only.
        self.now = 0.0
        self._seq = 0
        # Cancellation bookkeeping lives entirely on the rare paths:
        # cancel() bumps _cancelled_total, popping a cancelled event bumps
        # _cancelled_popped. Every derived counter below is then O(1)
        # arithmetic with zero per-fire cost.
        self._cancelled_total = 0
        self._cancelled_popped = 0

    # -- shared, core-agnostic surface ---------------------------------
    @property
    def mode(self) -> str:
        """``"batched"`` or ``"legacy"`` — which core this simulator runs."""
        return "batched" if self.config.batching else "legacy"

    def schedule_at(self, time_us: float, fn: Callable[[], Any]) -> Any:
        """Schedule ``fn`` at an absolute simulated time."""
        return self.schedule(time_us - self.now, fn)

    def cancel(self, event: Any) -> None:
        """Prevent a scheduled event from firing (no-op if already fired).

        Works on handles from either core; the preferred spelling for
        all engine clients (the legacy ``handle.cancel()`` still works
        in legacy mode only).
        """
        if event.__class__ is list:
            if not event[_CANCELLED]:
                event[_CANCELLED] = True
                self._cancelled_total += 1
        else:
            event.cancel()

    def event_active(self, event: Any) -> bool:
        """True while the handle's event is pending (not fired/cancelled)."""
        if event.__class__ is list:
            return not event[_CANCELLED]
        return event.active

    # -- core-specific surface (overridden) ----------------------------
    def schedule(self, delay_us: float, fn: Callable[[], Any]) -> Any:
        """Schedule ``fn`` to run ``delay_us`` microseconds from now."""
        raise NotImplementedError

    def run_until(self, end_time_us: float) -> None:
        """Run events until the clock reaches ``end_time_us``."""
        raise NotImplementedError

    def run(self) -> None:
        """Run until no events remain."""
        raise NotImplementedError

    def run_until_profiled(self, end_time_us: float, profiler) -> None:
        """:meth:`run_until` with per-event phase timing."""
        raise NotImplementedError

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        raise NotImplementedError

    def pending_entries(self) -> Iterator[tuple[float, int, bool]]:
        """Debug view of stored entries as ``(time, seq, active)`` tuples.

        Includes cancelled-but-not-yet-popped entries with ``active=False``
        (their storage is reclaimed lazily by the run loop). Order is
        unspecified. For tests and diagnostics only — O(n).
        """
        raise NotImplementedError


class _LegacySimulator(Simulator):
    """The original single-pop binary-heap core (differential oracle)."""

    def __init__(self, config: "EngineConfig | None" = None) -> None:
        super().__init__(config)
        if self.config.batching:
            self.config = EngineConfig(batching=False)
        self._heap: list[_Event] = []
        # Events reach their simulator through a class attribute rather
        # than an instance slot: cancel() is rare, event construction is
        # not, and this keeps the constructor as cheap as a plain event.
        self._event_cls = type("_BoundEvent", (_Event,), {"sim": self, "__slots__": ()})

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (useful for perf diagnostics).

        Derived rather than counted: every scheduled event is either still
        in the heap, was popped cancelled, or fired. Keeping this out of
        the fire loop pays for the consumed-flag store, so the loop does
        the same number of attribute stores per event as a loop with no
        cancellation bookkeeping at all.
        """
        return self._seq - len(self._heap) - self._cancelled_popped

    def schedule(self, delay_us: float, fn: Callable[[], Any]) -> _Event:
        """Schedule ``fn`` to run ``delay_us`` microseconds from now.

        Returns an event handle; :meth:`Simulator.cancel` prevents firing.
        Negative delays are rejected: an event cannot fire in the past.
        """
        if delay_us < 0:
            raise SimulationError(f"cannot schedule event {delay_us}us in the past")
        event = self._event_cls(self.now + delay_us, self._seq, fn)
        self._seq += 1
        heappush(self._heap, event)
        return event

    def run_until(self, end_time_us: float) -> None:
        """Run events until the clock reaches ``end_time_us``.

        Events scheduled exactly at ``end_time_us`` are executed; the clock
        finishes at ``end_time_us`` even if the heap drains earlier.
        """
        heap = self._heap
        pop = heappop
        while heap:
            event = heap[0]
            if event.time > end_time_us:
                break
            pop(heap)
            if event.cancelled:
                self._cancelled_popped += 1
                continue
            event.cancelled = True  # consumed: cancel() is now a no-op
            self.now = event.time
            event.fn()
        self.now = max(self.now, end_time_us)

    def run(self) -> None:
        """Run until no events remain."""
        heap = self._heap
        pop = heappop
        while heap:
            event = pop(heap)
            if event.cancelled:
                self._cancelled_popped += 1
                continue
            event.cancelled = True  # consumed: cancel() is now a no-op
            self.now = event.time
            event.fn()

    def run_until_profiled(self, end_time_us: float, profiler) -> None:
        """:meth:`run_until` with per-event phase timing.

        A separate method rather than a branch inside :meth:`run_until`
        on purpose: the un-profiled loop must stay byte-for-byte the
        seed hot path (``tests/unit/test_obs_overhead.py`` guards it).
        Semantics are identical — same firing order, same cancellation
        bookkeeping, same final clock — so a profiled run produces
        bit-identical simulation results; it only additionally reads
        the wall clock twice per event and attributes the callback's
        time to its pipeline phase (see :mod:`repro.prof.phases`).
        """
        from time import perf_counter as perf

        heap = self._heap
        pop = heappop
        phase_wall = profiler.phase_wall
        phase_events = profiler.phase_events
        cache = profiler._phase_cache
        resolve = profiler.resolve_phase
        bucket_us = profiler.bucket_us
        heap_peak = len(heap)
        loop_start = perf()
        t_prev = loop_start
        while heap:
            event = heap[0]
            if event.time > end_time_us:
                break
            if len(heap) > heap_peak:
                heap_peak = len(heap)
            pop(heap)
            if event.cancelled:
                self._cancelled_popped += 1
                continue
            event.cancelled = True  # consumed: cancel() is now a no-op
            self.now = event.time
            fn = event.fn
            t0 = perf()
            fn()
            t1 = perf()
            code = getattr(fn, "__code__", None)
            phase = cache.get(code)
            if phase is None:
                phase = resolve(fn)
            elapsed = t1 - t0
            phase_wall[phase] = phase_wall.get(phase, 0.0) + elapsed
            phase_events[phase] = phase_events.get(phase, 0) + 1
            phase_wall["engine.pop"] += t0 - t_prev
            t_prev = t1
            if bucket_us:
                profiler.bucket_add(event.time, phase, elapsed)
        self.now = max(self.now, end_time_us)
        loop_end = perf()
        phase_wall["engine.pop"] += loop_end - t_prev
        profiler.loop_wall_seconds += loop_end - loop_start
        counters = profiler.counters
        counters["events.heap_peak"] = max(
            counters.get("events.heap_peak", 0.0), float(heap_peak)
        )
        profiler.note_engine(self)

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return len(self._heap) - (self._cancelled_total - self._cancelled_popped)

    def pending_entries(self) -> Iterator[tuple[float, int, bool]]:
        """Debug view of heap entries as ``(time, seq, active)`` (O(n))."""
        for event in self._heap:
            yield (event.time, event.seq, not event.cancelled)


class _BatchedSimulator(Simulator):
    """Slot-wheel + batch-pop core, bit-identical to the legacy core.

    Layout: time is divided into fixed-width slots numbered
    ``slot(t) = int(t * (1 / width))``. The wheel stores the next
    ``wheel_slots`` slot numbers starting at ``_head`` in a ring of
    plain lists (``slots[s & mask]``); anything at or beyond the horizon
    waits in ``_overflow`` (a heap) and migrates into the ring as the
    head advances. ``slot()`` is monotone in ``t`` and a pure function
    of ``t`` alone — never of the current head — so equal timestamps
    always share a slot and slot order equals time order, with no float
    boundary corrections needed.

    A slot is heapified only when it becomes the drain target (append is
    O(1) until then); the drain loop then pops batches of equal-time
    entries, re-checking the stop condition once per timestamp instead
    of once per event. Entries are [time, seq, fn, consumed] lists, so
    ordering uses C-level list comparison (seq is unique; fn is never
    compared).
    """

    def __init__(self, config: "EngineConfig | None" = None) -> None:
        super().__init__(config)
        nslots = self.config.wheel_slots
        if nslots < 2 or nslots & (nslots - 1):
            raise SimulationError(
                f"wheel_slots must be a power of two >= 2, got {nslots}"
            )
        if not (self.config.wheel_width_us > 0.0):
            raise SimulationError(
                f"wheel_width_us must be positive, got {self.config.wheel_width_us}"
            )
        self._nslots = nslots
        self._mask = nslots - 1
        self._inv_width = 1.0 / self.config.wheel_width_us
        self._slots: list[list] = [[] for _ in range(nslots)]
        self._overflow: list = []
        self._head = 0  # absolute slot number of the ring's drain slot
        # Entries physically stored (ring + overflow), including
        # cancelled-but-unpopped ones. The batched analogue of the legacy
        # core's len(_heap): decremented exactly when an entry is popped
        # for disposal, *before* its callback runs, so events_processed
        # and pending_events observe the same values mid-callback as the
        # legacy core (the sampler snapshots them mid-run).
        self._stored = 0
        # The slot currently being drained, if any: schedule() must
        # heappush into it (the drain loop peeks its min), while every
        # other slot takes a cheap append and is heapified lazily.
        self._active: list | None = None

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (useful for perf diagnostics)."""
        return self._seq - self._stored - self._cancelled_popped

    def schedule(self, delay_us: float, fn: Callable[[], Any]) -> list:
        """Schedule ``fn`` to run ``delay_us`` microseconds from now.

        Returns an event handle for :meth:`Simulator.cancel`. Negative
        delays are rejected: an event cannot fire in the past.
        """
        if delay_us < 0:
            raise SimulationError(f"cannot schedule event {delay_us}us in the past")
        t = self.now + delay_us
        entry = [t, self._seq, fn, False]
        self._seq += 1
        self._stored += 1
        s = int(t * self._inv_width)
        head = self._head
        if s < head:
            # The head can outrun the clock when it jumps to a far-future
            # event; an earlier arrival then belongs in the drain slot,
            # where heap order restores time order.
            s = head
        d = s - head
        if d < self._nslots:
            slot = self._slots[s & self._mask]
            if slot is self._active:
                heappush(slot, entry)
            else:
                slot.append(entry)
        elif self._stored == 1:
            # Nothing else pending: re-anchor the head instead of
            # spilling a lone long-delay chain into the overflow heap
            # on every hop.
            self._head = s
            self._slots[s & self._mask].append(entry)
        else:
            heappush(self._overflow, entry)
        return entry

    def _advance(self) -> bool:
        """Rotate the wheel so the head slot holds the earliest entry.

        Called with the current head slot empty and entries pending
        somewhere. Returns False only if the structure is empty. After
        advancing, overflow entries that fell inside the new horizon are
        migrated into the ring (each entry migrates at most once).
        """
        overflow = self._overflow
        if self._stored > len(overflow):
            # Ring non-empty: scan forward to the next occupied slot. A
            # ring slot can only hold entries for one absolute slot
            # number inside the current horizon, so the first occupied
            # slot is exactly the earliest one.
            slots = self._slots
            mask = self._mask
            head = self._head
            while True:
                head += 1
                if slots[head & mask]:
                    break
            self._head = head
        elif overflow:
            self._head = int(overflow[0][0] * self._inv_width)
        else:
            return False
        limit = self._head + self._nslots
        inv_width = self._inv_width
        pop = heappop
        while overflow and int(overflow[0][0] * inv_width) < limit:
            entry = pop(overflow)
            s = int(entry[0] * inv_width)
            if s < self._head:
                s = self._head
            self._slots[s & self._mask].append(entry)
        return True

    def _run_core(self, end_time_us: float) -> None:
        """Drain entries in (time, seq) order up to ``end_time_us``.

        The inner batch loop fires every entry sharing one timestamp
        without re-checking the stop condition or re-storing the clock;
        entries scheduled *during* the batch for the same timestamp have
        larger seq values and are picked up by the same loop, exactly
        matching the legacy pop order.
        """
        slots = self._slots
        mask = self._mask
        pop = heappop
        while self._stored:
            slot = slots[self._head & mask]
            if not slot:
                if not self._advance():
                    break
                slot = slots[self._head & mask]
            if len(slot) > 1:
                heapify(slot)
            self._active = slot
            while slot:
                t = slot[0][0]
                if t > end_time_us:
                    self._active = None
                    return
                while True:
                    entry = pop(slot)
                    self._stored -= 1
                    if entry[3]:
                        self._cancelled_popped += 1
                    else:
                        # The clock only moves for entries that fire:
                        # trailing cancelled entries must not drag it
                        # forward (legacy-core parity).
                        self.now = t
                        entry[3] = True  # consumed: cancel() is now a no-op
                        entry[2]()
                    if not slot or slot[0][0] != t:
                        break
            self._active = None

    def run_until(self, end_time_us: float) -> None:
        """Run events until the clock reaches ``end_time_us``.

        Events scheduled exactly at ``end_time_us`` are executed; the clock
        finishes at ``end_time_us`` even if all events drain earlier.
        """
        self._run_core(end_time_us)
        self.now = max(self.now, end_time_us)

    def run(self) -> None:
        """Run until no events remain."""
        self._run_core(float("inf"))

    def run_until_profiled(self, end_time_us: float, profiler) -> None:
        """:meth:`run_until` with per-event phase timing.

        A separate method rather than a branch inside the hot loop, for
        the same reason as the legacy core: the un-profiled loop stays
        the guarded hot path. Firing order, cancellation bookkeeping and
        the final clock are identical to :meth:`run_until`; the profiled
        loop additionally reads the wall clock twice per event, charges
        the callback to its phase and the gap to ``engine.pop``, and
        tracks the stored-entry peak (the batched analogue of the legacy
        heap peak).
        """
        from time import perf_counter as perf

        slots = self._slots
        mask = self._mask
        pop = heappop
        phase_wall = profiler.phase_wall
        phase_events = profiler.phase_events
        cache = profiler._phase_cache
        resolve = profiler.resolve_phase
        bucket_us = profiler.bucket_us
        # Per-event work stays O(1) and dict-light: wall time and counts
        # accumulate per callback *code object* (a handful of keys), and
        # are folded into the per-phase dicts once, after the loop.
        code_wall: dict = {}
        code_wall_get = code_wall.get
        pop_wall = 0.0
        heap_peak = self._stored
        loop_start = perf()
        t_prev = loop_start
        stop = False
        while self._stored and not stop:
            slot = slots[self._head & mask]
            if not slot:
                if not self._advance():
                    break
                slot = slots[self._head & mask]
            if len(slot) > 1:
                heapify(slot)
            self._active = slot
            while slot:
                t = slot[0][0]
                if t > end_time_us:
                    stop = True
                    break
                while True:
                    if self._stored > heap_peak:
                        heap_peak = self._stored
                    entry = pop(slot)
                    self._stored -= 1
                    if entry[3]:
                        self._cancelled_popped += 1
                    else:
                        # Clock moves only for firing entries (see
                        # _run_core): legacy-core parity on trailing
                        # cancelled events.
                        self.now = t
                        entry[3] = True  # consumed: cancel() is now a no-op
                        fn = entry[2]
                        t0 = perf()
                        fn()
                        t1 = perf()
                        try:
                            code = fn.__code__
                        except AttributeError:
                            code = None
                        rec = code_wall_get(code)
                        if rec is None:
                            rec = code_wall[code] = [0.0, 0, fn]
                        elapsed = t1 - t0
                        rec[0] += elapsed
                        rec[1] += 1
                        pop_wall += t0 - t_prev
                        t_prev = t1
                        if bucket_us:
                            phase = cache.get(code)
                            if phase is None:
                                phase = resolve(fn)
                            profiler.bucket_add(t, phase, elapsed)
                    if not slot or slot[0][0] != t:
                        break
            self._active = None
        self.now = max(self.now, end_time_us)
        loop_end = perf()
        for code, (wall, count, fn) in code_wall.items():
            phase = cache.get(code)
            if phase is None:
                phase = resolve(fn)
            phase_wall[phase] = phase_wall.get(phase, 0.0) + wall
            phase_events[phase] = phase_events.get(phase, 0) + count
        phase_wall["engine.pop"] += pop_wall + (loop_end - t_prev)
        profiler.loop_wall_seconds += loop_end - loop_start
        counters = profiler.counters
        counters["events.heap_peak"] = max(
            counters.get("events.heap_peak", 0.0), float(heap_peak)
        )
        profiler.note_engine(self)

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._stored - (self._cancelled_total - self._cancelled_popped)

    def pending_entries(self) -> Iterator[tuple[float, int, bool]]:
        """Debug view of ring + overflow entries as ``(time, seq, active)``."""
        for slot in self._slots:
            for entry in slot:
                yield (entry[0], entry[1], not entry[3])
        for entry in self._overflow:
            yield (entry[0], entry[1], not entry[3])
