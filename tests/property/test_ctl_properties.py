"""Property tests for the control primitives' hardening guarantees.

The contract (``repro.ctl.pid`` docstring): a controller fed arbitrary
garbage -- NaN errors, infinite proposals, negative settings -- must
degrade to "hold the current setting", never emit NaN, a negative
limit, or a value outside its configured bounds. Hypothesis drives the
primitives with unconstrained float streams to pin that down harder
than any example-based test can.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctl.config import PidParams
from repro.ctl.pid import PidState, RateLimiter

#: Any float at all, including nan and the infinities.
any_float = st.floats(allow_nan=True, allow_infinity=True)

#: A plausible knob setting: finite, strictly positive.
positive_float = st.floats(
    min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False
)

#: Modest non-negative PID gains (the config layer enforces >= 0).
gain = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


@st.composite
def pid_states(draw):
    """A validly constructed PidState with random bounds and gains."""
    lo = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    span = draw(st.floats(min_value=1e-3, max_value=100.0, allow_nan=False))
    hi = lo + span
    initial = lo + draw(st.floats(min_value=0.0, max_value=1.0)) * span
    params = PidParams(
        kp=draw(gain),
        ki=draw(gain),
        kd=draw(gain),
        violation_boost=draw(st.floats(min_value=1.0, max_value=10.0)),
    )
    return PidState(params, lo, hi, initial)


class TestPidStateProperties:
    @settings(max_examples=200)
    @given(pid=pid_states(), errors=st.lists(any_float, max_size=50))
    def test_output_always_finite_and_in_bounds(self, pid, errors):
        for error in errors:
            output = pid.step(error)
            assert math.isfinite(output)
            assert pid.out_lo <= output <= pid.out_hi
            assert math.isfinite(pid.integral)

    @settings(max_examples=100)
    @given(pid=pid_states(), errors=st.lists(any_float, max_size=50))
    def test_integral_term_never_exceeds_output_span(self, pid, errors):
        span = pid.out_hi - pid.out_lo
        for error in errors:
            pid.step(error)
            assert abs(pid.params.ki * pid.integral) <= span + 1e-9

    @settings(max_examples=100)
    @given(pid=pid_states(), errors=st.lists(any_float, max_size=20))
    def test_reset_restores_the_initial_output(self, pid, errors):
        for error in errors:
            pid.step(error)
        pid.reset()
        assert pid.output == pid.initial
        assert pid.integral == 0.0


class TestRateLimiterProperties:
    @settings(max_examples=200)
    @given(
        current=positive_float,
        proposals=st.lists(any_float, max_size=50),
        step=st.floats(min_value=1e-3, max_value=1.0, allow_nan=False),
        recover=st.one_of(
            st.none(), st.floats(min_value=1e-3, max_value=1.0, allow_nan=False)
        ),
    )
    def test_clamp_never_nan_or_negative(self, current, proposals, step, recover):
        """Iterated clamping from a sane start stays finite and >= 0,
        whatever garbage the proposals contain."""
        limiter = RateLimiter(max_step_fraction=step, max_recover_fraction=recover)
        for proposed in proposals:
            current = limiter.clamp(current, proposed)
            assert math.isfinite(current)
            assert current >= 0.0

    @settings(max_examples=200)
    @given(current=positive_float, proposed=positive_float)
    def test_clamp_respects_the_step_budget(self, current, proposed):
        limiter = RateLimiter(max_step_fraction=0.5, max_recover_fraction=0.1)
        value = limiter.clamp(current, proposed)
        assert value >= current * 0.5 - 1e-9 * current
        assert value <= current * 1.1 + 1e-9 * current

    @settings(max_examples=200)
    @given(current=positive_float, proposed=positive_float)
    def test_in_budget_proposals_pass_through(self, current, proposed):
        limiter = RateLimiter(max_step_fraction=1.0, max_recover_fraction=None)
        if current * 0.0 <= proposed <= current * 2.0:
            assert limiter.clamp(current, proposed) == proposed

    @settings(max_examples=100)
    @given(
        marks=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False), max_size=20
        ),
        interval=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_ready_is_monotone_in_time(self, marks, interval):
        limiter = RateLimiter(min_interval_us=interval)
        for now in marks:
            if limiter.ready(now):
                limiter.mark(now)
                # +1us slack: fl(now + interval) can round one ulp short.
                assert limiter.ready(now + interval + 1.0)
