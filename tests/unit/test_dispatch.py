"""Unit tests for the dispatch engine."""

import random

import pytest

from repro.cpu.cores import CoreSet
from repro.iocontrol.dispatch import DispatchEngine
from repro.iocontrol.nonectl import NoneScheduler
from repro.iorequest import GIB, IoRequest, KIB, OpType, Pattern
from repro.sim.engine import Simulator
from repro.ssd.device import SimulatedNvmeDevice
from repro.ssd.model import SsdModel


def quiet_model(**overrides):
    params = dict(
        name="quiet",
        parallelism=4,
        read_fixed_us=50.0,
        write_fixed_us=100.0,
        seq_read_fixed_us=40.0,
        seq_write_fixed_us=80.0,
        read_bus_bps=1 * GIB,
        write_bus_bps=0.5 * GIB,
        noise_base=1.0,
        noise_tail_mean=0.0,
    )
    params.update(overrides)
    return SsdModel(**params)


def make_engine(lock_us=1.0, parallelism=4):
    sim = Simulator()
    device = SimulatedNvmeDevice(sim, quiet_model(parallelism=parallelism), random.Random(0))
    cores = CoreSet(sim, 2)
    scheduler = NoneScheduler()
    scheduler.lock_overhead_us = lock_us
    completed = []
    engine = DispatchEngine(
        sim, scheduler, device, cores, on_complete=lambda r: completed.append(sim.now)
    )
    return sim, engine, completed


def make_request():
    return IoRequest("a", "/g", OpType.READ, Pattern.RANDOM, 4 * KIB)


class TestDispatch:
    def test_request_flows_to_completion(self):
        sim, engine, completed = make_engine()
        engine.submit(make_request())
        sim.run()
        assert len(completed) == 1
        assert engine.dispatched == 1

    def test_queued_time_stamped_at_submit(self):
        sim, engine, _ = make_engine()
        sim.schedule(25.0, lambda: engine.submit(make_request()))
        req_holder = []
        sim.run()
        # queued_time is set inside submit; verify through a fresh request.
        req = make_request()
        engine.submit(req)
        assert req.queued_time == sim.now

    def test_lock_serializes_dispatch(self):
        sim, engine, completed = make_engine(lock_us=10.0)
        for _ in range(4):
            engine.submit(make_request())
        sim.run()
        # Dispatches spaced 10us apart (lock), each then taking
        # 50us flash + ~3.8us bus.
        bus_us = 4096 / GIB * 1e6
        expected = [10.0 * (i + 1) + 50.0 + bus_us for i in range(4)]
        assert completed == pytest.approx(expected)

    def test_dispatch_rate_capped_by_lock(self):
        sim, engine, completed = make_engine(lock_us=5.0, parallelism=64)
        n = 200
        for _ in range(n):
            engine.submit(make_request())
        sim.run()
        # Last dispatch at ~n*5us; completion ~50us later.
        assert max(completed) == pytest.approx(n * 5.0 + 50.0 + 4096 / GIB * 1e6, rel=0.05)

    def test_spin_accounted_under_contention(self):
        sim, engine, _ = make_engine(lock_us=5.0)
        snap = engine.core_set.snapshot()
        for _ in range(20):
            engine.submit(make_request())
        sim.run()
        assert engine.core_set.busy_time_us(snap) > 0.0

    def test_retry_timer_fires_for_waiting_scheduler(self):
        sim, engine, completed = make_engine()

        class WaitScheduler(NoneScheduler):
            """Refuses to dispatch before t=100."""

            def pop(self, now):
                if now < 100.0:
                    return None, 100.0
                return super().pop(now)

        engine.scheduler = WaitScheduler()
        engine.scheduler.add(make_request())
        engine.pump()
        sim.run()
        assert completed and completed[0] > 100.0

    def test_duplicate_retry_timers_not_armed(self):
        sim, engine, _ = make_engine()

        class WaitScheduler(NoneScheduler):
            def pop(self, now):
                return None, 500.0

        engine.scheduler = WaitScheduler()
        for _ in range(10):
            engine.pump()
        assert sim.pending_events() == 1
