"""isol-bench command-line interface.

Subcommands mirror the benchmark suite::

    isol-bench describe-device [flash|optane]
    isol-bench coef-gen [flash|optane]       # io.cost model generation
    isol-bench run --knob io.cost ...        # one ad-hoc scenario
    isol-bench trace --knob io.cost --out t.json   # traced run -> timeline
    isol-bench table1 [--quick]              # the paper's Table I

All output is plain text; heavy lifting lives in :mod:`repro.core`.
"""

from __future__ import annotations

import argparse
import sys

from repro import KIB
from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
)
from repro.core.runner import run_scenario
from repro.obs import (
    TraceConfig,
    write_chrome_trace,
    write_jsonl,
    write_samples_csv,
    write_spans_csv,
)
from repro.ssd.model import describe_model
from repro.ssd.presets import get_preset
from repro.tools.iocost_coef_gen import derive_model, format_model_line
from repro.workloads.apps import batch_app, lc_app


def _cmd_describe_device(args: argparse.Namespace) -> int:
    print(describe_model(get_preset(args.device)))
    return 0


def _cmd_coef_gen(args: argparse.Namespace) -> int:
    ssd = get_preset(args.device)
    model = derive_model(ssd, conservatism=args.conservatism)
    print(format_model_line("259:0", model))
    return 0


def _make_knob(name: str):
    knobs = {
        "none": NoneKnob,
        "mq-deadline": MqDeadlineKnob,
        "bfq": BfqKnob,
        "io.max": IoMaxKnob,
        "io.latency": IoLatencyKnob,
        "io.cost": IoCostKnob,
    }
    if name not in knobs:
        raise SystemExit(f"unknown knob {name!r}; options: {sorted(knobs)}")
    return knobs[name]()


def _scenario_from_args(args: argparse.Namespace, name: str, trace=None) -> Scenario:
    apps = []
    for i in range(args.batch_apps):
        apps.append(
            batch_app(f"batch{i}", f"/tenants/batch{i}", size=args.size * KIB)
        )
    for i in range(args.lc_apps):
        apps.append(lc_app(f"lc{i}", f"/tenants/lc{i}"))
    if not apps:
        raise SystemExit("need at least one app (--batch-apps/--lc-apps)")
    return Scenario(
        name=name,
        knob=_make_knob(args.knob),
        apps=apps,
        ssd_model=get_preset(args.device),
        num_devices=args.devices,
        cores=args.cores,
        duration_s=args.duration,
        warmup_s=args.duration * 0.25,
        device_scale=args.device_scale,
        seed=args.seed,
        trace=trace,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_scenario(_scenario_from_args(args, "cli-run"))
    print(result.describe())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(sample_period_us=args.sample_period_us)
    scenario = _scenario_from_args(args, "cli-trace", trace=config)
    result = run_scenario(scenario)
    trace = result.trace
    assert trace is not None

    if args.format == "chrome":
        write_chrome_trace(trace, args.out)
        written = [args.out]
    elif args.format == "jsonl":
        write_jsonl(trace, args.out)
        written = [args.out]
    else:  # csv: two flat tables next to each other
        spans_path = args.out + ".spans.csv"
        samples_path = args.out + ".samples.csv"
        write_spans_csv(trace, spans_path)
        write_samples_csv(trace, samples_path)
        written = [spans_path, samples_path]

    print(result.describe())
    print(
        f"\ntraced {len(trace.spans)} request spans"
        + (f" ({trace.dropped_spans} dropped)" if trace.dropped_spans else "")
        + f", {len(trace.samples)} sampler rows "
        f"(period {config.sample_period_us:g} us)"
    )
    print("\nlatency attribution (mean us per request):")
    header = f"  {'app':<12s} {'ios':>9s} {'held':>10s} {'queued':>10s} {'service':>10s} {'end-to-end':>11s}"
    print(header)
    for name, attr in result.trace.attribution().items():
        print(
            f"  {name:<12s} {attr.ios:>9d} {attr.mean_held_us:>10.1f} "
            f"{attr.mean_queued_us:>10.1f} {attr.mean_service_us:>10.1f} "
            f"{attr.mean_latency_us:>11.1f}"
        )
    for path in written:
        print(f"\nwrote {args.format} trace: {path}")
    if args.format == "chrome":
        print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.core.table_one import TableOneSettings, evaluate_table_one

    if args.quick:
        settings = TableOneSettings(
            duration_s=0.25,
            warmup_s=0.08,
            fairness_duration_s=0.4,
            iolatency_duration_s=7.0,
            burst_duration_s=6.0,
            device_scale=12.0,
            burst_device_scale=20.0,
            sweep_points=4,
        )
    else:
        settings = TableOneSettings()
    table = evaluate_table_one(settings)
    print(table.render())
    matches = table.matches_paper()
    total = sum(matches.values())
    print(f"\ncells matching the paper: {total}/{4 * len(matches)}")
    return 0


def _add_scenario_args(p: argparse.ArgumentParser, default_lc_apps: int = 0) -> None:
    p.add_argument("--knob", default="none")
    p.add_argument("--device", default="flash", choices=("flash", "optane"))
    p.add_argument("--devices", type=int, default=1)
    p.add_argument("--cores", type=int, default=10)
    p.add_argument("--batch-apps", type=int, default=2)
    p.add_argument("--lc-apps", type=int, default=default_lc_apps)
    p.add_argument("--size", type=int, default=4, help="request size in KiB")
    p.add_argument("--duration", type=float, default=0.5)
    p.add_argument("--device-scale", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=42)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="isol-bench",
        description="Storage performance-isolation benchmark (IISWC'25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe-device", help="print a device preset's saturation points")
    p.add_argument("device", nargs="?", default="flash", choices=("flash", "optane"))
    p.set_defaults(fn=_cmd_describe_device)

    p = sub.add_parser("coef-gen", help="generate an io.cost.model line")
    p.add_argument("device", nargs="?", default="flash", choices=("flash", "optane"))
    p.add_argument("--conservatism", type=float, default=0.78)
    p.set_defaults(fn=_cmd_coef_gen)

    p = sub.add_parser("run", help="run one ad-hoc scenario")
    _add_scenario_args(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "trace",
        help="run a traced scenario and export a browsable timeline",
    )
    _add_scenario_args(p, default_lc_apps=1)
    p.add_argument(
        "--out",
        default="/tmp/isol-bench-trace.json",
        help="output path (csv format appends .spans.csv/.samples.csv)",
    )
    p.add_argument(
        "--format",
        default="chrome",
        choices=("chrome", "jsonl", "csv"),
        help="chrome = Perfetto/chrome://tracing JSON (default)",
    )
    p.add_argument(
        "--sample-period-us",
        type=float,
        default=5_000.0,
        help="stack sampler period in simulated us (0 disables sampling)",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("table1", help="reproduce the paper's Table I")
    p.add_argument("--quick", action="store_true")
    p.set_defaults(fn=_cmd_table1)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
