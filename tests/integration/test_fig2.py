"""Fig. 2 timeline dynamics as integration tests.

The panels are run at a compressed timeline (except io.latency, whose
500 ms windows need more room) and each paper-described behaviour is
asserted on the bandwidth time series.
"""

import pytest

from repro.core.fig2 import run_fig2_panel

FAST = dict(time_scale=0.1, device_scale=8.0)

# Timeline landmarks in paper seconds.
SOLO_A = (3, 9)  # only A running
CONTENTION = (25, 48)  # A, B, C all running
AFTER_A = (55, 68)  # only B running


@pytest.fixture(scope="module")
def none_panel():
    return run_fig2_panel("none", **FAST)


class TestNonePanel:
    def test_solo_app_reaches_rate_cap(self, none_panel):
        assert none_panel.mean_between("A", *SOLO_A) == pytest.approx(1536, rel=0.05)

    def test_contention_splits_evenly(self, none_panel):
        a = none_panel.mean_between("A", *CONTENTION)
        b = none_panel.mean_between("B", *CONTENTION)
        c = none_panel.mean_between("C", *CONTENTION)
        assert a == pytest.approx(b, rel=0.1)
        assert b == pytest.approx(c, rel=0.1)
        # Device saturated: each app below its 1.5 GiB/s cap.
        assert a < 1300

    def test_b_recovers_after_a_stops(self, none_panel):
        assert none_panel.mean_between("B", *AFTER_A) == pytest.approx(1536, rel=0.05)

    def test_apps_silent_outside_their_windows(self, none_panel):
        assert none_panel.mean_between("C", *AFTER_A) == 0.0
        assert none_panel.mean_between("B", 3, 9) == 0.0


class TestMqDeadlinePanel:
    def test_strict_priority_starves_lower_classes(self):
        panel = run_fig2_panel("mq-deadline", **FAST)
        a = panel.mean_between("A", *CONTENTION)
        b = panel.mean_between("B", *CONTENTION)
        c = panel.mean_between("C", *CONTENTION)
        # Paper: ~1.5 GiB/s for realtime, tens of KiB/s for the rest.
        assert a == pytest.approx(1536, rel=0.05)
        assert b < 0.02 * a
        assert c < 0.02 * a


class TestBfqPanels:
    def test_uniform_weights_split_evenly(self):
        panel = run_fig2_panel("bfq-uniform", **FAST)
        values = [panel.mean_between(app, *CONTENTION) for app in "ABC"]
        assert max(values) < 1.15 * min(values)

    def test_weighted_split_follows_weights(self):
        panel = run_fig2_panel("bfq-weighted", **FAST)
        a = panel.mean_between("A", *CONTENTION)
        b = panel.mean_between("B", *CONTENTION)
        c = panel.mean_between("C", *CONTENTION)
        # Weights 400:200:100 -> monotone ordering, A >= ~2.5x C.
        assert a > b > c
        assert a > 2.5 * c


class TestIoMaxPanel:
    @pytest.fixture(scope="class")
    def panel(self):
        return run_fig2_panel("io.max", **FAST)

    def test_caps_respected(self, panel):
        for app in "ABC":
            assert panel.mean_between(app, *CONTENTION) <= 1024 * 1.05

    def test_static_no_reclaim_after_a_stops(self, panel):
        # B stays at its cap instead of using the freed device (O8).
        assert panel.mean_between("B", *AFTER_A) == pytest.approx(1024, rel=0.05)


class TestIoLatencyPanel:
    @pytest.fixture(scope="class")
    def panel(self):
        # io.latency's 500 ms windows need the longer timeline.
        return run_fig2_panel("io.latency", time_scale=0.5, device_scale=8.0)

    def test_protected_app_keeps_bandwidth(self, panel):
        assert panel.mean_between("A", 35, 48) > 1400

    def test_others_throttled_to_few_hundred_mib(self, panel):
        assert panel.mean_between("B", 35, 48) < 900
        assert panel.mean_between("C", 35, 48) < 900

    def test_use_delay_blocks_recovery_after_a_stops(self, panel):
        # Paper Fig. 2f: throughput does not recover when A stops.
        assert panel.mean_between("B", *AFTER_A) < 900


class TestIoCostPanels:
    def test_unweighted_costs_bandwidth(self):
        panel = run_fig2_panel("io.cost", **FAST)
        none_total = 3 * 1058  # from the none panel at contention
        total = sum(panel.mean_between(app, *CONTENTION) for app in "ABC")
        assert total < 0.95 * none_total

    def test_weighted_prioritizes_by_weight(self):
        panel = run_fig2_panel("io.cost-weighted", **FAST)
        a = panel.mean_between("A", *CONTENTION)
        b = panel.mean_between("B", *CONTENTION)
        c = panel.mean_between("C", *CONTENTION)
        # Weights 600:300:100.
        assert a > 1.5 * b > 0
        assert b > 1.5 * c > 0

    def test_iocost_reclaims_after_a_stops(self):
        panel = run_fig2_panel("io.cost-weighted", **FAST)
        during = panel.mean_between("B", *CONTENTION)
        after = panel.mean_between("B", *AFTER_A)
        # Unlike io.max, weight-based sharing is work-conserving among
        # active groups: B's share grows once A leaves.
        assert after > 1.5 * during
