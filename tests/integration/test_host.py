"""Integration tests for host wiring details and result plumbing."""

import dataclasses

import pytest

from repro import (
    IoCostKnob,
    IoLatencyKnob,
    MIB,
    IoMaxKnob,
    NoneKnob,
    Scenario,
    run_scenario,
)
from repro.core.config import DynamicIoMaxKnob
from repro.core.host import Host
from repro.iocontrol.base import PassthroughThrottle
from repro.iocontrol.iocost import IoCostController
from repro.iocontrol.iolatency import IoLatencyController
from repro.iocontrol.iomax import IoMaxController
from repro.workloads.apps import batch_app, lc_app
from repro.workloads.spec import ActivityWindow


def scenario(knob, apps=None, **overrides):
    kwargs = dict(
        name="host-it",
        knob=knob,
        apps=apps or [batch_app("a", "/t/a", queue_depth=8)],
        duration_s=0.15,
        warmup_s=0.05,
        device_scale=8.0,
        cores=4,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestWiring:
    def test_throttle_types_per_knob(self):
        cases = [
            (NoneKnob(), PassthroughThrottle),
            (IoMaxKnob(), IoMaxController),
            (DynamicIoMaxKnob(weights={"/t/a": 100}), IoMaxController),
            (IoLatencyKnob(), IoLatencyController),
            (IoCostKnob(), IoCostController),
        ]
        for knob, expected in cases:
            host = Host(scenario(knob))
            assert isinstance(host.throttles[0], expected), knob.label

    def test_one_scheduler_and_engine_per_device(self):
        host = Host(scenario(NoneKnob(), num_devices=3))
        assert len(host.schedulers) == 3
        assert len(host.engines) == 3
        assert len(host.wc_probes) == 3

    def test_cgroup_tree_built_from_specs(self):
        host = Host(
            scenario(
                NoneKnob(),
                apps=[
                    batch_app("a", "/tenants/prod/a", queue_depth=4),
                    batch_app("b", "/tenants/dev/b", queue_depth=4),
                ],
            )
        )
        prod = host.hierarchy.find("/tenants/prod/a")
        assert "a" in prod.processes
        assert "io" in host.hierarchy.find("/tenants").subtree_control

    def test_scaled_profile_costs(self):
        host = Host(scenario(NoneKnob(), device_scale=8.0))
        from repro.cpu.model import profile_for_knob

        base = profile_for_knob("none")
        assert host.profile.cost_qd1_us == pytest.approx(base.cost_qd1_us * 8)

    def test_scaled_scheduler_lock(self):
        host = Host(scenario(NoneKnob(), device_scale=8.0))
        from repro.iocontrol.nonectl import NoneScheduler

        assert host.schedulers[0].lock_overhead_us == pytest.approx(
            NoneScheduler.lock_overhead_us * 8
        )

    def test_no_page_cache_for_direct_only(self):
        host = Host(scenario(NoneKnob()))
        assert host.page_caches == []

    def test_no_managers_without_dynamic_knob(self):
        host = Host(scenario(IoMaxKnob()))
        assert host.iomax_managers == []

    def test_dynamic_knob_gets_manager_per_device(self):
        host = Host(
            scenario(DynamicIoMaxKnob(weights={"/t/a": 100}), num_devices=2)
        )
        assert len(host.iomax_managers) == 2


class TestResultPlumbing:
    def test_work_conservation_none_is_low(self):
        result = run_scenario(scenario(NoneKnob()))
        assert result.work_conservation_violation < 0.05

    def test_work_conservation_tight_iomax_is_high(self):
        knob = IoMaxKnob(limits={"/t/a": {"rbps": 5 * MIB}})
        result = run_scenario(scenario(knob))
        assert result.work_conservation_violation > 0.5

    def test_window_us(self):
        result = run_scenario(scenario(NoneKnob()))
        assert result.window_us == pytest.approx(0.1e6)

    def test_equivalent_bandwidth_scales(self):
        result = run_scenario(scenario(NoneKnob(), device_scale=8.0))
        assert result.equivalent_bandwidth_gib_s == pytest.approx(
            result.aggregate_bandwidth_gib_s * 8.0
        )

    def test_latency_cdf_accessor(self):
        result = run_scenario(scenario(NoneKnob()))
        values, probs = result.latency_cdf("a", points=20)
        assert len(values) == 20
        assert values == sorted(values)

    def test_open_loop_app_runs_through_host(self):
        spec = dataclasses.replace(
            lc_app("ol", "/t/ol"), arrival_rate_iops=2_000.0
        )
        result = run_scenario(scenario(NoneKnob(), apps=[spec]))
        stats = result.app_stats("ol")
        assert stats.ios > 50

    def test_burst_window_app_counts_only_inside_window(self):
        spec = dataclasses.replace(
            batch_app("b", "/t/b", queue_depth=4),
            windows=(ActivityWindow(0.1e6),),
        )
        result = run_scenario(scenario(NoneKnob(), apps=[spec]))
        early = result.collector.app_stats("b", 0.0, 0.09e6)
        assert early.ios == 0
