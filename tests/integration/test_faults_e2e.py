"""End-to-end fault injection: counters, determinism, observability.

These run full scenarios with ``Scenario.faults`` set and pin the
cross-layer contracts: each preset trips its own counters, failed
requests never pollute the success metrics, the sampler exports
``faults.*`` rows, controllers count degraded-mode events, and — the
headline — same seed + same plan reproduces the summary bit-identically
in-process, across reruns, and across a 2-worker spawned sweep.
"""

import pytest

from repro.core.config import IoLatencyKnob, NoneKnob, Scenario
from repro.core.runner import run_scenario
from repro.exec import SweepExecutor, run_scenario_summary
from repro.faults import FaultPlan, RetryPolicy, TransientErrors, get_fault_plan
from repro.obs import TraceConfig
from repro.ssd.presets import samsung_980pro_like
from repro.workloads.apps import batch_app


def faulty_scenario(name: str, faults, seed: int = 42, **overrides) -> Scenario:
    fields = dict(
        name=name,
        knob=NoneKnob(),
        apps=[batch_app("batch0", "/tenants/a"), batch_app("batch1", "/tenants/b")],
        ssd_model=samsung_980pro_like(),
        duration_s=0.5,
        warmup_s=0.1,
        seed=seed,
        device_scale=8.0,
        faults=faults,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestPerClassCounters:
    def test_healthy_run_has_no_counters(self):
        summary = run_scenario_summary(faulty_scenario("healthy", None))
        assert summary.fault_counters == {}

    def test_latency_spike_counts_spikes(self):
        summary = run_scenario_summary(
            faulty_scenario("spiky", get_fault_plan("latency-spike"))
        )
        assert summary.fault_counters["dev0.spikes_injected"] >= 2

    def test_gc_storm_counts_windows_and_slows_writes(self):
        plan = get_fault_plan("gc-storm")
        write_apps = [
            batch_app("w0", "/tenants/a", read_fraction=0.0),
            batch_app("w1", "/tenants/b", read_fraction=0.0),
        ]
        stormy = run_scenario_summary(
            faulty_scenario("stormy", plan, apps=write_apps)
        )
        healthy = run_scenario_summary(
            faulty_scenario("calm", None, apps=write_apps)
        )
        assert stormy.fault_counters["dev0.storm_windows"] >= 1
        assert stormy.aggregate_bandwidth_gib_s < healthy.aggregate_bandwidth_gib_s

    def test_slowdown_cuts_bandwidth(self):
        slow = run_scenario_summary(
            faulty_scenario("slow", get_fault_plan("slowdown"))
        )
        healthy = run_scenario_summary(faulty_scenario("fast", None))
        assert (
            slow.aggregate_bandwidth_gib_s
            < 0.75 * healthy.aggregate_bandwidth_gib_s
        )

    def test_transient_errors_are_retried(self):
        summary = run_scenario_summary(
            faulty_scenario("flaky", get_fault_plan("transient-error"))
        )
        counters = summary.fault_counters
        assert counters["device_errors"] > 0
        assert counters["retries"] > 0
        assert counters["backoff_us"] > 0
        # Injection leads resolution: errors whose completions were still
        # in flight when the clock stopped are injected but never resolved.
        assert counters["dev0.errors_injected"] >= counters["device_errors"]
        # 2% error rate with 4 attempts: everything eventually succeeds.
        assert counters["failures_delivered"] == 0

    def test_timeout_storm_abandons_and_drops_stale(self):
        summary = run_scenario_summary(
            faulty_scenario("hung", get_fault_plan("timeout-storm"))
        )
        counters = summary.fault_counters
        assert counters["timeouts"] > 0
        assert counters["stale_completions"] > 0
        # Every abandoned attempt is either retried or delivered failed.
        assert (
            counters["retries"] + counters["failures_delivered"]
            >= counters["timeouts"]
        )

    def test_exhausted_retries_deliver_failures_not_metrics(self):
        """max_attempts=1: every device error surfaces as a failure, and
        failures are excluded from the success-only latency/bandwidth
        series (the app still makes progress)."""
        plan = FaultPlan(
            label="no-retries",
            errors=(TransientErrors(probability=0.05, error_latency_us=50.0),),
            retry=RetryPolicy(max_attempts=1),
        )
        summary = run_scenario_summary(faulty_scenario("fatal", plan))
        counters = summary.fault_counters
        assert counters["retries"] == 0
        assert counters["failures_delivered"] == counters["device_errors"] > 0
        assert summary.aggregate_bandwidth_gib_s > 0


class TestDeterminism:
    @pytest.mark.parametrize(
        "fault_class", ["latency-spike", "gc-storm", "transient-error", "timeout-storm"]
    )
    def test_same_seed_same_plan_bit_identical(self, fault_class):
        scenario = faulty_scenario(f"det-{fault_class}", get_fault_plan(fault_class))
        first = run_scenario_summary(scenario)
        second = run_scenario_summary(scenario)
        assert first.content_equal(second)
        assert first.fault_counters == second.fault_counters

    def test_serial_and_two_worker_sweeps_agree(self):
        """The ISSUE's acceptance bar: serial vs --workers 2 identical."""
        scenarios = [
            faulty_scenario(f"xproc-{name}", get_fault_plan(name))
            for name in ("latency-spike", "transient-error")
        ]
        serial = SweepExecutor(max_workers=1).run_strict(scenarios)
        with SweepExecutor(max_workers=2) as pool:
            parallel = pool.run_strict(scenarios)
        for ours, theirs in zip(serial, parallel):
            assert ours.content_equal(theirs)
            assert ours.fault_counters  # non-trivial content compared

    def test_different_seed_diverges(self):
        plan = get_fault_plan("transient-error")
        a = run_scenario_summary(faulty_scenario("seed-a", plan, seed=1))
        b = run_scenario_summary(faulty_scenario("seed-a", plan, seed=2))
        assert a.fault_counters != b.fault_counters


class TestObservability:
    def test_sampler_exports_fault_rows(self):
        scenario = faulty_scenario(
            "sampled",
            get_fault_plan("transient-error"),
            trace=TraceConfig(spans=False, sample_period_us=50_000.0),
        )
        result = run_scenario(scenario)
        samples = result.trace.samples
        assert samples
        keys = set(result.host.sampler.keys())
        assert {"faults.retries", "faults.device_errors", "faults.timeouts"} <= keys
        assert "dev0.faults.errors_injected" in keys
        # Counters are cumulative, hence monotone across rows.
        series = [row["faults.device_errors"] for row in samples]
        assert series == sorted(series)
        assert 0 < series[-1] <= result.fault_counters["device_errors"]

    def test_controller_counts_degraded_mode_events(self):
        """The admitting throttle layer's snapshot gains a faulted count."""
        scenario = faulty_scenario(
            "degraded",
            get_fault_plan("transient-error"),
            knob=IoLatencyKnob(targets_us={"/tenants/a": 10_000.0}),
        )
        result = run_scenario(scenario)
        snapshot = result.host.throttles[0].snapshot()
        assert snapshot["faulted"] == result.fault_counters["device_errors"] > 0

    def test_passthrough_snapshot_reports_faulted_zero_when_healthy(self):
        result = run_scenario(
            faulty_scenario("clean", None, duration_s=0.1, warmup_s=0.02)
        )
        assert result.host.throttles[0].snapshot()["faulted"] == 0.0
