"""Golden regression for the D8 online-control matrix.

Mirrors ``test_d5_golden.py``: the ``mini`` matrix (the ``isol-bench
ctl --mini`` configuration) runs cold in tier-1 against
``tests/data/d8_mini_golden.json``; the same module-scoped run doubles
as the warm-cache proof (re-evaluating against the populated cache must
execute zero scenarios) and the determinism bar (a 2-worker spawned
sweep reproduces the matrix bit-identically).

The *headline structure* is compared exactly — which (knob, pattern)
cells the online controller holds while static violates, and every
cell's SLO verdict. Dimensionful numbers (p99, MiB/s) carry tolerances
that only absorb deliberate small re-calibrations.

Regenerate after an intentional simulator change::

    PYTHONPATH=src python -m tests.integration.test_d8_golden
"""

import json
import pathlib

import pytest

from repro.core.d8_online import evaluate_online_control, mini_settings
from repro.exec import ResultCache, SweepExecutor

DATA_DIR = pathlib.Path(__file__).parent.parent / "data"
MINI_GOLDEN = DATA_DIR / "d8_mini_golden.json"

#: Relative tolerance for dimensionful cells (p99 us, MiB/s).
REL_TOL = 0.5
#: Absolute slack for counters (controller steps / applied actuations).
COUNT_ATOL = 25.0

_CELL_FIELDS = ("prio_p99_us", "prio_mib_s", "be_mib_s", "ctl_applied", "ctl_steps")


def assert_cell_close(got: dict, want: dict, context: str) -> None:
    for name in ("knob", "pattern", "mode", "slo_met"):
        assert got[name] == want[name], f"{context}.{name}"
    for name in _CELL_FIELDS:
        assert got[name] == pytest.approx(
            want[name], rel=REL_TOL, abs=COUNT_ATOL
        ), f"{context}.{name}: measured {got[name]!r}, golden {want[name]!r}"


def assert_matches_golden(table, golden_path: pathlib.Path) -> None:
    golden = json.loads(golden_path.read_text())
    doc = table.to_json_dict()
    assert doc["slo_p99_us"] == golden["slo_p99_us"]
    assert doc["patterns"] == golden["patterns"]
    assert doc["knobs"] == golden["knobs"]
    assert doc["holds"] == golden["holds"]
    for cell, expected in golden["cells"].items():
        for mode in ("static", "online"):
            assert_cell_close(
                doc["cells"][cell][mode], expected[mode], f"{cell}.{mode}"
            )


@pytest.fixture(scope="module")
def mini_run(tmp_path_factory):
    """One cold mini matrix against a fresh cache."""
    cache_dir = tmp_path_factory.mktemp("d8-cache")
    with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as executor:
        table = evaluate_online_control(mini_settings(), executor=executor)
        stats = executor.stats
    assert stats.executed > 0 and stats.cached == 0
    return table, cache_dir, stats


class TestMiniMatrix:
    def test_matches_golden(self, mini_run):
        table, _, _ = mini_run
        assert_matches_golden(table, MINI_GOLDEN)

    def test_online_holds_where_static_violates(self, mini_run):
        """The acceptance bar: at least one pattern where the online
        controller holds a p99 SLO the static configuration loses."""
        table, _, _ = mini_run
        held = table.holds()
        assert held, "no (knob, pattern) cell held online while static violated"
        # The flagship cell: the PID io.max loop under a flash crowd.
        assert ("io.max", "flash-crowd") in held

    def test_static_is_tuned_at_base(self, mini_run):
        """Static configs must meet the SLO on the steady pattern (they
        are tuned-at-base, not strawmen)."""
        table, _, _ = mini_run
        for knob in table.knobs:
            pair = table.pair(knob, "steady")
            assert pair.static.slo_met, f"{knob} static violates at base load"
            assert pair.online.slo_met, f"{knob} online violates at base load"

    def test_online_never_worse_than_static(self, mini_run):
        """The controller must not lose an SLO static holds."""
        table, _, _ = mini_run
        for (knob, pattern), pair in table.pairs.items():
            if pair.static.slo_met:
                assert pair.online.slo_met, f"{knob}/{pattern}: online regressed"

    def test_warm_cache_executes_zero_scenarios(self, mini_run):
        table, cache_dir, cold_stats = mini_run
        with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as warm:
            rerun = evaluate_online_control(mini_settings(), executor=warm)
            assert warm.stats.executed == 0
            assert warm.stats.failed == 0
            assert warm.stats.cached == cold_stats.executed
        assert rerun.render() == table.render()
        assert rerun.to_json_dict() == table.to_json_dict()

    def test_two_worker_sweep_bit_identical_to_serial(self, mini_run):
        """The determinism bar: --workers 2 vs serial, uncached."""
        table, _, _ = mini_run
        with SweepExecutor(max_workers=2) as pool:
            parallel = evaluate_online_control(mini_settings(), executor=pool)
            assert pool.stats.executed > 0  # genuinely recomputed
        assert parallel.to_json_dict() == table.to_json_dict()
        assert parallel.render() == table.render()


def _regenerate() -> None:
    table = evaluate_online_control(mini_settings())
    MINI_GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    MINI_GOLDEN.write_text(
        json.dumps(table.to_json_dict(), indent=2, sort_keys=True) + "\n"
    )
    print(table.render())
    print(f"wrote {MINI_GOLDEN}")


if __name__ == "__main__":
    _regenerate()
