"""Fig. 6: fairness under mixed workloads (2 cgroups x 4 batch apps).

Regenerates: (a) 4 KiB vs 256 KiB request sizes, (b) random read vs
random write (read/write interference + GC on a preconditioned drive),
plus the access-pattern case the paper describes but does not plot.
"""

from conftest import run_once

from repro.core.d2_fairness import run_mixed_workload_fairness
from repro.core.report import render_table

DEVICE_SCALE = 8.0


def test_fig6_mixed_workloads(benchmark, figure_output):
    def experiment():
        return {
            case: run_mixed_workload_fairness(
                case,
                duration_s=0.6,
                warmup_s=0.2,
                device_scale=DEVICE_SCALE,
            )
            for case in ("sizes", "patterns", "readwrite")
        }

    cases = run_once(benchmark, experiment)
    rows = []
    for case, points in cases.items():
        for p in points:
            per_group = ", ".join(
                f"{path.rsplit('/', 1)[-1]}={mib:.0f}MiB/s"
                for path, mib in sorted(p.per_group_mib_s.items())
            )
            rows.append([case, p.knob, p.fairness, p.aggregate_bandwidth_gib_s, per_group])
    table = render_table(
        ["case", "knob", "Jain", "GiB/s (equiv)", "per-group"],
        rows,
        title=f"Fig. 6 -- mixed-workload fairness (device 1/{DEVICE_SCALE:g})",
    )
    figure_output("fig6_mixed_fairness", table)

    sizes = {p.knob: p for p in cases["sizes"]}
    patterns = {p.knob: p for p in cases["patterns"]}
    rw = {p.knob: p for p in cases["readwrite"]}

    # O5 shape guards.
    assert sizes["io.max"].fairness > 0.9
    assert sizes["io.cost"].fairness > 0.9
    assert sizes["none"].fairness < 0.6
    assert sizes["io.latency"].fairness < 0.6
    assert all(p.fairness > 0.9 for p in patterns.values())
    # Writes collapse aggregate bandwidth (GC) for every knob.
    for knob, p in rw.items():
        assert (
            p.aggregate_bandwidth_gib_s < 0.5 * sizes["none"].aggregate_bandwidth_gib_s
        ), knob
    # io.cost's write-cost asymmetry favours readers.
    assert (
        rw["io.cost"].per_group_mib_s["/tenants/readers"]
        > rw["io.cost"].per_group_mib_s["/tenants/writers"]
    )
