"""Fig. 2: illustrative three-app timelines for every knob (§IV-B).

Three identical rate-limited batch apps (64 KiB random reads, QD=8,
1.5 GiB/s cap) start and stop on a staggered timeline: A runs 0-50 s,
B 10-70 s, C 20-50 s. Each knob is configured as the paper describes and
the per-app bandwidth time series is recorded -- the eight subplots of
Fig. 2.

Timeline and device are scalable: ``time_scale`` compresses the schedule
and ``device_scale`` slows the device (rate caps scale along). Note that
io.latency's 500 ms control window is a kernel constant and is *not*
scaled, so at strong compression its dynamics occupy proportionally more
of the timeline (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cgroups.knobs import IoCostQosParams
from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    KnobConfig,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
)
from repro.core.scenarios import fig2_timeline_specs
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.iorequest import GIB
from repro.metrics.timeseries import bandwidth_series
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like

GROUP_A, GROUP_B, GROUP_C = "/tenants/a", "/tenants/b", "/tenants/c"

#: The eight Fig. 2 panels, in paper order.
FIG2_PANELS = (
    "none",
    "mq-deadline",
    "bfq-uniform",
    "bfq-weighted",
    "io.max",
    "io.latency",
    "io.cost",
    "io.cost-weighted",
)


def fig2_knob(panel: str, ssd_scaled: SsdModel, device_scale: float) -> KnobConfig:
    """The knob configuration behind one Fig. 2 panel."""
    cap_bps = 1.0 * GIB / device_scale
    if panel == "none":
        return NoneKnob()
    if panel == "mq-deadline":
        return MqDeadlineKnob(
            classes={GROUP_A: "realtime", GROUP_B: "best-effort", GROUP_C: "idle"}
        )
    if panel == "bfq-uniform":
        return BfqKnob(weights={GROUP_A: 100, GROUP_B: 100, GROUP_C: 100})
    if panel == "bfq-weighted":
        return BfqKnob(weights={GROUP_A: 400, GROUP_B: 200, GROUP_C: 100})
    if panel == "io.max":
        return IoMaxKnob(
            limits={path: {"rbps": cap_bps} for path in (GROUP_A, GROUP_B, GROUP_C)}
        )
    if panel == "io.latency":
        # A is the protected app; B and C have no targets. The target is
        # deliberately aggressive (just under A's isolated P90): the
        # violation then persists even with B/C throttled to QD=1, which
        # is the regime behind the paper's Fig. 2f -- B/C pinned at a few
        # hundred MiB/s and, through the accumulated use_delay, no
        # recovery after A stops.
        return IoLatencyKnob(targets_us={GROUP_A: 95.0 * device_scale})
    if panel == "io.cost":
        return IoCostKnob(
            qos=IoCostQosParams(
                enable=True,
                ctrl="user",
                rpct=95.0,
                rlat_us=200.0 * device_scale,
                vrate_min_pct=50.0,
                vrate_max_pct=100.0,
            )
        )
    if panel == "io.cost-weighted":
        return IoCostKnob(
            weights={GROUP_A: 600, GROUP_B: 300, GROUP_C: 100},
            qos=IoCostQosParams(
                enable=True,
                ctrl="user",
                rpct=95.0,
                rlat_us=200.0 * device_scale,
                vrate_min_pct=50.0,
                vrate_max_pct=100.0,
            ),
        )
    raise ValueError(f"unknown Fig. 2 panel {panel!r}; options: {FIG2_PANELS}")


@dataclass
class Fig2Panel:
    """One knob's timeline result."""

    panel: str
    bucket_s: float
    # app name -> (times_s, equivalent MiB/s)
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)

    def mean_between(self, app: str, start_s: float, stop_s: float) -> float:
        """Mean bandwidth of one app over a timeline slice."""
        times, values = self.series[app]
        window = [v for t, v in zip(times, values) if start_s <= t < stop_s]
        return sum(window) / len(window) if window else 0.0


def _panel_scenario(
    panel: str,
    time_scale: float,
    device_scale: float,
    ssd: SsdModel,
    cores: int,
    seed: int,
) -> Scenario:
    specs = fig2_timeline_specs(time_scale=time_scale, rate_scale=device_scale)
    knob = fig2_knob(panel, ssd.scaled(device_scale), device_scale)
    return Scenario(
        name=f"fig2-{panel}",
        knob=knob,
        apps=specs,
        ssd_model=ssd,
        cores=cores,
        duration_s=70.0 * time_scale,
        warmup_s=0.0,  # the timeline itself is the object of study
        seed=seed,
        device_scale=device_scale,
    )


def _panel_from_summary(
    summary: ScenarioSummary,
    panel: str,
    time_scale: float,
    device_scale: float,
    buckets_per_timeline: int,
) -> Fig2Panel:
    duration_s = 70.0 * time_scale
    bucket_us = duration_s * 1e6 / buckets_per_timeline
    out = Fig2Panel(panel=panel, bucket_s=bucket_us / 1e6)
    for app_name in summary.app_names():
        times, sizes = summary.series_of(app_name)
        xs, ys = bandwidth_series(
            times, sizes, 0.0, duration_s * 1e6, bucket_us=bucket_us
        )
        # Report device-scale-equivalent bandwidth and timeline seconds
        # rescaled back to the paper's 70 s axis.
        xs = [x / time_scale for x in xs]
        ys = [y * device_scale for y in ys]
        out.series[app_name] = (xs, ys)
    return out


def run_fig2_panel(
    panel: str,
    time_scale: float = 0.5,
    device_scale: float = 8.0,
    ssd: SsdModel | None = None,
    cores: int = 10,
    seed: int = 42,
    buckets_per_timeline: int = 70,
    executor: SweepExecutor | None = None,
) -> Fig2Panel:
    """Run one panel and return its per-app bandwidth series."""
    ssd = ssd or samsung_980pro_like()
    scenario = _panel_scenario(panel, time_scale, device_scale, ssd, cores, seed)
    summary = resolve_executor(executor).run_one(scenario)
    return _panel_from_summary(
        summary, panel, time_scale, device_scale, buckets_per_timeline
    )


def run_fig2(
    panels: tuple[str, ...] = FIG2_PANELS,
    time_scale: float = 0.5,
    device_scale: float = 8.0,
    ssd: SsdModel | None = None,
    cores: int = 10,
    seed: int = 42,
    buckets_per_timeline: int = 70,
    executor: SweepExecutor | None = None,
) -> dict[str, Fig2Panel]:
    """Run a set of Fig. 2 panels as one sweep."""
    ssd = ssd or samsung_980pro_like()
    executor = resolve_executor(executor)
    scenarios = [
        _panel_scenario(panel, time_scale, device_scale, ssd, cores, seed)
        for panel in panels
    ]
    return {
        panel: _panel_from_summary(
            summary, panel, time_scale, device_scale, buckets_per_timeline
        )
        for panel, summary in zip(panels, executor.run_strict(scenarios))
    }
