"""Failure injection: GC stalls and overload behaviour.

These tests drive the simulation through degraded-device conditions and
check the system stays well-behaved (no lost requests, sane metrics) and
that the degradations surface where they should (tail latency).
"""

import dataclasses

import pytest

from repro import IoMaxKnob, MIB, NoneKnob, Scenario, run_scenario
from repro.core.host import Host
from repro.ssd.gc import GcPauseInjector
from repro.workloads.apps import batch_app, lc_app


def scenario(knob, apps, **overrides):
    kwargs = dict(
        name="failure-it",
        knob=knob,
        apps=apps,
        duration_s=0.3,
        warmup_s=0.1,
        device_scale=8.0,
        cores=4,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestGcPauses:
    def run_lc_with_pauses(self, pause_us):
        host = Host(
            scenario(NoneKnob(), [lc_app("lc", "/t/lc")], device_scale=1.0, cores=1)
        )
        if pause_us:
            # Block every flash unit: a full-device GC stall. The stall
            # recurs often enough that >1% of a QD=1 app's requests hit
            # one (a closed-loop app only ever has one request exposed
            # per stall).
            injector = GcPauseInjector(
                host.sim,
                host.devices[0].flash,
                interval_us=8_000.0,
                pause_us=pause_us,
                units=host.devices[0].model.parallelism,
            )
            injector.start()
        host.run()
        return host.collector.app_stats("lc", 0.1e6, 0.3e6)

    def test_gc_pauses_inflate_tail_latency(self):
        clean = self.run_lc_with_pauses(0.0)
        stalled = self.run_lc_with_pauses(4_000.0)
        assert stalled.latency.p99_us > 5.0 * clean.latency.p99_us
        # Median is less affected: pauses are a tail phenomenon.
        assert stalled.latency.p50_us < 1.5 * clean.latency.p50_us

    def test_all_requests_still_complete(self):
        stats = self.run_lc_with_pauses(4_000.0)
        assert stats.ios > 100


class TestOverload:
    def test_open_loop_overload_backlog_grows_but_completions_continue(self):
        # Arrivals far above device capacity.
        spec = dataclasses.replace(
            lc_app("ol", "/t/ol"), arrival_rate_iops=1_000_000.0
        )
        result = run_scenario(scenario(NoneKnob(), [spec], duration_s=0.1, warmup_s=0.02))
        stats = result.app_stats("ol")
        assert stats.ios > 0
        app = result.host.apps["ol"]
        assert app.outstanding > 1000  # backlog grew

    def test_starved_app_under_tight_iomax_survives(self):
        knob = IoMaxKnob(limits={"/t/a": {"rbps": 1 * MIB}})
        result = run_scenario(
            scenario(knob, [batch_app("a", "/t/a", queue_depth=64)], duration_s=0.5)
        )
        stats = result.app_stats("a")
        # Throttled to ~1 MiB/s (scaled), but alive and accounted.
        assert 0 < stats.bandwidth_mib_s < 3.0
        assert result.work_conservation_violation > 0.9

    def test_nvme_qd_bound_respected_under_flood(self):
        import repro.ssd.model as ssd_model
        from repro.ssd.presets import samsung_980pro_like

        base = samsung_980pro_like()
        tight = dataclasses.replace(base, nvme_max_qd=8)
        result = run_scenario(
            scenario(
                NoneKnob(),
                [batch_app("a", "/t/a", queue_depth=64)],
                ssd_model=tight,
            )
        )
        # Requests completed despite the tiny device window.
        assert result.app_stats("a").ios > 100
