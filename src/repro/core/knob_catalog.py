"""Standard knob configurations per experiment family.

The paper configures each knob differently per experiment (§V vs §VI):
for the overhead study every knob is configured *not* to control
(limits beyond saturation, multi-second targets, slice idling off) so
only the mechanism's intrinsic cost is measured; for the fairness study
each knob gets its closest approximation of "weights" (§VI-A). These
builders encode those recipes.
"""

from __future__ import annotations

import math

from repro.cgroups.knobs import IoCostQosParams
from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    KnobConfig,
    MqDeadlineKnob,
    NoneKnob,
)
from repro.core.scenarios import FairnessGroupSpec
from repro.iorequest import KIB, OpType, Pattern
from repro.ssd.model import SsdModel
from repro.tools.iocost_coef_gen import derive_model

ALL_KNOB_NAMES = ("none", "mq-deadline", "bfq", "io.max", "io.latency", "io.cost")


def overhead_knobs(ssd: SsdModel, group_paths: list[str]) -> dict[str, KnobConfig]:
    """§V configuration: every knob present but doing no control.

    io.max limits sit 10x beyond saturation, io.latency targets are
    multiple seconds, io.cost gets an optimistic model (saturation point
    beyond the SSD's) with no latency target, and BFQ's slice idling is
    disabled -- so any measured cost is the mechanism itself.
    ``group_paths`` are the app cgroups the per-group knobs apply to.
    """
    beyond = 10.0 * ssd.saturation_bandwidth_bps(OpType.READ, Pattern.RANDOM, 4 * KIB)
    return {
        "none": NoneKnob(),
        "mq-deadline": MqDeadlineKnob(),
        "bfq": BfqKnob(slice_idle_us=0.0),
        "io.max": IoMaxKnob(
            limits={path: {"rbps": beyond, "wbps": beyond} for path in group_paths}
        ),
        "io.latency": IoLatencyKnob(
            targets_us={path: 5_000_000.0 for path in group_paths}
        ),
        "io.cost": IoCostKnob(
            model=derive_model(ssd, conservatism=1.3),
            qos=IoCostQosParams(enable=True, ctrl="user", vrate_min_pct=100.0, vrate_max_pct=100.0),
        ),
    }


def _classes_from_weights(groups: list[FairnessGroupSpec]) -> dict[str, str]:
    """Quantize weights into the three MQ-DL priority classes.

    io.prio.class has only three levels, so "weights" degrade into
    coarse buckets -- the paper's point that classes are a poor weight
    approximation (Q4).
    """
    ordered = sorted(groups, key=lambda g: g.weight)
    n = len(ordered)
    classes: dict[str, str] = {}
    for rank, group in enumerate(ordered):
        if rank < n / 3:
            classes[group.path] = "idle"
        elif rank < 2 * n / 3:
            classes[group.path] = "best-effort"
        else:
            classes[group.path] = "realtime"
    return classes


def _latency_targets_from_weights(groups: list[FairnessGroupSpec]) -> dict[str, float]:
    """Invert weights into latency targets (higher weight -> tighter)."""
    max_weight = max(group.weight for group in groups)
    return {
        group.path: 100.0 * max_weight / group.weight for group in groups
    }


def fairness_knobs(
    groups: list[FairnessGroupSpec],
    ssd: SsdModel,
    weighted: bool,
    request_size: int = 4 * KIB,
    latency_scale: float = 1.0,
) -> dict[str, KnobConfig]:
    """§VI-A configuration: each knob's closest notion of weights.

    * io.cost: io.weight per group, an achievable (conservative) model
      and a 100 us P95 read latency target with min=50% (the exact Fig. 5a
      recipe that costs io.cost aggregate bandwidth);
    * BFQ: io.bfq.weight (clamped to its 1-1000 range);
    * MQ-DL: weights quantized into the three priority classes;
    * io.latency: weights inverted into latency targets;
    * io.max: the paper's naive translation
      ``max_i = weight_i / total_weight * max_read_bandwidth``.

    ``ssd`` is the (possibly scaled) device the scenario actually runs
    on; ``latency_scale`` dilates latency-valued knob parameters to the
    scaled clock (pass the scenario's ``device_scale``).
    """
    total_weight = sum(group.weight for group in groups)
    max_read_bps = ssd.saturation_bandwidth_bps(OpType.READ, Pattern.RANDOM, request_size)
    knobs: dict[str, KnobConfig] = {
        "none": NoneKnob(),
        "bfq": BfqKnob(
            weights={g.path: max(1, min(1000, g.weight)) for g in groups}
        ),
        "io.cost": IoCostKnob(
            weights={g.path: max(1, min(10000, g.weight)) for g in groups},
            qos=IoCostQosParams(
                enable=True,
                ctrl="user",
                rpct=95.0,
                rlat_us=100.0 * latency_scale,
                vrate_min_pct=50.0,
                vrate_max_pct=100.0,
            ),
        ),
        "io.max": IoMaxKnob(
            limits={
                g.path: {"rbps": g.weight / total_weight * max_read_bps}
                for g in groups
            }
        ),
    }
    if weighted:
        knobs["mq-deadline"] = MqDeadlineKnob(classes=_classes_from_weights(groups))
        knobs["io.latency"] = IoLatencyKnob(
            targets_us={
                path: target * latency_scale
                for path, target in _latency_targets_from_weights(groups).items()
            }
        )
    else:
        knobs["mq-deadline"] = MqDeadlineKnob()
        # Uniform weights: a single generous shared target (no control
        # pressure, like the paper's unweighted baseline).
        knobs["io.latency"] = IoLatencyKnob(
            targets_us={g.path: 10_000.0 * latency_scale for g in groups}
        )
    return knobs


def iomax_limit_for_share(share: float, ssd: SsdModel, request_size: int = 4 * KIB) -> float:
    """The naive weight->io.max translation for one group."""
    if not 0 < share <= 1:
        raise ValueError(f"share must be in (0, 1], got {share}")
    if math.isnan(share):
        raise ValueError("share must be a number")
    return share * ssd.saturation_bandwidth_bps(OpType.READ, Pattern.RANDOM, request_size)
