"""The controller contract: observe / actuate / period.

A :class:`Controller` is anything that periodically inspects the stack
and may rewrite knob sysfs files. Two driving modes share the contract:

* **plane-driven** -- the :class:`~repro.ctl.plane.ControlPlane` calls
  ``observe`` with a fresh :class:`ControlObservation` and then ``step``
  on its decision cadence (the repro.ctl controllers);
* **self-driving** -- ``start()`` arms the controller's own periodic
  tick, which calls ``observe(None)`` then ``step`` every ``period_us``
  (the pre-existing :class:`~repro.iocontrol.dynamic_iomax.
  DynamicIoMaxManager`, whose event timing this base preserves exactly
  -- golden-pinned in ``tests/integration/test_dynamic_iomax_golden``).

``actuate`` returns :class:`Actuation` records describing what was
written (or why nothing was); ``step`` folds them into applied/skipped
counters that travel into ``ScenarioSummary.ctl_counters``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.tune.slo import SloScore


@dataclass(frozen=True)
class ControlObservation:
    """One observation window, as handed to ``Controller.observe``."""

    #: Simulated time of the control step (end of the window).
    t_us: float
    #: Window length in (dilated) simulated microseconds.
    window_us: float
    #: The window scored against the plane's SLO, full-speed units.
    score: SloScore
    #: Per-cgroup window stats (dilated units), keyed by cgroup path.
    groups: Mapping[str, object]
    #: The most recent StackSampler row (controller internals).
    row: Mapping[str, float]
    #: The scenario's time-dilation factor.
    device_scale: float


@dataclass(frozen=True)
class Actuation:
    """One controller decision: a knob write, applied or suppressed."""

    #: Simulated time of the decision.
    t_us: float
    #: Controller name (``pid-iomax`` / ``vrate`` / ``qdlimit`` / ...).
    controller: str
    #: The knob file involved (``io.max`` / ``io.cost.qos`` / ...).
    knob: str
    #: Cgroup path written to ("" for root-only knobs).
    cgroup: str
    #: The setting before the decision, in the controller's native unit.
    previous: float
    #: The setting after the decision (== previous when suppressed).
    value: float
    #: Whether the knob file was actually rewritten.
    applied: bool
    #: Why: ``drift`` / ``recover`` / ``deadband`` / ``min-interval`` /
    #: ``at-floor`` / ``at-ceiling`` / ...
    reason: str

    def to_json_dict(self) -> dict:
        """Decision-trace record (self-describing, JSONL-ready)."""
        return {
            "type": "actuation",
            "t_us": self.t_us,
            "controller": self.controller,
            "knob": self.knob,
            "cgroup": self.cgroup,
            "previous": self.previous,
            "value": self.value,
            "applied": self.applied,
            "reason": self.reason,
        }


class Controller:
    """Base class: periodic observe/actuate with actuation accounting."""

    #: Short identifier used in counters and trace records.
    name = "controller"

    def __init__(self, sim, period_us: float):
        if period_us <= 0:
            raise ValueError("controller period must be positive")
        self.sim = sim
        self.period_us = period_us
        self.applied = 0
        self.skipped = 0
        self._running = False

    # -- contract ------------------------------------------------------
    def observe(self, obs: Optional[ControlObservation]) -> None:
        """Ingest one observation window (None in self-driving mode)."""
        raise NotImplementedError

    def actuate(self) -> list[Actuation]:
        """Decide and perform knob writes; return the decision records."""
        raise NotImplementedError

    def step(self) -> list[Actuation]:
        """Run ``actuate`` and fold its records into the counters."""
        actuations = self.actuate()
        for actuation in actuations:
            if actuation.applied:
                self.applied += 1
            else:
                self.skipped += 1
        return actuations

    def counters(self) -> dict[str, float]:
        """Deterministic accounting for ``ScenarioSummary.ctl_counters``."""
        return {"applied": float(self.applied), "skipped": float(self.skipped)}

    # -- self-driving mode ---------------------------------------------
    def on_start(self) -> None:
        """Hook run once when a self-driving controller starts."""

    def start(self) -> None:
        """Arm the controller's own periodic tick (idempotent)."""
        if self._running:
            return
        self._running = True
        self.on_start()
        self.sim.schedule(self.period_us, self._tick)

    def stop(self) -> None:
        """Stop the periodic tick; the next scheduled one is a no-op."""
        self._running = False

    def _tick(self) -> None:
        """One self-driven period: observe, actuate, re-arm."""
        if not self._running:
            return
        self.observe(None)
        self.step()
        self.sim.schedule(self.period_us, self._tick)
