"""D1: isolation overhead and scalability (§V, Fig. 3 & Fig. 4).

Two experiments:

* **Q1 latency overhead** -- scale LC-apps (QD=1, 4 KiB random reads) on
  a single core from 1 upward; report the latency CDF/P99, single-core
  CPU utilization, and the perf-style profile (context switches and
  cycles per I/O).
* **Q2 bandwidth scalability** -- scale batch-apps (QD=256) over 1..N
  SSDs with 10 cores; report aggregated bandwidth and CPU utilization.

Knobs are configured per §V so they perform no actual control; only the
mechanism cost is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import Scenario
from repro.core.knob_catalog import ALL_KNOB_NAMES, overhead_knobs
from repro.core.scenarios import batch_scaling_specs, lc_scaling_specs
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.metrics.latency import percentile
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like


@dataclass(frozen=True)
class LcOverheadPoint:
    """One (knob, #apps) cell of Fig. 3."""

    knob: str
    n_apps: int
    p99_us: float
    p50_us: float
    mean_us: float
    cpu_utilization: float
    ctx_switches_per_io: float
    cycles_per_io: float
    total_iops: float


@dataclass
class LcOverheadStudy:
    """Fig. 3 data: points per knob per app count, plus raw CDFs."""

    points: list[LcOverheadPoint] = field(default_factory=list)
    cdfs: dict[tuple[str, int], tuple[list[float], list[float]]] = field(
        default_factory=dict
    )

    def p99(self, knob: str, n_apps: int) -> float:
        for point in self.points:
            if point.knob == knob and point.n_apps == n_apps:
                return point.p99_us
        raise KeyError(f"no point for ({knob}, {n_apps})")

    def utilization(self, knob: str, n_apps: int) -> float:
        for point in self.points:
            if point.knob == knob and point.n_apps == n_apps:
                return point.cpu_utilization
        raise KeyError(f"no point for ({knob}, {n_apps})")


def _merged_latencies(summary: ScenarioSummary) -> list[float]:
    samples: list[float] = []
    for app_name in summary.app_names():
        samples.extend(
            summary.window_latencies(
                app_name, summary.t_start_us, summary.t_end_us
            )
        )
    return samples


def run_lc_overhead(
    app_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    knob_names: tuple[str, ...] = ALL_KNOB_NAMES,
    ssd: SsdModel | None = None,
    duration_s: float = 0.4,
    warmup_s: float = 0.1,
    seed: int = 42,
    cdf_points: int = 100,
    collect_cdf_for: tuple[int, ...] = (1, 16),
    executor: SweepExecutor | None = None,
) -> LcOverheadStudy:
    """Run Q1: LC-app scaling on one core."""
    ssd = ssd or samsung_980pro_like()
    executor = resolve_executor(executor)
    study = LcOverheadStudy()
    scenarios: list[Scenario] = []
    cells: list[tuple[str, int]] = []
    for n_apps in app_counts:
        specs = lc_scaling_specs(n_apps)
        knobs = overhead_knobs(ssd, [spec.cgroup_path for spec in specs])
        for knob_name in knob_names:
            scenarios.append(
                Scenario(
                    name=f"d1-lc-{knob_name}-{n_apps}",
                    knob=knobs[knob_name],
                    apps=specs,
                    ssd_model=ssd,
                    cores=1,
                    duration_s=duration_s,
                    warmup_s=warmup_s,
                    seed=seed,
                )
            )
            cells.append((knob_name, n_apps))
    for (knob_name, n_apps), summary in zip(cells, executor.run_strict(scenarios)):
        samples = _merged_latencies(summary)
        if not samples:
            raise RuntimeError(f"no completions for {summary.scenario_name}")
        total_ios = sum(
            summary.app_stats(name).ios for name in summary.app_names()
        )
        study.points.append(
            LcOverheadPoint(
                knob=knob_name,
                n_apps=n_apps,
                p99_us=percentile(samples, 99.0),
                p50_us=percentile(samples, 50.0),
                mean_us=sum(samples) / len(samples),
                cpu_utilization=summary.cpu.utilization,
                ctx_switches_per_io=summary.cpu.ctx_switches_per_io,
                cycles_per_io=summary.cpu.cycles_per_io,
                total_iops=total_ios / (summary.window_us / 1e6),
            )
        )
        if n_apps in collect_cdf_for:
            ordered = sorted(samples)
            probs = [i / (cdf_points - 1) for i in range(cdf_points)]
            values = [percentile(ordered, p * 100.0) for p in probs]
            study.cdfs[(knob_name, n_apps)] = (values, probs)
    return study


@dataclass(frozen=True)
class BandwidthScalingPoint:
    """One (knob, #apps, #SSDs) cell of Fig. 4."""

    knob: str
    n_apps: int
    n_devices: int
    bandwidth_gib_s: float
    cpu_utilization: float


def run_bandwidth_scaling(
    app_counts: tuple[int, ...] = (1, 2, 4, 8, 17),
    device_counts: tuple[int, ...] = (1, 7),
    knob_names: tuple[str, ...] = ALL_KNOB_NAMES,
    ssd: SsdModel | None = None,
    cores: int = 10,
    duration_s: float = 0.3,
    warmup_s: float = 0.1,
    seed: int = 42,
    device_scale: float = 1.0,
    queue_depth: int = 256,
    executor: SweepExecutor | None = None,
) -> list[BandwidthScalingPoint]:
    """Run Q2: batch-app scaling over multiple SSDs."""
    ssd = ssd or samsung_980pro_like()
    executor = resolve_executor(executor)
    scaled = ssd.scaled(device_scale)
    scenarios: list[Scenario] = []
    cells: list[tuple[str, int, int]] = []
    for n_devices in device_counts:
        for n_apps in app_counts:
            specs = batch_scaling_specs(n_apps, queue_depth=queue_depth)
            knobs = overhead_knobs(scaled, [spec.cgroup_path for spec in specs])
            for knob_name in knob_names:
                scenarios.append(
                    Scenario(
                        name=f"d1-bw-{knob_name}-{n_apps}x{n_devices}",
                        knob=knobs[knob_name],
                        apps=specs,
                        ssd_model=ssd,
                        num_devices=n_devices,
                        cores=cores,
                        duration_s=duration_s,
                        warmup_s=warmup_s,
                        seed=seed,
                        device_scale=device_scale,
                    )
                )
                cells.append((knob_name, n_apps, n_devices))
    return [
        BandwidthScalingPoint(
            knob=knob_name,
            n_apps=n_apps,
            n_devices=n_devices,
            bandwidth_gib_s=summary.equivalent_bandwidth_gib_s,
            cpu_utilization=summary.cpu.utilization,
        )
        for (knob_name, n_apps, n_devices), summary in zip(
            cells, executor.run_strict(scenarios)
        )
    ]


def peak_bandwidth(points: list[BandwidthScalingPoint], knob: str, n_devices: int) -> float:
    """Maximum bandwidth over app counts for one knob/device setting."""
    values = [
        p.bandwidth_gib_s
        for p in points
        if p.knob == knob and p.n_devices == n_devices
    ]
    if not values:
        raise KeyError(f"no points for ({knob}, {n_devices} devices)")
    return max(values)
