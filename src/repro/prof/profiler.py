"""The simulator self-profiler: phase timers and event counters.

Two complementary instruments live on one :class:`SimProfiler`:

* **Event-loop phase attribution** — the profiled event loop
  (:meth:`repro.sim.engine.Simulator.run_until_profiled`) times every
  fired callback and attributes it to a pipeline phase via
  :func:`repro.prof.phases.phase_of_code`, memoized per code object.
  Heap-pop and loop bookkeeping time lands in the synthetic
  ``engine.pop`` phase, so the per-phase wall-clock breakdown sums to
  the measured loop wall-clock (the bench suite asserts >= 90%
  coverage; the remainder is timer-read overhead).
* **Explicit nested phase spans** — :meth:`push`/:meth:`pop` (or the
  :meth:`phase` context manager) time coarse stages like host build or
  summarization. Attribution is *exclusive*: entering a child span
  pauses its parent, so span wall-clocks are disjoint and sum cleanly.

The profiler is only ever constructed when ``Scenario.prof`` is set;
the un-profiled hot path never sees any of this.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

from repro.prof.config import ProfConfig
from repro.prof.phases import ENGINE_POP, phase_of_filename


class ProfilerError(RuntimeError):
    """Raised on phase-span misuse (unbalanced or mismatched push/pop)."""


@dataclass
class SimProfile:
    """An immutable snapshot of everything one profiled run measured."""

    #: Wall-clock seconds per event-loop phase (includes ``engine.pop``).
    phase_wall: dict[str, float] = field(default_factory=dict)
    #: Fired-callback count per event-loop phase.
    phase_events: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds per explicit (nested) phase span, exclusive.
    span_wall: dict[str, float] = field(default_factory=dict)
    #: Number of times each explicit phase span was entered.
    span_events: dict[str, int] = field(default_factory=dict)
    #: Allocation/event counters (events scheduled, fired, cancelled, …).
    counters: dict[str, float] = field(default_factory=dict)
    #: Total wall-clock seconds spent inside the profiled event loop.
    loop_wall_seconds: float = 0.0
    #: Per-phase wall-clock timeline buckets (empty unless configured).
    buckets: list[dict] = field(default_factory=list)
    #: Simulated-time width of each timeline bucket (0 = no timeline).
    bucket_us: float = 0.0

    @property
    def events_accounted(self) -> int:
        """Callbacks attributed to a phase (== events fired in the loop)."""
        return sum(self.phase_events.values())

    def coverage(self) -> float:
        """Fraction of loop wall-clock the phase breakdown accounts for.

        ~1.0 by construction (every gap lands in ``engine.pop``); the
        shortfall is the cost of reading the clock twice per event.
        """
        if self.loop_wall_seconds <= 0:
            return 0.0
        return sum(self.phase_wall.values()) / self.loop_wall_seconds

    def to_json_dict(self) -> dict:
        """Plain-dict form (JSON-serializable) for trajectory files."""
        return {
            "phase_wall": dict(sorted(self.phase_wall.items())),
            "phase_events": dict(sorted(self.phase_events.items())),
            "span_wall": dict(sorted(self.span_wall.items())),
            "span_events": dict(sorted(self.span_events.items())),
            "counters": dict(sorted(self.counters.items())),
            "loop_wall_seconds": self.loop_wall_seconds,
            "coverage": self.coverage(),
            "bucket_us": self.bucket_us,
            "buckets": [dict(bucket) for bucket in self.buckets],
        }


def merge_profiles(profiles: list[SimProfile]) -> SimProfile:
    """Sum several profiles into one (bench cases run scenario lists).

    Timeline buckets are not merged — they are per-run artifacts; the
    merged profile carries totals only.
    """
    total = SimProfile()
    for profile in profiles:
        for key, value in profile.phase_wall.items():
            total.phase_wall[key] = total.phase_wall.get(key, 0.0) + value
        for key, count in profile.phase_events.items():
            total.phase_events[key] = total.phase_events.get(key, 0) + count
        for key, value in profile.span_wall.items():
            total.span_wall[key] = total.span_wall.get(key, 0.0) + value
        for key, count in profile.span_events.items():
            total.span_events[key] = total.span_events.get(key, 0) + count
        for key, value in profile.counters.items():
            total.counters[key] = total.counters.get(key, 0.0) + value
        total.loop_wall_seconds += profile.loop_wall_seconds
    return total


class SimProfiler:
    """Accumulates phase timings and counters for one scenario run.

    The profiled event loop writes straight into :attr:`phase_wall` /
    :attr:`phase_events` / :attr:`_phase_cache` (hot-path dicts exposed
    as attributes on purpose); everything else goes through methods.
    """

    def __init__(self, config: ProfConfig | None = None):
        self.config = config or ProfConfig()
        self.phase_wall: dict[str, float] = {ENGINE_POP: 0.0}
        self.phase_events: dict[str, int] = {}
        self.span_wall: dict[str, float] = {}
        self.span_events: dict[str, int] = {}
        self.counters: dict[str, float] = {}
        self.loop_wall_seconds = 0.0
        self.bucket_us = self.config.timeline_bucket_us
        self.buckets: list[dict] = []
        self._bucket_end = self.bucket_us
        self._bucket_acc: dict[str, float] = {}
        self._phase_cache: dict = {}
        self._stack: list[list] = []

    # ------------------------------------------------------------------
    # Event-loop side (called from Simulator.run_until_profiled)
    # ------------------------------------------------------------------
    def resolve_phase(self, fn) -> str:
        """Phase of a callback, memoized per code object."""
        code = getattr(fn, "__code__", None)
        phase = self._phase_cache.get(code)
        if phase is None:
            phase = (
                phase_of_filename(code.co_filename)
                if code is not None
                else "other"
            )
            self._phase_cache[code] = phase
        return phase

    def bucket_add(self, t_us: float, phase: str, wall: float) -> None:
        """Charge ``wall`` seconds to the timeline bucket holding ``t_us``."""
        while t_us >= self._bucket_end:
            self._flush_bucket()
        acc = self._bucket_acc
        acc[phase] = acc.get(phase, 0.0) + wall

    def _flush_bucket(self) -> None:
        """Close the current timeline bucket and open the next one."""
        if self._bucket_acc:
            row = {"t_us": self._bucket_end}
            row.update(self._bucket_acc)
            self.buckets.append(row)
            self._bucket_acc = {}
        self._bucket_end += self.bucket_us

    def note_engine(self, sim) -> None:
        """Record engine allocation/event counters after a loop run."""
        self.counters["events.scheduled"] = float(sim._seq)
        self.counters["events.fired"] = float(sim.events_processed)
        self.counters["events.cancelled"] = float(sim._cancelled_total)
        self.counters["events.pending"] = float(sim.pending_events())

    # ------------------------------------------------------------------
    # Explicit nested phase spans
    # ------------------------------------------------------------------
    def push(self, name: str) -> None:
        """Open a nested phase span; pauses the enclosing span."""
        now = perf_counter()
        stack = self._stack
        if stack:
            top = stack[-1]
            self.span_wall[top[0]] = self.span_wall.get(top[0], 0.0) + (
                now - top[1]
            )
            top[1] = now
        stack.append([name, now])
        self.span_events[name] = self.span_events.get(name, 0) + 1

    def pop(self, name: str | None = None) -> str:
        """Close the innermost span (checked against ``name`` if given)."""
        now = perf_counter()
        if not self._stack:
            raise ProfilerError("pop() with no open phase span")
        top_name, mark = self._stack.pop()
        if name is not None and name != top_name:
            raise ProfilerError(
                f"phase span mismatch: pop({name!r}) but {top_name!r} is open"
            )
        self.span_wall[top_name] = self.span_wall.get(top_name, 0.0) + (
            now - mark
        )
        if self._stack:
            self._stack[-1][1] = now
        return top_name

    @contextmanager
    def phase(self, name: str):
        """``with prof.phase("build"):`` — exception-safe push/pop."""
        self.push(name)
        try:
            yield self
        finally:
            self.pop(name)

    @property
    def open_spans(self) -> list[str]:
        """Names of currently open spans, outermost first."""
        return [entry[0] for entry in self._stack]

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def profile(self) -> SimProfile:
        """Snapshot the accumulated measurements.

        Raises :class:`ProfilerError` if a phase span is still open —
        an unbalanced push is a bug at the instrumentation site, not
        data to report.
        """
        if self._stack:
            raise ProfilerError(
                f"profile() with open phase spans: {self.open_spans}"
            )
        if self._bucket_acc:
            self._flush_bucket()
        return SimProfile(
            phase_wall=dict(self.phase_wall),
            phase_events=dict(self.phase_events),
            span_wall=dict(self.span_wall),
            span_events=dict(self.span_events),
            counters=dict(self.counters),
            loop_wall_seconds=self.loop_wall_seconds,
            buckets=[dict(bucket) for bucket in self.buckets],
            bucket_us=self.bucket_us,
        )
