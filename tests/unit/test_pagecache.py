"""Unit tests for the write-back page cache (§VII extension substrate)."""

import random

import pytest

from repro.fs.pagecache import FLUSHER_CGROUP, FLUSHER_NAME, PageCache, PageCacheConfig
from repro.iorequest import IoRequest, KIB, OpType, Pattern
from repro.sim.engine import Simulator


def make_cache(sim=None, **config_overrides):
    sim = sim or Simulator()
    submitted = []
    config = PageCacheConfig(
        dirty_background_bytes=64 * KIB,
        dirty_hard_bytes=256 * KIB,
        writeback_chunk_bytes=64 * KIB,
        writeback_depth=2,
        **config_overrides,
    )
    cache = PageCache(
        sim, random.Random(0), config, submit_direct=submitted.append
    )
    return sim, cache, submitted


def write_req(cgroup="/t/w", size=16 * KIB):
    return IoRequest("w", cgroup, OpType.WRITE, Pattern.RANDOM, size)


def read_req(cgroup="/t/r", size=4 * KIB):
    return IoRequest("r", cgroup, OpType.READ, Pattern.RANDOM, size)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"copy_latency_us": -1.0},
            {"dirty_background_bytes": 100, "dirty_hard_bytes": 50},
            {"writeback_chunk_bytes": 0},
            {"writeback_depth": 0},
            {"read_hit_ratio": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PageCacheConfig(**kwargs)


class TestBufferedWrites:
    def test_write_completes_at_copy_latency(self):
        sim, cache, _ = make_cache()
        done = []
        cache.submit_buffered(write_req(), lambda r: done.append(sim.now))
        sim.run_until(10.0)
        assert done == [cache.config.copy_latency_us]

    def test_dirty_accounting(self):
        sim, cache, _ = make_cache()
        cache.submit_buffered(write_req(size=16 * KIB), lambda r: None)
        assert cache.total_dirty == 16 * KIB
        assert cache.dirty_by_cgroup["/t/w"] == 16 * KIB

    def test_no_writeback_below_background_threshold(self):
        sim, cache, submitted = make_cache()
        cache.submit_buffered(write_req(size=16 * KIB), lambda r: None)
        sim.run()
        assert submitted == []

    def test_writeback_starts_above_background_threshold(self):
        sim, cache, submitted = make_cache()
        for _ in range(5):  # 80 KiB dirty > 64 KiB background
            cache.submit_buffered(write_req(size=16 * KIB), lambda r: None)
        assert submitted, "writeback should have started"
        wb = submitted[0]
        assert wb.op == OpType.WRITE
        assert wb.app_name == FLUSHER_NAME

    def test_writeback_attributed_to_dirtying_cgroup(self):
        sim, cache, submitted = make_cache(attributed=True)
        for _ in range(6):
            cache.submit_buffered(write_req(cgroup="/t/w"), lambda r: None)
        assert submitted[0].cgroup_path == "/t/w"

    def test_unattributed_writeback_runs_in_root(self):
        sim, cache, submitted = make_cache(attributed=False)
        for _ in range(6):
            cache.submit_buffered(write_req(cgroup="/t/w"), lambda r: None)
        assert submitted[0].cgroup_path == FLUSHER_CGROUP

    def test_writeback_depth_bounded(self):
        sim, cache, submitted = make_cache()
        for _ in range(32):
            cache.submit_buffered(write_req(size=16 * KIB), lambda r: None)
        assert len(submitted) <= cache.config.writeback_depth

    def test_writeback_completion_triggers_more(self):
        sim, cache, submitted = make_cache()
        for _ in range(32):
            cache.submit_buffered(write_req(size=16 * KIB), lambda r: None)
        before = len(submitted)
        cache.on_writeback_complete(submitted[0])
        assert len(submitted) > before

    def test_biggest_dirtier_flushed_first(self):
        sim, cache, submitted = make_cache()
        cache.submit_buffered(write_req(cgroup="/t/small", size=16 * KIB), lambda r: None)
        for _ in range(4):
            cache.submit_buffered(write_req(cgroup="/t/big", size=16 * KIB), lambda r: None)
        assert submitted[0].cgroup_path == "/t/big"


class TestDirtyHardLimit:
    def test_writer_blocks_above_hard_limit(self):
        sim, cache, submitted = make_cache()
        done = []
        for _ in range(16):  # 16 x 16 KiB = 256 KiB = hard limit
            cache.submit_buffered(write_req(size=16 * KIB), lambda r: done.append(1))
        cache.submit_buffered(write_req(size=16 * KIB), lambda r: done.append(1))
        sim.run_until(100.0)
        assert cache.blocked_writers == 1
        assert cache.stats_writer_stalls == 1

    def test_blocked_writer_wakes_after_writeback(self):
        sim, cache, submitted = make_cache()
        for _ in range(17):
            cache.submit_buffered(write_req(size=16 * KIB), lambda r: None)
        assert cache.blocked_writers == 1
        # Complete enough writeback chunks to free dirty budget.
        while cache.blocked_writers and submitted:
            cache.on_writeback_complete(submitted.pop(0))
        sim.run_until(1000.0)
        assert cache.blocked_writers == 0


class TestBufferedReads:
    def test_miss_goes_to_device(self):
        sim, cache, submitted = make_cache(read_hit_ratio=0.0)
        cache.submit_buffered(read_req(), lambda r: None)
        assert len(submitted) == 1
        assert submitted[0].op == OpType.READ
        assert cache.stats_read_misses == 1

    def test_hit_completes_from_cache(self):
        sim, cache, submitted = make_cache(read_hit_ratio=1.0)
        done = []
        cache.submit_buffered(read_req(), lambda r: done.append(sim.now))
        sim.run_until(10.0)
        assert submitted == []
        assert done == [cache.config.copy_latency_us]
        assert cache.stats_read_hits == 1

    def test_hit_ratio_is_probabilistic(self):
        sim, cache, submitted = make_cache(read_hit_ratio=0.5)
        for _ in range(200):
            cache.submit_buffered(read_req(), lambda r: None)
        assert 40 < cache.stats_read_hits < 160
        assert cache.stats_read_hits + cache.stats_read_misses == 200
