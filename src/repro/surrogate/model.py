"""Seeded ridge + gradient-boosted ensemble over numpy (no sklearn).

One :class:`SurrogateModel` predicts the three
:data:`~repro.surrogate.features.TARGET_NAMES` (per-group p99,
bandwidth, utilization) from one feature row. The estimator is:

* a closed-form **ridge** regression on standardized features (the
  global trend), fit on every training row;
* an **ensemble** of :data:`~SurrogateConfig.n_members`
  gradient-boosted shallow regression trees, each member fit on a
  seeded bootstrap of the ridge *residuals* -- the trees learn the
  non-linear structure (throttle cliffs, starvation regimes) ridge
  cannot express;
* **quantile-style uncertainty** from the ensemble spread: the
  member-prediction standard deviation, mapped back through the
  target transform so it is always non-negative and in target units.

Heavy-tailed targets (p99, bandwidth) are fit in ``log1p`` space and
inverted on prediction, so a starved group's 1e9-microsecond sentinel
cannot dominate the loss.

Everything is deterministic: fitting draws only from
``numpy.random.default_rng`` seeded by ``(seed, target, member)``,
trees pick splits by exact argmax with index tie-breaks, and
:meth:`SurrogateModel.to_json_dict` round-trips losslessly (Python's
``repr``-based float serialization), so identical corpora produce
bit-identical saved models -- property-pinned in
``tests/property/test_surrogate_properties.py``.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.surrogate.features import FEATURE_SCHEMA_VERSION, TARGET_NAMES

#: Schema version of the saved-model JSON document.
MODEL_SCHEMA_VERSION = 1

#: Per-target transform applied before fitting (inverted on predict).
TARGET_TRANSFORMS = {"p99_us": "log1p", "bandwidth_mib_s": "log1p", "util": "identity"}


@dataclass(frozen=True)
class SurrogateConfig:
    """Hyperparameters of the ridge + boosted-ensemble estimator."""

    #: L2 penalty of the ridge stage (on standardized features).
    ridge_alpha: float = 1.0
    #: Bootstrap ensemble size (the uncertainty resolution; averaging
    #: more members also smooths spurious per-tree spread).
    n_members: int = 6
    #: Boosting rounds (trees) per member.
    n_rounds: int = 60
    #: Tree depth; 2 keeps members fast and hard to overfit.
    max_depth: int = 2
    #: Shrinkage applied to every tree's contribution. Deliberately
    #: conservative: cache corpora are small, and an under-regularized
    #: fit invents latency spread where the simulator measures none,
    #: scrambling the prefilter's ranking exactly where it matters.
    learning_rate: float = 0.1
    #: Minimum rows on each side of a split.
    min_samples_leaf: int = 8
    #: Max candidate thresholds evaluated per feature per split.
    max_thresholds: int = 16

    def __post_init__(self) -> None:
        if self.n_members < 1 or self.n_rounds < 1 or self.max_depth < 1:
            raise ValueError("n_members, n_rounds and max_depth must be >= 1")
        if not 0 < self.learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")


def _transform(name: str, values: np.ndarray) -> np.ndarray:
    """Apply one named target transform."""
    if name == "log1p":
        return np.log1p(np.maximum(0.0, values))
    return np.asarray(values, dtype=float)


def _inverse(name: str, values: np.ndarray) -> np.ndarray:
    """Invert one named target transform."""
    if name == "log1p":
        return np.expm1(np.minimum(values, 60.0))
    return values


def _best_split_for_feature(
    column: np.ndarray, y: np.ndarray, config: SurrogateConfig
) -> tuple[float, float] | None:
    """Best (gain, threshold) of one feature via sorted prefix sums.

    All split positions are evaluated vectorized in one pass; when a
    column has more than ``max_thresholds`` distinct boundaries an
    evenly strided subset is kept (deterministic). Returns None when no
    split satisfies ``min_samples_leaf``.
    """
    n = y.size
    order = np.argsort(column, kind="stable")
    xs, ys = column[order], y[order]
    # Candidate positions i split into left = [0, i), right = [i, n).
    boundaries = np.nonzero(xs[1:] > xs[:-1])[0] + 1
    leaf = config.min_samples_leaf
    boundaries = boundaries[(boundaries >= leaf) & (boundaries <= n - leaf)]
    if boundaries.size == 0:
        return None
    if boundaries.size > config.max_thresholds:
        idx = np.linspace(0, boundaries.size - 1, config.max_thresholds)
        boundaries = boundaries[np.unique(idx.round().astype(int))]
    prefix = np.concatenate([[0.0], np.cumsum(ys)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(ys * ys)])
    total, total_sq = prefix[-1], prefix_sq[-1]
    left_n = boundaries.astype(float)
    left_sum = prefix[boundaries]
    left_sq = prefix_sq[boundaries]
    sse = (
        left_sq
        - left_sum**2 / left_n
        + (total_sq - left_sq)
        - (total - left_sum) ** 2 / (n - left_n)
    )
    base_sse = total_sq - total**2 / n
    gains = base_sse - sse
    pick = int(np.argmax(gains))  # first max: lowest threshold wins ties
    if gains[pick] <= 1e-12:
        return None
    i = boundaries[pick]
    return float(gains[pick]), float((xs[i - 1] + xs[i]) / 2.0)


def _fit_node(
    X: np.ndarray, y: np.ndarray, depth: int, config: SurrogateConfig
) -> dict:
    """Greedy variance-reduction split; exact argmax, index tie-breaks."""
    node_value = float(y.mean()) if y.size else 0.0
    if depth >= config.max_depth or y.size < 2 * config.min_samples_leaf:
        return {"value": node_value}
    if float(((y - y.mean()) ** 2).sum()) <= 1e-12:
        return {"value": node_value}

    best = None  # (gain, feature, threshold)
    for feature in range(X.shape[1]):
        found = _best_split_for_feature(X[:, feature], y, config)
        # Strictly-greater keeps the lowest feature index on gain ties
        # -- deterministic.
        if found is not None and (best is None or found[0] > best[0] + 1e-12):
            best = (found[0], feature, found[1])

    if best is None:
        return {"value": node_value}
    _, feature, threshold = best
    mask = X[:, feature] <= threshold
    return {
        "feature": feature,
        "threshold": threshold,
        "left": _fit_node(X[mask], y[mask], depth + 1, config),
        "right": _fit_node(X[~mask], y[~mask], depth + 1, config),
    }


def _predict_node(node: dict, X: np.ndarray) -> np.ndarray:
    """Vectorized prediction for one tree."""
    if "value" in node:
        return np.full(X.shape[0], node["value"])
    out = np.empty(X.shape[0])
    mask = X[:, node["feature"]] <= node["threshold"]
    out[mask] = _predict_node(node["left"], X[mask])
    out[~mask] = _predict_node(node["right"], X[~mask])
    return out


def _fit_boosted(
    X: np.ndarray, y: np.ndarray, config: SurrogateConfig
) -> dict:
    """One gradient-boosted member (squared loss -> residual fitting)."""
    base = float(y.mean()) if y.size else 0.0
    prediction = np.full(y.shape, base)
    trees: list[dict] = []
    for _ in range(config.n_rounds):
        residual = y - prediction
        tree = _fit_node(X, residual, 0, config)
        if "value" in tree and abs(tree["value"]) < 1e-12:
            break  # residuals exhausted; further rounds are no-ops
        trees.append(tree)
        prediction = prediction + config.learning_rate * _predict_node(tree, X)
    return {"base": base, "trees": trees}


def _predict_boosted(member: dict, X: np.ndarray, learning_rate: float) -> np.ndarray:
    """Vectorized prediction for one boosted member."""
    out = np.full(X.shape[0], member["base"])
    for tree in member["trees"]:
        out = out + learning_rate * _predict_node(tree, X)
    return out


@dataclass
class SurrogateModel:
    """A fitted per-group performance predictor with save/load."""

    #: Feature column names the model was fit on (alignment contract).
    feature_names: tuple[str, ...]
    #: Feature-encoding version the rows must match.
    feature_schema_version: int
    #: Target names, in prediction-column order.
    target_names: tuple[str, ...]
    #: The hyperparameters used to fit.
    config: SurrogateConfig
    #: Fit seed (bit-identity provenance).
    seed: int
    #: Number of training rows.
    n_rows: int
    #: Standardization: per-column means and (non-zero) stds.
    scaler_mean: list[float]
    scaler_std: list[float]
    #: Per-target estimator: transform name, ridge weights (+ intercept
    #: as the last element), and the boosted ensemble members.
    targets: list[dict]

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        """Apply the training-time feature standardization."""
        mean = np.asarray(self.scaler_mean)
        std = np.asarray(self.scaler_std)
        return (X - mean) / std

    def predict(self, X) -> tuple[np.ndarray, np.ndarray]:
        """Predict ``(means, stds)`` in raw target units, shape (n, 3).

        The mean is the ensemble average mapped through the inverse
        target transform; the std is the quantile-style upper spread
        ``inv(mu + sigma) - inv(mu)`` -- non-negative by monotonicity of
        the transforms.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"feature width mismatch: rows have {X.shape[1]} columns, "
                f"model expects {len(self.feature_names)}"
            )
        Z = self._standardize(X)
        Z1 = np.hstack([Z, np.ones((Z.shape[0], 1))])
        means = np.empty((X.shape[0], len(self.targets)))
        stds = np.empty_like(means)
        for column, spec in enumerate(self.targets):
            ridge = Z1 @ np.asarray(spec["ridge"])
            member_preds = np.stack(
                [
                    ridge
                    + _predict_boosted(member, Z, self.config.learning_rate)
                    for member in spec["members"]
                ]
            )
            mu = member_preds.mean(axis=0)
            sigma = member_preds.std(axis=0)
            raw_mu = _inverse(spec["transform"], mu)
            raw_hi = _inverse(spec["transform"], mu + sigma)
            means[:, column] = raw_mu
            stds[:, column] = np.maximum(0.0, raw_hi - raw_mu)
        return means, stds

    def predict_one(self, row) -> tuple[dict, dict]:
        """Predict one row; returns ``(mean_by_target, std_by_target)``."""
        means, stds = self.predict(np.asarray(row).reshape(1, -1))
        return (
            dict(zip(self.target_names, means[0].tolist())),
            dict(zip(self.target_names, stds[0].tolist())),
        )

    def to_json_dict(self) -> dict:
        """Lossless plain-dict form (floats round-trip via ``repr``)."""
        return {
            "model_schema_version": MODEL_SCHEMA_VERSION,
            "feature_schema_version": self.feature_schema_version,
            "feature_names": list(self.feature_names),
            "target_names": list(self.target_names),
            "config": asdict(self.config),
            "seed": self.seed,
            "n_rows": self.n_rows,
            "scaler_mean": self.scaler_mean,
            "scaler_std": self.scaler_std,
            "targets": self.targets,
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "SurrogateModel":
        """Rebuild from a :meth:`to_json_dict` document."""
        if doc.get("model_schema_version") != MODEL_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported model schema {doc.get('model_schema_version')!r} "
                f"(expected {MODEL_SCHEMA_VERSION})"
            )
        return cls(
            feature_names=tuple(doc["feature_names"]),
            feature_schema_version=doc["feature_schema_version"],
            target_names=tuple(doc["target_names"]),
            config=SurrogateConfig(**doc["config"]),
            seed=doc["seed"],
            n_rows=doc["n_rows"],
            scaler_mean=doc["scaler_mean"],
            scaler_std=doc["scaler_std"],
            targets=doc["targets"],
        )

    def save(self, path) -> None:
        """Write the model as sorted-key JSON (bit-stable on disk)."""
        Path(path).write_text(
            json.dumps(self.to_json_dict(), sort_keys=True, indent=1) + "\n"
        )

    @classmethod
    def load(cls, path) -> "SurrogateModel":
        """Read a model written by :meth:`save`."""
        return cls.from_json_dict(json.loads(Path(path).read_text()))


def fit_surrogate(
    X,
    y,
    feature_names: tuple[str, ...],
    seed: int = 42,
    config: SurrogateConfig | None = None,
) -> SurrogateModel:
    """Fit the ridge + boosted ensemble on an (X, y) training set.

    ``X`` is (rows, features), ``y`` is (rows, 3) in
    :data:`~repro.surrogate.features.TARGET_NAMES` order, both in raw
    units. Deterministic for fixed inputs and seed.
    """
    config = config or SurrogateConfig()
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.ndim != 2 or y.shape[1] != len(TARGET_NAMES):
        raise ValueError("need X of shape (n, f) and y of shape (n, 3)")
    if X.shape[0] != y.shape[0] or X.shape[0] < 2:
        raise ValueError("need matching X/y with at least 2 rows")
    if X.shape[1] != len(feature_names):
        raise ValueError("X width must match feature_names")

    mean = X.mean(axis=0)
    std = X.std(axis=0)
    std[std < 1e-12] = 1.0
    Z = (X - mean) / std
    Z1 = np.hstack([Z, np.ones((Z.shape[0], 1))])

    targets: list[dict] = []
    for column, target in enumerate(TARGET_NAMES):
        transform = TARGET_TRANSFORMS[target]
        yt = _transform(transform, y[:, column])
        # Closed-form ridge on [Z | 1]; the intercept is unpenalized.
        penalty = config.ridge_alpha * np.eye(Z1.shape[1])
        penalty[-1, -1] = 0.0
        weights = np.linalg.solve(Z1.T @ Z1 + penalty, Z1.T @ yt)
        residual = yt - Z1 @ weights
        members = []
        for member in range(config.n_members):
            rng = np.random.default_rng([seed, column, member])
            idx = np.sort(rng.integers(0, Z.shape[0], Z.shape[0]))
            members.append(_fit_boosted(Z[idx], residual[idx], config))
        targets.append(
            {
                "target": target,
                "transform": transform,
                "ridge": weights.tolist(),
                "members": members,
            }
        )

    return SurrogateModel(
        feature_names=tuple(feature_names),
        feature_schema_version=FEATURE_SCHEMA_VERSION,
        target_names=TARGET_NAMES,
        config=config,
        seed=seed,
        n_rows=int(X.shape[0]),
        scaler_mean=mean.tolist(),
        scaler_std=std.tolist(),
        targets=targets,
    )


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), deterministic."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size)
    sorted_values = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0
        i = j + 1
    return ranks


def spearman(a, b) -> float:
    """Spearman rank correlation; 0.0 when either side is constant."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size != b.size or a.size < 2:
        return 0.0
    ra, rb = _ranks(a), _ranks(b)
    sa, sb = ra.std(), rb.std()
    if sa < 1e-12 or sb < 1e-12:
        return 0.0
    return float(((ra - ra.mean()) * (rb - rb.mean())).mean() / (sa * sb))


def mean_absolute_error(a, b) -> float:
    """Plain MAE between two equal-length vectors."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0:
        return 0.0
    return float(np.abs(a - b).mean())


def evaluate_model(model: SurrogateModel, X, y) -> dict:
    """Per-target MAE + Spearman of the model on an (X, y) set."""
    means, _ = model.predict(X)
    y = np.asarray(y, dtype=float)
    report = {}
    for column, target in enumerate(model.target_names):
        report[target] = {
            "mae": mean_absolute_error(means[:, column], y[:, column]),
            "spearman": spearman(means[:, column], y[:, column]),
        }
    return report


def uncertainty_mean(model: SurrogateModel, X) -> dict:
    """Mean ensemble-spread uncertainty per target over a row set."""
    _, stds = model.predict(X)
    return {
        target: float(stds[:, column].mean())
        for column, target in enumerate(model.target_names)
    }


def _self_check() -> None:
    """Quick deterministic smoke used by ``python -m`` debugging."""
    rng = np.random.default_rng(7)
    X = rng.normal(size=(64, 4))
    y = np.stack(
        [
            np.abs(100 + 40 * X[:, 0] + 10 * X[:, 1] ** 2),
            np.abs(50 + 5 * X[:, 2]),
            np.abs(0.5 + 0.1 * X[:, 3]),
        ],
        axis=1,
    )
    model = fit_surrogate(X, y, ("a", "b", "c", "d"), seed=1)
    print(json.dumps(evaluate_model(model, X, y), indent=2))


if __name__ == "__main__":  # pragma: no cover
    _self_check()
