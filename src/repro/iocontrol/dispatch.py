"""Dispatch engine: pumps requests from a scheduler into a device.

Models the serialized dispatch section of the block layer: one request at
a time passes through the scheduler's lock (``lock_overhead_us``), which
is the bandwidth ceiling the paper measures for MQ-DL and BFQ (O2).
Waiters spin: per dispatched request, up to ``spin_cap`` queued
submitters are assumed to be busy-waiting for the lock and their wait is
charged to the core set as spin time -- reproducing the "full core per
batch app" CPU profile of the schedulers (Fig. 4c/d).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cpu.cores import CoreSet
from repro.iocontrol.base import IoScheduler
from repro.iorequest import IoRequest
from repro.sim.engine import Simulator
from repro.ssd.device import SimulatedNvmeDevice

CompletionFn = Callable[[IoRequest], None]


class DispatchEngine:
    """Connects one scheduler instance to one device."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: IoScheduler,
        device: SimulatedNvmeDevice,
        core_set: CoreSet,
        on_complete: CompletionFn,
        spin_cap: int = 8,
    ):
        self.sim = sim
        self.scheduler = scheduler
        self.device = device
        self.core_set = core_set
        self.on_complete = on_complete
        self.spin_cap = spin_cap
        self._lock_busy = False
        self._retry_armed_until: Optional[float] = None
        self._retry_event = None
        self.dispatched = 0

    def submit(self, req: IoRequest) -> None:
        """Hand an admitted request to the scheduler and try to dispatch."""
        req.queued_time = self.sim.now
        self.scheduler.add(req)
        self.pump()

    def submit_batch(self, reqs: list[IoRequest]) -> None:
        """Admit several requests arriving at the same tick.

        Behaviorally identical to calling :meth:`submit` per request in
        order; the device's cost memos are filled by one vectorized
        evaluation before the first admission (macro-tick arrival
        batches land here).
        """
        self.device.precompute_costs(reqs)
        now = self.sim.now
        scheduler = self.scheduler
        for req in reqs:
            req.queued_time = now
            scheduler.add(req)
            self.pump()

    def pump(self) -> None:
        """Dispatch the next request if the lock is free."""
        if self._lock_busy:
            return
        scheduler = self.scheduler
        req, retry_at = scheduler.pop(self.sim.now)
        if req is None:
            if retry_at is not None:
                self._arm_retry(retry_at)
            return
        self._lock_busy = True
        lock_us = scheduler.lock_overhead_us
        waiters = scheduler.queued()
        if waiters:
            if waiters > self.spin_cap:
                waiters = self.spin_cap
            self.core_set.account_spin(waiters * lock_us)
        self.sim.schedule(lock_us, lambda: self._dispatch(req))

    def _arm_retry(self, retry_at: float) -> None:
        # Keep exactly one live retry timer: re-arming for a later or
        # equal deadline is a no-op; an earlier deadline replaces (and
        # cancels) the pending timer. Leaking stale timers here snowballs
        # into unbounded same-timestamp event storms.
        # Never arm in the past/present: a scheduler whose reported
        # deadline does not unblock it would otherwise spin the event
        # loop at a single timestamp.
        retry_at = max(retry_at, self.sim.now + 1.0)
        if self._retry_armed_until is not None and self._retry_armed_until <= retry_at:
            return
        if self._retry_event is not None:
            self.sim.cancel(self._retry_event)
        self._retry_armed_until = retry_at
        self._retry_event = self.sim.schedule_at(retry_at, self._retry_fire)

    def _retry_fire(self) -> None:
        self._retry_armed_until = None
        self._retry_event = None
        self.pump()

    def _dispatch(self, req: IoRequest) -> None:
        self._lock_busy = False
        req.dispatch_time = self.sim.now
        self.dispatched += 1
        self.device.submit(req, self._device_complete)
        self.pump()

    def _device_complete(self, req: IoRequest) -> None:
        self.scheduler.on_complete(req)
        self.on_complete(req)
        self.pump()
