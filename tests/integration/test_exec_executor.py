"""SweepExecutor integration: parallelism, caching, error capture.

The headline guarantees:

* a 2-worker spawned sweep returns summaries bit-identical to a serial
  in-process sweep of the same seeded scenarios (cross-process
  determinism), in submission order;
* a raising scenario becomes a SweepError carrying the worker's
  traceback text while the rest of the sweep completes;
* a poisoned cache entry is a miss (recompute), never a crash;
* a warm cache executes zero scenarios;
* content-identical scenarios within one sweep execute once, with the
  result fanned back to every submission slot.
"""

import gzip
import pickle

import pytest

from repro.core.config import MqDeadlineKnob, NoneKnob, Scenario
from repro.exec import (
    ResultCache,
    SweepError,
    SweepExecutor,
    SweepFailure,
    run_scenario_summary,
    scenario_key,
)
from repro.obs import TraceConfig
from repro.ssd.presets import samsung_980pro_like
from repro.workloads.apps import batch_app


def tiny_scenario(name: str, seed: int = 42, trace=None) -> Scenario:
    return Scenario(
        name=name,
        knob=NoneKnob(),
        apps=[batch_app("batch0", "/tenants/a"), batch_app("batch1", "/tenants/b")],
        ssd_model=samsung_980pro_like(),
        duration_s=0.05,
        warmup_s=0.01,
        seed=seed,
        device_scale=8.0,
        trace=trace,
    )


def raising_scenario(name: str = "boom") -> Scenario:
    # An unknown io.prio.class fails knob validation inside the run --
    # a deterministic, picklable failure for both execution paths.
    return Scenario(
        name=name,
        knob=MqDeadlineKnob(classes={"/tenants/a": "bogus-class"}),
        apps=[batch_app("batch0", "/tenants/a")],
        ssd_model=samsung_980pro_like(),
        duration_s=0.05,
        warmup_s=0.01,
    )


class TestDeterminismAcrossProcesses:
    def test_two_worker_sweep_bit_identical_to_serial(self):
        scenarios = [tiny_scenario(f"det-{i}", seed=100 + i) for i in range(4)]
        serial = SweepExecutor(max_workers=1).run_strict(scenarios)
        with SweepExecutor(max_workers=2) as pool:
            parallel = pool.run_strict(scenarios)
        assert len(parallel) == len(serial)
        for ours, theirs in zip(serial, parallel):
            assert ours.content_equal(theirs)

    def test_spawned_worker_matches_in_process_run(self):
        scenario = tiny_scenario("det-single", seed=7)
        in_process = run_scenario_summary(scenario)
        with SweepExecutor(max_workers=2) as pool:
            spawned = pool.run_one(scenario)
        assert spawned.content_equal(in_process)

    def test_submission_order_preserved(self):
        scenarios = [tiny_scenario(f"order-{i}", seed=i) for i in range(5)]
        with SweepExecutor(max_workers=2) as pool:
            results = pool.run_strict(scenarios)
        assert [r.scenario_name for r in results] == [s.name for s in scenarios]


class TestErrorCapture:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_is_structured_and_isolated(self, workers):
        scenarios = [
            tiny_scenario("ok-before"),
            raising_scenario(),
            tiny_scenario("ok-after", seed=43),
        ]
        with SweepExecutor(max_workers=workers) as pool:
            results = pool.run(scenarios)
        assert results[0].scenario_name == "ok-before"
        assert results[2].scenario_name == "ok-after"
        error = results[1]
        assert isinstance(error, SweepError)
        assert error.scenario_name == "boom"
        assert "InvalidKnobValue" in error.error
        # The worker's traceback survives the process boundary.
        assert "Traceback" in error.traceback_text
        assert pool.stats.failed == 1
        assert pool.stats.executed == 2

    def test_run_strict_raises_sweep_failure(self):
        with SweepExecutor(max_workers=1) as pool:
            with pytest.raises(SweepFailure) as excinfo:
                pool.run_strict([raising_scenario()])
        assert excinfo.value.error.scenario_name == "boom"
        assert "InvalidKnobValue" in str(excinfo.value)


class TestCaching:
    def test_warm_cache_executes_nothing(self, tmp_path):
        scenarios = [tiny_scenario(f"warm-{i}", seed=i) for i in range(3)]
        cache = ResultCache(tmp_path / "cache")
        with SweepExecutor(max_workers=1, cache=cache) as cold:
            first = cold.run_strict(scenarios)
            assert cold.stats.executed == 3
            assert cold.stats.cached == 0
        warm_cache = ResultCache(tmp_path / "cache")
        with SweepExecutor(max_workers=1, cache=warm_cache) as warm:
            second = warm.run_strict(scenarios)
            assert warm.stats.executed == 0
            assert warm.stats.cached == 3
        for a, b in zip(first, second):
            assert a.content_equal(b)

    def test_poisoned_entry_is_a_miss_not_a_crash(self, tmp_path):
        scenario = tiny_scenario("poisoned")
        cache = ResultCache(tmp_path / "cache")
        with SweepExecutor(max_workers=1, cache=cache) as pool:
            original = pool.run_one(scenario)
        key = scenario_key(scenario)
        path = cache.path_for(key)
        assert path.is_file()
        path.write_bytes(b"this is not a gzip pickle")
        fresh = ResultCache(tmp_path / "cache")
        with SweepExecutor(max_workers=1, cache=fresh) as pool:
            recomputed = pool.run_one(scenario)
            assert pool.stats.executed == 1  # miss -> re-run
        assert fresh.stats.corrupt == 1
        assert recomputed.content_equal(original)
        # The corrupt file was dropped and replaced by the re-run's store.
        assert fresh.stats.stores == 1

    def test_old_schema_entry_is_dropped_not_mis_hit(self, tmp_path):
        """The schema-salt contract: an entry written under an older
        ``SCHEMA_VERSION`` must be unlinked and treated as a miss, never
        returned as a hit — even when its key and payload are otherwise
        perfectly valid."""
        from repro.exec.cachekey import SCHEMA_VERSION

        assert SCHEMA_VERSION >= 4  # v4 added Scenario.ctl / arrival phases
        scenario = tiny_scenario("schema-drift")
        cache = ResultCache(tmp_path / "cache")
        with SweepExecutor(max_workers=1, cache=cache) as pool:
            genuine = pool.run_one(scenario)
        key = scenario_key(scenario)
        path = cache.path_for(key)
        # Rewrite the entry as if an older release had produced it: same
        # key, same genuine summary payload, previous schema version.
        with gzip.open(path, "rb") as fh:
            entry = pickle.load(fh)
        entry["schema_version"] = SCHEMA_VERSION - 1
        with gzip.open(path, "wb") as fh:
            pickle.dump(entry, fh)
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get(key) is None  # dropped, not mis-hit
        assert fresh.stats.corrupt == 1
        assert not path.exists()  # unlinked on detection
        # The executor recomputes rather than trusting stale bytes.
        with SweepExecutor(max_workers=1, cache=fresh) as pool:
            recomputed = pool.run_one(scenario)
            assert pool.stats.executed == 1
        assert recomputed.content_equal(genuine)

    def test_wrong_payload_type_is_rejected(self, tmp_path):
        scenario = tiny_scenario("typed")
        cache = ResultCache(tmp_path / "cache")
        key = scenario_key(scenario)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        with gzip.open(path, "wb") as fh:
            pickle.dump({"schema_version": 1, "key": key, "summary": "nope"}, fh)
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_traced_scenarios_bypass_cache(self, tmp_path):
        scenario = tiny_scenario("traced", trace=TraceConfig(sample_period_us=0.0))
        cache = ResultCache(tmp_path / "cache")
        with SweepExecutor(max_workers=1, cache=cache) as pool:
            pool.run_one(scenario)
            pool.run_one(scenario)
            assert pool.stats.executed == 2
            assert pool.stats.cached == 0
        assert cache.entries() == []


class TestInSweepDedup:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_identical_scenarios_execute_once(self, workers):
        same_a = tiny_scenario("dup", seed=7)
        same_b = tiny_scenario("dup", seed=7)
        other = tiny_scenario("solo", seed=8)
        with SweepExecutor(max_workers=workers) as pool:
            results = pool.run_strict([same_a, other, same_b, same_a])
            assert pool.stats.executed == 2
            assert pool.stats.deduped == 2
        # Followers receive the primary's summary, in submission order.
        assert results[0] is results[2] is results[3]
        assert results[1].scenario_name == "solo"

    def test_dedup_composes_with_cache(self, tmp_path):
        scenario = tiny_scenario("dup-cached")
        cache = ResultCache(tmp_path / "cache")
        with SweepExecutor(max_workers=1, cache=cache) as pool:
            pool.run_strict([scenario, scenario])
            assert (pool.stats.executed, pool.stats.deduped) == (1, 1)
            pool.run_strict([scenario, scenario])
            # Warm: both slots are cache hits, nothing left to dedupe.
            assert pool.stats.executed == 1
            assert pool.stats.cached == 2
            assert pool.stats.deduped == 1
        assert len(cache.entries()) == 1

    def test_failed_primary_fans_error_to_followers(self):
        bad = raising_scenario("dup-boom")
        with SweepExecutor(max_workers=1) as pool:
            results = pool.run([bad, bad])
            # One real execution failed; its follower holds the same error.
            assert pool.stats.failed == 1
            assert pool.stats.deduped == 1
        assert all(isinstance(item, SweepError) for item in results)
        assert results[0].traceback_text == results[1].traceback_text

    def test_traced_scenarios_are_never_deduped(self):
        traced = tiny_scenario("dup-traced", trace=TraceConfig(sample_period_us=0.0))
        with SweepExecutor(max_workers=1) as pool:
            results = pool.run_strict([traced, traced])
            assert pool.stats.executed == 2
            assert pool.stats.deduped == 0
        assert results[0] is not results[1]

    def test_progress_reports_deduped(self):
        scenario = tiny_scenario("dup-prog")
        ticks = []
        with SweepExecutor(max_workers=1, progress=ticks.append) as pool:
            pool.run_strict([scenario, scenario])
        assert ticks[-1].deduped == 1
        assert "1 deduped" in str(ticks[-1])


class TestProgress:
    def test_progress_ticks_and_cache_counts(self, tmp_path):
        scenarios = [tiny_scenario(f"prog-{i}", seed=i) for i in range(3)]
        cache = ResultCache(tmp_path / "cache")
        ticks = []
        with SweepExecutor(
            max_workers=1, cache=cache, progress=ticks.append
        ) as pool:
            pool.run_strict(scenarios)
            first_run = list(ticks)
            ticks.clear()
            pool.run_strict(scenarios)
        assert [t.done for t in first_run] == [1, 2, 3]
        assert all(t.total == 3 for t in first_run)
        assert first_run[-1].cached == 0
        assert ticks[-1].cached == 3
        # The rendered line has the documented shape.
        assert "3/3 done, 3 cached," in str(ticks[-1])
        assert "events/sec aggregate" in str(ticks[-1])
