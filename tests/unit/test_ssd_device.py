"""Unit tests for the simulated NVMe device and GC state."""

import random

import pytest

from repro.iorequest import GIB, KIB, IoRequest, OpType, Pattern
from repro.sim.engine import Simulator
from repro.ssd.device import SimulatedNvmeDevice
from repro.ssd.gc import GcPauseInjector, GcState
from repro.ssd.model import GcParams, SsdModel


def quiet_model(**overrides) -> SsdModel:
    """A noise-free model so latencies are exact."""
    params = dict(
        name="quiet",
        parallelism=4,
        read_fixed_us=50.0,
        write_fixed_us=100.0,
        seq_read_fixed_us=40.0,
        seq_write_fixed_us=80.0,
        read_bus_bps=1 * GIB,
        write_bus_bps=0.5 * GIB,
        noise_base=1.0,
        noise_tail_mean=0.0,
        gc=GcParams(write_amplification=2.0),
    )
    params.update(overrides)
    return SsdModel(**params)


def make_request(op=OpType.READ, pattern=Pattern.RANDOM, size=4 * KIB) -> IoRequest:
    return IoRequest("app", "/g", op, pattern, size)


def run_one(device, sim, req):
    done = []
    device.submit(req, lambda r: done.append(sim.now))
    sim.run()
    return done[0]


class TestServiceTime:
    def test_read_latency_is_flash_plus_bus(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(), random.Random(0))
        latency = run_one(device, sim, make_request())
        expected = 50.0 + 4 * KIB / (1 * GIB) * 1e6
        assert latency == pytest.approx(expected)

    def test_sequential_read_is_cheaper(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(), random.Random(0))
        rand = run_one(device, sim, make_request(pattern=Pattern.RANDOM))
        sim2 = Simulator()
        device2 = SimulatedNvmeDevice(sim2, quiet_model(), random.Random(0))
        seq = run_one(device2, sim2, make_request(pattern=Pattern.SEQUENTIAL))
        assert seq < rand

    def test_write_slower_than_read(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(), random.Random(0))
        read = run_one(device, sim, make_request(op=OpType.READ))
        sim2 = Simulator()
        device2 = SimulatedNvmeDevice(sim2, quiet_model(), random.Random(0))
        write = run_one(device2, sim2, make_request(op=OpType.WRITE))
        assert write > read

    def test_parallel_requests_overlap(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(parallelism=4), random.Random(0))
        done = []
        for _ in range(4):
            device.submit(make_request(), lambda r: done.append(sim.now))
        sim.run()
        # All four fit in the flash units; only the bus serializes a bit.
        assert max(done) < 50.0 * 2

    def test_requests_beyond_parallelism_queue(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(parallelism=1), random.Random(0))
        done = []
        for _ in range(3):
            device.submit(make_request(), lambda r: done.append(sim.now))
        sim.run()
        assert done[-1] > 3 * 50.0 - 1.0


class TestBoundaryQueue:
    def test_nvme_qd_bounds_in_flight(self):
        sim = Simulator()
        model = quiet_model(nvme_max_qd=2, parallelism=8)
        device = SimulatedNvmeDevice(sim, model, random.Random(0))
        for _ in range(5):
            device.submit(make_request(), lambda r: None)
        assert device.in_flight == 2
        assert device.boundary_queue_depth == 3
        sim.run()
        assert device.in_flight == 0
        assert device.boundary_queue_depth == 0

    def test_boundary_queue_drains_fifo(self):
        sim = Simulator()
        model = quiet_model(nvme_max_qd=1, parallelism=8)
        device = SimulatedNvmeDevice(sim, model, random.Random(0))
        done = []
        for tag in ("a", "b", "c"):
            req = make_request()
            req.app_name = tag
            device.submit(req, lambda r: done.append(r.app_name))
        sim.run()
        assert done == ["a", "b", "c"]


class TestCountersAndIdle:
    def test_bytes_and_request_counters(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(), random.Random(0))
        device.submit(make_request(size=8 * KIB), lambda r: None)
        device.submit(make_request(op=OpType.WRITE, size=4 * KIB), lambda r: None)
        sim.run()
        assert device.bytes_completed[OpType.READ] == 8 * KIB
        assert device.bytes_completed[OpType.WRITE] == 4 * KIB
        assert device.requests_completed[OpType.READ] == 1
        assert device.requests_completed[OpType.WRITE] == 1

    def test_idle_capacity_probe(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(parallelism=2), random.Random(0))
        assert device.has_idle_capacity()
        device.submit(make_request(), lambda r: None)
        device.submit(make_request(), lambda r: None)
        assert not device.has_idle_capacity()
        sim.run()
        assert device.has_idle_capacity()


class TestGcState:
    def test_fresh_device_not_amplified(self):
        state = GcState(quiet_model())
        assert state.write_amplification == 1.0

    def test_preconditioned_device_amplifies(self):
        state = GcState(quiet_model(), preconditioned=True)
        assert state.write_amplification == 2.0
        assert state.amplify(100.0) == pytest.approx(200.0)

    def test_precondition_threshold_flips_state(self):
        state = GcState(quiet_model(), precondition_bytes=1000)
        state.on_write(999)
        assert not state.preconditioned
        state.on_write(1)
        assert state.preconditioned

    def test_explicit_precondition(self):
        state = GcState(quiet_model())
        state.precondition()
        assert state.write_amplification == 2.0

    def test_gc_disabled_never_amplifies(self):
        model = quiet_model(gc_enabled=False)
        state = GcState(model, preconditioned=True)
        assert state.write_amplification == 1.0

    def test_device_write_service_amplified_when_preconditioned(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(
            sim, quiet_model(), random.Random(0), preconditioned=True
        )
        latency = run_one(device, sim, make_request(op=OpType.WRITE))
        expected = 2.0 * (100.0 + 4 * KIB / (0.5 * GIB) * 1e6)
        assert latency == pytest.approx(expected)


class TestGcPauseInjector:
    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(), random.Random(0))
        with pytest.raises(ValueError):
            GcPauseInjector(sim, device.flash, interval_us=0, pause_us=1, units=1)

    def test_pauses_occupy_flash_units(self):
        sim = Simulator()
        model = quiet_model(parallelism=1)
        device = SimulatedNvmeDevice(sim, model, random.Random(0))
        injector = GcPauseInjector(
            sim, device.flash, interval_us=10.0, pause_us=100.0, units=1
        )
        injector.start()
        sim.run_until(15.0)  # first pause injected at t=10
        done = []
        device.submit(make_request(), lambda r: done.append(sim.now))
        sim.run_until(500.0)
        # The request had to wait for the 100us pause to clear.
        assert done and done[0] > 110.0
        injector.stop()

    def test_stop_halts_injection(self):
        sim = Simulator()
        device = SimulatedNvmeDevice(sim, quiet_model(), random.Random(0))
        injector = GcPauseInjector(
            sim, device.flash, interval_us=10.0, pause_us=1.0, units=1
        )
        injector.start()
        injector.stop()
        sim.run_until(100.0)
        assert device.flash.busy == 0
