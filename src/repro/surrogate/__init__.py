"""repro.surrogate: learn the simulator, search 100x wider.

Every cached sweep result is free training data. This package fits a
cheap, deterministic regressor on the ``.isolbench-cache/`` corpus --
Scenario -> per-cgroup (p99, bandwidth, util) -- and uses it to
prefilter knob-tuning candidate pools so the real simulator verifies
only the most promising top-k:

* :mod:`~repro.surrogate.features` -- total, NaN-free, permutation-
  stable Scenario -> fixed-width feature vectors in device-saturation
  units;
* :mod:`~repro.surrogate.corpus` -- sorted, schema-checked, skip-don't-
  crash loading of cache entries into (X, y) matrices;
* :mod:`~repro.surrogate.model` -- seeded ridge + gradient-boosted
  ensemble over numpy only, with ensemble-spread uncertainty and
  lossless JSON save/load (identical corpora -> bit-identical models);
* :mod:`~repro.surrogate.filter` -- the
  :class:`~repro.surrogate.filter.SurrogatePrefilter` that
  ``repro.tune.search`` calls, logging surrogate-vs-simulator error
  for every verified candidate;
* :mod:`~repro.surrogate.predictor` -- the fleet hook standing in for
  unmeasured interference-matrix pairs (``predicted=True`` effects).

``isol-bench surrogate {fit,eval,report}`` is the CLI front door;
:mod:`repro.core.d9_surrogate` (D9) proves the error bars with
budget-for-budget tune comparisons.
"""

from repro.surrogate.corpus import (
    MIN_CORPUS_ROWS,
    Corpus,
    CorpusRow,
    CorpusStats,
    corpus_from_pairs,
    holdout_split,
    load_corpus,
)
from repro.surrogate.features import (
    FEATURE_SCHEMA_VERSION,
    TARGET_NAMES,
    feature_names,
    featurize,
    featurize_scenario,
    scenario_cgroups,
    targets_from_summary,
    utilization_reference_mib_s,
)
from repro.surrogate.filter import (
    DEFAULT_POOL_FACTOR,
    RankedCandidate,
    SurrogatePrefilter,
    VerifiedRecord,
    fit_from_corpus,
)
from repro.surrogate.model import (
    MODEL_SCHEMA_VERSION,
    SurrogateConfig,
    SurrogateModel,
    evaluate_model,
    fit_surrogate,
    mean_absolute_error,
    spearman,
)
from repro.surrogate.predictor import SurrogatePairPredictor

__all__ = [
    "MIN_CORPUS_ROWS",
    "Corpus",
    "CorpusRow",
    "CorpusStats",
    "corpus_from_pairs",
    "holdout_split",
    "load_corpus",
    "FEATURE_SCHEMA_VERSION",
    "TARGET_NAMES",
    "feature_names",
    "featurize",
    "featurize_scenario",
    "scenario_cgroups",
    "targets_from_summary",
    "utilization_reference_mib_s",
    "DEFAULT_POOL_FACTOR",
    "RankedCandidate",
    "SurrogatePrefilter",
    "VerifiedRecord",
    "fit_from_corpus",
    "MODEL_SCHEMA_VERSION",
    "SurrogateConfig",
    "SurrogateModel",
    "evaluate_model",
    "fit_surrogate",
    "mean_absolute_error",
    "spearman",
    "SurrogatePairPredictor",
]
