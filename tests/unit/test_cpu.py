"""Unit tests for the CPU model: profiles, core sets, accounting."""

import pytest

from repro.cpu.accounting import CpuAccounting
from repro.cpu.cores import CoreSet
from repro.cpu.model import CYCLES_PER_US, KNOB_PROFILES, CpuCostProfile, profile_for_knob
from repro.sim.engine import Simulator


class TestProfiles:
    def test_all_knobs_have_profiles(self):
        for name in ("none", "mq-deadline", "bfq", "io.max", "io.latency", "io.cost"):
            assert profile_for_knob(name).name == name

    def test_unknown_knob(self):
        with pytest.raises(KeyError):
            profile_for_knob("cfq")

    def test_cost_interpolation_endpoints(self):
        profile = CpuCostProfile("t", cost_qd1_us=10.0, cost_batched_us=2.0, ctx_switches_per_io=1.0)
        assert profile.cost_per_io_us(1) == pytest.approx(10.0)
        assert profile.cost_per_io_us(256) == pytest.approx(2.0, rel=0.05)

    def test_cost_monotonically_decreases_with_qd(self):
        profile = profile_for_knob("none")
        costs = [profile.cost_per_io_us(qd) for qd in (1, 2, 4, 8, 64, 256)]
        assert costs == sorted(costs, reverse=True)

    def test_submit_plus_complete_equals_total(self):
        profile = profile_for_knob("io.cost")
        for qd in (1, 8, 256):
            total = profile.submit_cost_us(qd) + profile.complete_cost_us(qd)
            assert total == pytest.approx(profile.cost_per_io_us(qd))

    def test_schedulers_cost_more_than_none(self):
        none = profile_for_knob("none")
        for sched in ("mq-deadline", "bfq"):
            assert profile_for_knob(sched).cost_qd1_us > none.cost_qd1_us

    def test_only_iocost_has_saturated_latency_penalty(self):
        penalized = [
            name
            for name, profile in KNOB_PROFILES.items()
            if profile.saturated_extra_latency_us > 0
        ]
        assert penalized == ["io.cost"]

    def test_only_schedulers_have_affinity_skew(self):
        skewed = {
            name
            for name, profile in KNOB_PROFILES.items()
            if profile.saturation_unfairness_sigma > 0
        }
        assert skewed == {"mq-deadline", "bfq"}


class TestCoreSet:
    def test_core_count_validated(self):
        with pytest.raises(ValueError):
            CoreSet(Simulator(), 0)

    def test_charge_runs_work(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        done = []
        cores.charge(10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0]

    def test_zero_cost_completes_synchronously(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        done = []
        cores.charge(0.0, lambda: done.append(True))
        assert done == [True]

    def test_work_queues_on_busy_core(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        done = []
        cores.charge(10.0, lambda: done.append(sim.now))
        cores.charge(10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0, 20.0]

    def test_multi_core_parallelism(self):
        sim = Simulator()
        cores = CoreSet(sim, 4)
        done = []
        for _ in range(4):
            cores.charge(10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [10.0] * 4

    def test_utilization_window(self):
        sim = Simulator()
        cores = CoreSet(sim, 2)
        snap = cores.snapshot()
        cores.charge(50.0, lambda: None)
        sim.run_until(100.0)
        assert cores.utilization(snap) == pytest.approx(0.25)

    def test_spin_counts_toward_utilization(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        snap = cores.snapshot()
        cores.account_spin(30.0)
        sim.run_until(100.0)
        assert cores.utilization(snap) == pytest.approx(0.3)

    def test_utilization_capped_at_one(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        snap = cores.snapshot()
        cores.account_spin(1_000.0)
        sim.run_until(100.0)
        assert cores.utilization(snap) == 1.0

    def test_saturation_probe(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        assert not cores.is_saturated()
        for _ in range(6):
            cores.charge(10.0, lambda: None)
        assert cores.is_saturated()
        sim.run()
        assert not cores.is_saturated()


class TestAccounting:
    def test_report_counts_window_ios(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        acct = CpuAccounting(cores, profile_for_knob("none"))
        for _ in range(3):
            cores.charge(10.0, acct.on_io_complete)
        sim.run_until(100.0)
        report = acct.report()
        assert report.ios == 3
        assert report.utilization == pytest.approx(0.3)
        assert report.cycles_per_io == pytest.approx(10.0 * CYCLES_PER_US)

    def test_begin_window_resets(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        acct = CpuAccounting(cores, profile_for_knob("none"))
        cores.charge(10.0, acct.on_io_complete)
        sim.run_until(50.0)
        acct.begin_window()
        report = acct.report()
        assert report.ios == 0
        assert report.busy_us == pytest.approx(0.0)

    def test_empty_report_has_zero_rates(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        acct = CpuAccounting(cores, profile_for_knob("none"))
        report = acct.report()
        assert report.ios == 0
        assert report.cycles_per_io == 0.0
        assert report.ctx_switches_per_io == 0.0

    def test_report_renders(self):
        sim = Simulator()
        cores = CoreSet(sim, 1)
        acct = CpuAccounting(cores, profile_for_knob("bfq"))
        assert "cpu util" in str(acct.report())
