"""Unit tests for the io.cost controller (blk-iocost)."""

import math

import pytest

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.cgroups.knobs import IoCostModelParams, IoCostQosParams
from repro.iocontrol.iocost import (
    IoCostController,
    _water_fill,
    abs_cost_us,
    cost_coefficients,
)
from repro.iorequest import GIB, IoRequest, KIB, OpType, Pattern
from repro.sim.engine import Simulator

DEV = "259:0"
PERIOD = IoCostController.PERIOD_US


def simple_model() -> IoCostModelParams:
    return IoCostModelParams(
        ctrl="user",
        model="linear",
        rbps=1 * GIB,
        rseqiops=200_000,
        rrandiops=100_000,
        wbps=0.5 * GIB,
        wseqiops=100_000,
        wrandiops=50_000,
    )


def make_controller(weights=None, qos=None, sim=None):
    sim = sim or Simulator()
    tree = CgroupHierarchy()
    for path, weight in (weights or {"/t/a": 100}).items():
        tree.create(path, processes=True)
        tree.find(path).write("io.weight", str(weight))
    controller = IoCostController(
        sim,
        tree,
        DEV,
        model=simple_model(),
        qos=qos or IoCostQosParams(enable=True, ctrl="user"),
    )
    controller.start()
    return sim, tree, controller


def make_request(cgroup="/t/a", op=OpType.READ, pattern=Pattern.RANDOM, size=4 * KIB):
    return IoRequest("app", cgroup, op, pattern, size)


class TestCostModel:
    def test_coefficients_shapes(self):
        coefs = cost_coefficients(simple_model())
        read = coefs[OpType.READ]
        # Page cost: 4 KiB at 1 GiB/s = ~3.8 us.
        assert read.page_us == pytest.approx(4096 / GIB * 1e6)
        # Random per-IO: 1e6/100k - page = 10 - 3.8 = 6.2 us.
        assert read.rand_us == pytest.approx(10.0 - read.page_us)
        assert read.seq_us < read.rand_us

    def test_writes_cost_more_than_reads(self):
        coefs = cost_coefficients(simple_model())
        write = abs_cost_us(coefs, make_request(op=OpType.WRITE))
        read = abs_cost_us(coefs, make_request(op=OpType.READ))
        assert write > read

    def test_cost_scales_with_size(self):
        coefs = cost_coefficients(simple_model())
        small = abs_cost_us(coefs, make_request(size=4 * KIB))
        large = abs_cost_us(coefs, make_request(size=256 * KIB))
        assert large > small * 10

    def test_sequential_cheaper_than_random(self):
        coefs = cost_coefficients(simple_model())
        seq = abs_cost_us(coefs, make_request(pattern=Pattern.SEQUENTIAL))
        rand = abs_cost_us(coefs, make_request(pattern=Pattern.RANDOM))
        assert seq < rand

    def test_zero_params_yield_zero_coefficients(self):
        coefs = cost_coefficients(IoCostModelParams())
        assert coefs[OpType.READ].page_us == 0.0
        assert coefs[OpType.READ].rand_us == 0.0


class TestWaterFill:
    def test_unconstrained_split_by_weight(self):
        alloc = _water_fill(
            {"a": 3.0, "b": 1.0},
            {"a": math.inf, "b": math.inf},
            100.0,
        )
        assert alloc["a"] == pytest.approx(75.0)
        assert alloc["b"] == pytest.approx(25.0)

    def test_satisfied_group_donates_surplus(self):
        alloc = _water_fill(
            {"a": 3.0, "b": 1.0},
            {"a": 10.0, "b": math.inf},
            100.0,
        )
        assert alloc["a"] == pytest.approx(10.0)
        assert alloc["b"] == pytest.approx(90.0)

    def test_allocations_never_exceed_demand(self):
        alloc = _water_fill(
            {"a": 1.0, "b": 1.0},
            {"a": 5.0, "b": 7.0},
            100.0,
        )
        assert alloc["a"] == pytest.approx(5.0)
        assert alloc["b"] == pytest.approx(7.0)

    def test_total_never_exceeds_capacity(self):
        alloc = _water_fill(
            {"a": 2.0, "b": 1.0, "c": 1.0},
            {"a": math.inf, "b": math.inf, "c": 1.0},
            100.0,
        )
        assert sum(alloc.values()) == pytest.approx(100.0)


class TestBudgeting:
    def test_within_budget_admits_immediately(self):
        sim, _, controller = make_controller()
        admitted = []
        controller.submit(make_request(), lambda r: admitted.append(sim.now))
        assert admitted == [0.0]

    def test_abs_cost_stamped_on_request(self):
        sim, _, controller = make_controller()
        req = make_request()
        controller.submit(req, lambda r: None)
        assert req.abs_cost > 0.0

    def test_over_budget_requests_are_delayed(self):
        sim, _, controller = make_controller()
        admitted = []
        # Random 4 KiB cost ~10us; margin is one 50ms period -> ~5000
        # requests fit the initial budget window.
        for _ in range(8000):
            controller.submit(make_request(), lambda r: admitted.append(sim.now))
        sim.run_until(PERIOD * 4)
        assert max(admitted) > 0.0

    def test_throughput_tracks_model_rate(self):
        sim, _, controller = make_controller()
        admitted = []
        for _ in range(30_000):
            controller.submit(make_request(), lambda r: admitted.append(sim.now))
        sim.run_until(PERIOD * 4)
        in_first_window = sum(1 for t in admitted if t < PERIOD * 4)
        # Model allows 100k IOPS; 4 periods = 200ms -> ~20k + margin.
        assert in_first_window == pytest.approx(25_000, rel=0.3)

    def test_group_activation_on_submit(self):
        sim, _, controller = make_controller({"/t/a": 100, "/t/b": 100})
        controller.submit(make_request("/t/a"), lambda r: None)
        assert controller.hweight_of("/t/a") == pytest.approx(1.0)
        controller.submit(make_request("/t/b"), lambda r: None)
        assert controller.hweight_of("/t/a") == pytest.approx(0.5)

    def test_idle_group_deactivates(self):
        sim, _, controller = make_controller({"/t/a": 100, "/t/b": 100})
        req = make_request("/t/a")
        controller.submit(req, lambda r: None)
        controller.submit(make_request("/t/b"), lambda r: None)
        # Complete /t/a's request and let it idle past the timeout.
        controller.on_complete(req)
        sim.run_until(PERIOD * 3)
        assert controller.hweight_of("/t/a") == 0.0
        assert controller.hweight_of("/t/b") == pytest.approx(1.0)

    def test_weights_shape_hweights(self):
        sim, _, controller = make_controller({"/t/a": 300, "/t/b": 100})
        controller.submit(make_request("/t/a"), lambda r: None)
        controller.submit(make_request("/t/b"), lambda r: None)
        assert controller.hweight_of("/t/a") == pytest.approx(0.75)


class TestQosVrate:
    def _violating_qos(self, vrate_min=20.0):
        return IoCostQosParams(
            enable=True, ctrl="user", rpct=95.0, rlat_us=50.0,
            vrate_min_pct=vrate_min, vrate_max_pct=100.0,
        )

    def _feed_latency(self, sim, controller, latency_us, count=20):
        for _ in range(count):
            req = make_request()
            controller.submit(req, lambda r: None)
            req.queued_time = sim.now - latency_us
            controller.on_complete(req)

    def test_violation_reduces_vrate(self):
        sim, _, controller = make_controller(qos=self._violating_qos())
        self._feed_latency(sim, controller, latency_us=500.0)
        sim.run_until(PERIOD)
        assert controller.vrate < 1.0

    def test_vrate_floor_at_min(self):
        sim, _, controller = make_controller(qos=self._violating_qos(vrate_min=50.0))
        for window in range(30):
            self._feed_latency(sim, controller, latency_us=500.0)
            sim.run_until((window + 1) * PERIOD)
        assert controller.vrate == pytest.approx(0.5)

    def test_vrate_recovers_when_healthy(self):
        sim, _, controller = make_controller(qos=self._violating_qos())
        self._feed_latency(sim, controller, latency_us=500.0)
        sim.run_until(PERIOD)
        dropped = controller.vrate
        for window in range(1, 12):
            self._feed_latency(sim, controller, latency_us=10.0)
            sim.run_until((window + 1) * PERIOD)
        assert controller.vrate > dropped

    def test_vrate_capped_at_max(self):
        sim, _, controller = make_controller(qos=self._violating_qos())
        for window in range(10):
            self._feed_latency(sim, controller, latency_us=10.0)
            sim.run_until((window + 1) * PERIOD)
        assert controller.vrate <= 1.0

    def test_qos_disabled_never_adjusts(self):
        sim, _, controller = make_controller(
            qos=IoCostQosParams(enable=False, ctrl="user", rlat_us=50.0)
        )
        self._feed_latency(sim, controller, latency_us=5_000.0)
        sim.run_until(PERIOD)
        assert controller.vrate == 1.0

    def test_few_samples_do_not_trigger(self):
        sim, _, controller = make_controller(qos=self._violating_qos())
        self._feed_latency(sim, controller, latency_us=500.0, count=3)
        sim.run_until(PERIOD)
        assert controller.vrate == 1.0


class TestDonation:
    def test_high_weight_low_demand_donates(self):
        sim, _, controller = make_controller({"/t/prio": 10000, "/t/be": 100})
        # prio sends a trickle; be floods.
        prio_req = make_request("/t/prio")
        controller.submit(prio_req, lambda r: None)
        controller.on_complete(prio_req)
        admitted_be = []
        for _ in range(30_000):
            controller.submit(
                make_request("/t/be"), lambda r: admitted_be.append(sim.now)
            )
        sim.run_until(PERIOD * 6)
        # Without donation be would get ~1% of 100k IOPS; with donation it
        # should receive nearly the full model rate.
        in_window = sum(1 for t in admitted_be if PERIOD <= t < PERIOD * 6)
        rate_iops = in_window / (5 * PERIOD / 1e6)
        assert rate_iops > 50_000

    def test_effective_share_reported(self):
        sim, _, controller = make_controller({"/t/a": 100})
        controller.submit(make_request("/t/a"), lambda r: None)
        assert controller.effective_share_of("/t/a") == pytest.approx(1.0)
