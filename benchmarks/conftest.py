"""Shared helpers for the figure/table benchmarks.

Each bench regenerates one of the paper's tables or figures: it runs the
corresponding isol-bench experiment (at a documented device scale),
prints the rows/series the paper reports, and writes the same text to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference it.

The pytest-benchmark timer wraps the *whole experiment*, so
``--benchmark-only`` runs double as a performance regression check on
the simulator itself. Every bench uses a single round: the experiments
are deterministic and long.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def figure_output():
    """Returns a writer: ``write(name, text)`` prints + persists."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
