"""Property tests: numpy batch cost path == scalar path, bit-exact.

``SsdModel.batch_costs`` promises the *same IEEE-754 operations* as the
scalar ``fixed_cost_us`` / ``bus_cost_us`` methods, so equality here is
``==`` on floats — no tolerances. Perturbed cases scale the model the
way the fault layer does at runtime (GC-storm service multipliers,
write-amplified costs), proving the equivalence is not an artifact of
round-number parameters.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iorequest import OpType, Pattern
from repro.ssd.device import SimulatedNvmeDevice
from repro.ssd.model import HAVE_NUMPY, SsdModel
from repro.sim.engine import Simulator

#: Model parameters drawn wide and awkward (non-representable decimals).
cost_strategy = st.floats(min_value=0.1, max_value=5_000.0, allow_nan=False)
bps_strategy = st.floats(min_value=1e6, max_value=1e11, allow_nan=False)
#: Sizes hit segment boundaries: 1 byte, exact multiples of the 32 KiB
#: segment, one off either side, and random values.
size_strategy = st.one_of(
    st.sampled_from([1, 4096, 32768, 32769, 65536, 65537, 262144, 1 << 22]),
    st.integers(min_value=1, max_value=1 << 22),
)
#: GC-storm / fault-style multiplicative perturbations (service
#: multipliers are ~1-8x in the presets; write amplification >= 1).
perturb_strategy = st.floats(min_value=1.0, max_value=16.0, allow_nan=False)

request_strategy = st.tuples(
    st.sampled_from([OpType.READ, OpType.WRITE]),
    st.sampled_from([Pattern.RANDOM, Pattern.SEQUENTIAL]),
    size_strategy,
)


def make_model(read_fixed, write_fixed, seq_read, seq_write, rbps, wbps) -> SsdModel:
    return SsdModel(
        name="prop",
        parallelism=8,
        read_fixed_us=read_fixed,
        write_fixed_us=write_fixed,
        seq_read_fixed_us=seq_read,
        seq_write_fixed_us=seq_write,
        read_bus_bps=rbps,
        write_bus_bps=wbps,
    )


def assert_batch_equals_scalar(model: SsdModel, reqs) -> None:
    ops = [op for op, _, _ in reqs]
    patterns = [pat for _, pat, _ in reqs]
    sizes = [size for _, _, size in reqs]
    fixed, bus, segments, per_segment = model.batch_costs(ops, patterns, sizes)
    for i, (op, pattern, size) in enumerate(reqs):
        want_fixed = model.fixed_cost_us(op, pattern)
        want_bus = model.bus_cost_us(op, size)
        want_segments = max(1, -(-size // model.bus_segment_bytes))
        assert fixed[i] == want_fixed, (i, "fixed")
        assert bus[i] == want_bus, (i, "bus")
        assert segments[i] == want_segments, (i, "segments")
        assert per_segment[i] == want_bus / want_segments, (i, "per_segment")
        # .tolist() must hand back native floats/ints, not numpy scalars
        # (they pickle/JSON differently and would poison summaries).
        assert type(fixed[i]) is float and type(bus[i]) is float
        assert type(segments[i]) is int and type(per_segment[i]) is float


class TestBatchScalarExactEquality:
    @given(
        cost_strategy,
        cost_strategy,
        cost_strategy,
        cost_strategy,
        bps_strategy,
        bps_strategy,
        st.lists(request_strategy, min_size=1, max_size=50),
    )
    @settings(max_examples=80)
    def test_batch_matches_scalar_bitwise(
        self, rf, wf, srf, swf, rbps, wbps, reqs
    ):
        assert_batch_equals_scalar(make_model(rf, wf, srf, swf, rbps, wbps), reqs)

    @given(
        cost_strategy,
        bps_strategy,
        perturb_strategy,
        perturb_strategy,
        st.lists(request_strategy, min_size=2, max_size=50),
    )
    @settings(max_examples=60)
    def test_fault_perturbed_models_stay_exact(
        self, base_cost, base_bps, service_mult, waf, reqs
    ):
        """A GC-storm-degraded model (slower flash, narrower bus, WAF-
        amplified writes) keeps batch/scalar bit-equality."""
        model = make_model(
            base_cost * service_mult,
            base_cost * service_mult * waf,
            base_cost,
            base_cost * waf,
            base_bps / service_mult,
            base_bps / (service_mult * waf),
        )
        assert_batch_equals_scalar(model, reqs)

    @given(st.lists(request_strategy, min_size=2, max_size=30), st.floats(
        min_value=1.0, max_value=64.0, allow_nan=False))
    @settings(max_examples=40)
    def test_scaled_models_stay_exact(self, reqs, scale):
        """Device-scale time dilation (the bench path) preserves equality."""
        model = make_model(80.0, 20.0, 60.0, 15.0, 7e9, 5.3e9)
        if scale < 1.0:
            scale = 1.0
        assert_batch_equals_scalar(model.scaled(scale), reqs)

    @given(request_strategy)
    @settings(max_examples=40)
    def test_single_request_takes_scalar_fallback(self, req):
        """n == 1 always uses the scalar path (and still agrees)."""
        model = make_model(80.0, 20.0, 60.0, 15.0, 7e9, 5.3e9)
        assert_batch_equals_scalar(model, [req])


class TestDeviceWarmCosts:
    @given(st.lists(request_strategy, min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_warm_fills_exactly_what_lazy_fill_would(self, reqs):
        """warm_costs() pre-fills the memo caches with the exact values
        the per-request lazy path computes."""
        model = make_model(80.0, 20.0, 60.0, 15.0, 7e9, 5.3e9)
        import random

        warm = SimulatedNvmeDevice(Simulator(), model, random.Random(0))
        warm.warm_costs((op, pat, size) for op, pat, size in reqs)
        for op, pat, size in reqs:
            assert warm._fixed_cost_cache[(op, pat)] == model.fixed_cost_us(op, pat)
            segments, per_segment = warm._bus_plan_cache[(op, size)]
            want_segments = max(1, -(-size // model.bus_segment_bytes))
            assert segments == want_segments
            assert per_segment == model.bus_cost_us(op, size) / want_segments

    def test_warm_is_idempotent(self):
        model = make_model(80.0, 20.0, 60.0, 15.0, 7e9, 5.3e9)
        import random

        device = SimulatedNvmeDevice(Simulator(), model, random.Random(0))
        keys = [(OpType.READ, Pattern.RANDOM, 4096), (OpType.WRITE, Pattern.SEQUENTIAL, 262144)]
        device.warm_costs(keys)
        first = (dict(device._fixed_cost_cache), dict(device._bus_plan_cache))
        device.warm_costs(keys)
        assert (device._fixed_cost_cache, device._bus_plan_cache) == first


def test_numpy_is_available_in_this_environment():
    """CI installs numpy; the vectorized path must actually be active
    here (the scalar fallback is covered by the n == 1 property)."""
    assert HAVE_NUMPY
