"""Table I: scoring the four desiderata per knob.

Each desideratum is scored ``YES`` / ``PARTIAL`` / ``NO`` from measured
sub-benchmark results, following the criteria the paper's §VII discussion
applies (PARTIAL corresponds to the paper's "--" cells):

* **Low overhead (D1)**: peak 1-SSD bandwidth within 10% of "none" and
  1-app P99 within 10%; PARTIAL if only the past-CPU-saturation P99
  criterion fails (io.cost's deferred-timer cost).
* **Proportional fairness (D2)**: weighted Jain >= 0.9 at 2 and 16
  groups, uniform Jain at 16 groups >= 0.95, mixed-request-size
  Jain >= 0.85. PARTIAL when the scores pass but the knob is *static*
  (io.max: a practitioner must recompute limits as tenants come and go;
  measured here via the non-work-conservation probe).
* **Priority/utilization trade-offs (D3)**: a Pareto front with >= 4
  distinguishable operating points spanning a meaningful utilization
  range, for the 4 KiB BE variant AND the hard variants (256 KiB,
  writes). PARTIAL when only the 4 KiB variant works.
* **Priority bursts (D4)**: priority-app objective restored within
  500 ms of a burst; NO beyond 2 s (io.latency's window staircase);
  knobs without any prioritization mechanism score NO here regardless
  of raw speed (you cannot "respond" to a priority you cannot express).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Score(enum.Enum):
    """A Table I cell."""

    YES = "yes"
    PARTIAL = "partial"
    NO = "no"

    @property
    def symbol(self) -> str:
        return {"yes": "v", "partial": "-", "no": "x"}[self.value]


@dataclass
class DesiderataInputs:
    """Measured quantities feeding the Table I scoring for one knob."""

    knob: str
    # D1
    peak_bandwidth_ratio_vs_none: float = 1.0
    p99_overhead_1app: float = 0.0  # fractional increase vs none
    p99_overhead_saturated: float = 0.0
    # D2
    fairness_uniform_16: float = 1.0
    fairness_weighted_2: float = 1.0
    fairness_weighted_16: float = 1.0
    fairness_mixed_sizes: float = 1.0
    static_configuration: bool = False  # needs manual re-translation
    # D3
    front_clusters_rand4k: int = 0
    front_utilization_span_fraction: float = 0.0
    hard_variants_effective: bool = False
    has_prioritization: bool = True
    # D4
    burst_response_ms: float | None = None


@dataclass
class TableOneRow:
    """One knob's Table I row."""

    knob: str
    low_overhead: Score
    proportional_fairness: Score
    priority_utilization_tradeoffs: Score
    priority_bursts: Score

    def cells(self) -> list[Score]:
        return [
            self.low_overhead,
            self.proportional_fairness,
            self.priority_utilization_tradeoffs,
            self.priority_bursts,
        ]


def score_low_overhead(inputs: DesiderataInputs) -> Score:
    bandwidth_ok = inputs.peak_bandwidth_ratio_vs_none >= 0.90
    latency_ok = inputs.p99_overhead_1app <= 0.10
    saturated_ok = inputs.p99_overhead_saturated <= 0.15
    if bandwidth_ok and latency_ok and saturated_ok:
        return Score.YES
    if bandwidth_ok and latency_ok:
        # Only the past-saturation latency criterion failed (io.cost).
        return Score.PARTIAL
    return Score.NO


def score_fairness(inputs: DesiderataInputs) -> Score:
    passes = (
        inputs.fairness_uniform_16 >= 0.95
        and inputs.fairness_weighted_2 >= 0.90
        and inputs.fairness_weighted_16 >= 0.90
        and inputs.fairness_mixed_sizes >= 0.85
    )
    if not passes:
        return Score.NO
    if inputs.static_configuration:
        return Score.PARTIAL
    return Score.YES


def score_tradeoffs(inputs: DesiderataInputs) -> Score:
    fine_grained = (
        inputs.front_clusters_rand4k >= 4
        and inputs.front_utilization_span_fraction >= 0.3
    )
    if not fine_grained:
        return Score.NO
    if not inputs.hard_variants_effective or inputs.static_configuration:
        return Score.PARTIAL
    return Score.YES


def score_bursts(inputs: DesiderataInputs, tradeoffs: Score) -> Score:
    # §VI-C: "we evaluate the response time for knobs that have
    # prioritization capabilities" -- a knob that cannot express usable
    # priorities (BFQ; MQ-DL's 3 coarse options) cannot serve bursty
    # priority apps however fast its mechanism reacts.
    if not inputs.has_prioritization or tradeoffs == Score.NO:
        return Score.NO
    if inputs.burst_response_ms is None or inputs.burst_response_ms > 2000.0:
        return Score.NO
    if inputs.burst_response_ms <= 500.0:
        if inputs.static_configuration:
            return Score.PARTIAL
        return Score.YES
    return Score.PARTIAL


def score_all(inputs: DesiderataInputs) -> TableOneRow:
    """Score one knob's full Table I row."""
    tradeoffs = score_tradeoffs(inputs)
    return TableOneRow(
        knob=inputs.knob,
        low_overhead=score_low_overhead(inputs),
        proportional_fairness=score_fairness(inputs),
        priority_utilization_tradeoffs=tradeoffs,
        priority_bursts=score_bursts(inputs, tradeoffs),
    )


#: The paper's published Table I, used as the expected reference by the
#: Table-I bench: rows are (overhead, fairness, trade-offs, bursts).
PAPER_TABLE_ONE: dict[str, tuple[str, str, str, str]] = {
    "mq-deadline": ("x", "x", "x", "x"),
    "bfq": ("x", "x", "x", "x"),
    "io.max": ("v", "-", "-", "-"),
    "io.latency": ("v", "x", "-", "x"),
    "io.cost": ("-", "v", "v", "v"),
}


@dataclass
class TableOne:
    """The full reproduced table plus the paper's reference cells."""

    rows: list[TableOneRow] = field(default_factory=list)
    # The measured quantities behind each row, for regression goldens.
    inputs: dict[str, DesiderataInputs] = field(default_factory=dict)

    def render(self) -> str:
        header = (
            f"{'knob':<22s} {'LowOverhead':>12s} {'PropFairness':>13s} "
            f"{'PrioUtilTrade':>14s} {'PrioBursts':>11s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            expected = PAPER_TABLE_ONE.get(row.knob)
            cells = [cell.symbol for cell in row.cells()]
            annotated = [
                f"{cell}(paper {exp})" if expected else cell
                for cell, exp in zip(cells, expected or cells)
            ]
            lines.append(
                f"{row.knob:<22s} {annotated[0]:>12s} {annotated[1]:>13s} "
                f"{annotated[2]:>14s} {annotated[3]:>11s}"
            )
        return "\n".join(lines)

    def matches_paper(self) -> dict[str, int]:
        """Number of matching cells per knob (out of 4)."""
        matches: dict[str, int] = {}
        for row in self.rows:
            expected = PAPER_TABLE_ONE.get(row.knob)
            if expected is None:
                continue
            matches[row.knob] = sum(
                1
                for cell, exp in zip(row.cells(), expected)
                if cell.symbol == exp
            )
        return matches
