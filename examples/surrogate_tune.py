#!/usr/bin/env python3
"""Search 50x wider at the same simulator budget with a surrogate.

The autotuner normally pays one full simulator run per candidate. This
example shows the surrogate loop end to end, against a throwaway cache
so it is self-contained:

Part 1 runs one pure `--mini` tune. Its sweep results land in the
result cache — the training corpus.

Part 2 loads that corpus, fits the deterministic ridge + boosted
ensemble, and prints the held-out error (fit on 3/4 of the rows, score
every 4th): the number to check before trusting the model.

Part 3 re-tunes with `surrogate="auto"`: each knob's search now scores
a ~400-candidate pool with the model and spends its simulator budget
only on the predicted best, printing the measured trust line
(`surrogate: scored= verified= mae_p99= spearman=`) alongside the
recommendation.

Run:  python examples/surrogate_tune.py

(The ``__main__`` guard is required: the sweep executor fans scenarios
over spawn-context worker processes, which re-import this module.)
"""

import tempfile
from pathlib import Path

from repro.core.d6_autotune import evaluate_autotune, mini_settings
from repro.exec import ResultCache, SweepExecutor
from repro.surrogate import evaluate_model, fit_from_corpus, holdout_split, load_corpus


def seed_the_cache(executor: SweepExecutor):
    print("Part 1: pure mini tune (seeds the training corpus):")
    report = evaluate_autotune(mini_settings(), executor=executor)
    best = report.recommended()
    print(f"  pure best : {best.knob} at violation {best.best.score.total:.3f}")
    print(f"  sweep     : {executor.stats}")
    return best


def fit_and_validate(cache_root: Path):
    print("\nPart 2: fit on the cache, score held-out rows:")
    corpus = load_corpus(cache_root)
    print(f"  corpus    : {corpus.stats}")
    train, held = holdout_split(corpus, every=4)
    model = fit_from_corpus(train)
    X, y = held.matrices()
    for target, metrics in evaluate_model(model, X, y).items():
        print(
            f"  held-out  : {target:<16s} mae={metrics['mae']:.3f} "
            f"spearman={metrics['spearman']:.2f}"
        )


def tune_with_surrogate(executor: SweepExecutor, pure_best: float) -> None:
    print("\nPart 3: surrogate-prefiltered tune at the same budget:")
    settings = mini_settings()
    settings.surrogate = "auto"
    report = evaluate_autotune(settings, executor=executor)
    best = report.recommended()
    summary = report.surrogate_summary()
    print(f"  {report.surrogate_stats_line()}")
    print(
        f"  widened   : {summary['scored']} candidates scored for "
        f"{summary['verified']} simulator verifications"
    )
    print(
        f"  best      : {best.knob} ({best.settings}) at violation "
        f"{best.best.score.total:.3f} (pure search found {pure_best:.3f})"
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        cache_root = Path(tmp) / "cache"
        with SweepExecutor(max_workers=2, cache=ResultCache(cache_root)) as executor:
            pure = seed_the_cache(executor)
            fit_and_validate(cache_root)
            tune_with_surrogate(executor, pure.best.score.total)
