#!/usr/bin/env python3
"""Which cgroup knob still isolates when the SSD misbehaves?

Part 1 runs the paper's noisy-neighbor shape — a QD=1 latency-critical
cache beside saturating batch readers — on a healthy device and again
under the ``transient-error`` fault preset (2% of requests error at the
device; the host retries with exponential backoff), and shows what the
fault costs the LC app and what the retry machinery did about it.

Part 2 runs the full D5 robustness matrix at the mini effort level:
every knob in its protecting configuration, healthy plus three fault
classes, fanned through the sweep executor, ranked by mean p99
degradation ratio — the `isol-bench d5 --mini` output, from Python.

Run:  python examples/faulty_device_sweep.py

(The ``__main__`` guard is required: the sweep executor fans scenarios
over spawn-context worker processes, which re-import this module.)
"""

from repro import IoCostKnob, Scenario, get_fault_plan
from repro.core.d5_robustness import evaluate_robustness, mini_settings
from repro.exec import SweepExecutor, run_scenario_summary
from repro.workloads import batch_app, lc_app


def noisy_neighbor(name: str, faults) -> Scenario:
    return Scenario(
        name=name,
        knob=IoCostKnob(weights={"/tenants/lc": 800, "/tenants/batch": 100}),
        apps=[
            lc_app("cache", "/tenants/lc"),
            batch_app("batch0", "/tenants/batch", queue_depth=32),
            batch_app("batch1", "/tenants/batch", queue_depth=32),
        ],
        duration_s=0.4,
        warmup_s=0.1,
        device_scale=8.0,  # slow the simulated device 8x for a quick run
        faults=faults,     # the plan is dilated 8x along with the device
    )


def compare_healthy_vs_faulted() -> None:
    healthy = run_scenario_summary(noisy_neighbor("healthy", None))
    faulted = run_scenario_summary(
        noisy_neighbor("flaky", get_fault_plan("transient-error"))
    )

    print("LC app under io.cost protection, healthy vs 2% transient errors:")
    print(f"  {'':<10} {'p99 us':>10} {'MiB/s':>9}")
    for label, summary in (("healthy", healthy), ("faulted", faulted)):
        stats = summary.app_stats("cache")
        print(
            f"  {label:<10} {stats.latency.p99_us:>10.0f} "
            f"{stats.bandwidth_mib_s:>9.1f}"
        )

    counters = faulted.fault_counters
    print("\nWhat the host's retry machinery absorbed:")
    print(f"  device errors injected : {counters['dev0.errors_injected']:.0f}")
    print(f"  retries (with backoff) : {counters['retries']:.0f}")
    print(f"  total backoff waited   : {counters['backoff_us'] / 1e3:.1f} ms")
    print(f"  failures seen by apps  : {counters['failures_delivered']:.0f}")


def rank_knobs_under_faults() -> None:
    print("\nD5 robustness ranking (mini effort; healthy + 3 fault classes):")
    with SweepExecutor(max_workers=2) as executor:
        table = evaluate_robustness(mini_settings(), executor=executor)
        print(table.render())
        print(f"\nsweep: {executor.stats}")
    best = table.rank()[0]
    print(
        f"most robust knob: {best.knob} "
        f"(mean p99 degradation {best.mean_p99_ratio:.2f}x)"
    )


if __name__ == "__main__":
    compare_healthy_vs_faulted()
    rank_knobs_under_faults()
