"""Tracing-disabled overhead guard (pay-for-what-you-use contract).

The D1 overhead results depend on the un-traced event loop staying fast,
so the observability layer must cost nothing when ``Scenario.trace`` is
None. The engine-level guard times the real :class:`Simulator` against
an inline replica of the pre-observability (seed) event loop — flag
cancellation, O(n) pending scan, no cancellation counters — driving an
identical closed callback chain, and asserts at most a 5% slowdown.

Methodology: the two loops alternate in tight pairs so machine drift
hits both equally, and the guard checks the *median* of per-pair ratios,
which is robust to scheduler noise on loaded CI machines.
"""

import gc
import heapq
import statistics
import time

from repro.sim.engine import Simulator


class _SeedEvent:
    """Event exactly as the seed had it: flag cancel, no bookkeeping."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time_us, seq, fn):
        self.time = time_us
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class _SeedSimulator:
    """The event loop exactly as it was before the observability layer."""

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._seq = 0
        self._events_processed = 0

    @property
    def events_processed(self):
        return self._events_processed

    def schedule(self, delay_us, fn):
        if delay_us < 0:
            raise ValueError("negative delay")
        event = _SeedEvent(self._now + delay_us, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self):
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn()


N_EVENTS = 60_000
N_CHAINS = 8
PAIRS = 25
MAX_SLOWDOWN = 1.05


def _drive(sim):
    """Interleaved closed chains: every callback schedules its successor.

    Eight chains with slightly different periods keep a realistic handful
    of events pending at once (every actual scenario holds hundreds), the
    same drive the bench suite's calibration uses. A single chain would
    instead time the engine's degenerate one-pending-event case, which
    the slot-wheel core deliberately does not optimize for.
    """
    state = {"remaining": N_EVENTS}

    def make_tick(delay_us):
        def tick():
            state["remaining"] -= 1
            if state["remaining"] >= N_CHAINS:
                sim.schedule(delay_us, tick)

        return tick

    for i in range(N_CHAINS):
        sim.schedule(1.0 + 0.1 * i, make_tick(1.0 + 0.1 * i))
    sim.run()
    assert sim.events_processed == N_EVENTS


def _timed(factory):
    sim = factory()
    start = time.perf_counter()
    _drive(sim)
    return time.perf_counter() - start


def _measure_median_ratio():
    gc.collect()
    gc.disable()
    try:
        for _ in range(3):  # warm up allocator and code caches
            _timed(_SeedSimulator)
            _timed(Simulator)
        ratios = [_timed(Simulator) / _timed(_SeedSimulator) for _ in range(PAIRS)]
    finally:
        gc.enable()
    return statistics.median(ratios)


def test_untraced_event_loop_within_5pct_of_seed_loop():
    # Retry on transient load spikes: a genuine hot-path regression slows
    # every attempt (the naive per-fire counter design measured a steady
    # 1.10-1.15x here), while scheduler noise clears on re-measurement.
    medians = []
    for _ in range(3):
        medians.append(_measure_median_ratio())
        if medians[-1] <= MAX_SLOWDOWN:
            return
    assert min(medians) <= MAX_SLOWDOWN, (
        f"un-traced event loop is {min(medians):.3f}x the seed loop "
        f"(best median of {len(medians)} attempts, {PAIRS} paired runs "
        f"each); the observability layer may have leaked work into the "
        f"hot path"
    )


def test_pending_count_costs_nothing_in_fire_path():
    """The O(1) pending count derives from the stored-entry count and two
    rare-path counters: firing an event performs no counter arithmetic
    beyond the storage decrement, and the count stays exact through heavy
    schedule/cancel/fire churn."""
    sim = Simulator()
    survivors = []
    for i in range(2_000):
        event = sim.schedule(float(i % 13) + 1.0, lambda: None)
        if i % 3 == 0:
            sim.cancel(event)
        else:
            survivors.append(event)
    for event in survivors[::5]:
        sim.cancel(event)
    expected = sum(1 for _, _, active in sim.pending_entries() if active)
    assert sim.pending_events() == expected
    sim.run()
    assert sim.pending_events() == 0
    # events_processed is derived, not counted: verify it matches the
    # number of callbacks that actually ran.
    cancelled = 2_000 // 3 + 1 + len(survivors[::5])
    assert sim.events_processed == 2_000 - cancelled
