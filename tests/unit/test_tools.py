"""Unit tests for iocost_coef_gen, report rendering, and the CLI."""

import re

import pytest

from repro.core.report import render_series, render_table
from repro.iorequest import GIB, KIB, OpType, Pattern
from repro.ssd.presets import intel_optane_like, samsung_980pro_like
from repro.tools.cli import build_parser, main
from repro.tools.iocost_coef_gen import (
    DEFAULT_CONSERVATISM,
    derive_model,
    format_model_line,
)


class TestDeriveModel:
    def test_read_saturation_matches_paper_ratio(self):
        ssd = samsung_980pro_like()
        model = derive_model(ssd)
        nominal = ssd.saturation_iops(OpType.READ, Pattern.RANDOM, 4 * KIB)
        assert model.rrandiops == pytest.approx(nominal * DEFAULT_CONSERVATISM)

    def test_paper_read_saturation_point(self):
        # The paper's generated model had a 2.3 GiB/s read saturation.
        model = derive_model(samsung_980pro_like())
        assert 2.0 * GIB < model.rrandiops * 4 * KIB < 2.6 * GIB

    def test_write_params_include_waf(self):
        ssd = samsung_980pro_like()
        model = derive_model(ssd)
        nominal_write = ssd.saturation_iops(OpType.WRITE, Pattern.RANDOM, 4 * KIB)
        expected = nominal_write * DEFAULT_CONSERVATISM / ssd.gc.write_amplification
        assert model.wrandiops == pytest.approx(expected)

    def test_optane_has_no_waf_discount(self):
        ssd = intel_optane_like()
        model = derive_model(ssd)
        nominal = ssd.saturation_iops(OpType.WRITE, Pattern.RANDOM, 4 * KIB)
        assert model.wrandiops == pytest.approx(nominal * DEFAULT_CONSERVATISM)

    def test_conservatism_validated(self):
        with pytest.raises(ValueError):
            derive_model(samsung_980pro_like(), conservatism=0.0)

    def test_format_model_line_parses_back(self):
        from repro.cgroups.knobs import parse_io_cost_model_line

        model = derive_model(samsung_980pro_like())
        line = format_model_line("259:0", model)
        device, parsed = parse_io_cost_model_line(line)
        assert device == "259:0"
        assert parsed.rbps == pytest.approx(model.rbps, abs=1.0)


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            ["knob", "value"], [["none", 1.0], ["io.cost", 2.5]], title="T"
        )
        assert "T" in text
        assert "io.cost" in text
        assert "2.500" in text

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_series(self):
        text = render_series(
            "Fig X", {"none": [(1.0, 2.0)]}, x_label="apps", y_label="GiB/s"
        )
        assert "Fig X" in text
        assert "none" in text


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_describe_device(self, capsys):
        assert main(["describe-device", "flash"]) == 0
        assert "GiB/s" in capsys.readouterr().out

    def test_describe_device_json_matches_model_dict(self, capsys):
        import json

        from repro.ssd.model import describe_model_dict
        from repro.ssd.presets import get_preset

        assert main(["describe-device", "flash", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # The CLI document IS the tune.space source of truth.
        assert doc == describe_model_dict(get_preset("flash"))
        assert set(doc["cases"]) == {
            "rand-read-4k",
            "rand-write-4k",
            "rand-read-64k",
            "seq-read-256k",
        }
        case = doc["cases"]["rand-read-4k"]
        assert case["bandwidth_bps"] == case["iops"] * case["size_bytes"]

    def test_tune_unknown_knob(self):
        with pytest.raises(SystemExit, match="unknown knob"):
            main(["tune", "--mini", "--knob", "io.imaginary"])

    def test_coef_gen(self, capsys):
        assert main(["coef-gen", "optane"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("259:0 ctrl=user model=linear")

    def test_run_quick_scenario(self, capsys):
        code = main(
            [
                "run",
                "--knob",
                "none",
                "--batch-apps",
                "1",
                "--duration",
                "0.05",
                "--device-scale",
                "16",
            ]
        )
        assert code == 0
        assert "aggregate bandwidth" in capsys.readouterr().out

    def test_run_unknown_knob(self):
        with pytest.raises(SystemExit):
            main(["run", "--knob", "cfq", "--batch-apps", "1"])

    def test_run_without_apps(self):
        with pytest.raises(SystemExit):
            main(["run", "--batch-apps", "0", "--lc-apps", "0"])


#: Every workload-running subcommand ends with this machine-parseable line.
PERF_LINE_RE = re.compile(
    r"^perf: events=\d+ elapsed=\d+\.\d{3}s events/sec=\d+ engine=(batched|legacy)$"
)

QUICK_RUN_ARGS = [
    "--batch-apps",
    "1",
    "--duration",
    "0.05",
    "--device-scale",
    "16",
]


class TestPerfFooter:
    def test_run_ends_with_perf_line(self, capsys):
        assert main(["run", *QUICK_RUN_ARGS]) == 0
        last = capsys.readouterr().out.strip().splitlines()[-1]
        assert PERF_LINE_RE.match(last), last

    def test_trace_ends_with_perf_line(self, capsys, tmp_path):
        out_path = str(tmp_path / "trace.jsonl")
        code = main(
            ["trace", *QUICK_RUN_ARGS, "--format", "jsonl", "--out", out_path]
        )
        assert code == 0
        last = capsys.readouterr().out.strip().splitlines()[-1]
        assert PERF_LINE_RE.match(last), last

    def test_run_prof_prints_breakdown_then_perf_line(self, capsys, tmp_path):
        out_path = str(tmp_path / "profile.pstats")
        code = main(
            [
                "run",
                *QUICK_RUN_ARGS,
                "--prof",
                "--prof-out",
                out_path,
                "--prof-format",
                "pstats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine phase breakdown:" in out
        assert "loop total" in out
        import pstats

        assert pstats.Stats(out_path).stats  # loadable by the stdlib
        last = out.strip().splitlines()[-1]
        assert PERF_LINE_RE.match(last), last
