"""Queued resource servers and rate limiters.

These two primitives cover every contended resource in the model:

* :class:`QueuedServer` -- ``capacity`` identical servers behind one FIFO
  queue (an M/G/k station). SSD flash units, the device data bus, CPU core
  sets and scheduler dispatch locks are all instances with different
  capacities and service demands.
* :class:`TokenBucket` -- a classic token bucket with reservation
  semantics, used by the io.max controller (blk-throttle behaves the same
  way: a request over budget waits exactly until its tokens accrue).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.engine import Simulator


class QueuedServer:
    """``capacity`` servers sharing a single FIFO queue.

    Work is submitted as a service demand in microseconds together with a
    completion callback. Busy time is integrated so callers can compute
    utilization over arbitrary measurement windows.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError(f"server capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._busy = 0
        self._queue: deque[tuple[float, Callable[[], None]]] = deque()
        self._busy_integral = 0.0
        self._last_change = 0.0

    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += self._busy * (now - self._last_change)
        self._last_change = now

    def submit(self, demand_us: float, done: Callable[[], None]) -> None:
        """Enqueue ``demand_us`` of work; ``done`` fires on completion."""
        if self._busy < self.capacity:
            self._start(demand_us, done)
        else:
            self._queue.append((demand_us, done))

    def _start(self, demand_us: float, done: Callable[[], None]) -> None:
        # The start/finish pair runs once per simulated event, so the busy
        # integral is maintained inline here and in ``fire`` rather than
        # through _account (kept for the cold introspection paths).
        sim = self.sim
        now = sim.now
        self._busy_integral += self._busy * (now - self._last_change)
        self._last_change = now
        self._busy += 1

        def fire() -> None:
            now = sim.now
            self._busy_integral += self._busy * (now - self._last_change)
            self._last_change = now
            self._busy -= 1
            if self._queue:
                next_demand, next_done = self._queue.popleft()
                self._start(next_demand, next_done)
            done()

        sim.schedule(demand_us, fire)

    @property
    def busy(self) -> int:
        """Number of servers currently serving."""
        return self._busy

    @property
    def queue_depth(self) -> int:
        """Number of items waiting (not yet in service)."""
        return len(self._queue)

    def busy_integral(self) -> float:
        """Integral of busy servers over time, in server-microseconds."""
        self._account()
        return self._busy_integral

    def utilization(self, integral_start: float, t_start: float, t_end: float) -> float:
        """Mean utilization in ``[t_start, t_end]``.

        ``integral_start`` is the value :meth:`busy_integral` returned at
        ``t_start``; call :meth:`busy_integral` again at ``t_end``.
        """
        if t_end <= t_start:
            return 0.0
        span = (t_end - t_start) * self.capacity
        return (self.busy_integral() - integral_start) / span


class TokenBucket:
    """Token bucket with reservation semantics.

    :meth:`reserve` always admits the request but returns the delay after
    which it is allowed to proceed; tokens may go negative, which models a
    FIFO queue of throttled requests (exactly how blk-throttle computes a
    dispatch time for an over-budget bio).
    """

    def __init__(self, rate_per_us: float, burst: float, start_time: float = 0.0):
        if rate_per_us <= 0:
            raise ValueError(f"token rate must be positive, got {rate_per_us}")
        self.rate = rate_per_us
        self.burst = max(burst, 0.0)
        self._tokens = self.burst
        self._last = start_time

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def reserve(self, amount: float, now: float) -> float:
        """Consume ``amount`` tokens; return the wait in microseconds."""
        self._refill(now)
        self._tokens -= amount
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / self.rate

    def tokens(self, now: float) -> float:
        """Current token level (may be negative while over-committed)."""
        self._refill(now)
        return self._tokens

    def set_rate(self, rate_per_us: float, now: float) -> None:
        """Change the refill rate, settling accrued tokens first."""
        if rate_per_us <= 0:
            raise ValueError(f"token rate must be positive, got {rate_per_us}")
        self._refill(now)
        self.rate = rate_per_us
