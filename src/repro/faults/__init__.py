"""Deterministic fault injection and degraded-device robustness.

Public API:

* :mod:`repro.faults.plan` — frozen :class:`FaultPlan` configuration
  (latency spikes, GC storms, slowdowns, transient errors, retry policy)
  carried on ``Scenario.faults`` and hashed into the exec cache key;
* :mod:`repro.faults.presets` — named fault classes (``latency-spike``,
  ``gc-storm``, ``slowdown``, ``transient-error``, ``timeout-storm``)
  used by ``isol-bench --faults`` and the D5 robustness sweep;
* :mod:`repro.faults.injector` — per-device runtime turning a plan into
  simulator events;
* :mod:`repro.faults.retry` — host-side retry/backoff/timeout
  coordinator and failure accounting.

See docs/faults.md for the model rationale and docs/api/faults.md for
usage examples.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    GcStorm,
    LatencySpike,
    RetryPolicy,
    Slowdown,
    TransientErrors,
)
from repro.faults.presets import (
    DEFAULT_RETRY,
    FAULT_CLASSES,
    gc_storm_plan,
    get_fault_plan,
    latency_spike_plan,
    slowdown_plan,
    timeout_storm_plan,
    transient_error_plan,
)
from repro.faults.retry import FaultStats, RetryCoordinator, backoff_delay

__all__ = [
    "DEFAULT_RETRY",
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "GcStorm",
    "LatencySpike",
    "RetryCoordinator",
    "RetryPolicy",
    "Slowdown",
    "TransientErrors",
    "backoff_delay",
    "gc_storm_plan",
    "get_fault_plan",
    "latency_spike_plan",
    "slowdown_plan",
    "timeout_storm_plan",
    "transient_error_plan",
]
