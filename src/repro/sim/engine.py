"""Event loop and simulated clock.

The engine is deliberately callback-based rather than coroutine-based:
callback scheduling through a binary heap is the fastest portable way to
run millions of events in pure Python, and the I/O pipeline modelled here
(submit -> throttle -> schedule -> device -> complete) maps naturally onto
chained callbacks.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class _Event:
    """A scheduled callback.

    Cancellation is implemented with a flag rather than heap removal:
    removing from the middle of a heap is O(n), flipping a flag is O(1)
    and cancelled events are simply skipped when popped. Fired events are
    flagged cancelled too (consumed), which both makes cancel-after-fire
    a no-op and lets the simulator keep an O(1) pending-event count as
    ``len(heap) - (cancelled_total - cancelled_popped)`` with zero extra
    work in the fire path beyond the flag store.
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    # Set as a class attribute on a per-simulator subclass (see
    # Simulator.__init__) so the constructor stays four stores — event
    # creation is the hottest allocation in the simulator.
    sim: "Simulator"

    def __init__(self, time: float, seq: int, fn: Callable[[], Any]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        if not self.cancelled:
            self.cancelled = True
            self.sim._cancelled_total += 1

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled).

        Used by watchdog bookkeeping (repro.faults) and tests; the fire
        loop never reads it, so it costs nothing on the hot path.
        """
        return not self.cancelled


class Simulator:
    """A discrete-event simulator with a microsecond clock.

    Events scheduled for the same timestamp fire in FIFO scheduling order,
    which keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Event] = []
        self._seq = 0
        # Cancellation bookkeeping lives entirely on the rare paths:
        # cancel() bumps _cancelled_total, popping a cancelled event bumps
        # _cancelled_popped. Every derived counter below is then O(1)
        # arithmetic with zero per-fire cost.
        self._cancelled_total = 0
        self._cancelled_popped = 0
        # Events reach their simulator through a class attribute rather
        # than an instance slot: cancel() is rare, event construction is
        # not, and this keeps the constructor as cheap as a plain event.
        self._event_cls = type("_BoundEvent", (_Event,), {"sim": self, "__slots__": ()})

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (useful for perf diagnostics).

        Derived rather than counted: every scheduled event is either still
        in the heap, was popped cancelled, or fired. Keeping this out of
        the fire loop pays for the consumed-flag store, so the loop does
        the same number of attribute stores per event as a loop with no
        cancellation bookkeeping at all.
        """
        return self._seq - len(self._heap) - self._cancelled_popped

    def schedule(self, delay_us: float, fn: Callable[[], Any]) -> _Event:
        """Schedule ``fn`` to run ``delay_us`` microseconds from now.

        Returns an event handle whose :meth:`_Event.cancel` prevents firing.
        Negative delays are rejected: an event cannot fire in the past.
        """
        if delay_us < 0:
            raise SimulationError(f"cannot schedule event {delay_us}us in the past")
        event = self._event_cls(self._now + delay_us, self._seq, fn)
        self._seq += 1
        heappush(self._heap, event)
        return event

    def schedule_at(self, time_us: float, fn: Callable[[], Any]) -> _Event:
        """Schedule ``fn`` at an absolute simulated time."""
        return self.schedule(time_us - self._now, fn)

    def run_until(self, end_time_us: float) -> None:
        """Run events until the clock reaches ``end_time_us``.

        Events scheduled exactly at ``end_time_us`` are executed; the clock
        finishes at ``end_time_us`` even if the heap drains earlier.
        """
        heap = self._heap
        pop = heappop
        while heap:
            event = heap[0]
            if event.time > end_time_us:
                break
            pop(heap)
            if event.cancelled:
                self._cancelled_popped += 1
                continue
            event.cancelled = True  # consumed: cancel() is now a no-op
            self._now = event.time
            event.fn()
        self._now = max(self._now, end_time_us)

    def run(self) -> None:
        """Run until no events remain."""
        heap = self._heap
        pop = heappop
        while heap:
            event = pop(heap)
            if event.cancelled:
                self._cancelled_popped += 1
                continue
            event.cancelled = True  # consumed: cancel() is now a no-op
            self._now = event.time
            event.fn()

    def run_until_profiled(self, end_time_us: float, profiler) -> None:
        """:meth:`run_until` with per-event phase timing.

        A separate method rather than a branch inside :meth:`run_until`
        on purpose: the un-profiled loop must stay byte-for-byte the
        seed hot path (``tests/unit/test_obs_overhead.py`` guards it).
        Semantics are identical — same firing order, same cancellation
        bookkeeping, same final clock — so a profiled run produces
        bit-identical simulation results; it only additionally reads
        the wall clock twice per event and attributes the callback's
        time to its pipeline phase (see :mod:`repro.prof.phases`).
        """
        from time import perf_counter as perf

        heap = self._heap
        pop = heappop
        phase_wall = profiler.phase_wall
        phase_events = profiler.phase_events
        cache = profiler._phase_cache
        resolve = profiler.resolve_phase
        bucket_us = profiler.bucket_us
        heap_peak = len(heap)
        loop_start = perf()
        t_prev = loop_start
        while heap:
            event = heap[0]
            if event.time > end_time_us:
                break
            if len(heap) > heap_peak:
                heap_peak = len(heap)
            pop(heap)
            if event.cancelled:
                self._cancelled_popped += 1
                continue
            event.cancelled = True  # consumed: cancel() is now a no-op
            self._now = event.time
            fn = event.fn
            t0 = perf()
            fn()
            t1 = perf()
            code = getattr(fn, "__code__", None)
            phase = cache.get(code)
            if phase is None:
                phase = resolve(fn)
            elapsed = t1 - t0
            phase_wall[phase] = phase_wall.get(phase, 0.0) + elapsed
            phase_events[phase] = phase_events.get(phase, 0) + 1
            phase_wall["engine.pop"] += t0 - t_prev
            t_prev = t1
            if bucket_us:
                profiler.bucket_add(event.time, phase, elapsed)
        self._now = max(self._now, end_time_us)
        loop_end = perf()
        phase_wall["engine.pop"] += loop_end - t_prev
        profiler.loop_wall_seconds += loop_end - loop_start
        counters = profiler.counters
        counters["events.heap_peak"] = max(
            counters.get("events.heap_peak", 0.0), float(heap_peak)
        )
        profiler.note_engine(self)

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return len(self._heap) - (self._cancelled_total - self._cancelled_popped)
