"""Shared helpers for the figure/table benchmarks.

Each bench regenerates one of the paper's tables or figures: it runs the
corresponding isol-bench experiment (at a documented device scale),
prints the rows/series the paper reports, and writes the same text to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference it.

The pytest-benchmark timer wraps the *whole experiment*, so
``--benchmark-only`` runs double as a performance regression check on
the simulator itself. Every bench uses a single round: the experiments
are deterministic and long.

Sweeps inside the experiments go through the process-global
:class:`~repro.exec.executor.SweepExecutor`; two environment variables
configure it for a bench session:

* ``ISOLBENCH_BENCH_WORKERS`` -- worker processes per sweep (default 1:
  serial, so the benchmark timer measures the simulator, not the pool);
* ``ISOLBENCH_BENCH_CACHE`` -- set to ``1`` to reuse/store summaries in
  the result cache (default off: a bench that reads cached results
  would time the cache, not the experiment).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def bench_executor():
    """Install the bench-session executor configured from the env."""
    from repro.exec import ResultCache, SweepExecutor, default_cache_dir, use_executor

    workers = int(os.environ.get("ISOLBENCH_BENCH_WORKERS", "1"))
    cache = (
        ResultCache(default_cache_dir())
        if os.environ.get("ISOLBENCH_BENCH_CACHE") == "1"
        else None
    )
    with SweepExecutor(max_workers=workers, cache=cache) as executor:
        with use_executor(executor):
            yield executor


@pytest.fixture
def figure_output():
    """Returns a writer: ``write(name, text)`` prints + persists."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
