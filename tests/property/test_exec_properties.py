"""Property-based tests (hypothesis) for the cache-key canonicalizer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BfqKnob
from repro.exec.cachekey import canonical_text, scenario_key
from tests.unit.test_exec_cachekey import base_scenario

# JSON-ish values of the kinds that appear inside Scenario/knob configs.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)
trees = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


class TestCanonicalTextProperties:
    @given(trees)
    @settings(max_examples=200)
    def test_deterministic(self, value):
        assert canonical_text(value) == canonical_text(value)

    @given(st.dictionaries(st.text(max_size=8), scalars, min_size=1, max_size=8))
    @settings(max_examples=200)
    def test_dict_insertion_order_invariant(self, mapping):
        reversed_insertion = dict(reversed(list(mapping.items())))
        assert canonical_text(mapping) == canonical_text(reversed_insertion)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_int_and_string_of_int_distinct(self, n):
        assert canonical_text(n) != canonical_text(str(n))


class TestScenarioKeyProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50)
    def test_equal_scenarios_hash_equal(self, seed, duration, cores):
        a = base_scenario(seed=seed, duration_s=duration, cores=cores)
        b = base_scenario(seed=seed, duration_s=duration, cores=cores)
        assert a is not b
        assert scenario_key(a) == scenario_key(b)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50)
    def test_seed_perturbation_changes_key(self, seed):
        assert scenario_key(base_scenario(seed=seed)) != scenario_key(
            base_scenario(seed=seed + 1)
        )

    @given(
        st.dictionaries(
            st.sampled_from(["/t/a", "/t/b", "/t/c", "/t/d"]),
            st.integers(min_value=1, max_value=1000),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=50)
    def test_knob_weights_reordering_is_identity(self, weights):
        forward = BfqKnob(weights=dict(weights))
        backward = BfqKnob(weights=dict(reversed(list(weights.items()))))
        assert scenario_key(base_scenario(knob=forward)) == scenario_key(
            base_scenario(knob=backward)
        )
