"""Fleet and tenant descriptions for placement.

The paper configures one host and one device; a fleet is N hosts x M
devices serving K tenants with heterogeneous SLOs. :class:`TenantSpec`
describes one tenant — a workload archetype (the paper's LC/batch/BE
app classes) plus a per-tenant SLO written in the exact grammar
``isol-bench tune --slo`` uses (:func:`repro.tune.slo.parse_group_terms`)
— and :class:`FleetSpec` describes the hardware: hosts, devices per
host, the device preset, and the per-device tenant capacity the
placement strategies must respect.

Device slots are named ``h<host>d<device>`` (``h0d0``, ``h0d1``, ...)
and ordered host-major; every placement artifact keys on those slot
names so reports stay byte-stable across worker counts.

Specs are plain frozen dataclasses with lossless JSON round-trips:
``isol-bench place --fleet my-fleet.json`` loads one with
:func:`load_fleet`, and :func:`demo_fleet` is the pinned golden fleet
the D7 experiment and CI smoke run against.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, replace

from repro.ssd.model import SsdModel
from repro.ssd.presets import get_preset
from repro.tune.slo import GroupSlo, SloSpec, parse_group_terms
from repro.workloads.apps import batch_app, be_app, lc_app
from repro.workloads.spec import JobSpec

#: Tenant workload archetypes (the paper's §II-A app classes).
TENANT_KINDS = ("lc", "batch", "be")

#: Default queue depth per archetype. LC tenants are QD=1 by definition;
#: batch/BE tenants run a moderate depth (not the paper's saturating 256)
#: so a single tenant does not monopolize a device by construction.
DEFAULT_QUEUE_DEPTH = {"lc": 1, "batch": 64, "be": 64}

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9\-]*$")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a workload archetype plus its service-level objective."""

    #: Tenant name; doubles as the cgroup leaf (``/tenants/<name>``).
    name: str
    #: Workload archetype: ``lc`` | ``batch`` | ``be``.
    kind: str = "batch"
    #: Request size in KiB.
    size_kib: int = 4
    #: Closed-loop queue depth; None uses the archetype default.
    queue_depth: int | None = None
    #: Fraction of requests that are reads (1.0 = read-only).
    read_fraction: float = 1.0
    #: SLO terms in the ``tune --slo`` per-group grammar, e.g.
    #: ``"p99<=150,bw>=5"``; empty = no objective (best-effort tenant).
    slo: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"tenant name {self.name!r} must be lowercase [a-z0-9-]"
            )
        if self.kind not in TENANT_KINDS:
            raise ValueError(
                f"tenant {self.name!r}: kind must be one of {TENANT_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.size_kib < 1:
            raise ValueError(f"tenant {self.name!r}: size_kib must be >= 1")
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(f"tenant {self.name!r}: queue_depth must be >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"tenant {self.name!r}: read_fraction in [0, 1]")
        # Validate the SLO text eagerly so a bad spec fails at parse
        # time, not in the middle of a placement run.
        parse_group_terms(self.slo)

    @property
    def cgroup(self) -> str:
        """The tenant's cgroup path (one cgroup per tenant)."""
        return f"/tenants/{self.name}"

    @property
    def effective_queue_depth(self) -> int:
        """The configured queue depth, or the archetype default."""
        return (
            self.queue_depth
            if self.queue_depth is not None
            else DEFAULT_QUEUE_DEPTH[self.kind]
        )

    def job_spec(self) -> JobSpec:
        """The tenant's workload as a :class:`~repro.workloads.spec.JobSpec`."""
        size = self.size_kib * 1024
        if self.kind == "lc":
            return lc_app(self.name, self.cgroup, size=size)
        builder = batch_app if self.kind == "batch" else be_app
        return builder(
            self.name,
            self.cgroup,
            size=size,
            read_fraction=self.read_fraction,
            queue_depth=self.effective_queue_depth,
        )

    def group_slo(self) -> GroupSlo | None:
        """The tenant's objective as a :class:`~repro.tune.slo.GroupSlo`."""
        p99, bandwidth = parse_group_terms(self.slo)
        if p99 is None and bandwidth is None:
            return None
        return GroupSlo(
            cgroup=self.cgroup, p99_latency_us=p99, min_bandwidth_mib_s=bandwidth
        )

    @property
    def p99_target_us(self) -> float | None:
        """The p99 ceiling (full-speed us), if the tenant declares one."""
        p99, _ = parse_group_terms(self.slo)
        return p99

    @property
    def objective_count(self) -> int:
        """How many SLO terms the tenant declares (eviction penalty unit)."""
        p99, bandwidth = parse_group_terms(self.slo)
        return int(p99 is not None) + int(bandwidth is not None)

    def to_json_dict(self) -> dict:
        """Lossless plain-dict form."""
        return {
            "name": self.name,
            "kind": self.kind,
            "size_kib": self.size_kib,
            "queue_depth": self.queue_depth,
            "read_fraction": self.read_fraction,
            "slo": self.slo,
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "TenantSpec":
        """Rebuild from a :meth:`to_json_dict` document."""
        return cls(**doc)


@dataclass(frozen=True)
class FleetSpec:
    """The hardware substrate plus the tenants to place on it."""

    #: Fleet name (report titles, golden files).
    name: str
    #: Number of hosts in the fleet.
    hosts: int
    #: Identical NVMe devices per host.
    devices_per_host: int
    #: The tenants to place.
    tenants: tuple[TenantSpec, ...]
    #: Device preset every slot runs (``flash`` | ``optane``).
    device: str = "flash"
    #: Hard per-device tenant count the strategies must respect.
    max_tenants_per_device: int = 2
    #: Predicted per-device SLO-violation score beyond which the
    #: migration/eviction pass treats the device as saturated. The
    #: default sits just above one fully-capped term
    #: (:data:`~repro.tune.slo.VIOLATION_CAP`), so a single blown
    #: objective is tolerated (the strategy comparison stays visible)
    #: but a device drowning multiple objectives gets shed.
    saturation_threshold: float = 12.0

    def __post_init__(self) -> None:
        if self.hosts < 1:
            raise ValueError("a fleet needs at least one host")
        if self.devices_per_host < 1:
            raise ValueError("a fleet needs at least one device per host")
        if not self.tenants:
            raise ValueError("a fleet needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        if self.max_tenants_per_device < 1:
            raise ValueError("max_tenants_per_device must be >= 1")
        if self.saturation_threshold <= 0:
            raise ValueError("saturation_threshold must be positive")
        try:
            get_preset(self.device)  # fail fast on unknown presets
        except KeyError as exc:
            raise ValueError(str(exc)) from None

    @property
    def num_devices(self) -> int:
        """Total device slots across the fleet."""
        return self.hosts * self.devices_per_host

    def slots(self) -> tuple[str, ...]:
        """Ordered device-slot names, host-major (``h0d0``, ``h0d1``, ...)."""
        return tuple(
            f"h{host}d{device}"
            for host in range(self.hosts)
            for device in range(self.devices_per_host)
        )

    def ssd_model(self) -> SsdModel:
        """The device preset every slot runs."""
        return get_preset(self.device)

    def tenant(self, name: str) -> TenantSpec:
        """Look one tenant up by name."""
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(f"no tenant {name!r} in fleet {self.name!r}")

    def tenant_names(self) -> tuple[str, ...]:
        """Tenant names in declaration order."""
        return tuple(tenant.name for tenant in self.tenants)

    def to_json_dict(self) -> dict:
        """Lossless plain-dict form (the ``--fleet`` file format)."""
        return {
            "name": self.name,
            "hosts": self.hosts,
            "devices_per_host": self.devices_per_host,
            "device": self.device,
            "max_tenants_per_device": self.max_tenants_per_device,
            "saturation_threshold": self.saturation_threshold,
            "tenants": [tenant.to_json_dict() for tenant in self.tenants],
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "FleetSpec":
        """Rebuild from a :meth:`to_json_dict` document."""
        doc = dict(doc)
        doc["tenants"] = tuple(
            TenantSpec.from_json_dict(tenant) for tenant in doc["tenants"]
        )
        return cls(**doc)


def load_fleet(path: str) -> FleetSpec:
    """Load a fleet description from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return FleetSpec.from_json_dict(json.load(handle))


def save_fleet(fleet: FleetSpec, path: str) -> None:
    """Write a fleet description as (sorted, indented) JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(fleet.to_json_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_slo_overrides(fleet: FleetSpec, spec: SloSpec) -> FleetSpec:
    """Override tenant SLOs from a full ``parse_slo`` spec.

    Each group clause whose cgroup is ``/tenants/<name>`` of a fleet
    tenant replaces that tenant's SLO terms; clauses naming unknown
    tenants are an error (a typo would otherwise silently drop the
    objective). The utilization floor, if present, does not apply to
    placement and is rejected for the same reason.
    """
    if spec.utilization_floor is not None:
        raise ValueError(
            "util>= clauses do not apply to fleet placement; "
            "declare per-tenant p99<=/bw>= objectives instead"
        )
    by_cgroup = {tenant.cgroup: tenant for tenant in fleet.tenants}
    overrides: dict[str, str] = {}
    for group in spec.groups:
        if group.cgroup not in by_cgroup:
            known = sorted(by_cgroup)
            raise ValueError(
                f"--slo names {group.cgroup!r}, which is no fleet tenant; "
                f"tenant cgroups: {known}"
            )
        terms = []
        if group.p99_latency_us is not None:
            terms.append(f"p99<={group.p99_latency_us:g}")
        if group.min_bandwidth_mib_s is not None:
            terms.append(f"bw>={group.min_bandwidth_mib_s:g}")
        overrides[group.cgroup] = ",".join(terms)
    tenants = tuple(
        replace(tenant, slo=overrides[tenant.cgroup])
        if tenant.cgroup in overrides
        else tenant
        for tenant in fleet.tenants
    )
    return replace(fleet, tenants=tenants)


def demo_fleet() -> FleetSpec:
    """The pinned golden fleet (D7, CI smoke, `place` default).

    Two hosts x two devices, five tenants: two latency-critical tenants
    with tight p99 ceilings and three saturating batch tenants with
    bandwidth floors. Sized so the placement problem has real structure:
    with at most two tenants per device, an interference-aware strategy
    can keep the LC tenants away from the batch aggressors, while naive
    strategies co-locate them and blow the p99 ceilings.
    """
    return FleetSpec(
        name="demo-fleet",
        hosts=2,
        devices_per_host=2,
        device="flash",
        max_tenants_per_device=2,
        tenants=(
            TenantSpec("lc-api", kind="lc", slo="p99<=120,bw>=4"),
            TenantSpec("lc-kv", kind="lc", slo="p99<=140,bw>=4"),
            TenantSpec("batch-etl", kind="batch", size_kib=64, slo="bw>=1500"),
            TenantSpec("batch-scan", kind="batch", size_kib=256, slo="bw>=1500"),
            TenantSpec(
                "batch-log",
                kind="batch",
                size_kib=64,
                read_fraction=0.0,
                slo="bw>=600",
            ),
        ),
    )
