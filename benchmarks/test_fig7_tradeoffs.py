"""Fig. 7: prioritization/utilization Pareto fronts (8 panels).

Regenerates the trade-off study of §VI-B: a priority batch app (top row)
or LC-app (bottom row) against four saturating BE apps, sweeping each
knob's configuration space; BE-workload variants exercise request sizes
and writes. Output: all sweep points plus each knob's Pareto front.
"""

import math

from conftest import run_once

from repro.core.d3_tradeoffs import sweep_knob, unprotected_baseline
from repro.core.pareto import pareto_front
from repro.core.report import render_table

DEVICE_SCALE = 8.0
SWEEP_POINTS = 6
KNOBS = ("mq-deadline", "bfq", "io.latency", "io.max", "io.cost")
BE_VARIANTS = ("rand-4k", "rand-256k", "rand-4k-write")


def _duration(knob):
    # io.latency needs to traverse its QD staircase (10 x 500 ms windows).
    return 8.0 if knob == "io.latency" else 0.5


def test_fig7_tradeoffs(benchmark, figure_output):
    def experiment():
        out = {}
        for kind in ("batch", "lc"):
            base = unprotected_baseline(
                kind, duration_s=0.5, warmup_s=0.15, device_scale=DEVICE_SCALE
            )
            out[("baseline", kind, "rand-4k")] = [base]
            for knob in KNOBS:
                variants = BE_VARIANTS if knob != "mq-deadline" else ("rand-4k",)
                for variant in variants:
                    out[(knob, kind, variant)] = sweep_knob(
                        knob,
                        kind,
                        be_variant=variant,
                        duration_s=_duration(knob),
                        warmup_s=_duration(knob) * 0.35,
                        device_scale=DEVICE_SCALE,
                        sweep_points=SWEEP_POINTS,
                        baseline_p99_us=base.priority_metric if kind == "lc" else None,
                    )
        return out

    sweeps = run_once(benchmark, experiment)
    rows = []
    for (knob, kind, variant), points in sorted(sweeps.items()):
        front = set(id(p) for p in pareto_front(points))
        for p in points:
            metric_name = "prio MiB/s" if kind == "batch" else "prio P99 us"
            rows.append(
                [
                    knob,
                    kind,
                    variant,
                    p.config_label,
                    p.aggregate_gib_s,
                    p.priority_metric if not math.isinf(p.priority_metric) else -1.0,
                    "front" if id(p) in front else "",
                ]
            )
    table = render_table(
        ["knob", "prio-kind", "BE variant", "config", "agg GiB/s", "prio metric", ""],
        rows,
        title=(
            "Fig. 7 -- priority/utilization trade-offs "
            f"(device 1/{DEVICE_SCALE:g}; latency metrics are full-speed equivalents)"
        ),
    )
    figure_output("fig7_tradeoffs", table)

    # Shape guards: O6-O9.
    iocost_batch = sweeps[("io.cost", "batch", "rand-4k")]
    aggs = [p.aggregate_gib_s for p in iocost_batch]
    prios = [p.priority_metric for p in iocost_batch]
    assert max(aggs) > 2 * min(aggs)  # utilization dial works
    assert sorted(prios)[1] > 0.4 * max(prios)  # priority protected

    iomax_batch = sweeps[("io.max", "batch", "rand-4k")]
    assert len(pareto_front(iomax_batch)) >= 4

    lc_iocost = sweeps[("io.cost", "lc", "rand-4k")]
    baseline_lc = sweeps[("baseline", "lc", "rand-4k")][0]
    assert min(p.priority_metric for p in lc_iocost) < 0.2 * baseline_lc.priority_metric
