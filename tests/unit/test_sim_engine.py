"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10.0]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(30.0, lambda: seen.append("c"))
        sim.schedule(10.0, lambda: seen.append("a"))
        sim.schedule(20.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_fire_in_fifo_order(self):
        sim = Simulator()
        seen = []
        for tag in ("first", "second", "third"):
            sim.schedule(5.0, lambda t=tag: seen.append(t))
        sim.run()
        assert seen == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.0]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(42.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42.0]

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(5.0, lambda: seen.append(("inner", sim.now)))

        sim.schedule(10.0, outer)
        sim.run()
        assert seen == [("outer", 10.0), ("inner", 15.0)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(10.0, lambda: seen.append("x"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("x"))
        sim.run()
        event.cancel()
        assert seen == ["x"]

    def test_cancelled_events_not_counted_pending(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        event.cancel()
        assert sim.pending_events() == 1


class TestRunUntil:
    def test_run_until_stops_future_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append("early"))
        sim.schedule(100.0, lambda: seen.append("late"))
        sim.run_until(50.0)
        assert seen == ["early"]
        assert sim.now == 50.0

    def test_run_until_includes_boundary_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(50.0, lambda: seen.append("edge"))
        sim.run_until(50.0)
        assert seen == ["edge"]

    def test_run_until_advances_clock_with_empty_heap(self):
        sim = Simulator()
        sim.run_until(123.0)
        assert sim.now == 123.0

    def test_run_until_can_be_resumed(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append("a"))
        sim.schedule(60.0, lambda: seen.append("b"))
        sim.run_until(30.0)
        assert seen == ["a"]
        sim.run_until(100.0)
        assert seen == ["a", "b"]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestPendingEvents:
    """The live count must track schedule/cancel/fire without heap scans."""

    def test_counts_scheduled_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.pending_events() == 5

    def test_fired_events_leave_the_count(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.schedule(50.0, lambda: None)
        sim.run_until(20.0)
        assert sim.pending_events() == 1
        sim.run()
        assert sim.pending_events() == 0

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events() == 1

    def test_cancel_after_fire_does_not_underflow(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        sim.schedule(20.0, lambda: None)
        sim.run_until(15.0)
        event.cancel()
        assert sim.pending_events() == 1

    def test_count_visible_from_inside_callbacks(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append(sim.pending_events()))
        sim.schedule(20.0, lambda: None)
        sim.schedule(30.0, lambda: None)
        sim.run()
        # While the first callback runs, only the two later events remain.
        assert seen == [2]

    def test_matches_brute_force_under_churn(self):
        sim = Simulator()
        events = []

        def spawn():
            events.append(sim.schedule(7.0, lambda: None))

        for i in range(50):
            events.append(sim.schedule(float(i % 7) + 1.0, spawn if i % 3 else (lambda: None)))
        for event in events[::4]:
            event.cancel()
        sim.run_until(4.0)
        brute = sum(1 for event in sim._heap if not event.cancelled)
        assert sim.pending_events() == brute


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def tick(n):
                trace.append((n, sim.now))
                if n < 20:
                    sim.schedule(float(n % 3) + 0.5, lambda: tick(n + 1))

            sim.schedule(0.0, lambda: tick(0))
            sim.run()
            return trace

        assert run_once() == run_once()
