"""Ablation: the lock-affinity skew behind scheduler unfairness (O3).

The simulator models MQ-DL/BFQ fairness collapse past the CPU saturation
point as biased dispatch-lock acquisition under deep group contention
(see :mod:`repro.cpu.model`). This ablation toggles the mechanism off to
show (a) it is the sole source of the collapse and (b) it leaves the
few-group regime untouched -- the two properties the paper's data
exhibits.
"""

import dataclasses

from conftest import run_once

from repro.core.d2_fairness import run_uniform_fairness
from repro.core.report import render_table
from repro.cpu import model as cpu_model


def _with_sigma(sigma_overrides):
    saved = dict(cpu_model.KNOB_PROFILES)
    for knob, sigma in sigma_overrides.items():
        cpu_model.KNOB_PROFILES[knob] = dataclasses.replace(
            saved[knob], saturation_unfairness_sigma=sigma
        )
    return saved


def test_lock_affinity_ablation(benchmark, figure_output):
    def experiment():
        rows = []
        for label, overrides in (
            ("modelled", {}),
            ("disabled", {"mq-deadline": 0.0, "bfq": 0.0}),
        ):
            saved = _with_sigma(overrides)
            try:
                for point in run_uniform_fairness(
                    group_counts=(4, 16),
                    knob_names=("mq-deadline", "bfq"),
                    duration_s=0.4,
                    warmup_s=0.12,
                ):
                    rows.append([label, point.knob, point.n_groups, point.fairness])
            finally:
                cpu_model.KNOB_PROFILES.clear()
                cpu_model.KNOB_PROFILES.update(saved)
        return rows

    rows = run_once(benchmark, experiment)
    table = render_table(
        ["affinity skew", "knob", "groups", "Jain"],
        rows,
        title="Ablation -- dispatch-lock affinity skew vs scheduler fairness",
    )
    figure_output("ablation_lock_affinity", table)

    def fairness(label, knob, groups):
        return next(r[3] for r in rows if r[:3] == [label, knob, groups])

    # With the mechanism on: collapse at 16 groups, none at 4.
    assert fairness("modelled", "mq-deadline", 16) < 0.9
    assert fairness("modelled", "mq-deadline", 4) > 0.97
    # With it off, the collapse disappears (BFQ keeps a small residual
    # wobble from slice-granular virtual-time clamping).
    assert fairness("disabled", "mq-deadline", 16) > 0.97
    assert fairness("disabled", "bfq", 16) > 0.90
