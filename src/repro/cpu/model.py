"""Per-knob CPU cost profiles.

Each I/O charges the submitting app's core a submission cost and a
completion cost. The cost per I/O depends on the queue depth the app runs
at: a QD=1 latency-sensitive app pays the full syscall/interrupt path per
I/O, while a QD=256 batch app amortizes it across batched io_uring
submissions. We interpolate between the two calibrated endpoints with a
``1/qd`` law.

The profile constants are calibrated against the paper's §V numbers
(documented inline); EXPERIMENTS.md records the resulting fits.
"""

from __future__ import annotations

from dataclasses import dataclass

# Clock speed of the modelled Xeon Silver 4210R, in cycles per microsecond.
CYCLES_PER_US = 2400.0


@dataclass(frozen=True)
class CpuCostProfile:
    """CPU cost parameters for one I/O-control knob."""

    name: str
    # Per-I/O on-core cost (submission + completion) at QD=1, microseconds.
    cost_qd1_us: float
    # Per-I/O on-core cost with deep, batched queues.
    cost_batched_us: float
    # Context switches per I/O (the paper's fio-reported metric).
    ctx_switches_per_io: float
    # Extra app-visible latency per I/O applied while the CPU run queue is
    # saturated. Models io.cost's deferred vtime/timer processing, which
    # the paper measures as a 48% P99 increase past CPU saturation (O1).
    saturated_extra_latency_us: float = 0.0
    # Per-cgroup spread of the submission-path cost under CPU saturation,
    # as a lognormal sigma. Models dispatch-lock acquisition affinity: on
    # a saturated host, cores topologically closer to the lock holder
    # reacquire a contended scheduler lock cheaper, so different tenants
    # see persistently different per-I/O costs. This is what makes
    # MQ-DL/BFQ fairness collapse past the CPU saturation point (O3);
    # lockless paths (none, the throttlers) do not exhibit it.
    # See benchmarks/test_ablation_lock_affinity.py for the ablation.
    saturation_unfairness_sigma: float = 0.0
    # Fraction of the cost charged at submission (remainder at completion).
    submit_fraction: float = 0.55

    def cost_per_io_us(self, queue_depth: int) -> float:
        """Interpolated per-I/O cost for an app running at ``queue_depth``."""
        qd = max(1, queue_depth)
        return self.cost_batched_us + (self.cost_qd1_us - self.cost_batched_us) / qd

    def submit_cost_us(self, queue_depth: int) -> float:
        """Portion of the per-I/O cost charged before device dispatch."""
        return self.cost_per_io_us(queue_depth) * self.submit_fraction

    def complete_cost_us(self, queue_depth: int) -> float:
        """Portion of the per-I/O cost charged on the completion path."""
        return self.cost_per_io_us(queue_depth) * (1.0 - self.submit_fraction)


# Calibration notes (paper §V):
# * none: 8 LC-apps -> 78.2% of one core; 7 SSDs CPU-bound at 9.87 GiB/s
#   over 10 cores -> ~3.9 us/IO batched.
# * mq-deadline: saturates a core slightly after none; 7-SSD ceiling
#   4.24 GiB/s over 10 cores -> ~9 us/IO batched; +~6% ctx switches.
# * bfq: saturates one core at ~8 LC-apps -> ~12 us/IO at QD1; 7-SSD
#   ceiling 2.14 GiB/s -> ~18 us/IO batched; +5% ctx switches.
# * io.max: +4.5% CPU vs none for 17 batch apps -> ~+0.4 us batched.
# * io.latency: little overhead (O1).
# * io.cost: +2% CPU at 8 LC apps; P99 +48% past CPU saturation modelled
#   as deferred-timer latency, not on-core work (utilization stays low).
KNOB_PROFILES: dict[str, CpuCostProfile] = {
    "none": CpuCostProfile("none", cost_qd1_us=8.1, cost_batched_us=3.86, ctx_switches_per_io=1.00),
    "mq-deadline": CpuCostProfile(
        "mq-deadline",
        cost_qd1_us=9.5,
        cost_batched_us=9.0,
        ctx_switches_per_io=1.06,
        saturation_unfairness_sigma=0.9,
    ),
    "bfq": CpuCostProfile(
        "bfq",
        cost_qd1_us=12.0,
        cost_batched_us=17.8,
        ctx_switches_per_io=1.05,
        saturation_unfairness_sigma=0.15,
    ),
    "io.max": CpuCostProfile(
        "io.max", cost_qd1_us=8.25, cost_batched_us=4.27, ctx_switches_per_io=1.01
    ),
    "io.latency": CpuCostProfile(
        "io.latency", cost_qd1_us=8.2, cost_batched_us=4.0, ctx_switches_per_io=1.01
    ),
    "io.cost": CpuCostProfile(
        "io.cost",
        cost_qd1_us=8.36,
        cost_batched_us=4.1,
        ctx_switches_per_io=1.02,
        saturated_extra_latency_us=45.0,
    ),
}


def profile_for_knob(knob_name: str) -> CpuCostProfile:
    """Profile lookup; raises ``KeyError`` with options on a bad name."""
    try:
        return KNOB_PROFILES[knob_name]
    except KeyError:
        raise KeyError(
            f"unknown knob {knob_name!r}; options: {sorted(KNOB_PROFILES)}"
        ) from None
