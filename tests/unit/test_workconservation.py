"""Unit tests for the work-conservation probe and dynamic io.max manager."""

import pytest

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.iocontrol.dynamic_iomax import DynamicIoMaxManager
from repro.iocontrol.iomax import IoMaxController
from repro.metrics.workconservation import WorkConservationProbe
from repro.sim.engine import Simulator

DEV = "259:0"


class TestProbe:
    def test_period_validated(self):
        with pytest.raises(ValueError):
            WorkConservationProbe(Simulator(), lambda: True, lambda: 0, period_us=0)

    def test_no_samples_is_zero(self):
        probe = WorkConservationProbe(Simulator(), lambda: True, lambda: 0)
        assert probe.violation_fraction == 0.0

    def test_counts_violations(self):
        sim = Simulator()
        probe = WorkConservationProbe(
            sim, device_idle=lambda: True, pending_requests=lambda: 5, period_us=10.0
        )
        probe.start()
        sim.run_until(100.0)
        assert probe.samples == 10
        assert probe.violation_fraction == 1.0

    def test_idle_without_pending_is_fine(self):
        sim = Simulator()
        probe = WorkConservationProbe(
            sim, device_idle=lambda: True, pending_requests=lambda: 0, period_us=10.0
        )
        probe.start()
        sim.run_until(100.0)
        assert probe.violation_fraction == 0.0

    def test_busy_device_with_pending_is_fine(self):
        sim = Simulator()
        probe = WorkConservationProbe(
            sim, device_idle=lambda: False, pending_requests=lambda: 9, period_us=10.0
        )
        probe.start()
        sim.run_until(100.0)
        assert probe.violation_fraction == 0.0

    def test_reset_clears_counters(self):
        sim = Simulator()
        probe = WorkConservationProbe(
            sim, device_idle=lambda: True, pending_requests=lambda: 1, period_us=10.0
        )
        probe.start()
        sim.run_until(50.0)
        probe.reset()
        assert probe.samples == 0
        assert probe.violation_fraction == 0.0

    def test_stop_halts_sampling(self):
        sim = Simulator()
        probe = WorkConservationProbe(
            sim, device_idle=lambda: True, pending_requests=lambda: 1, period_us=10.0
        )
        probe.start()
        sim.run_until(30.0)
        probe.stop()
        samples = probe.samples
        sim.run_until(200.0)
        assert probe.samples == samples


class TestDynamicIoMaxManager:
    def make_manager(self, weights=None, bytes_fn=None, **kwargs):
        sim = Simulator()
        tree = CgroupHierarchy()
        weights = weights or {"/t/a": 300.0, "/t/b": 100.0}
        for path in weights:
            tree.create(path, processes=True)
        controller = IoMaxController(sim, tree, DEV)
        state = {"bytes": {path: 0 for path in weights}}
        kwargs.setdefault("adjust_period_us", 1000.0)
        manager = DynamicIoMaxManager(
            sim,
            tree,
            controller,
            weights=weights,
            max_read_bps=400e6,
            bytes_completed_of=bytes_fn or (lambda path: state["bytes"][path]),
            device_id=DEV,
            **kwargs,
        )
        return sim, tree, controller, manager, state

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            self.make_manager(adjust_period_us=0)
        with pytest.raises(ValueError):
            self.make_manager(idle_floor_fraction=0.0)
        sim = Simulator()
        tree = CgroupHierarchy()
        with pytest.raises(ValueError):
            DynamicIoMaxManager(
                sim, tree, IoMaxController(sim, tree, DEV), weights={},
                max_read_bps=1.0, bytes_completed_of=lambda p: 0, device_id=DEV,
            )

    def test_initial_split_by_weight(self):
        sim, tree, _, manager, _ = self.make_manager()
        manager.start()
        a = tree.find("/t/a").read_parsed("io.max", DEV)
        b = tree.find("/t/b").read_parsed("io.max", DEV)
        assert a.rbps == pytest.approx(300e6, rel=0.01)
        assert b.rbps == pytest.approx(100e6, rel=0.01)

    def test_idle_group_demoted_to_floor(self):
        sim, tree, _, manager, state = self.make_manager()
        manager.start()
        # Only /t/b makes progress across the first window.
        state["bytes"]["/t/b"] = 1000
        sim.run_until(1000.0)
        a = tree.find("/t/a").read_parsed("io.max", DEV)
        b = tree.find("/t/b").read_parsed("io.max", DEV)
        assert b.rbps == pytest.approx(400e6, rel=0.01)  # whole device
        assert a.rbps < 20e6  # the floor

    def test_resumed_group_reearns_share(self):
        sim, tree, _, manager, state = self.make_manager()
        manager.start()
        state["bytes"]["/t/b"] = 1000
        sim.run_until(1000.0)  # a demoted
        state["bytes"]["/t/a"] = 500
        state["bytes"]["/t/b"] = 2000
        sim.run_until(2000.0)  # both active again
        a = tree.find("/t/a").read_parsed("io.max", DEV)
        assert a.rbps == pytest.approx(300e6, rel=0.01)

    def test_all_idle_keeps_full_split(self):
        sim, tree, _, manager, _ = self.make_manager()
        manager.start()
        sim.run_until(3000.0)  # nobody advances
        a = tree.find("/t/a").read_parsed("io.max", DEV)
        assert a.rbps == pytest.approx(300e6, rel=0.01)

    def test_stop_halts_adjustments(self):
        sim, _, _, manager, _ = self.make_manager()
        manager.start()
        manager.stop()
        adjustments = manager.adjustments
        sim.run_until(5000.0)
        assert manager.adjustments == adjustments
