"""Deterministic search strategies over knob parameter spaces.

Three strategies, all deterministic given (space, evaluator, budget,
seed) and all expressed against the same narrow evaluator surface --
``evaluator.evaluate_values(values_list, fidelity=...)`` returning one
:class:`~repro.tune.evaluator.Evaluation` per assignment:

* :func:`binary_search` -- per-dimension bracketing driven by
  :attr:`~repro.tune.slo.SloScore.needs_tightening`: a violated latency
  ceiling moves the bracket toward the stricter half of the dimension,
  anything else (bandwidth/utilization violations, or a fully met SLO)
  moves it looser. The natural fit for the monotone control dials
  (io.max fractions, io.latency targets).
* :func:`coordinate_descent` -- cyclic one-dimension-at-a-time grid
  refinement; each pass batch-evaluates a whole per-dimension grid in
  one executor sweep. The fit for interacting dimensions (io.cost's
  vrate/rlat/weight triple).
* :func:`random_halving` -- seeded random sampling plus successive
  halving: a wide low-fidelity rung (shortened runs) is culled by score
  and survivors are re-run at full fidelity. Draws exclusively from a
  dedicated :class:`~repro.sim.rng.RngStreams` stream
  (``tune.search.<space>``), so it perturbs no other consumer of the
  seed.
* :func:`grid_search` -- exhaustive enumeration for small discrete
  spaces (MQ-Deadline's class pairs).

Batching matters: every strategy proposes as many candidates per round
as it can so the evaluator's single ``run_strict`` call fans them over
the sweep executor's workers, and re-proposed assignments collapse in
the executor's dedup/cache layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sim.rng import RngStreams
from repro.tune.evaluator import Evaluation
from repro.tune.slo import VIOLATION_CAP
from repro.tune.space import KnobSpace

#: Strategy names accepted by :func:`search` (and the CLI's
#: ``--strategy``); ``auto`` defers to the space's declared default.
#: ``surrogate`` needs a fitted :class:`~repro.surrogate.filter.
#: SurrogatePrefilter` passed as ``prefilter=``.
STRATEGIES = ("auto", "binary", "coordinate", "random", "grid", "surrogate")

#: Successive-halving rung fidelities (fractions of full run duration),
#: shortest first. The final rung is always full fidelity so the best
#: candidate's score is comparable to the baseline's.
HALVING_FIDELITIES = (0.25, 0.5, 1.0)


@dataclass
class SearchOutcome:
    """What one strategy run found, with its full evaluation log."""

    #: The space searched (knob name).
    space: str
    #: The strategy that produced the outcome.
    strategy: str
    #: Best full-fidelity assignment found.
    best: Evaluation
    #: Every evaluation performed, in evaluation order.
    evaluations: list[Evaluation] = field(default_factory=list)


def _better(a: Evaluation, b: Evaluation | None) -> bool:
    """Strictly better: lower total, deterministic label tie-break."""
    if b is None:
        return True
    return (a.score.total, a.label) < (b.score.total, b.label)


def binary_search(space: KnobSpace, evaluator, budget: int) -> SearchOutcome:
    """Per-dimension bracketing along each parameter's strictness axis.

    Each ordered dimension gets an equal share of the budget. The
    bracket starts at the full bounds; each midpoint evaluation halves
    it toward the stricter side when latency objectives are violated
    (``needs_tightening``) and toward the looser side otherwise --
    chasing the tightest configuration that stops hurting latency
    without giving up bandwidth. Unordered dimensions
    (``stricter_low=None``) are pinned at their default.
    """
    params = space.parameters()
    ordered = [p for p in params if p.stricter_low is not None]
    if not ordered:
        raise ValueError(
            f"{space.name}: no ordered dimensions; use grid search instead"
        )
    values = dict(space.default_values())
    outcome = SearchOutcome(space=space.name, strategy="binary", best=None)  # type: ignore[arg-type]
    per_dim = max(1, budget // len(ordered))

    for param in ordered:
        lo, hi = param.lo, param.hi
        for _ in range(per_dim):
            mid = param.midpoint(lo, hi)
            if mid in (lo, hi):  # integer bracket exhausted
                break
            candidate = space.normalize({**values, param.name: mid})
            (evaluation,) = evaluator.evaluate_values([candidate])
            outcome.evaluations.append(evaluation)
            if _better(evaluation, outcome.best):
                outcome.best = evaluation
            if evaluation.score.needs_tightening:
                # Latency still violated: move toward the stricter half.
                if param.stricter_low:
                    hi = mid
                else:
                    lo = mid
            else:
                # Latency met (or only bw/util hurt): try loosening.
                if param.stricter_low:
                    lo = mid
                else:
                    hi = mid
        # Later dimensions refine around this dimension's best point.
        if outcome.best is not None:
            values = dict(outcome.best.values)

    if outcome.best is None:
        (evaluation,) = evaluator.evaluate_values([space.normalize(values)])
        outcome.evaluations.append(evaluation)
        outcome.best = evaluation
    return outcome


def coordinate_descent(
    space: KnobSpace, evaluator, budget: int, points_per_dim: int = 4
) -> SearchOutcome:
    """Cyclic per-dimension grid refinement.

    Each step fixes all dimensions but one, batch-evaluates a grid of
    ``points_per_dim`` values along the free dimension in a single
    executor sweep, and moves to the argmin (ties resolve to the
    first/strictest grid point, keeping the walk deterministic).
    Passes repeat until a full pass yields no improvement or the
    budget runs out.
    """
    params = space.parameters()
    values = dict(space.default_values())
    outcome = SearchOutcome(space=space.name, strategy="coordinate", best=None)  # type: ignore[arg-type]
    spent = 0

    improved = True
    while improved and spent < budget:
        improved = False
        for param in params:
            remaining = budget - spent
            if remaining <= 0:
                break
            grid = param.grid(min(points_per_dim, remaining))
            candidates = [
                space.normalize({**values, param.name: point}) for point in grid
            ]
            evaluations = evaluator.evaluate_values(candidates)
            spent += len(evaluations)
            outcome.evaluations.extend(evaluations)
            for evaluation in evaluations:
                if _better(evaluation, outcome.best):
                    outcome.best = evaluation
                    values = dict(evaluation.values)
                    improved = True

    if outcome.best is None:
        (evaluation,) = evaluator.evaluate_values([space.normalize(values)])
        outcome.evaluations.append(evaluation)
        outcome.best = evaluation
    return outcome


def random_halving(
    space: KnobSpace, evaluator, budget: int, seed: int = 42, eta: int = 2
) -> SearchOutcome:
    """Seeded random sampling + successive halving.

    The initial cohort size is chosen so that running the halving
    schedule (:data:`HALVING_FIDELITIES`, culling by ``1/eta`` per rung)
    costs about ``budget`` evaluations. Candidates are drawn from the
    dedicated ``tune.search.<space>`` RNG stream; survivors of each rung
    are the lowest-scoring ``ceil(n/eta)`` (label tie-break). Only the
    final full-fidelity rung competes for ``best``, so the reported
    score is never a short-run artifact.
    """
    rng = RngStreams(seed).stream(f"tune.search.{space.name}")
    params = space.parameters()
    rungs = len(HALVING_FIDELITIES)
    # cost(n0) = n0 * sum(eta^-i) evaluations across the schedule.
    schedule_cost = sum(eta**-i for i in range(rungs))
    n0 = max(eta ** (rungs - 1), int(budget / schedule_cost))

    cohort = [
        space.normalize({param.name: param.sample(rng) for param in params})
        for _ in range(n0)
    ]
    outcome = SearchOutcome(space=space.name, strategy="random", best=None)  # type: ignore[arg-type]

    for rung, fidelity in enumerate(HALVING_FIDELITIES):
        evaluations = evaluator.evaluate_values(cohort, fidelity=fidelity)
        outcome.evaluations.extend(evaluations)
        ranked = sorted(evaluations, key=lambda e: (e.score.total, e.label))
        if rung == rungs - 1:
            for evaluation in ranked:
                if _better(evaluation, outcome.best):
                    outcome.best = evaluation
            break
        survivors = max(1, math.ceil(len(ranked) / eta))
        cohort = [dict(evaluation.values) for evaluation in ranked[:survivors]]

    return outcome


def grid_search(space: KnobSpace, evaluator, budget: int) -> SearchOutcome:
    """Exhaustive one-dimensional grid (discrete spaces).

    Enumerates up to ``budget`` points of the first parameter's grid in
    one batched sweep. Intended for small unordered spaces like
    MQ-Deadline's class pairs, where every point is worth a look.
    """
    (param,) = space.parameters()
    points = param.grid(int(param.hi - param.lo) + 1 if param.integer else budget)
    if len(points) > budget:
        points = points[:budget]
    candidates = [space.normalize({param.name: point}) for point in points]
    evaluations = evaluator.evaluate_values(candidates)
    outcome = SearchOutcome(space=space.name, strategy="grid", best=None)  # type: ignore[arg-type]
    outcome.evaluations.extend(evaluations)
    for evaluation in evaluations:
        if _better(evaluation, outcome.best):
            outcome.best = evaluation
    return outcome


def surrogate_pool(space: KnobSpace, size: int, seed: int = 42) -> list[dict]:
    """A deterministic wide candidate pool for surrogate prefiltering.

    Construction order (deduped by label): the space default, dense
    per-dimension grids around the default (one dimension varied at a
    time), then seeded joint random samples from the dedicated
    ``tune.surrogate.<space>`` RNG stream until ``size`` distinct
    assignments exist (or the space is exhausted -- small discrete
    spaces stop early).
    """
    if size < 1:
        raise ValueError("pool size must be >= 1")
    params = space.parameters()
    defaults = space.default_values()
    pool: list[dict] = []
    seen: set[str] = set()

    def admit(values: dict) -> None:
        normalized = space.normalize(values)
        label = space.label(normalized)
        if label not in seen:
            seen.add(label)
            pool.append(normalized)

    admit(defaults)
    # Dense per-dimension sweeps: the axes pure strategies walk, but at
    # grid resolution no simulator budget could afford. Capped to half
    # the pool so joint random samples always get the other half --
    # a model trained on one-dimension-at-a-time points alone never
    # learns parameter interactions.
    grid_points = max(4, min(32, math.ceil(size / max(1, 2 * len(params)))))
    for param in params:
        for point in param.grid(grid_points):
            if len(pool) >= size:
                break
            admit({**defaults, param.name: point})
    # Joint random fill: coverage of dimension interactions.
    rng = RngStreams(seed).stream(f"tune.surrogate.{space.name}")
    attempts = 0
    while len(pool) < size and attempts < size * 20:
        admit({param.name: param.sample(rng) for param in params})
        attempts += 1
    return pool


def surrogate_search(
    space: KnobSpace,
    evaluator,
    budget: int,
    prefilter,
    seed: int = 42,
) -> SearchOutcome:
    """Surrogate-prefiltered search: score a wide pool, verify top-k.

    The pool is ``budget * prefilter.pool_factor`` distinct assignments
    (orders of magnitude wider than any pure strategy's reach at the
    same budget). The prefilter ranks the whole pool by *predicted* SLO
    violation; the verified set is mostly the predicted best, plus up
    to two deterministic quantile picks from deeper in the ranking
    (without spread, every verified candidate is a near-tie and the
    verified-set rank correlation the trust report relies on is
    meaningless) and always the space default as a safety anchor.
    Verification is one batched sweep through the real evaluator, and
    every verified candidate's surrogate-vs-simulator error is logged
    on the prefilter. Only *measured* scores compete for ``best``, so a
    wrong surrogate can waste budget but never misreport a winner.
    """
    pool = surrogate_pool(space, budget * prefilter.pool_factor, seed=seed)
    ranked = prefilter.rank(evaluator, pool)

    n_explore = min(2, budget - 1) if budget >= 3 else 0
    n_exploit = min(budget - n_explore, len(ranked))
    selected = ranked[:n_exploit]
    # Exploration skips candidates already predicted to bust the
    # violation cap (e.g. predicted-starved configurations): they can
    # never win, and their huge known-bad errors would swamp the
    # verified-set MAE the trust report is built on.
    tail = [
        c for c in ranked[n_exploit:] if c.predicted_total < VIOLATION_CAP
    ]
    for j in range(min(n_explore, len(tail))):
        index = ((j + 1) * (len(tail) - 1)) // (n_explore + 1)
        candidate = tail[index]
        if all(c.label != candidate.label for c in selected):
            selected.append(candidate)
    # Backfill from rank order when exploration found too few viable
    # picks, so the verification budget is always fully spent.
    for candidate in ranked:
        if len(selected) >= budget:
            break
        if all(c.label != candidate.label for c in selected):
            selected.append(candidate)
    anchor_label = space.label(space.normalize(space.default_values()))
    if len(selected) == budget and all(c.label != anchor_label for c in selected):
        anchor = next((c for c in ranked if c.label == anchor_label), None)
        if anchor is not None:
            selected = selected[:-1] + [anchor]

    evaluations = evaluator.evaluate_values([c.values for c in selected])
    outcome = SearchOutcome(space=space.name, strategy="surrogate", best=None)  # type: ignore[arg-type]
    for candidate, evaluation in zip(selected, evaluations):
        prefilter.observe(candidate, evaluation)
        outcome.evaluations.append(evaluation)
        if _better(evaluation, outcome.best):
            outcome.best = evaluation
    return outcome


def search(
    space: KnobSpace,
    evaluator,
    budget: int,
    strategy: str = "auto",
    seed: int = 42,
    prefilter=None,
) -> SearchOutcome:
    """Run one strategy (or the space's default) over one space.

    ``prefilter`` (a :class:`~repro.surrogate.filter.SurrogatePrefilter`)
    is required by -- and implies -- the ``surrogate`` strategy: passing
    one overrides any other strategy choice, mirroring the CLI's
    ``--surrogate`` flag layering on top of ``--strategy``.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    resolved = space.default_strategy if strategy == "auto" else strategy
    if prefilter is not None:
        resolved = "surrogate"
    if resolved == "surrogate":
        if prefilter is None:
            raise ValueError("the surrogate strategy needs a prefilter=")
        return surrogate_search(space, evaluator, budget, prefilter, seed=seed)
    if resolved == "binary":
        return binary_search(space, evaluator, budget)
    if resolved == "coordinate":
        return coordinate_descent(space, evaluator, budget)
    if resolved == "random":
        return random_halving(space, evaluator, budget, seed=seed)
    if resolved == "grid":
        return grid_search(space, evaluator, budget)
    raise ValueError(f"unknown strategy {strategy!r}; options: {STRATEGIES}")
