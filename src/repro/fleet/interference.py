"""Pairwise tenant interference measurement and prediction.

The placement problem needs an answer to "what happens to tenant A's
p99 and bandwidth when it shares a device with tenant B?" before any
tenant is placed. This module measures exactly that, the way the paper
measures isolation (§IV): run each tenant **solo** on a pristine device,
then run every unordered tenant **pair** co-located on one device, and
record the degradation.

The result is an :class:`InterferenceMatrix`:

* ``solo[a]`` — tenant ``a``'s solo p99 (full-speed us) and bandwidth
  (full-speed MiB/s); the baseline entitlement.
* ``effect(a, b)`` — a :class:`PairEffect`: the multiplicative p99
  inflation (>= 1) and bandwidth retention (<= 1) tenant ``a`` suffers
  when co-located with ``b``. Effects are directional: a QD=1 LC tenant
  barely dents a batch tenant, while the batch tenant inflates the LC
  tenant's p99 by orders of magnitude (the paper's Fig. 1 asymmetry).

For devices hosting more than two tenants the matrix **predicts** by
composing pairwise effects multiplicatively
(:meth:`InterferenceMatrix.predicted`) — the standard independence
approximation interference-aware placers make; ``docs/fleet.md``
discusses when it under-estimates.

Every scenario the builder fans out is deterministic and
content-addressed, so a warm :class:`~repro.exec.cache.ResultCache`
makes matrix construction free and two builds (any worker count) are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import NoneKnob, Scenario
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.fleet.spec import FleetSpec, TenantSpec
from repro.tune.slo import VIOLATION_CAP

#: p99 measured for a starved tenant (no completions): effectively
#: infinite, kept finite so JSON round-trips losslessly.
STARVED_P99_US = float(10**9)


@dataclass(frozen=True)
class TenantMeasure:
    """One tenant's measured (or predicted) delivery, full-speed units."""

    #: Pooled p99 latency in microseconds at full device speed; for
    #: tenants with no completions this is :data:`STARVED_P99_US`.
    p99_us: float
    #: Bandwidth in MiB/s at full device speed.
    bandwidth_mib_s: float

    def to_json_dict(self) -> dict:
        """Plain-dict form."""
        return {"p99_us": self.p99_us, "bandwidth_mib_s": self.bandwidth_mib_s}

    @classmethod
    def from_json_dict(cls, doc: dict) -> "TenantMeasure":
        """Rebuild from a :meth:`to_json_dict` document."""
        return cls(**doc)


@dataclass(frozen=True)
class PairEffect:
    """What co-location with ``partner`` does to ``tenant`` (directional)."""

    #: The tenant whose delivery degrades.
    tenant: str
    #: The co-located tenant causing the degradation.
    partner: str
    #: Multiplicative p99 inflation, clamped to >= 1.0.
    p99_ratio: float
    #: Multiplicative bandwidth retention, clamped to (0, 1].
    bandwidth_retention: float
    #: True when the effect came from a surrogate predictor rather than
    #: a measured pair scenario.
    predicted: bool = False

    def to_json_dict(self) -> dict:
        """Plain-dict form (``predicted`` only serialized when True)."""
        doc = {
            "tenant": self.tenant,
            "partner": self.partner,
            "p99_ratio": self.p99_ratio,
            "bandwidth_retention": self.bandwidth_retention,
        }
        if self.predicted:
            doc["predicted"] = True
        return doc

    @classmethod
    def from_json_dict(cls, doc: dict) -> "PairEffect":
        """Rebuild from a :meth:`to_json_dict` document."""
        return cls(**doc)


@dataclass(frozen=True)
class MatrixSettings:
    """Timeline and scale of the matrix measurement scenarios."""

    #: Per-scenario simulated duration in seconds.
    duration_s: float = 2.0
    #: Warmup excluded from measurement, seconds.
    warmup_s: float = 0.5
    #: Device slow-down factor (pure time dilation; see DESIGN.md).
    device_scale: float = 8.0
    #: Base RNG seed for every measurement scenario.
    seed: int = 42


#: ``--mini`` measurement settings: the fastest deterministic smoke.
MINI_MATRIX = MatrixSettings(duration_s=0.3, warmup_s=0.1, device_scale=16.0)

#: ``--quick`` measurement settings: CI-friendly fidelity.
QUICK_MATRIX = MatrixSettings(duration_s=0.8, warmup_s=0.2, device_scale=8.0)


def measure_from_summary(
    summary: ScenarioSummary, cgroup: str
) -> TenantMeasure:
    """Extract one tenant's full-speed delivery from a scenario summary.

    Uses the same unit conventions as :func:`repro.tune.slo.score_summary`:
    p99 divides by ``device_scale``, bandwidth multiplies by it. A tenant
    with no completions measures :data:`STARVED_P99_US` / 0 MiB/s.
    """
    scale = summary.device_scale
    stats = summary.cgroup_stats().get(cgroup)
    if stats is None or stats.latency is None:
        bandwidth = stats.bandwidth_mib_s * scale if stats is not None else 0.0
        return TenantMeasure(p99_us=STARVED_P99_US, bandwidth_mib_s=bandwidth)
    return TenantMeasure(
        p99_us=stats.latency.p99_us / scale,
        bandwidth_mib_s=stats.bandwidth_mib_s * scale,
    )


def slo_violation(measure: TenantMeasure, tenant: TenantSpec) -> float:
    """Score one tenant's (measured or predicted) delivery against its SLO.

    The exact normalized-and-capped formula of
    :func:`repro.tune.slo.score_summary`: a p99 ceiling contributes
    ``measured/target - 1`` when exceeded, a bandwidth floor contributes
    ``(target - measured)/target``, each clamped to
    :data:`~repro.tune.slo.VIOLATION_CAP`. Zero means the SLO is met.
    """
    group = tenant.group_slo()
    if group is None:
        return 0.0
    total = 0.0
    if group.p99_latency_us is not None:
        total += max(
            0.0, min(VIOLATION_CAP, measure.p99_us / group.p99_latency_us - 1.0)
        )
    if group.min_bandwidth_mib_s is not None:
        floor = group.min_bandwidth_mib_s
        total += max(
            0.0, min(VIOLATION_CAP, (floor - measure.bandwidth_mib_s) / floor)
        )
    return total


def solo_scenario(
    fleet: FleetSpec, tenant: TenantSpec, settings: MatrixSettings
) -> Scenario:
    """The tenant-alone-on-a-device measurement scenario."""
    return Scenario(
        name=f"fleet-{fleet.name}-solo-{tenant.name}",
        knob=NoneKnob(),
        apps=[tenant.job_spec()],
        ssd_model=fleet.ssd_model(),
        duration_s=settings.duration_s,
        warmup_s=settings.warmup_s,
        seed=settings.seed,
        device_scale=settings.device_scale,
    )


def pair_scenario(
    fleet: FleetSpec,
    first: TenantSpec,
    second: TenantSpec,
    settings: MatrixSettings,
) -> Scenario:
    """The two-tenants-sharing-one-device measurement scenario."""
    return Scenario(
        name=f"fleet-{fleet.name}-pair-{first.name}+{second.name}",
        knob=NoneKnob(),
        apps=[first.job_spec(), second.job_spec()],
        ssd_model=fleet.ssd_model(),
        duration_s=settings.duration_s,
        warmup_s=settings.warmup_s,
        seed=settings.seed,
        device_scale=settings.device_scale,
    )


@dataclass(frozen=True)
class InterferenceMatrix:
    """Solo baselines plus directional pairwise degradation effects."""

    #: The fleet the matrix was measured for.
    fleet_name: str
    #: Tenant name -> solo delivery (the entitlement baseline).
    solo: dict[str, TenantMeasure]
    #: ``(tenant, partner)`` -> directional effect, both orders present
    #: for every unordered measured pair.
    effects: dict[tuple[str, str], PairEffect]

    def effect(self, tenant: str, partner: str) -> PairEffect:
        """The directional effect of ``partner`` on ``tenant``."""
        try:
            return self.effects[(tenant, partner)]
        except KeyError:
            raise KeyError(
                f"no measured effect of {partner!r} on {tenant!r} "
                f"in matrix for {self.fleet_name!r}"
            ) from None

    def predicted(self, tenant: str, co_residents: tuple[str, ...]) -> TenantMeasure:
        """Predict a tenant's delivery among the given co-residents.

        Pairwise effects compose multiplicatively (the independence
        approximation): p99 multiplies every co-resident's
        ``p99_ratio``, bandwidth multiplies every ``bandwidth_retention``.
        With no co-residents this is the solo measurement.
        """
        measure = self.solo[tenant]
        p99 = measure.p99_us
        bandwidth = measure.bandwidth_mib_s
        for other in co_residents:
            if other == tenant:
                continue
            pair = self.effect(tenant, other)
            p99 = min(STARVED_P99_US, p99 * pair.p99_ratio)
            bandwidth *= pair.bandwidth_retention
        return TenantMeasure(p99_us=p99, bandwidth_mib_s=bandwidth)

    def to_json_dict(self) -> dict:
        """Plain-dict form (stable ordering for golden files)."""
        return {
            "fleet_name": self.fleet_name,
            "solo": {
                name: self.solo[name].to_json_dict() for name in sorted(self.solo)
            },
            "effects": [
                self.effects[key].to_json_dict() for key in sorted(self.effects)
            ],
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "InterferenceMatrix":
        """Rebuild from a :meth:`to_json_dict` document."""
        effects = {}
        for entry in doc["effects"]:
            effect = PairEffect.from_json_dict(entry)
            effects[(effect.tenant, effect.partner)] = effect
        return cls(
            fleet_name=doc["fleet_name"],
            solo={
                name: TenantMeasure.from_json_dict(entry)
                for name, entry in doc["solo"].items()
            },
            effects=effects,
        )


def tenant_pairs(fleet: FleetSpec) -> list[tuple[TenantSpec, TenantSpec]]:
    """Every unordered tenant pair, in tenant declaration order."""
    tenants = fleet.tenants
    return [
        (first, second)
        for i, first in enumerate(tenants)
        for second in tenants[i + 1 :]
    ]


def matrix_scenarios(
    fleet: FleetSpec,
    settings: MatrixSettings,
    measure_pairs: int | None = None,
) -> list[Scenario]:
    """Every scenario the matrix measures: N solo runs + pair runs.

    Ordered solo-first then pairs in tenant declaration order, so one
    :meth:`~repro.exec.executor.SweepExecutor.run_strict` call fans the
    whole measurement out and results map back positionally. With
    ``measure_pairs`` set, only the first that many pairs are measured
    (the rest are for a surrogate predictor to fill in).
    """
    pairs = tenant_pairs(fleet)
    if measure_pairs is not None:
        pairs = pairs[:measure_pairs]
    scenarios = [
        solo_scenario(fleet, tenant, settings) for tenant in fleet.tenants
    ]
    scenarios.extend(
        pair_scenario(fleet, first, second, settings) for first, second in pairs
    )
    return scenarios


def build_matrix(
    fleet: FleetSpec,
    settings: MatrixSettings,
    executor: SweepExecutor | None = None,
    predictor=None,
    measure_pairs: int | None = None,
) -> InterferenceMatrix:
    """Measure (and optionally predict) the fleet's interference matrix.

    Runs :func:`matrix_scenarios` through the (cached, parallel) sweep
    executor, then derives solo baselines and directional pair effects.
    Deterministic: the same fleet + settings produce a bit-identical
    matrix at any worker count, and a warm cache executes nothing.

    ``measure_pairs`` caps how many pairs (in declaration order) are
    measured with real pair scenarios; the remainder are filled in by
    ``predictor(first, second, solo) -> (effect_on_first,
    effect_on_second)`` -- e.g. a
    :class:`~repro.surrogate.predictor.SurrogatePairPredictor` -- whose
    effects carry ``predicted=True``. Capping without a predictor is an
    error: the matrix must stay complete.
    """
    pairs = tenant_pairs(fleet)
    measured = pairs if measure_pairs is None else pairs[:measure_pairs]
    if len(measured) < len(pairs) and predictor is None:
        raise ValueError(
            f"measure_pairs={measure_pairs} leaves "
            f"{len(pairs) - len(measured)} of {len(pairs)} pairs "
            "unmeasured; pass predictor= to fill them in"
        )
    runner = resolve_executor(executor)
    tenants = fleet.tenants
    summaries = runner.run_strict(
        matrix_scenarios(fleet, settings, measure_pairs=measure_pairs)
    )

    solo: dict[str, TenantMeasure] = {}
    for tenant, summary in zip(tenants, summaries[: len(tenants)]):
        solo[tenant.name] = measure_from_summary(summary, tenant.cgroup)

    effects: dict[tuple[str, str], PairEffect] = {}
    cursor = len(tenants)
    for first, second in measured:
        summary = summaries[cursor]
        cursor += 1
        for tenant, partner in ((first, second), (second, first)):
            shared = measure_from_summary(summary, tenant.cgroup)
            base = solo[tenant.name]
            if base.p99_us > 0:
                ratio = max(1.0, shared.p99_us / base.p99_us)
            else:
                ratio = 1.0
            if base.bandwidth_mib_s > 0:
                retention = shared.bandwidth_mib_s / base.bandwidth_mib_s
                retention = max(1e-6, min(1.0, retention))
            else:
                retention = 1.0
            effects[(tenant.name, partner.name)] = PairEffect(
                tenant=tenant.name,
                partner=partner.name,
                p99_ratio=ratio,
                bandwidth_retention=retention,
            )

    for first, second in pairs[len(measured):]:
        effect_first, effect_second = predictor(first, second, solo)
        effects[(first.name, second.name)] = effect_first
        effects[(second.name, first.name)] = effect_second

    return InterferenceMatrix(fleet_name=fleet.name, solo=solo, effects=effects)
