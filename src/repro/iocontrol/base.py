"""Interfaces between the block-layer pieces.

The pipeline is: app -> (cpu submit cost) -> :class:`ThrottleLayer`
-> :class:`IoScheduler` -> dispatch engine -> device -> (cpu complete
cost) -> app. Throttlers may hold a request back before it becomes
visible to the scheduler, exactly where blk-throttle / blk-iolatency /
blk-iocost sit in Linux.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.iorequest import IoRequest

ForwardFn = Callable[[IoRequest], None]


class ThrottleLayer:
    """cgroup-level I/O controller (io.max / io.latency / io.cost)."""

    name = "throttle"
    # Degraded-mode counter: device errors and watchdog timeouts observed
    # on requests this controller admitted. A class-level 0 default keeps
    # fault-free construction free; on_fault() promotes it to an instance
    # attribute on first use.
    faulted = 0

    def start(self) -> None:
        """Arm periodic timers. Called once when the scenario starts."""

    def on_fault(self, req: IoRequest) -> None:
        """Account a device error / timeout on an admitted request.

        Real controllers see degraded devices only through their own
        latency/budget feedback; this explicit counter is what lets the
        sampler distinguish "slow because throttled" from "slow because
        faulted" per knob.
        """
        self.faulted += 1

    def submit(self, req: IoRequest, forward: ForwardFn) -> None:
        """Admit ``req`` downstream (possibly later) by calling ``forward``."""
        raise NotImplementedError

    def on_complete(self, req: IoRequest) -> None:
        """Observe a completion (latency samples, budget accounting)."""

    def pending(self) -> int:
        """Requests currently held back by this controller.

        Feeds the work-conservation probe (held-back requests while the
        device has idle capacity are sacrificed utilization, §II-B) and
        the periodic stack sampler. Every controller must implement it;
        a silent ``return 0`` stub would make a non-work-conserving knob
        look perfect.
        """
        raise NotImplementedError

    def snapshot(self) -> dict[str, float]:
        """Controller internals for the periodic sampler (io.stat-style).

        Returns a flat ``metric name -> value`` mapping; keys should be
        stable across ticks so exported time series line up. The default
        is empty apart from the degraded-mode counter: a stateless
        controller has nothing else to report beyond :meth:`pending`,
        which the sampler records separately.
        """
        return {"faulted": float(self.faulted)}


class PassthroughThrottle(ThrottleLayer):
    """No cgroup throttling configured: requests pass straight through."""

    name = "none"

    def submit(self, req: IoRequest, forward: ForwardFn) -> None:
        forward(req)

    def pending(self) -> int:
        """A passthrough never holds requests back."""
        return 0


class IoScheduler:
    """Block-layer I/O scheduler for one device (request queue).

    ``pop`` returns ``(request, retry_at)``: a request to dispatch, or
    ``None`` plus an optional absolute time at which the dispatch engine
    should ask again (used by BFQ's slice idling and MQ-DL's aging).
    """

    name = "scheduler"
    # Time spent inside the serialized dispatch section per request. This
    # is the single-lock bottleneck the paper identifies as the bandwidth
    # scalability ceiling of MQ-DL and BFQ (O2).
    lock_overhead_us = 0.0

    def add(self, req: IoRequest) -> None:
        """Insert a request into the scheduler's queues."""
        raise NotImplementedError

    def pop(self, now: float) -> tuple[Optional[IoRequest], Optional[float]]:
        """Pick the next request to dispatch (policy decision point)."""
        raise NotImplementedError

    def on_complete(self, req: IoRequest) -> None:
        """Observe a completion (slice/in-flight accounting)."""

    def queued(self) -> int:
        """Number of requests currently held in scheduler queues."""
        raise NotImplementedError

    def snapshot(self) -> dict[str, float]:
        """Scheduler internals for the periodic sampler.

        Schedulers with richer policy state (BFQ's in-service queue,
        MQ-DL's per-class backlogs) override this to expose it.
        """
        return {"queued": float(self.queued())}
