"""Linux I/O control mechanisms, re-implemented from their algorithms.

Two kinds of mechanism exist, matching the kernel's block layer:

* **Schedulers** order/gate dispatch at the request queue:
  ``none`` (FIFO passthrough), ``mq-deadline`` (per-priority-class queues
  with an anti-starvation aging timeout, driven by ``io.prio.class``),
  ``bfq`` (budget fair queueing over cgroup weights with slice idling,
  driven by ``io.bfq.weight``).
* **Throttlers** sit at the cgroup layer above the scheduler:
  ``io.max`` (token buckets), ``io.latency`` (windowed queue-depth
  throttling with ``use_delay``), ``io.cost`` (vtime/vrate budgeting over
  a linear device cost model, with ``io.weight``).

Each implementation documents the kernel behaviour it reproduces and the
paper observation that depends on it.
"""

from repro.iocontrol.base import IoScheduler, ThrottleLayer, PassthroughThrottle
from repro.iocontrol.nonectl import NoneScheduler
from repro.iocontrol.mq_deadline import MqDeadlineScheduler
from repro.iocontrol.bfq import BfqScheduler
from repro.iocontrol.iomax import IoMaxController
from repro.iocontrol.iolatency import IoLatencyController
from repro.iocontrol.iocost import IoCostController, cost_coefficients
from repro.iocontrol.dispatch import DispatchEngine

__all__ = [
    "IoScheduler",
    "ThrottleLayer",
    "PassthroughThrottle",
    "NoneScheduler",
    "MqDeadlineScheduler",
    "BfqScheduler",
    "IoMaxController",
    "IoLatencyController",
    "IoCostController",
    "cost_coefficients",
    "DispatchEngine",
]
