"""Tenant SLO specifications and violation scoring.

The paper's Table I asks "which knob, configured how?" against a set of
desiderata; an operator asks the same question against a *service level
objective*: "tenant A's p99 stays under X, tenant B keeps at least Y
MiB/s, and the device is not left idle". :class:`SloSpec` captures that
contract and :func:`score_summary` turns one
:class:`~repro.exec.summary.ScenarioSummary` into a scalar
**SLO-violation score** the search strategies in
:mod:`repro.tune.search` minimize.

Units are always *full-device-speed* microseconds and MiB/s: scenario
summaries carry time-dilated numbers (see ``SsdModel.scaled``), and the
scorer converts them back using ``summary.device_scale``, so one SLO
spec is valid at every effort level (``--mini`` through full scale).

Scoring model (lower is better, ``0.0`` means every term is met):

* a p99 ceiling contributes ``measured/target - 1`` when exceeded;
* a bandwidth floor contributes ``(target - measured)/target``;
* the device-utilization floor contributes ``(floor - util)/floor``
  where ``util`` is aggregate bandwidth over the device's nominal 4 KiB
  random-read saturation (overridable);
* each term is clamped to :data:`VIOLATION_CAP` so a starved group (no
  completions at all) dominates without producing infinities, and the
  terms stay comparable across knobs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.exec.summary import ScenarioSummary
from repro.ssd.model import SsdModel, describe_model_dict

#: Per-term ceiling on the normalized violation. A cgroup that completes
#: no I/O at all scores the cap on each of its terms -- decisively worse
#: than any functioning configuration, but still finite and comparable.
VIOLATION_CAP = 10.0


@dataclass(frozen=True)
class GroupSlo:
    """The objective of one cgroup, in full-device-speed units."""

    #: Cgroup path the objective applies to (e.g. ``/tenants/prio``).
    cgroup: str
    #: Pooled p99 latency ceiling in microseconds; None = no ceiling.
    p99_latency_us: float | None = None
    #: Bandwidth floor in MiB/s; None = no floor.
    min_bandwidth_mib_s: float | None = None

    def __post_init__(self) -> None:
        if not self.cgroup.startswith("/"):
            raise ValueError(f"cgroup path must be absolute, got {self.cgroup!r}")
        if self.p99_latency_us is not None and self.p99_latency_us <= 0:
            raise ValueError("p99_latency_us must be positive")
        if self.min_bandwidth_mib_s is not None and self.min_bandwidth_mib_s <= 0:
            raise ValueError("min_bandwidth_mib_s must be positive")
        if self.p99_latency_us is None and self.min_bandwidth_mib_s is None:
            raise ValueError(f"group {self.cgroup!r} declares no objective")


@dataclass(frozen=True)
class SloSpec:
    """A complete tenant SLO: per-group objectives plus a global floor."""

    #: Per-cgroup objectives (at least one required).
    groups: tuple[GroupSlo, ...]
    #: Minimum fraction of the device's nominal saturation bandwidth the
    #: configuration must keep in use (the paper's D3 utilization axis);
    #: None disables the term.
    utilization_floor: float | None = None
    #: Reference bandwidth for the utilization term, MiB/s at full device
    #: speed; None derives the 4 KiB random-read saturation point from
    #: the scenario's SSD model (the same source ``tune.space`` uses).
    utilization_reference_mib_s: float | None = None
    #: Relative weights of the three term families in the total score.
    latency_weight: float = 1.0
    bandwidth_weight: float = 1.0
    utilization_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("an SLO spec needs at least one group objective")
        paths = [group.cgroup for group in self.groups]
        if len(set(paths)) != len(paths):
            raise ValueError(f"duplicate group objectives: {sorted(paths)}")
        if self.utilization_floor is not None and not 0 < self.utilization_floor <= 1:
            raise ValueError("utilization_floor must be in (0, 1]")
        for name in ("latency_weight", "bandwidth_weight", "utilization_weight"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def describe(self) -> str:
        """The spec in ``parse_slo`` syntax (round-trips through it)."""
        parts = []
        for group in self.groups:
            terms = []
            if group.p99_latency_us is not None:
                terms.append(f"p99<={group.p99_latency_us:g}")
            if group.min_bandwidth_mib_s is not None:
                terms.append(f"bw>={group.min_bandwidth_mib_s:g}")
            parts.append(f"{group.cgroup}:{','.join(terms)}")
        if self.utilization_floor is not None:
            parts.append(f"util>={self.utilization_floor:g}")
        return ";".join(parts)


_GROUP_TERM_RE = re.compile(r"^(p99<=|bw>=)\s*([0-9.eE+-]+)\s*(us|mib)?$")
_UTIL_RE = re.compile(r"^util>=\s*([0-9.eE+-]+)$")


def parse_group_terms(terms_text: str) -> tuple[float | None, float | None]:
    """Parse one group's ``p99<=N,bw>=N`` term list.

    This is the per-group half of the :func:`parse_slo` grammar, exposed
    on its own so other subsystems (``repro.fleet``'s tenant SLOs) can
    reuse the exact syntax without synthesizing a full spec string.
    Returns ``(p99_latency_us, min_bandwidth_mib_s)``; either side is
    None when its term is absent.
    """
    p99 = bandwidth = None
    for term in terms_text.split(","):
        term = term.strip()
        if not term:
            continue
        match = _GROUP_TERM_RE.match(term)
        if not match:
            raise ValueError(f"cannot parse SLO term {term!r} in {terms_text!r}")
        value = float(match.group(2))
        if match.group(1) == "p99<=":
            p99 = value
        else:
            bandwidth = value
    return p99, bandwidth


def parse_slo(text: str) -> SloSpec:
    """Parse the CLI's compact SLO syntax into an :class:`SloSpec`.

    Grammar (semicolon-separated clauses)::

        /cgroup/path:p99<=400,bw>=40 ; /other:bw>=100 ; util>=0.25

    ``p99<=`` is a latency ceiling in microseconds (optional ``us``
    suffix), ``bw>=`` a bandwidth floor in MiB/s (optional ``mib``
    suffix), ``util>=`` the device-utilization floor as a fraction.
    """
    groups: list[GroupSlo] = []
    utilization_floor: float | None = None
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        util_match = _UTIL_RE.match(clause)
        if util_match:
            if utilization_floor is not None:
                raise ValueError(f"duplicate util>= clause in {text!r}")
            utilization_floor = float(util_match.group(1))
            continue
        path, sep, terms_text = clause.partition(":")
        if not sep or not path.startswith("/"):
            raise ValueError(
                f"cannot parse SLO clause {clause!r}; expected "
                f"'/cgroup:p99<=N,bw>=N' or 'util>=F'"
            )
        p99, bandwidth = parse_group_terms(terms_text)
        groups.append(
            GroupSlo(cgroup=path, p99_latency_us=p99, min_bandwidth_mib_s=bandwidth)
        )
    return SloSpec(groups=tuple(groups), utilization_floor=utilization_floor)


@dataclass(frozen=True)
class SloTerm:
    """One scored objective: what was asked, what was measured."""

    #: Term family: ``p99`` | ``bandwidth`` | ``utilization``.
    kind: str
    #: Cgroup path the term belongs to ("" for the utilization term).
    cgroup: str
    #: The SLO bound, in the term's native full-speed unit.
    target: float
    #: The measured full-speed value (``inf`` for a starved group's p99).
    measured: float
    #: Normalized, capped violation (0.0 when the bound is met).
    violation: float

    def to_json_dict(self) -> dict:
        """Plain-dict form for reports and decision traces."""
        measured = self.measured
        return {
            "kind": self.kind,
            "cgroup": self.cgroup,
            "target": self.target,
            "measured": measured if measured != float("inf") else "inf",
            "violation": self.violation,
        }


@dataclass(frozen=True)
class SloScore:
    """A scored summary: per-term breakdown plus the weighted total."""

    terms: tuple[SloTerm, ...]
    #: The spec's term-family weights, captured for reproducible totals.
    weights: tuple[float, float, float] = (1.0, 1.0, 1.0)

    def _family_total(self, kind: str) -> float:
        """Sum the violations of every term of the given kind."""
        return sum(term.violation for term in self.terms if term.kind == kind)

    @property
    def latency_total(self) -> float:
        """Summed p99 violations (unweighted)."""
        return self._family_total("p99")

    @property
    def bandwidth_total(self) -> float:
        """Summed bandwidth-floor violations (unweighted)."""
        return self._family_total("bandwidth")

    @property
    def utilization_total(self) -> float:
        """The utilization-floor violation (unweighted)."""
        return self._family_total("utilization")

    @property
    def total(self) -> float:
        """The weighted SLO-violation score the tuner minimizes."""
        lat_w, bw_w, util_w = self.weights
        return (
            lat_w * self.latency_total
            + bw_w * self.bandwidth_total
            + util_w * self.utilization_total
        )

    @property
    def meets_slo(self) -> bool:
        """True when every term is satisfied."""
        return all(term.violation == 0.0 for term in self.terms)

    @property
    def needs_tightening(self) -> bool:
        """Latency objectives are violated: control must get stricter.

        The binary-search strategy uses this as its bracketing signal;
        when False but other terms are violated, control should *loosen*
        to win back bandwidth/utilization.
        """
        return self.latency_total > 0.0

    def to_json_dict(self) -> dict:
        """Plain-dict form for reports and decision traces."""
        return {
            "total": self.total,
            "meets_slo": self.meets_slo,
            "terms": [term.to_json_dict() for term in self.terms],
        }


def default_utilization_reference_mib_s(ssd: SsdModel) -> float:
    """The utilization term's denominator: 4 KiB random-read saturation.

    Derived through :func:`~repro.ssd.model.describe_model_dict` -- the
    same document ``isol-bench describe-device --json`` prints and
    :mod:`repro.tune.space` derives its bounds from, so the CLI, the
    parameter spaces and the scorer agree on the device's capacity.
    """
    doc = describe_model_dict(ssd)
    return doc["cases"]["rand-read-4k"]["bandwidth_bps"] / (1024.0 * 1024.0)


def _capped(violation: float) -> float:
    """Clamp a violation into ``[0, VIOLATION_CAP]``."""
    return max(0.0, min(VIOLATION_CAP, violation))


def score_cgroup_stats(
    spec: SloSpec,
    groups: dict,
    device_scale: float,
    aggregate_bandwidth_mib_s: float | None = None,
    ssd: SsdModel | None = None,
) -> SloScore:
    """Score a set of per-cgroup window stats against an SLO spec.

    The shared core behind :func:`score_summary` (whole-run scoring for
    the tuner) and the :mod:`repro.ctl` control plane (windowed live
    scoring mid-run): ``groups`` maps cgroup paths to
    :class:`~repro.metrics.collector.AppWindowStats`-shaped objects in
    *dilated* units, which this function converts back to full device
    speed using ``device_scale``. ``aggregate_bandwidth_mib_s`` is the
    full-speed all-group bandwidth for the utilization term (required
    when ``spec.utilization_floor`` is set); ``ssd`` is the unscaled
    device model used to derive the utilization reference when the spec
    does not pin one.
    """
    scale = device_scale
    terms: list[SloTerm] = []

    for group in spec.groups:
        stats = groups.get(group.cgroup)
        if group.p99_latency_us is not None:
            if stats is None or stats.latency is None:
                measured = float("inf")
                violation = VIOLATION_CAP
            else:
                measured = stats.latency.p99_us / scale
                violation = _capped(measured / group.p99_latency_us - 1.0)
            terms.append(
                SloTerm("p99", group.cgroup, group.p99_latency_us, measured, violation)
            )
        if group.min_bandwidth_mib_s is not None:
            measured = stats.bandwidth_mib_s * scale if stats is not None else 0.0
            violation = _capped(
                (group.min_bandwidth_mib_s - measured) / group.min_bandwidth_mib_s
            )
            terms.append(
                SloTerm(
                    "bandwidth",
                    group.cgroup,
                    group.min_bandwidth_mib_s,
                    measured,
                    violation,
                )
            )

    if spec.utilization_floor is not None:
        reference = spec.utilization_reference_mib_s
        if reference is None:
            if ssd is None:
                raise ValueError(
                    "utilization_floor needs either an explicit "
                    "utilization_reference_mib_s or the scenario's SsdModel"
                )
            reference = default_utilization_reference_mib_s(ssd)
        if aggregate_bandwidth_mib_s is None:
            raise ValueError(
                "utilization_floor needs the aggregate full-speed bandwidth"
            )
        utilization = aggregate_bandwidth_mib_s / reference
        violation = _capped(
            (spec.utilization_floor - utilization) / spec.utilization_floor
        )
        terms.append(
            SloTerm("utilization", "", spec.utilization_floor, utilization, violation)
        )

    return SloScore(
        terms=tuple(terms),
        weights=(spec.latency_weight, spec.bandwidth_weight, spec.utilization_weight),
    )


def score_summary(
    spec: SloSpec,
    summary: ScenarioSummary,
    ssd: SsdModel | None = None,
) -> SloScore:
    """Score one scenario summary against an SLO spec.

    ``ssd`` is the *unscaled* device model, used only to derive the
    utilization reference when the spec does not pin one; it is required
    when ``spec.utilization_floor`` is set and no explicit
    ``utilization_reference_mib_s`` is given.
    """
    return score_cgroup_stats(
        spec,
        summary.cgroup_stats(),
        summary.device_scale,
        aggregate_bandwidth_mib_s=summary.equivalent_bandwidth_gib_s * 1024.0,
        ssd=ssd,
    )
