"""Unit tests for the metrics layer."""

import pytest

from repro.iorequest import IoRequest, MIB, OpType, Pattern
from repro.metrics.collector import MetricsCollector
from repro.metrics.fairness import jain_index, weighted_jain_index
from repro.metrics.latency import cdf, percentile, summarize_latencies
from repro.metrics.timeseries import bandwidth_series, time_to_reach


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_pct(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)

    def test_single_sample(self):
        assert percentile([42.0], 99.0) == 42.0

    def test_median_of_odd_set(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)

    def test_extremes(self):
        data = [5.0, 1.0, 9.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 9.0

    def test_p99_of_uniform_ramp(self):
        data = list(range(101))
        assert percentile(data, 99.0) == pytest.approx(99.0)


class TestCdf:
    def test_monotone_nondecreasing(self):
        values, probs = cdf([5.0, 1.0, 3.0, 2.0, 4.0], points=50)
        assert values == sorted(values)
        assert probs[0] == 0.0 and probs[-1] == 1.0

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            cdf([1.0], points=1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf([])


class TestSummary:
    def test_summary_fields(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean_us == pytest.approx(2.5)
        assert summary.max_us == 4.0
        assert summary.p50_us == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_latencies([])

    def test_str_render(self):
        assert "p99" in str(summarize_latencies([1.0]))


class TestJain:
    def test_equal_allocations_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_winner_is_one_over_n(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_weighted_ideal_split_scores_one(self):
        # Allocations exactly proportional to weights.
        assert weighted_jain_index([100.0, 200.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_weighted_equal_split_with_unequal_weights_penalized(self):
        fair = weighted_jain_index([150.0, 150.0], [1.0, 2.0])
        assert fair < 1.0

    def test_weighted_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_jain_index([1.0], [1.0, 2.0])

    def test_weighted_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_jain_index([1.0], [0.0])


class TestBandwidthSeries:
    def test_bucketization(self):
        times = [0.5e6, 0.6e6, 1.5e6]
        sizes = [MIB, MIB, 2 * MIB]
        xs, ys = bandwidth_series(times, sizes, 0.0, 2e6, bucket_us=1e6)
        assert xs == [0.0, 1.0]
        assert ys == [2.0, 2.0]

    def test_out_of_range_completions_ignored(self):
        xs, ys = bandwidth_series([5e6], [MIB], 0.0, 2e6, bucket_us=1e6)
        assert sum(ys) == 0.0

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            bandwidth_series([], [], 0.0, 0.0)
        with pytest.raises(ValueError):
            bandwidth_series([], [], 0.0, 1e6, bucket_us=0.0)
        with pytest.raises(ValueError):
            bandwidth_series([], [], 0.0, 0.5, bucket_us=1e6)

    def test_time_to_reach(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [0.0, 5.0, 10.0, 10.0]
        assert time_to_reach(xs, ys, threshold=10.0) == 2.0
        assert time_to_reach(xs, ys, threshold=10.0, after_s=2.5) == 3.0
        assert time_to_reach(xs, ys, threshold=99.0) is None


def _completed_request(app, cgroup, t_us, latency_us, size, op=OpType.READ):
    req = IoRequest(app, cgroup, op, Pattern.RANDOM, size)
    req.submit_time = t_us - latency_us
    req.complete_time = t_us
    return req


class TestCollector:
    def test_register_twice_rejected(self):
        collector = MetricsCollector()
        collector.register_app("a", "/g")
        with pytest.raises(ValueError):
            collector.register_app("a", "/g")

    def test_window_stats(self):
        collector = MetricsCollector()
        collector.register_app("a", "/g")
        collector.on_complete(_completed_request("a", "/g", 100.0, 10.0, 4096))
        collector.on_complete(_completed_request("a", "/g", 200.0, 20.0, 4096))
        collector.on_complete(_completed_request("a", "/g", 900.0, 30.0, 4096))
        stats = collector.app_stats("a", 0.0, 500.0)
        assert stats.ios == 2
        assert stats.bytes == 8192
        assert stats.latency.count == 2

    def test_empty_window_has_no_latency(self):
        collector = MetricsCollector()
        collector.register_app("a", "/g")
        stats = collector.app_stats("a", 0.0, 100.0)
        assert stats.ios == 0
        assert stats.latency is None
        assert stats.bandwidth_mib_s == 0.0

    def test_cgroup_aggregation(self):
        collector = MetricsCollector()
        collector.register_app("a1", "/g")
        collector.register_app("a2", "/g")
        collector.register_app("b", "/h")
        collector.on_complete(_completed_request("a1", "/g", 10.0, 1.0, 100))
        collector.on_complete(_completed_request("a2", "/g", 20.0, 1.0, 100))
        collector.on_complete(_completed_request("b", "/h", 30.0, 1.0, 100))
        groups = collector.cgroup_stats(0.0, 100.0)
        assert groups["/g"].ios == 2
        assert groups["/g"].bytes == 200
        assert groups["/h"].ios == 1

    def test_total_bytes(self):
        collector = MetricsCollector()
        collector.register_app("a", "/g")
        collector.on_complete(_completed_request("a", "/g", 10.0, 1.0, 100))
        assert collector.total_bytes(0.0, 100.0) == 100

    def test_bandwidth_computation(self):
        collector = MetricsCollector()
        collector.register_app("a", "/g")
        collector.on_complete(_completed_request("a", "/g", 10.0, 1.0, MIB))
        stats = collector.app_stats("a", 0.0, 1e6)  # 1 MiB in 1 s
        assert stats.bandwidth_mib_s == pytest.approx(1.0)
        assert stats.iops == pytest.approx(1.0)
