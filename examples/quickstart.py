#!/usr/bin/env python3
"""Quickstart: two tenants share one simulated NVMe SSD.

Runs the same co-location twice -- once with no I/O control and once
with io.cost + io.weight (weights 100 vs 800) -- and prints per-tenant
bandwidth, latency and the weighted fairness index.

Run:  python examples/quickstart.py
"""

from repro import IoCostKnob, NoneKnob, Scenario, run_scenario
from repro.workloads import batch_app


def make_scenario(knob, name):
    """Two throughput-hungry tenants, one cgroup each."""
    return Scenario(
        name=name,
        knob=knob,
        apps=[
            batch_app("tenant-a", "/tenants/a", queue_depth=64),
            batch_app("tenant-b", "/tenants/b", queue_depth=64),
        ],
        duration_s=0.5,
        warmup_s=0.15,
        device_scale=8.0,  # slow the device 8x to keep the run quick
    )


def main() -> None:
    print("=== no I/O control ===")
    baseline = run_scenario(make_scenario(NoneKnob(), "quickstart-none"))
    print(baseline.describe())
    print(f"  fairness (uniform weights): {baseline.fairness():.3f}")

    print()
    print("=== io.cost with io.weight 100 vs 800 ===")
    knob = IoCostKnob(weights={"/tenants/a": 100, "/tenants/b": 800})
    weighted = run_scenario(make_scenario(knob, "quickstart-iocost"))
    print(weighted.describe())
    a = weighted.app_stats("tenant-a").bandwidth_mib_s
    b = weighted.app_stats("tenant-b").bandwidth_mib_s
    print(f"  bandwidth ratio b/a: {b / a:.2f} (weights ask for 8.0)")
    fairness = weighted.fairness({"/tenants/a": 100.0, "/tenants/b": 800.0})
    print(f"  weighted Jain fairness: {fairness:.3f}")


if __name__ == "__main__":
    main()
