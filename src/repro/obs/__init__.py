"""repro.obs: request-lifecycle tracing and periodic stack sampling.

The simulation's ``blktrace`` + ``io.stat``: opt-in per-request lifecycle
spans with latency attribution (held / queued / service), a sim-clock
periodic sampler snapshotting controller internals, and JSONL / CSV /
Chrome-trace exporters. Enable by passing ``trace=TraceConfig()`` to a
:class:`~repro.core.config.Scenario`; read the artifact back from
``ScenarioResult.trace``.
"""

from repro.obs.config import TraceConfig
from repro.obs.export import (
    Trace,
    read_jsonl,
    read_samples_csv,
    read_spans_csv,
    write_chrome_trace,
    write_jsonl,
    write_samples_csv,
    write_spans_csv,
)
from repro.obs.sampler import StackSampler
from repro.obs.span import LatencyAttribution, RequestSpan, RequestTracer

__all__ = [
    "TraceConfig",
    "Trace",
    "RequestSpan",
    "RequestTracer",
    "LatencyAttribution",
    "StackSampler",
    "write_jsonl",
    "read_jsonl",
    "write_spans_csv",
    "read_spans_csv",
    "write_samples_csv",
    "read_samples_csv",
    "write_chrome_trace",
]
