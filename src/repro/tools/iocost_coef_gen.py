"""io.cost model generation (the kernel's ``iocost_coef_gen.py``).

The paper generates its io.cost.model with the fio script shipped in the
Linux tree, which measures six device throughput parameters and reports
them for ``io.cost.model``; on the paper's testbed it "returned a model
with a 2.3 GiB/s read saturation point" -- noticeably below the device's
2.94 GiB/s peak, because the probe runs at moderate queue depth and the
model is deliberately conservative.

Two generators are provided:

* :func:`derive_model` -- analytic: reads the simulated device's nominal
  saturation points and applies the same conservatism factor the paper's
  probe exhibited (2.3/2.94 ~= 0.78). Fast; the default for scenarios.
* :func:`calibrate_model` -- empirical: actually runs short probe
  scenarios against a simulated device and measures the six parameters,
  mirroring what the kernel script does with fio.
"""

from __future__ import annotations

from repro.cgroups.knobs import IoCostModelParams
from repro.iorequest import KIB, OpType, Pattern
from repro.ssd.model import SsdModel

# Ratio of the paper's generated model (2.3 GiB/s) to the measured device
# peak (2.94 GiB/s).
DEFAULT_CONSERVATISM = 0.78

_PROBE_LARGE_SIZE = 256 * KIB
_PROBE_SMALL_SIZE = 4 * KIB


def derive_model(
    ssd: SsdModel, conservatism: float = DEFAULT_CONSERVATISM
) -> IoCostModelParams:
    """Analytically derive an io.cost model from a device's parameters.

    Write parameters reflect *steady-state* throughput: the kernel script
    preconditions the drive, so sustained writes pay the full write
    amplification.
    """
    if not 0 < conservatism <= 1.5:
        raise ValueError(f"conservatism out of range: {conservatism}")
    waf = ssd.gc.write_amplification if ssd.gc_enabled else 1.0
    return IoCostModelParams(
        ctrl="user",
        model="linear",
        rbps=ssd.saturation_bandwidth_bps(OpType.READ, Pattern.SEQUENTIAL, _PROBE_LARGE_SIZE)
        * conservatism,
        rseqiops=ssd.saturation_iops(OpType.READ, Pattern.SEQUENTIAL, _PROBE_SMALL_SIZE)
        * conservatism,
        rrandiops=ssd.saturation_iops(OpType.READ, Pattern.RANDOM, _PROBE_SMALL_SIZE)
        * conservatism,
        wbps=ssd.saturation_bandwidth_bps(OpType.WRITE, Pattern.SEQUENTIAL, _PROBE_LARGE_SIZE)
        * conservatism
        / waf,
        wseqiops=ssd.saturation_iops(OpType.WRITE, Pattern.SEQUENTIAL, _PROBE_SMALL_SIZE)
        * conservatism
        / waf,
        wrandiops=ssd.saturation_iops(OpType.WRITE, Pattern.RANDOM, _PROBE_SMALL_SIZE)
        * conservatism
        / waf,
    ).validate()


def calibrate_model(
    ssd: SsdModel,
    seed: int = 42,
    probe_duration_s: float = 0.25,
    queue_depth: int = 64,
) -> IoCostModelParams:
    """Measure the six model parameters by probing a simulated device.

    Runs six short saturating probes (seq/rand x read/write at 4 KiB,
    plus large sequential transfers per direction) against a fresh,
    preconditioned device with no knob configured, and reports the
    achieved rates -- the simulation-native equivalent of running the
    kernel's fio script against /dev/nvme0n1.
    """
    # Imported lazily: the runner imports this module for auto models.
    from repro.core.config import NoneKnob, Scenario
    from repro.core.runner import run_scenario
    from repro.workloads.spec import JobSpec

    def probe(op: OpType, pattern: Pattern, size: int) -> tuple[float, float]:
        spec = JobSpec(
            name="probe",
            cgroup_path="/probe",
            size=size,
            pattern=pattern,
            read_fraction=1.0 if op == OpType.READ else 0.0,
            queue_depth=queue_depth,
        )
        scenario = Scenario(
            name=f"coef-probe-{op.name}-{pattern.name}-{size}",
            knob=NoneKnob(),
            apps=[spec],
            ssd_model=ssd,
            cores=4,
            duration_s=probe_duration_s,
            warmup_s=probe_duration_s * 0.3,
            seed=seed,
            preconditioned=True,
        )
        result = run_scenario(scenario)
        stats = result.app_stats("probe")
        return stats.iops, stats.bytes / (result.window_us / 1e6)

    rrand_iops, _ = probe(OpType.READ, Pattern.RANDOM, _PROBE_SMALL_SIZE)
    rseq_iops, _ = probe(OpType.READ, Pattern.SEQUENTIAL, _PROBE_SMALL_SIZE)
    _, rbps = probe(OpType.READ, Pattern.SEQUENTIAL, _PROBE_LARGE_SIZE)
    wrand_iops, _ = probe(OpType.WRITE, Pattern.RANDOM, _PROBE_SMALL_SIZE)
    wseq_iops, _ = probe(OpType.WRITE, Pattern.SEQUENTIAL, _PROBE_SMALL_SIZE)
    _, wbps = probe(OpType.WRITE, Pattern.SEQUENTIAL, _PROBE_LARGE_SIZE)
    return IoCostModelParams(
        ctrl="user",
        model="linear",
        rbps=rbps,
        rseqiops=rseq_iops,
        rrandiops=rrand_iops,
        wbps=wbps,
        wseqiops=wseq_iops,
        wrandiops=wrand_iops,
    ).validate()


def format_model_line(device_id: str, params: IoCostModelParams) -> str:
    """Render a model as the string written to ``io.cost.model``."""
    return (
        f"{device_id} ctrl={params.ctrl} model={params.model} "
        f"rbps={int(params.rbps)} rseqiops={int(params.rseqiops)} "
        f"rrandiops={int(params.rrandiops)} wbps={int(params.wbps)} "
        f"wseqiops={int(params.wseqiops)} wrandiops={int(params.wrandiops)}"
    )
