"""Engine differential suite: legacy single-pop core vs batched wheel.

Every D1-D6 mini scenario runs through both engine cores
(``ISOLBENCH_ENGINE=legacy`` vs the default batched slot-wheel) and the
resulting :class:`~repro.exec.summary.ScenarioSummary` documents must be
**bit-identical** — same JSON text, not approximately equal. The same
bar is held across process boundaries: a 2-worker spawned
:class:`~repro.exec.executor.SweepExecutor` must reproduce the serial
summaries exactly under either engine.

Run just this suite with::

    PYTHONPATH=src python -m pytest tests/differential -q
"""

from __future__ import annotations

import json
import os

import pytest

from repro.exec.executor import SweepExecutor
from repro.exec.summary import run_scenario_summary
from repro.sim.engine import EngineConfig, Simulator

from tests.differential.scenarios import MINI_BUILDERS

CASES = sorted(MINI_BUILDERS)


def _summary_json(scenario) -> str:
    """Canonical JSON text of one run's deterministic content."""
    summary = run_scenario_summary(scenario)
    return json.dumps(summary.content_dict(), sort_keys=True)


@pytest.fixture()
def engine_env(monkeypatch):
    """Callable that pins the engine core for this process and spawns."""

    def select(mode: str):
        if mode == "legacy":
            monkeypatch.setenv("ISOLBENCH_ENGINE", "legacy")
        else:
            monkeypatch.delenv("ISOLBENCH_ENGINE", raising=False)

    return select


class TestFactorySelection:
    def test_env_selects_legacy(self, engine_env):
        engine_env("legacy")
        assert Simulator().mode == "legacy"

    def test_default_is_batched(self, engine_env):
        engine_env("batched")
        assert Simulator().mode == "batched"

    def test_explicit_config_overrides_env(self, engine_env):
        engine_env("legacy")
        assert Simulator(EngineConfig(batching=True)).mode == "batched"


class TestSerialDifferential:
    """Each mini, both cores, one process: identical summary JSON."""

    @pytest.mark.parametrize("case", CASES)
    def test_bit_identical(self, case, engine_env):
        build = MINI_BUILDERS[case]
        engine_env("batched")
        batched = _summary_json(build())
        engine_env("legacy")
        legacy = _summary_json(build())
        assert batched == legacy, f"{case}: batched and legacy cores diverge"


class TestSpawnDifferential:
    """2-worker spawned sweeps reproduce the serial summaries exactly.

    One sweep per engine core; workers inherit ``ISOLBENCH_ENGINE``
    through the spawn environment, so each sweep runs entirely on the
    core under test. Cross-checking the two sweeps against each other
    also re-proves the serial bar across processes.
    """

    def _sweep(self) -> list[str]:
        scenarios = [MINI_BUILDERS[case]() for case in CASES]
        with SweepExecutor(max_workers=2) as pool:
            summaries = pool.run_strict(scenarios)
            assert pool.stats.executed > 0
        return [
            json.dumps(summary.content_dict(), sort_keys=True)
            for summary in summaries
        ]

    def test_spawned_sweeps_match_serial_and_each_other(self, engine_env):
        engine_env("batched")
        spawned_batched = self._sweep()
        serial_batched = [_summary_json(MINI_BUILDERS[c]()) for c in CASES]
        assert spawned_batched == serial_batched

        engine_env("legacy")
        spawned_legacy = self._sweep()
        assert spawned_legacy == spawned_batched


@pytest.mark.skipif(
    "ISOLBENCH_ENGINE" in os.environ
    and os.environ["ISOLBENCH_ENGINE"].strip().lower() == "legacy",
    reason="meaningless when the whole test run is already pinned to legacy",
)
def test_suite_covers_both_cores(engine_env):
    """The suite's premise: the two selectable cores are distinct types."""
    engine_env("batched")
    batched = Simulator()
    engine_env("legacy")
    legacy = Simulator()
    assert type(batched) is not type(legacy)
    assert isinstance(batched, Simulator) and isinstance(legacy, Simulator)
