"""Golden regression for the D5 robustness sweep, plus its determinism bar.

Mirrors ``test_table1_golden.py``: a ``mini`` sweep runs in tier-1 on
every invocation (seconds) against the golden in
``tests/data/d5_mini_golden.json``; the same module-scoped run doubles
as the warm-cache proof (re-evaluating against the populated cache must
execute zero scenarios) and anchors the ISSUE's determinism acceptance
bar (a 2-worker spawned sweep reproduces the table bit-identically).
The real ``isol-bench d5 --quick`` configuration is compared against
``tests/data/d5_quick_golden.json`` only when ``ISOLBENCH_GOLDEN=1``.

The knob *ranking* and fault-class list are compared exactly; measured
numbers with tolerances (the simulator is deterministic, so the
tolerances only absorb deliberate small re-calibrations — anything
larger should be acknowledged by regenerating the golden).

Regenerate after an intentional simulator change::

    PYTHONPATH=src python -m tests.integration.test_d5_golden mini
    PYTHONPATH=src python -m tests.integration.test_d5_golden quick
"""

import json
import os
import pathlib

import pytest

from repro.core.d5_robustness import (
    evaluate_robustness,
    mini_settings,
    quick_settings,
)
from repro.exec import ResultCache, SweepExecutor

DATA_DIR = pathlib.Path(__file__).parent.parent / "data"
MINI_GOLDEN = DATA_DIR / "d5_mini_golden.json"
QUICK_GOLDEN = DATA_DIR / "d5_quick_golden.json"

#: Relative tolerance for dimensionful cells (p99 us, MiB/s) and ratios.
REL_TOL = 0.5
#: Absolute slack for small counters (retries, timeouts, failures).
COUNT_ATOL = 25.0

_CELL_FIELDS = (
    "prio_p99_us",
    "prio_mib_s",
    "be_mib_s",
    "retries",
    "timeouts",
    "failures_delivered",
)


def assert_cell_close(got: dict, want: dict, context: str) -> None:
    assert got["knob"] == want["knob"] and got["fault_class"] == want["fault_class"]
    for name in _CELL_FIELDS:
        assert got[name] == pytest.approx(
            want[name], rel=REL_TOL, abs=COUNT_ATOL
        ), f"{context}.{name}: measured {got[name]!r}, golden {want[name]!r}"


def assert_matches_golden(table, golden_path: pathlib.Path) -> None:
    golden = json.loads(golden_path.read_text())
    doc = table.to_json_dict()
    assert doc["fault_classes"] == golden["fault_classes"]
    assert doc["ranking"] == golden["ranking"]
    for knob, expected in golden["rows"].items():
        measured = doc["rows"][knob]
        assert measured["mean_p99_ratio"] == pytest.approx(
            expected["mean_p99_ratio"], rel=REL_TOL
        ), f"{knob}.mean_p99_ratio"
        assert_cell_close(measured["healthy"], expected["healthy"], f"{knob}.healthy")
        for fault_class, cell in expected["degraded"].items():
            assert_cell_close(
                measured["degraded"][fault_class],
                cell,
                f"{knob}.{fault_class}",
            )


@pytest.fixture(scope="module")
def mini_run(tmp_path_factory):
    """One cold mini sweep against a fresh cache."""
    cache_dir = tmp_path_factory.mktemp("d5-cache")
    with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as executor:
        table = evaluate_robustness(mini_settings(), executor=executor)
        stats = executor.stats
    assert stats.executed > 0 and stats.cached == 0
    return table, cache_dir, stats


class TestMiniSweep:
    def test_matches_golden(self, mini_run):
        table, _, _ = mini_run
        assert_matches_golden(table, MINI_GOLDEN)

    def test_covers_three_fault_classes(self, mini_run):
        """The acceptance bar: a ranking under >= 3 fault classes."""
        table, _, _ = mini_run
        assert len(table.fault_classes) >= 3
        assert len(table.rank()) == 5  # all five knobs ranked

    def test_warm_cache_executes_zero_scenarios(self, mini_run):
        table, cache_dir, cold_stats = mini_run
        with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as warm:
            rerun = evaluate_robustness(mini_settings(), executor=warm)
            assert warm.stats.executed == 0
            assert warm.stats.failed == 0
            assert warm.stats.cached == cold_stats.executed
        assert rerun.render() == table.render()
        assert rerun.to_json_dict() == table.to_json_dict()

    def test_two_worker_sweep_bit_identical_to_serial(self, mini_run):
        """The ISSUE's determinism bar: --workers 2 vs serial, uncached."""
        table, _, _ = mini_run
        with SweepExecutor(max_workers=2) as pool:
            parallel = evaluate_robustness(mini_settings(), executor=pool)
            assert pool.stats.executed > 0  # genuinely recomputed
        assert parallel.to_json_dict() == table.to_json_dict()
        assert parallel.render() == table.render()


@pytest.mark.skipif(
    os.environ.get("ISOLBENCH_GOLDEN") != "1",
    reason="full d5 --quick golden takes minutes; set ISOLBENCH_GOLDEN=1",
)
def test_quick_matches_golden(tmp_path):
    # Honor $ISOLBENCH_CACHE_DIR so CI can reuse the cache its CLI steps
    # populated; without it, run cold in an isolated directory.
    from repro.exec import default_cache_dir

    cache_root = (
        default_cache_dir()
        if os.environ.get("ISOLBENCH_CACHE_DIR")
        else tmp_path / "cache"
    )
    with SweepExecutor(max_workers=1, cache=ResultCache(cache_root)) as executor:
        table = evaluate_robustness(quick_settings(), executor=executor)
    assert_matches_golden(table, QUICK_GOLDEN)


def _regenerate(which: str) -> None:
    settings = {"mini": mini_settings, "quick": quick_settings}[which]()
    path = {"mini": MINI_GOLDEN, "quick": QUICK_GOLDEN}[which]
    table = evaluate_robustness(settings)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(table.to_json_dict(), indent=2, sort_keys=True) + "\n")
    print(table.render())
    print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    _regenerate(sys.argv[1] if len(sys.argv) > 1 else "mini")
