"""repro.tune: SLO-driven knob autotuning and configuration advice.

The subsystem that closes the paper's loop: Table I tells you *which*
knob helps *which* desideratum; ``repro.tune`` takes a concrete tenant
SLO (:mod:`repro.tune.slo`), searches each knob's device-derived
parameter space (:mod:`repro.tune.space`) with deterministic strategies
(:mod:`repro.tune.search`) evaluated through the parallel cached sweep
executor (:mod:`repro.tune.evaluator`), and recommends knob + settings
(:mod:`repro.tune.advisor`). The ``isol-bench tune`` subcommand and
:mod:`repro.core.d6_autotune` are the front doors.
"""

from repro.tune.advisor import (
    AdvisorReport,
    KnobAdvice,
    advise,
    decision_trace_records,
    write_decision_trace,
)
from repro.tune.evaluator import Evaluation, TuneEvaluator
from repro.tune.search import (
    STRATEGIES,
    SearchOutcome,
    search,
    surrogate_pool,
    surrogate_search,
)
from repro.tune.slo import (
    GroupSlo,
    SloScore,
    SloSpec,
    SloTerm,
    parse_slo,
    score_cgroup_stats,
    score_summary,
)
from repro.tune.space import TUNABLE_KNOBS, KnobSpace, Parameter, build_space

__all__ = [
    "AdvisorReport",
    "KnobAdvice",
    "advise",
    "decision_trace_records",
    "write_decision_trace",
    "Evaluation",
    "TuneEvaluator",
    "STRATEGIES",
    "SearchOutcome",
    "search",
    "surrogate_pool",
    "surrogate_search",
    "GroupSlo",
    "SloScore",
    "SloSpec",
    "SloTerm",
    "parse_slo",
    "score_cgroup_stats",
    "score_summary",
    "TUNABLE_KNOBS",
    "KnobSpace",
    "Parameter",
    "build_space",
]
