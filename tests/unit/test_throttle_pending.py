"""Every registered throttle controller must report held-back requests.

``ThrottleLayer.pending()`` feeds both the work-conservation probe and
the periodic stack sampler; a controller silently inheriting a
``return 0`` stub would make a non-work-conserving knob look perfect.
The base class therefore raises, and this suite asserts each concrete
controller both overrides the method and counts correctly.
"""

import pytest

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.cgroups.knobs import IoCostModelParams, IoCostQosParams
from repro.iocontrol.base import PassthroughThrottle, ThrottleLayer
from repro.iocontrol.iocost import IoCostController
from repro.iocontrol.iolatency import IoLatencyController
from repro.iocontrol.iomax import IoMaxController
from repro.iorequest import GIB, IoRequest, KIB, MIB, OpType, Pattern
from repro.sim.engine import Simulator

DEV = "259:0"


def make_request(cgroup="/t/a", size=4 * KIB):
    return IoRequest("app", cgroup, OpType.READ, Pattern.RANDOM, size)


def _all_throttle_layers(cls=ThrottleLayer):
    subclasses = set()
    for sub in cls.__subclasses__():
        subclasses.add(sub)
        subclasses.update(_all_throttle_layers(sub))
    return subclasses


class TestContract:
    def test_base_stub_is_not_silently_zero(self):
        with pytest.raises(NotImplementedError):
            ThrottleLayer().pending()

    def test_every_registered_controller_overrides_pending(self):
        layers = _all_throttle_layers()
        assert {
            PassthroughThrottle,
            IoMaxController,
            IoLatencyController,
            IoCostController,
        } <= layers
        missing = [cls.__name__ for cls in layers if "pending" not in cls.__dict__]
        assert missing == [], f"controllers inheriting the base pending(): {missing}"


class TestPassthrough:
    def test_never_holds_requests(self):
        controller = PassthroughThrottle()
        admitted = []
        for _ in range(5):
            controller.submit(make_request(), admitted.append)
        assert controller.pending() == 0
        assert len(admitted) == 5


class TestIoMaxPending:
    def test_counts_token_delayed_requests(self):
        sim = Simulator()
        tree = CgroupHierarchy()
        tree.create("/t/a", processes=True)
        tree.find("/t/a").write("io.max", f"{DEV} rbps={MIB}")
        controller = IoMaxController(sim, tree, DEV)
        admitted = []
        # Burst covers ~10 ms at 1 MiB/s (~2.5 requests of 4 KiB); the
        # rest sit in the throttle until their tokens accrue.
        for _ in range(10):
            controller.submit(make_request(), admitted.append)
        assert controller.pending() == 10 - len(admitted) > 0
        sim.run()
        assert controller.pending() == 0
        assert len(admitted) == 10


class TestIoLatencyPending:
    def test_counts_requests_beyond_qd_limit(self):
        sim = Simulator()
        tree = CgroupHierarchy()
        tree.create("/t/a", processes=True)
        controller = IoLatencyController(sim, tree, DEV, max_qd=2)
        admitted = []
        for _ in range(5):
            controller.submit(make_request(), admitted.append)
        assert len(admitted) == 2
        assert controller.pending() == 3
        # Completions drain the queue one for one.
        controller.on_complete(admitted[0])
        assert controller.pending() == 2
        assert len(admitted) == 3


class TestIoCostPending:
    def test_counts_over_budget_requests(self):
        sim = Simulator()
        tree = CgroupHierarchy()
        tree.create("/t/a", processes=True)
        tree.find("/t/a").write("io.weight", "100")
        # A model pricing ~10 ms per 4 KiB random read: the first request
        # eats the whole vtime margin, the rest wait on the period timer.
        model = IoCostModelParams(
            ctrl="user",
            model="linear",
            rbps=1 * GIB,
            rseqiops=100,
            rrandiops=100,
            wbps=1 * GIB,
            wseqiops=100,
            wrandiops=100,
        )
        controller = IoCostController(
            sim, tree, DEV, model=model, qos=IoCostQosParams(enable=False)
        )
        controller.start()
        admitted = []
        for _ in range(20):
            controller.submit(make_request(), admitted.append)
        assert controller.pending() == 20 - len(admitted) > 0
        sim.run_until(2_000_000.0)
        assert controller.pending() == 0
        assert len(admitted) == 20
