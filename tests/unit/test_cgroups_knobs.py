"""Unit tests for knob-file parsing and validation."""

import math

import pytest

from repro.cgroups.errors import InvalidKnobValue
from repro.cgroups.knobs import (
    IoCostModelParams,
    IoCostQosParams,
    PrioClass,
    parse_bfq_weight,
    parse_device_id,
    parse_io_cost_model_line,
    parse_io_cost_qos_line,
    parse_io_latency_line,
    parse_io_max_line,
    parse_io_weight,
    parse_prio_class,
)


class TestDeviceId:
    def test_valid(self):
        assert parse_device_id("259:0") == "259:0"

    def test_normalizes_leading_zeros(self):
        assert parse_device_id("08:016") == "8:16"

    @pytest.mark.parametrize("bad", ["nvme0n1", "259", "259:", ":0", "a:b", "259:0:1"])
    def test_invalid(self, bad):
        with pytest.raises(InvalidKnobValue):
            parse_device_id(bad)


class TestIoWeight:
    def test_bare_value(self):
        assert parse_io_weight("250") == 250

    def test_default_prefix(self):
        assert parse_io_weight("default 250") == 250

    @pytest.mark.parametrize("value,expected", [("1", 1), ("10000", 10000)])
    def test_range_limits_accepted(self, value, expected):
        assert parse_io_weight(value) == expected

    @pytest.mark.parametrize("bad", ["0", "10001", "-5", "abc", "", "default", "1 2 3"])
    def test_out_of_range_or_malformed(self, bad):
        with pytest.raises(InvalidKnobValue):
            parse_io_weight(bad)


class TestBfqWeight:
    def test_valid(self):
        assert parse_bfq_weight("1000") == 1000

    @pytest.mark.parametrize("bad", ["0", "1001", "x"])
    def test_invalid(self, bad):
        with pytest.raises(InvalidKnobValue):
            parse_bfq_weight(bad)


class TestPrioClass:
    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("realtime", PrioClass.REALTIME),
            ("rt", PrioClass.REALTIME),
            ("promote-to-rt", PrioClass.REALTIME),
            ("best-effort", PrioClass.BEST_EFFORT),
            ("restrict-to-be", PrioClass.BEST_EFFORT),
            ("idle", PrioClass.IDLE),
            ("no-change", PrioClass.NONE),
            ("IDLE", PrioClass.IDLE),  # case-insensitive
        ],
    )
    def test_aliases(self, alias, expected):
        assert parse_prio_class(alias) == expected

    def test_unknown_class(self):
        with pytest.raises(InvalidKnobValue):
            parse_prio_class("super-urgent")


class TestIoMax:
    def test_full_line(self):
        device, limits = parse_io_max_line(
            "259:0 rbps=1048576 wbps=max riops=1000 wiops=max"
        )
        assert device == "259:0"
        assert limits.rbps == 1048576
        assert math.isinf(limits.wbps)
        assert limits.riops == 1000
        assert math.isinf(limits.wiops)

    def test_partial_line_defaults_to_max(self):
        _, limits = parse_io_max_line("259:0 rbps=500")
        assert math.isinf(limits.riops)
        assert not limits.is_unlimited()

    def test_all_max_is_unlimited(self):
        _, limits = parse_io_max_line("259:0 rbps=max")
        assert limits.is_unlimited()

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "259:0 rbps=abc",
            "259:0 rbps=0",
            "259:0 rbps=-1",
            "259:0 bogus=1",
            "259:0 rbps",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(InvalidKnobValue):
            parse_io_max_line(bad)


class TestIoLatency:
    def test_valid(self):
        device, target = parse_io_latency_line("259:0 target=100")
        assert device == "259:0"
        assert target == 100.0

    @pytest.mark.parametrize(
        "bad", ["", "259:0", "259:0 target=x", "259:0 target=0", "259:0 max=5"]
    )
    def test_malformed(self, bad):
        with pytest.raises(InvalidKnobValue):
            parse_io_latency_line(bad)


class TestIoCostQos:
    def test_full_line(self):
        device, qos = parse_io_cost_qos_line(
            "259:0 enable=1 ctrl=user rpct=95 rlat=100 wpct=90 wlat=200 min=50 max=150"
        )
        assert device == "259:0"
        assert qos.enable
        assert qos.ctrl == "user"
        assert qos.rpct == 95.0
        assert qos.rlat_us == 100.0
        assert qos.wpct == 90.0
        assert qos.wlat_us == 200.0
        assert qos.vrate_min_pct == 50.0
        assert qos.vrate_max_pct == 150.0

    def test_enable_zero(self):
        _, qos = parse_io_cost_qos_line("259:0 enable=0")
        assert not qos.enable

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "259:0 rpct=150",
            "259:0 min=80 max=50",
            "259:0 ctrl=magic",
            "259:0 bogus=1",
            "259:0 rlat=abc",
            "259:0 min=0",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(InvalidKnobValue):
            parse_io_cost_qos_line(bad)

    def test_dataclass_validate_directly(self):
        with pytest.raises(InvalidKnobValue):
            IoCostQosParams(vrate_min_pct=90.0, vrate_max_pct=10.0).validate()


class TestIoCostModel:
    def test_full_line(self):
        device, model = parse_io_cost_model_line(
            "259:0 ctrl=user model=linear rbps=3000000000 rseqiops=700000 "
            "rrandiops=600000 wbps=1000000000 wseqiops=300000 wrandiops=250000"
        )
        assert device == "259:0"
        assert model.rbps == 3e9
        assert model.wrandiops == 250000

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "259:0 model=quadratic",
            "259:0 ctrl=divine",
            "259:0 rbps=abc",
            "259:0 bogus=1",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(InvalidKnobValue):
            parse_io_cost_model_line(bad)

    def test_negative_param_rejected(self):
        with pytest.raises(InvalidKnobValue):
            IoCostModelParams(rbps=-1.0).validate()
