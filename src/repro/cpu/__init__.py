"""Host CPU model.

The paper's D1 analysis shows the I/O-control bottleneck moving to the
host CPU: knobs differ in per-I/O submission/completion cost, schedulers
serialize dispatch behind a lock (spinning burns CPU), and io.cost adds
latency once the CPU saturates. This package models exactly those three
effects:

* :class:`~repro.cpu.cores.CoreSet` -- N cores behind one run queue,
  charging per-I/O costs and accounting spin time;
* :class:`~repro.cpu.model.CpuCostProfile` -- per-knob cost parameters
  (QD1 vs batched submission, context switches per I/O);
* :class:`~repro.cpu.accounting.CpuAccounting` -- utilization, context
  switch, and cycles-per-I/O reporting (the paper's sar/perf numbers).
"""

from repro.cpu.model import CpuCostProfile, profile_for_knob, KNOB_PROFILES
from repro.cpu.cores import CoreSet
from repro.cpu.accounting import CpuAccounting

__all__ = [
    "CpuCostProfile",
    "profile_for_knob",
    "KNOB_PROFILES",
    "CoreSet",
    "CpuAccounting",
]
