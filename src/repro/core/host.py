"""The simulated host: wires apps, cgroups, knobs, CPUs and SSDs.

Request path (mirroring the Linux block layer):

  app issue -> CPU submit cost -> cgroup throttler (io.max / io.latency /
  io.cost or passthrough) -> scheduler (none / mq-deadline / bfq) ->
  serialized dispatch -> device (flash units + bus) -> CPU completion
  cost -> app sees completion.

The host also applies the io.cost deferred-timer latency under CPU
saturation (profile-driven, see :mod:`repro.cpu.model`) and routes
completions to the metrics collector.
"""

from __future__ import annotations

import dataclasses
import math
from functools import partial

from repro.cgroups.hierarchy import Cgroup, CgroupHierarchy
from repro.core.config import (
    BfqKnob,
    DynamicIoMaxKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    Scenario,
)
from repro.cpu.accounting import CpuAccounting
from repro.cpu.cores import CoreSet
from repro.cpu.model import profile_for_knob
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryCoordinator
from repro.iocontrol.base import IoScheduler, PassthroughThrottle, ThrottleLayer
from repro.iocontrol.bfq import BfqScheduler
from repro.iocontrol.dispatch import DispatchEngine
from repro.iocontrol.iocost import IoCostController
from repro.iocontrol.iolatency import IoLatencyController
from repro.iocontrol.iomax import IoMaxController
from repro.iocontrol.mq_deadline import MqDeadlineScheduler
from repro.iocontrol.nonectl import NoneScheduler
from repro.iorequest import IoRequest, OpType, Pattern
from repro.metrics.collector import MetricsCollector
from repro.metrics.workconservation import WorkConservationProbe
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.ssd.array import SsdArray
from repro.workloads.generator import App


def _scaled_profile(profile, device_scale: float):
    """Scale per-I/O CPU costs by ``device_scale`` (identity at 1.0)."""
    if device_scale == 1.0:
        return profile
    return dataclasses.replace(
        profile,
        cost_qd1_us=profile.cost_qd1_us * device_scale,
        cost_batched_us=profile.cost_batched_us * device_scale,
    )


class Host:
    """One fully wired simulation instance for a scenario."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self.sim = Simulator()
        self.rngs = RngStreams(scenario.seed)
        self.hierarchy = CgroupHierarchy()
        self.collector = MetricsCollector()
        # device_scale slows the device AND the per-I/O host costs by the
        # same factor so that every bottleneck (flash, bus, CPU, dispatch
        # lock) shrinks uniformly: relative saturation points -- the shape
        # the experiments compare -- are preserved while the event count
        # drops. Latency-sensitive studies should run at scale 1.
        self.profile = _scaled_profile(
            profile_for_knob(scenario.knob.profile_name), scenario.device_scale
        )

        ssd_model = scenario.ssd_model.scaled(scenario.device_scale)
        self.ssd_model = ssd_model
        self.devices = SsdArray(
            self.sim,
            ssd_model,
            scenario.num_devices,
            self.rngs,
            preconditioned=scenario.preconditioned,
        )
        self.core_set = CoreSet(self.sim, scenario.cores)
        self.accounting = CpuAccounting(self.core_set, self.profile)
        # The per-I/O CPU costs depend only on an app's queue depth;
        # memoized here so the 1/qd interpolation runs once per depth.
        self._submit_cost_us: dict[int, float] = {}
        self._complete_cost_us: dict[int, float] = {}

        self._build_cgroups()
        scenario.knob.configure(self.hierarchy, scenario.device_ids())
        self.throttles = [
            self._make_throttle(device_index)
            for device_index in range(scenario.num_devices)
        ]
        self.schedulers = [
            self._make_scheduler() for _ in range(scenario.num_devices)
        ]
        self.engines = [
            DispatchEngine(
                self.sim,
                self.schedulers[i],
                self.devices[i],
                self.core_set,
                on_complete=self._on_device_complete,
            )
            for i in range(scenario.num_devices)
        ]
        self.apps = self._build_apps()
        self.page_caches = self._build_page_caches()
        # Request-path fast-path state: bound submit targets per device
        # (avoids a method allocation per request) and flags that let the
        # per-request handlers skip branches no app in the scenario uses.
        self._engine_submits = [engine.submit for engine in self.engines]
        self._any_buffered = any(not spec.direct for spec in self.scenario.apps)
        self._saturated_extra = self.profile.saturated_extra_latency_us
        # Vectorized warm-up of the per-device cost memos: every
        # (op, pattern, size) shape the scenario can issue is evaluated
        # in one batch (numpy when available), so no request pays the
        # model arithmetic on first touch. Bit-identical to the lazy
        # scalar fills it replaces.
        cost_keys: dict[tuple, None] = {}
        for spec in self.scenario.apps:
            if spec.read_fraction > 0.0:
                cost_keys[(OpType.READ, spec.pattern, spec.size)] = None
            if spec.read_fraction < 1.0:
                cost_keys[(OpType.WRITE, spec.pattern, spec.size)] = None
        for device in self.devices.devices:
            device.warm_costs(cost_keys)
        self.iomax_managers = self._build_iomax_managers()
        self.injectors, self.coordinator = self._build_faults()
        self.tracer, self.sampler = self._build_observability()
        self.ctl_plane, self.ctl_sampler = self._build_ctl()
        self.profiler = self._build_profiler()
        self.wc_probes = [
            WorkConservationProbe(
                self.sim,
                device_idle=self.devices[i].has_idle_capacity,
                pending_requests=lambda i=i: (
                    self.throttles[i].pending() + self.schedulers[i].queued()
                ),
            )
            for i in range(scenario.num_devices)
        ]
        for throttle in self.throttles:
            throttle.start()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_cgroups(self) -> None:
        for spec in self.scenario.apps:
            group = self.hierarchy.create(spec.cgroup_path, processes=True)
            group.add_process(spec.name)

    def _make_scheduler(self) -> IoScheduler:
        scheduler = self._build_scheduler()
        if self.scenario.device_scale != 1.0:
            # Instance attribute shadows the class constant: the dispatch
            # lock slows down with the rest of the host.
            scheduler.lock_overhead_us = (
                scheduler.lock_overhead_us * self.scenario.device_scale
            )
        return scheduler

    def _build_scheduler(self) -> IoScheduler:
        knob = self.scenario.knob
        if isinstance(knob, MqDeadlineKnob):
            return MqDeadlineScheduler(
                prio_aging_expire_us=knob.prio_aging_expire_us,
                affinity_sigma=self.profile.saturation_unfairness_sigma,
                rng=self.rngs.stream("sched.mq-deadline"),
            )
        if isinstance(knob, BfqKnob):
            cache: dict[str, Cgroup] = {}

            def bfq_weight_of(path: str) -> float:
                group = cache.get(path)
                if group is None:
                    group = self.hierarchy.find(path)
                    cache[path] = group
                return float(group.bfq_weight())

            return BfqScheduler(
                weight_of=bfq_weight_of,
                slice_idle_us=knob.slice_idle_us,
                slice_budget_bytes=knob.slice_budget_bytes,
                slice_timeout_us=knob.slice_timeout_us,
                affinity_sigma=self.profile.saturation_unfairness_sigma,
            )
        return NoneScheduler()

    def _make_throttle(self, device_index: int) -> ThrottleLayer:
        knob = self.scenario.knob
        device_id = self.scenario.device_ids()[device_index]
        if isinstance(knob, (IoMaxKnob, DynamicIoMaxKnob)):
            return IoMaxController(self.sim, self.hierarchy, device_id)
        if isinstance(knob, IoLatencyKnob):
            return IoLatencyController(
                self.sim,
                self.hierarchy,
                device_id,
                max_qd=self.ssd_model.nvme_max_qd,
            )
        if isinstance(knob, IoCostKnob):
            return IoCostController(
                self.sim,
                self.hierarchy,
                device_id,
                model=knob.resolve_model(self.ssd_model),
                qos=knob.qos,
            )
        return PassthroughThrottle()

    def _build_apps(self) -> dict[str, App]:
        apps: dict[str, App] = {}
        for app_index, spec in enumerate(self.scenario.apps):
            self.collector.register_app(spec.name, spec.cgroup_path)
            # io.prio.class is not inheritable: read it from the app's
            # own (process) group only.
            prio = int(self.hierarchy.find(spec.cgroup_path).prio_class())
            app = App(
                self.sim,
                spec,
                submit=self._submit,
                rng=self.rngs.stream(f"app.{spec.name}"),
                device_index=self.devices.device_for_app(app_index),
                prio_class=prio,
                arrival_rng=(
                    self.rngs.stream(f"app.{spec.name}.arrivals")
                    if spec.macro_tick_us is not None
                    else None
                ),
            )
            apps[spec.name] = app
        return apps

    def _build_iomax_managers(self):
        """Control loops for DynamicIoMaxKnob scenarios."""
        knob = self.scenario.knob
        if not isinstance(knob, DynamicIoMaxKnob):
            return []
        from repro.iocontrol.dynamic_iomax import DynamicIoMaxManager
        from repro.iorequest import KIB, OpType, Pattern

        max_read_bps = self.ssd_model.saturation_bandwidth_bps(
            OpType.READ, Pattern.RANDOM, 4 * KIB
        )
        return [
            DynamicIoMaxManager(
                self.sim,
                self.hierarchy,
                self.throttles[index],
                weights={path: float(w) for path, w in knob.weights.items()},
                max_read_bps=max_read_bps / self.scenario.num_devices,
                bytes_completed_of=self.collector.lifetime_bytes_of_cgroup,
                device_id=self.scenario.device_ids()[index],
                adjust_period_us=knob.adjust_period_us,
                idle_floor_fraction=knob.idle_floor_fraction,
            )
            for index in range(self.scenario.num_devices)
        ]

    def _build_faults(self):
        """Fault runtime per ``scenario.faults`` (([], None) when off).

        Like observability, fault hooks cost nothing when unconfigured:
        no injector is attached to any device and the completion path
        never consults a coordinator. With a plan, each device gets its
        own injector fed by a dedicated ``faults.dev<i>`` RNG stream and
        the host gets one :class:`RetryCoordinator` on the ``faults.
        retry`` stream, so fault placement never perturbs workload or
        device-noise randomness.
        """
        plan = self.scenario.faults
        if plan is None:
            return [], None
        plan = plan.scaled(self.scenario.device_scale)
        injectors = []
        if plan.device_faults:
            for i in range(len(self.devices)):
                injector = FaultInjector(
                    self.sim,
                    self.devices[i],
                    plan,
                    self.rngs.stream(f"faults.dev{i}"),
                )
                self.devices[i].injector = injector
                injectors.append(injector)
        coordinator = RetryCoordinator(
            self.sim,
            plan.retry,
            self.rngs.stream("faults.retry"),
            resubmit=self._enter_block_layer,
            deliver_failure=self._deliver_failure,
            on_fault=self._on_fault,
        )
        return injectors, coordinator

    def _build_observability(self):
        """Tracer + sampler per ``scenario.trace`` (both None when off).

        Hooks are composed at construction time -- the tracer wraps the
        collector's completion handler, the sampler is an independent
        periodic event chain -- so a scenario without a TraceConfig runs
        the exact un-instrumented hot path.
        """
        config = self.scenario.trace
        if config is None:
            return None, None
        from repro.obs.sampler import StackSampler
        from repro.obs.span import RequestTracer

        tracer = None
        if config.spans:
            tracer = RequestTracer(max_spans=config.max_spans)
            self.collector.attach_tracer(tracer)
        sampler = None
        if config.sampling:
            sampler = StackSampler(
                self.sim, config.sample_period_us, self._observability_snapshot()
            )
        return tracer, sampler

    def _build_ctl(self):
        """Control plane per ``scenario.ctl`` ((None, None) when off).

        The plane gets a *dedicated* non-retaining sampler built on a
        second :meth:`_observability_snapshot` closure, so its iostat and
        flash-utilization cursors are independent of the observability
        sampler's -- attaching a control plane never perturbs what
        ``scenario.trace`` records (and vice versa). Which controller is
        attached follows the scenario's knob type: io.max gets the PID
        cap loop, io.cost the vrate nudger, io.latency the QD-limit
        adapter; any other knob (including DynamicIoMaxKnob, which is
        its own self-driving controller) runs the plane observe-only --
        SLO drift is scored and traced but nothing actuates.
        """
        config = self.scenario.ctl
        if config is None:
            return None, None
        from repro.ctl.plane import ControlPlane
        from repro.obs.sampler import StackSampler

        slo = config.slo
        if slo.utilization_floor is not None and slo.utilization_reference_mib_s is None:
            from repro.tune.slo import default_utilization_reference_mib_s

            slo = dataclasses.replace(
                slo,
                utilization_reference_mib_s=default_utilization_reference_mib_s(
                    self.scenario.ssd_model
                ),
            )
        plane = ControlPlane(
            self.sim,
            config,
            slo,
            self._build_ctl_controllers(config),
            window_stats=self.collector.cgroup_stats,
            device_scale=self.scenario.device_scale,
        )
        sampler = StackSampler(
            self.sim,
            config.sample_period_us,
            self._observability_snapshot(),
            retain=False,
        )
        sampler.subscribe(plane.on_sample)
        return plane, sampler

    def _build_ctl_controllers(self, config):
        """The knob-matched controller list for the control plane."""
        from repro.ctl.controllers import (
            PidIoMaxController,
            QdLimitController,
            VrateController,
        )
        from repro.iorequest import KIB

        knob = self.scenario.knob
        device_ids = self.scenario.device_ids()
        if isinstance(knob, IoMaxKnob):
            params = config.iomax
            group = params.group
            if group is None:
                if len(knob.limits) != 1:
                    raise ValueError(
                        "IoMaxCtlParams.group is required when the knob does "
                        "not cap exactly one cgroup"
                    )
                group = next(iter(knob.limits))
            max_read_bps = self.ssd_model.saturation_bandwidth_bps(
                OpType.READ, Pattern.RANDOM, 4 * KIB
            ) / self.scenario.num_devices
            initial = params.initial_fraction
            if initial is None:
                static = knob.limits.get(group, {}).get("rbps")
                initial = (
                    static / max_read_bps
                    if static is not None and not math.isinf(static)
                    else params.ceiling_fraction
                )
            return [
                PidIoMaxController(
                    self.sim,
                    self.hierarchy,
                    self.throttles,
                    device_ids,
                    group=group,
                    params=params,
                    max_read_bps=max_read_bps,
                    initial_fraction=initial,
                    period_us=config.period_us,
                )
            ]
        if isinstance(knob, IoCostKnob):
            return [
                VrateController(
                    self.sim,
                    self.hierarchy,
                    self.throttles,
                    device_ids,
                    qos=knob.qos,
                    params=config.vrate,
                    period_us=config.period_us,
                )
            ]
        if isinstance(knob, IoLatencyKnob):
            if not knob.targets_us:
                raise ValueError(
                    "a ctl-managed IoLatencyKnob needs at least one target"
                )
            # Adapt the *protected* group's target -- the one with the
            # tightest static setting, matching blk-iolatency's victim.
            group = min(knob.targets_us, key=knob.targets_us.get)
            return [
                QdLimitController(
                    self.sim,
                    self.hierarchy,
                    self.throttles,
                    device_ids,
                    group=group,
                    params=config.qdlimit,
                    initial_target_us=knob.targets_us[group],
                    period_us=config.period_us,
                )
            ]
        return []

    def _build_profiler(self):
        """Self-profiler per ``scenario.prof`` (None when off).

        Like tracing and faults, profiling is composed at construction
        time: without a ProfConfig no profiler exists and :meth:`run`
        drives the bare event loop; with one, the host switches to the
        profiled loop variant, which fires the same events in the same
        order (results are bit-identical) while attributing wall-clock
        time to pipeline phases.
        """
        config = self.scenario.prof
        if config is None:
            return None
        from repro.prof.profiler import SimProfiler

        return SimProfiler(config)

    def _observability_snapshot(self):
        """Build the sampler's per-tick snapshot function.

        The closure keeps per-device busy-integral cursors so flash
        utilization is reported per sampling interval (not lifetime).
        """
        iostat = self.collector.iostat_cursor()
        flash_cursor = [0.0] * len(self.devices)
        last_tick = [0.0]

        def snapshot() -> dict[str, float]:
            now = self.sim.now
            row: dict[str, float] = {
                "engine.pending_events": float(self.sim.pending_events()),
                "engine.events_processed": float(self.sim.events_processed),
            }
            for i in range(len(self.devices)):
                device = self.devices[i]
                throttle = self.throttles[i]
                scheduler = self.schedulers[i]
                prefix = f"dev{i}."
                row[prefix + "throttle.pending"] = float(throttle.pending())
                for key, value in throttle.snapshot().items():
                    row[f"{prefix}{throttle.name}.{key}"] = value
                for key, value in scheduler.snapshot().items():
                    row[f"{prefix}sched.{key}"] = value
                for key, value in device.snapshot().items():
                    row[f"{prefix}ssd.{key}"] = value
                integral = device.flash.busy_integral()
                elapsed = now - last_tick[0]
                if elapsed > 0:
                    span = elapsed * device.model.parallelism
                    row[prefix + "ssd.flash_util"] = (
                        integral - flash_cursor[i]
                    ) / span
                flash_cursor[i] = integral
            if self.coordinator is not None:
                for key, value in self.coordinator.stats.as_dict().items():
                    row[f"faults.{key}"] = value
            for i, injector in enumerate(self.injectors):
                for key, value in injector.snapshot().items():
                    row[f"dev{i}.faults.{key}"] = value
            row.update(iostat.advance())
            last_tick[0] = now
            return row

        return snapshot

    def _build_page_caches(self):
        """One page cache per device, when any app runs buffered I/O."""
        if all(spec.direct for spec in self.scenario.apps):
            return []
        from repro.fs.pagecache import PageCache, PageCacheConfig

        config = self.scenario.page_cache or PageCacheConfig()
        return [
            PageCache(
                self.sim,
                self.rngs.stream(f"pagecache.{index}"),
                config,
                submit_direct=self._route_to_block_layer,
                device_index=index,
            )
            for index in range(self.scenario.num_devices)
        ]

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _submit(self, req: IoRequest) -> None:
        qd = self.apps[req.app_name].spec.queue_depth
        cost = self._submit_cost_us.get(qd)
        if cost is None:
            cost = self._submit_cost_us[qd] = self.profile.submit_cost_us(qd)
        self.core_set.charge(cost, partial(self._after_submit_cpu, req))

    def _route_to_block_layer(self, req: IoRequest) -> None:
        """Entry below the page cache: straight into cgroup throttling."""
        self._enter_block_layer(req)

    def _enter_block_layer(self, req: IoRequest) -> None:
        """The single entry into cgroup throttling.

        All three producers converge here: direct app submissions,
        page-cache writeback, and retry resubmissions from the fault
        coordinator. When the scenario's retry policy arms a watchdog,
        the per-attempt timeout starts at this point — covering
        throttle hold, scheduler queueing and device time, like the
        kernel's request timeout. Writeback requests are exempt: no app
        is waiting on them and the cache has its own completion
        bookkeeping.
        """
        coordinator = self.coordinator
        if coordinator is not None and req.app_name in self.apps:
            coordinator.watch(req)
        device_index = req.device_index
        self.throttles[device_index].submit(req, self._engine_submits[device_index])

    def _after_submit_cpu(self, req: IoRequest) -> None:
        if self._any_buffered:
            app = self.apps.get(req.app_name)
            if app is not None and not app.spec.direct:
                cache = self.page_caches[req.device_index]
                cache.submit_buffered(req, self._finish)
                return
        self._after_submit_cpu_direct(req)

    def _after_submit_cpu_direct(self, req: IoRequest) -> None:
        extra = self._saturated_extra
        if extra > 0 and self.core_set.is_saturated():
            # io.cost defers work to per-period timers; under CPU
            # saturation those timers lag, inflating latency (O1).
            delay = extra * (0.5 + self.rngs.stream("iocost.timer").random())
            self.sim.schedule(delay, lambda: self._enter_block_layer(req))
        else:
            self._enter_block_layer(req)

    def _on_device_complete(self, req: IoRequest) -> None:
        self.throttles[req.device_index].on_complete(req)
        app = self.apps.get(req.app_name)
        # Kernel-side requests (writeback) complete at batched cost.
        qd = app.spec.queue_depth if app is not None else 256
        cost = self._complete_cost_us.get(qd)
        if cost is None:
            cost = self._complete_cost_us[qd] = self.profile.complete_cost_us(qd)
        self.core_set.charge(cost, partial(self._finish, req))

    def _finish(self, req: IoRequest) -> None:
        coordinator = self.coordinator
        if coordinator is not None and not coordinator.resolve(req):
            # Stale (watchdog-abandoned), retried, or delivered as a
            # failure — the coordinator handled it; nothing reaches the
            # metrics layer.
            return
        req.complete_time = self.sim.now
        self.accounting.on_io_complete()
        app = self.apps.get(req.app_name)
        if app is None:
            # Page-cache writeback chunk: hand back to its cache.
            self.page_caches[req.device_index].on_writeback_complete(req)
            return
        self.collector.on_complete(req)
        app.on_complete(req)

    def _on_fault(self, req: IoRequest) -> None:
        """Degraded-mode accounting: bump the admitting controller."""
        self.throttles[req.device_index].on_fault(req)

    def _deliver_failure(self, req: IoRequest) -> None:
        """Hand an exhausted request back as a failure.

        Failed requests never reach the metrics collector — latency and
        bandwidth series describe successful I/O only; failures live in
        ``FaultStats`` / ``ScenarioSummary.fault_counters``. A failed
        writeback chunk is returned to its page cache as done (data-loss
        modelling is out of scope) so dirty-page accounting cannot leak.
        """
        app = self.apps.get(req.app_name)
        if app is None:
            self.page_caches[req.device_index].on_writeback_complete(req)
            return
        app.on_complete(req)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fault_counters(self) -> dict[str, float]:
        """Lifetime failure accounting (empty when no fault plan is set).

        Host-level counters (retries, timeouts, ...) are unprefixed;
        per-device injector counters are keyed ``dev<i>.<counter>``.
        """
        if self.coordinator is None:
            return {}
        counters = self.coordinator.stats.as_dict()
        for i, injector in enumerate(self.injectors):
            for key, value in injector.snapshot().items():
                counters[f"dev{i}.{key}"] = value
        return counters

    def ctl_counters(self) -> dict[str, float]:
        """Control-plane accounting (empty when no CtlConfig is set)."""
        if self.ctl_plane is None:
            return {}
        return self.ctl_plane.counters()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Run the scenario to its configured duration."""
        for app in self.apps.values():
            app.start()
        for probe in self.wc_probes:
            probe.start()
        for manager in self.iomax_managers:
            manager.start()
        for injector in self.injectors:
            injector.start()
        if self.sampler is not None:
            self.sampler.start()
        if self.ctl_sampler is not None:
            self.ctl_sampler.start()

        def begin_measurement():
            self.accounting.begin_window()
            for probe in self.wc_probes:
                probe.reset()

        self.sim.schedule_at(self.scenario.warmup_us, begin_measurement)
        if self.profiler is not None:
            self.sim.run_until_profiled(self.scenario.duration_us, self.profiler)
            if self.tracer is not None:
                self.profiler.counters["obs.spans"] = float(len(self.tracer.spans))
            if self.sampler is not None:
                self.profiler.counters["obs.samples"] = float(
                    len(self.sampler.samples)
                )
        else:
            self.sim.run_until(self.scenario.duration_us)
