"""Unit tests for the numpy-only surrogate regressor.

Covers the determinism and serialization contracts (identical training
sets -> bit-identical saved models; save/load round-trips losslessly),
the metric helpers, and the seeded uncertainty-shrinks-with-data check
that complements the hypothesis suite.
"""

import numpy as np
import pytest

from repro.surrogate.model import (
    MODEL_SCHEMA_VERSION,
    SurrogateConfig,
    SurrogateModel,
    evaluate_model,
    fit_surrogate,
    mean_absolute_error,
    spearman,
    uncertainty_mean,
)

FAST = SurrogateConfig(n_members=3, n_rounds=10)
NAMES = ("qd", "size", "write_frac", "cap", "weight")


def training_set(rows: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(rows, len(NAMES)))
    p99 = 50.0 + 900.0 * X[:, 0] + 80.0 * X[:, 1] * X[:, 2]
    bw = 10.0 + 150.0 * (1.0 - X[:, 0]) + 20.0 * X[:, 3]
    util = bw / 250.0
    return X, np.stack([p99, bw, util], axis=1)


class TestFitAndPredict:
    def test_learns_a_monotone_response(self):
        X, y = training_set(200)
        model = fit_surrogate(X, y, NAMES, seed=7, config=FAST)
        metrics = evaluate_model(model, X, y)
        assert metrics["p99_us"]["spearman"] > 0.9
        assert metrics["bandwidth_mib_s"]["spearman"] > 0.9

    def test_predict_single_row_helper(self):
        X, y = training_set(64)
        model = fit_surrogate(X, y, NAMES, seed=7, config=FAST)
        means, stds = model.predict_one(X[0])
        assert set(means) == {"p99_us", "bandwidth_mib_s", "util"}
        assert all(value >= 0.0 for value in stds.values())

    def test_input_validation(self):
        X, y = training_set(16)
        with pytest.raises(ValueError):
            fit_surrogate(X[:1], y[:1], NAMES, config=FAST)
        with pytest.raises(ValueError):
            fit_surrogate(X, y[:, :2], NAMES, config=FAST)
        with pytest.raises(ValueError):
            fit_surrogate(X[:, :3], y, NAMES, config=FAST)


class TestDeterminismAndSerialization:
    def test_identical_fits_are_bit_identical(self):
        X, y = training_set(64)
        first = fit_surrogate(X, y, NAMES, seed=7, config=FAST)
        second = fit_surrogate(X, y, NAMES, seed=7, config=FAST)
        assert first.to_json_dict() == second.to_json_dict()

    def test_seed_changes_the_ensemble(self):
        X, y = training_set(64)
        first = fit_surrogate(X, y, NAMES, seed=7, config=FAST)
        second = fit_surrogate(X, y, NAMES, seed=8, config=FAST)
        assert first.to_json_dict() != second.to_json_dict()

    def test_save_load_round_trip(self, tmp_path):
        X, y = training_set(64)
        model = fit_surrogate(X, y, NAMES, seed=7, config=FAST)
        path = tmp_path / "model.json"
        model.save(path)
        loaded = SurrogateModel.load(path)
        assert loaded.to_json_dict() == model.to_json_dict()
        probe = np.random.default_rng(1).uniform(0, 1, (8, len(NAMES)))
        np.testing.assert_array_equal(model.predict(probe)[0], loaded.predict(probe)[0])
        np.testing.assert_array_equal(model.predict(probe)[1], loaded.predict(probe)[1])
        # Saving twice produces byte-identical files (sorted-key JSON).
        other = tmp_path / "again.json"
        loaded.save(other)
        assert path.read_text() == other.read_text()

    def test_schema_version_is_pinned(self):
        assert MODEL_SCHEMA_VERSION == 1


class TestUncertainty:
    def test_uncertainty_shrinks_with_training_rows(self):
        # The bootstrap ensemble should disagree less when fitted on 8x
        # the data from the same generating process.
        probe = np.random.default_rng(2).uniform(0.1, 0.9, (32, len(NAMES)))
        X_small, y_small = training_set(16, seed=3)
        X_big, y_big = training_set(128, seed=3)
        small = fit_surrogate(X_small, y_small, NAMES, seed=7, config=FAST)
        big = fit_surrogate(X_big, y_big, NAMES, seed=7, config=FAST)
        assert (
            uncertainty_mean(big, probe)["p99_us"]
            < uncertainty_mean(small, probe)["p99_us"]
        )


class TestMetricHelpers:
    def test_spearman_perfect_and_reversed(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_spearman_degenerate_is_zero(self):
        assert spearman([1, 1, 1], [1, 2, 3]) == 0.0
        assert spearman([1], [2]) == 0.0

    def test_mae(self):
        assert mean_absolute_error([1.0, 3.0], [2.0, 5.0]) == pytest.approx(1.5)
        assert mean_absolute_error([], []) == 0.0
