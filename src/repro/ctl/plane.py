"""The control plane: sampler subscription, drift scoring, dispatch.

The :class:`ControlPlane` is the sim-clock daemon at the center of
repro.ctl. It subscribes to a dedicated (non-retaining)
:class:`~repro.obs.sampler.StackSampler`; every ``CtlConfig.period_us``
worth of ticks it closes an observation window, pulls per-cgroup stats
from the metrics collector, scores them against the SLO with
:func:`~repro.tune.slo.score_cgroup_stats` (the exact machinery the D6
tuner ranks configurations with), and hands the resulting
:class:`~repro.ctl.base.ControlObservation` to each controller's
observe/step cycle. Every observation and every actuation -- applied or
suppressed -- is appended to the decision trace, exportable as JSONL
via :func:`write_ctl_trace`.
"""

from __future__ import annotations

import json
from typing import Callable, Mapping

from repro.ctl.base import ControlObservation, Controller
from repro.ctl.config import CtlConfig
from repro.tune.slo import SloSpec, score_cgroup_stats

MIB = 1024.0 * 1024.0

#: ``window_stats(t_start_us, t_end_us)`` -> per-cgroup AppWindowStats.
WindowStatsFn = Callable[[float, float], Mapping[str, object]]


class ControlPlane:
    """Drives the controllers off the sampler stream on the sim clock."""

    def __init__(
        self,
        sim,
        config: CtlConfig,
        slo: SloSpec,
        controllers: list[Controller],
        window_stats: WindowStatsFn,
        device_scale: float,
    ):
        """``slo`` is the config's spec with the utilization reference
        already resolved against the scenario's (unscaled) device model,
        so scoring never needs the SSD again."""
        self.sim = sim
        self.config = config
        self.slo = slo
        self.controllers = controllers
        self.window_stats = window_stats
        self.device_scale = device_scale
        self.records: list[dict] = []
        self.steps = 0
        self.skipped_windows = 0
        self._ticks = 0
        self._last_step_us = 0.0

    def on_sample(self, row: dict) -> None:
        """Sampler subscription callback: count ticks, step on cadence."""
        self._ticks += 1
        if self._ticks % self.config.ticks_per_step != 0:
            return
        self._step(row)

    def _step(self, row: dict) -> None:
        """Close one observation window and run every controller."""
        now = self.sim.now
        t_start = self._last_step_us
        window_us = now - t_start
        groups = self.window_stats(t_start, now)
        total_ios = sum(stats.ios for stats in groups.values())
        aggregate_mib_s = 0.0
        if window_us > 0:
            total_bytes = sum(stats.bytes for stats in groups.values())
            aggregate_mib_s = (
                total_bytes / MIB / (window_us / 1e6) * self.device_scale
            )
        score = score_cgroup_stats(
            self.slo,
            dict(groups),
            self.device_scale,
            aggregate_bandwidth_mib_s=aggregate_mib_s,
        )
        self.records.append(
            {
                "type": "observe",
                "t_us": now,
                "window_us": window_us,
                "ios": total_ios,
                "score": score.to_json_dict(),
                "needs_tightening": score.needs_tightening,
            }
        )
        self._last_step_us = now
        self.steps += 1
        if total_ios < self.config.min_window_ios:
            # Too few completions for a meaningful p99: hold everything.
            self.skipped_windows += 1
            self.records.append(
                {
                    "type": "skip",
                    "t_us": now,
                    "reason": "too-few-samples",
                    "ios": total_ios,
                }
            )
            return
        obs = ControlObservation(
            t_us=now,
            window_us=window_us,
            score=score,
            groups=groups,
            row=row,
            device_scale=self.device_scale,
        )
        for controller in self.controllers:
            controller.observe(obs)
            for actuation in controller.step():
                self.records.append(actuation.to_json_dict())

    def counters(self) -> dict[str, float]:
        """Deterministic accounting (``ScenarioSummary.ctl_counters``).

        Plane-level counts are unprefixed; each controller's counters
        are keyed ``<controller-name>.<counter>``.
        """
        row: dict[str, float] = {
            "steps": float(self.steps),
            "skipped_windows": float(self.skipped_windows),
        }
        for controller in self.controllers:
            for key, value in controller.counters().items():
                row[f"{controller.name}.{key}"] = value
        return row


def write_ctl_trace(records: list[dict], path) -> int:
    """Write decision-trace records as JSONL; returns the record count.

    Each line is a self-describing object (``type`` field: ``observe`` /
    ``actuation`` / ``skip``) with deterministic key order, mirroring
    the tune advisor's decision-trace format.
    """
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)
