"""io.latency: windowed queue-depth throttling (blk-iolatency).

Faithful to the mechanism the paper dissects in §IV-B:

* every 500 ms the controller compares each protected group's achieved
  P90 completion latency against its target;
* if the group with the lowest target is violated, every group with a
  higher target (or no target at all -- lowest priority) has its
  effective queue depth *halved*, at most once per window, down to 1;
* when no target is violated, throttled groups recover by adding
  ``max_nr_requests / 4`` (256 for the paper's 1024-deep device) to
  their QD -- unless ``use_delay`` is positive, in which case the window
  only decrements ``use_delay``. ``use_delay`` grows each window a group
  sits at QD=1 while the victim is still violated.

These constants are exactly why the paper finds io.latency takes seconds
to throttle down (10 halvings from 1024) and recovers sluggishly after
the priority app stops (O10, Fig. 2f).
"""

from __future__ import annotations

import math
from collections import deque

from repro.cgroups.hierarchy import Cgroup, CgroupHierarchy
from repro.iocontrol.base import ForwardFn, ThrottleLayer
from repro.iorequest import IoRequest
from repro.metrics.latency import percentile
from repro.sim.engine import Simulator


class _GroupLatState:
    """Per-(cgroup, device) throttling state."""

    __slots__ = (
        "path",
        "target_us",
        "qd_limit",
        "in_flight",
        "pending",
        "window_latencies",
        "use_delay",
    )

    def __init__(self, path: str, target_us: float, max_qd: int):
        self.path = path
        self.target_us = target_us  # math.inf when unprotected
        self.qd_limit = max_qd
        self.in_flight = 0
        self.pending: deque[tuple[IoRequest, ForwardFn]] = deque()
        self.window_latencies: list[float] = []
        self.use_delay = 0


class IoLatencyController(ThrottleLayer):
    """blk-iolatency for one device."""

    name = "io.latency"

    WINDOW_US = 500_000.0
    CHECK_PERCENTILE = 90.0
    MIN_SAMPLES = 5

    def __init__(
        self,
        sim: Simulator,
        hierarchy: CgroupHierarchy,
        device_id: str,
        max_qd: int = 1024,
    ):
        self.sim = sim
        self.hierarchy = hierarchy
        self.device_id = device_id
        self.max_qd = max_qd
        self.unthrottle_step = max(1, max_qd // 4)
        self._states: dict[str, _GroupLatState] = {}
        self._group_cache: dict[str, Cgroup] = {}

    def start(self) -> None:
        self.sim.schedule(self.WINDOW_US, self._window_tick)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _state(self, path: str) -> _GroupLatState:
        state = self._states.get(path)
        if state is None:
            group = self._group_cache.get(path)
            if group is None:
                group = self.hierarchy.find(path)
                self._group_cache[path] = group
            target = group.read_parsed("io.latency", self.device_id)
            state = _GroupLatState(path, target if target is not None else math.inf, self.max_qd)
            self._states[path] = state
        return state

    def submit(self, req: IoRequest, forward: ForwardFn) -> None:
        state = self._state(req.cgroup_path)
        if state.in_flight < state.qd_limit:
            state.in_flight += 1
            forward(req)
        else:
            state.pending.append((req, forward))

    def on_complete(self, req: IoRequest) -> None:
        state = self._state(req.cgroup_path)
        state.in_flight -= 1
        # Completion latency from scheduler entry: the controller watches
        # block-layer latency, not the cgroup-throttle wait it causes
        # (measured at device completion, before the app's wakeup).
        state.window_latencies.append(self.sim.now - req.queued_time)
        self._drain(state)

    def _drain(self, state: _GroupLatState) -> None:
        while state.pending and state.in_flight < state.qd_limit:
            queued_req, forward = state.pending.popleft()
            state.in_flight += 1
            forward(queued_req)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _window_tick(self) -> None:
        self._evaluate_window()
        for state in self._states.values():
            state.window_latencies.clear()
        self.sim.schedule(self.WINDOW_US, self._window_tick)

    def _evaluate_window(self) -> None:
        protected = [s for s in self._states.values() if not math.isinf(s.target_us)]
        violated = [
            s
            for s in protected
            if len(s.window_latencies) >= self.MIN_SAMPLES
            and percentile(s.window_latencies, self.CHECK_PERCENTILE) > s.target_us
        ]
        if violated:
            victim_target = min(s.target_us for s in violated)
            for state in self._states.values():
                if state.target_us > victim_target:
                    if state.qd_limit == 1:
                        state.use_delay += 1
                    else:
                        state.qd_limit = max(1, state.qd_limit // 2)
            return
        # No violation: recover throttled groups, gated by use_delay.
        for state in self._states.values():
            if state.qd_limit >= self.max_qd:
                continue
            if state.use_delay > 0:
                state.use_delay -= 1
                continue
            state.qd_limit = min(self.max_qd, state.qd_limit + self.unthrottle_step)
            self._drain(state)

    def refresh_targets(self) -> None:
        """Re-read each known group's ``io.latency`` target (re-tuning).

        Targets are normally cached at a group's first I/O; a userspace
        control plane (:mod:`repro.ctl`) that rewrites the knob file
        mid-run calls this so the next window evaluates against the new
        target. QD limits and use_delay are deliberately left alone --
        the kernel likewise only converges over subsequent windows.
        """
        for path, state in self._states.items():
            group = self._group_cache.get(path)
            if group is None:
                group = self.hierarchy.find(path)
                self._group_cache[path] = group
            target = group.read_parsed("io.latency", self.device_id)
            state.target_us = target if target is not None else math.inf

    def pending(self) -> int:
        return sum(len(state.pending) for state in self._states.values())

    def snapshot(self) -> dict[str, float]:
        """Per-group window state (the io.latency half of io.stat debug)."""
        row = super().snapshot()
        for path, state in self._states.items():
            row[f"group.{path}.qd_limit"] = float(state.qd_limit)
            row[f"group.{path}.in_flight"] = float(state.in_flight)
            row[f"group.{path}.pending"] = float(len(state.pending))
            row[f"group.{path}.use_delay"] = float(state.use_delay)
            row[f"group.{path}.window_samples"] = float(len(state.window_latencies))
        return row

    # -- introspection used by tests/benches ----------------------------
    def qd_limit_of(self, path: str) -> int:
        """Current effective queue depth of a group (max when unseen)."""
        state = self._states.get(path)
        return state.qd_limit if state is not None else self.max_qd

    def use_delay_of(self, path: str) -> int:
        """Current use_delay counter of a group."""
        state = self._states.get(path)
        return state.use_delay if state is not None else 0
