"""cgroup v2 substrate.

A faithful, in-memory re-implementation of the parts of the cgroup v2
filesystem the paper exercises: the hierarchy with management vs process
groups (the "no internal processes" rule), ``cgroup.subtree_control``
delegation, and string-typed knob files for all five I/O controllers
(``io.weight``, ``io.bfq.weight``, ``io.prio.class``, ``io.max``,
``io.latency``, ``io.cost.model``, ``io.cost.qos``).

isol-bench scenarios configure knobs by *writing strings* to these files,
exactly like a practitioner writing to sysfs, and the I/O controllers in
:mod:`repro.iocontrol` read their configuration back out of the tree.
"""

from repro.cgroups.errors import CgroupError, DelegationError, InvalidKnobValue
from repro.cgroups.hierarchy import Cgroup, CgroupHierarchy

__all__ = [
    "Cgroup",
    "CgroupHierarchy",
    "CgroupError",
    "DelegationError",
    "InvalidKnobValue",
]
