"""The paper's ten observations (O1-O10) as shape assertions.

Each test runs a reduced version of the corresponding experiment and
asserts the *relationship* the paper reports (who wins, roughly by what
factor) -- not absolute numbers. Runs are sized to keep the suite under
a couple of minutes.
"""

import pytest

from repro.core.d1_overhead import peak_bandwidth, run_bandwidth_scaling, run_lc_overhead
from repro.core.d2_fairness import (
    run_mixed_workload_fairness,
    run_uniform_fairness,
    run_weighted_fairness,
)
from repro.core.d3_tradeoffs import sweep_knob, unprotected_baseline
from repro.core.d4_bursts import burst_knobs, measure_burst_response
from repro.core.pareto import distinct_clusters, pareto_front
from repro.ssd.presets import samsung_980pro_like


@pytest.fixture(scope="module")
def lc_study():
    return run_lc_overhead(
        app_counts=(1, 16), duration_s=0.25, warmup_s=0.08, collect_cdf_for=(16,)
    )


@pytest.fixture(scope="module")
def bw_points():
    return run_bandwidth_scaling(
        app_counts=(8, 17),
        device_counts=(1,),
        duration_s=0.2,
        warmup_s=0.06,
        device_scale=8.0,
    )


class TestO1LatencyOverhead:
    def test_schedulers_add_latency_at_one_app(self, lc_study):
        none = lc_study.p99("none", 1)
        assert lc_study.p99("mq-deadline", 1) > none
        assert lc_study.p99("bfq", 1) > lc_study.p99("mq-deadline", 1)

    def test_iocost_latency_penalty_past_saturation(self, lc_study):
        none = lc_study.p99("none", 16)
        iocost = lc_study.p99("io.cost", 16)
        # Paper: +48%. Accept a broad band around it.
        assert 1.2 < iocost / none < 1.9

    def test_iomax_iolatency_negligible_overhead(self, lc_study):
        none = lc_study.p99("none", 16)
        assert lc_study.p99("io.max", 16) < none * 1.1
        assert lc_study.p99("io.latency", 16) < none * 1.1

    def test_bfq_saturates_cpu_first(self, lc_study):
        assert lc_study.utilization("bfq", 16) >= 0.99
        # And it was already (near) saturated while none was not, at the
        # measured point below 16 apps; proxy: higher util everywhere.
        assert lc_study.utilization("bfq", 1) > lc_study.utilization("none", 1)

    def test_cycles_per_io_ordering(self, lc_study):
        by_knob = {
            p.knob: p.cycles_per_io for p in lc_study.points if p.n_apps == 16
        }
        assert by_knob["bfq"] > by_knob["mq-deadline"] > by_knob["none"]

    def test_ctx_switches_per_io_ordering(self, lc_study):
        by_knob = {
            p.knob: p.ctx_switches_per_io for p in lc_study.points if p.n_apps == 1
        }
        assert by_knob["mq-deadline"] > by_knob["none"]
        assert by_knob["bfq"] > by_knob["none"]

    def test_cdf_collected(self, lc_study):
        values, probs = lc_study.cdfs[("none", 16)]
        assert values == sorted(values)
        assert probs[-1] == 1.0


class TestO2BandwidthScalability:
    def test_schedulers_cannot_saturate_nvme(self, bw_points):
        none = peak_bandwidth(bw_points, "none", 1)
        mqdl = peak_bandwidth(bw_points, "mq-deadline", 1)
        bfq = peak_bandwidth(bw_points, "bfq", 1)
        # Paper: -38% and -77%.
        assert mqdl < 0.75 * none
        assert bfq < 0.35 * none
        assert bfq < mqdl

    def test_throttlers_saturate_nvme(self, bw_points):
        none = peak_bandwidth(bw_points, "none", 1)
        for knob in ("io.max", "io.latency", "io.cost"):
            assert peak_bandwidth(bw_points, knob, 1) > 0.9 * none


class TestO3O4Fairness:
    def test_uniform_fairness_high_for_all_before_saturation(self):
        points = run_uniform_fairness(
            group_counts=(4,), duration_s=0.4, warmup_s=0.12
        )
        for point in points:
            assert point.fairness > 0.98, point.knob

    def test_schedulers_lose_fairness_past_cpu_saturation(self):
        points = {
            p.knob: p.fairness
            for p in run_uniform_fairness(
                group_counts=(16,), duration_s=0.4, warmup_s=0.12
            )
        }
        assert points["mq-deadline"] < 0.9
        assert points["bfq"] < points["none"]
        assert points["io.cost"] > 0.95
        assert points["io.max"] > 0.95

    def test_weighted_fairness_winners_and_losers(self):
        points = {
            p.knob: p.fairness
            for p in run_weighted_fairness(
                group_counts=(2,),
                knob_names=("none", "mq-deadline", "bfq", "io.max", "io.cost"),
                duration_s=0.4,
                warmup_s=0.12,
            )
        }
        # O4: io.cost, io.max and BFQ enable weighted fairness.
        assert points["io.cost"] > 0.95
        assert points["io.max"] > 0.95
        assert points["bfq"] > 0.95
        # MQ-DL classes are a terrible weight approximation.
        assert points["mq-deadline"] < points["none"]


class TestO5MixedWorkloadFairness:
    def test_mixed_sizes(self):
        points = {
            p.knob: p
            for p in run_mixed_workload_fairness(
                "sizes", duration_s=0.4, warmup_s=0.12
            )
        }
        # io.cost and io.max keep fairness; none/mq-dl/io.latency do not.
        assert points["io.cost"].fairness > 0.9
        assert points["io.max"].fairness > 0.9
        assert points["none"].fairness < 0.6
        assert points["io.latency"].fairness < 0.6
        # With no control, almost all bandwidth goes to large requests.
        none = points["none"].per_group_mib_s
        assert none["/tenants/large"] > 10 * none["/tenants/small"]

    def test_mixed_patterns_fair_for_all(self):
        points = run_mixed_workload_fairness(
            "patterns", duration_s=0.4, warmup_s=0.12
        )
        for point in points:
            assert point.fairness > 0.9, point.knob

    def test_read_write_interference_collapses_bandwidth(self):
        rw = run_mixed_workload_fairness(
            "readwrite", knob_names=("none", "io.cost"), duration_s=0.5, warmup_s=0.15
        )
        by_knob = {p.knob: p for p in rw}
        reads_only = run_mixed_workload_fairness(
            "sizes", knob_names=("none",), duration_s=0.4, warmup_s=0.12
        )[0]
        # Paper: < 0.6 GiB/s vs ~3 GiB/s for read-only workloads.
        assert (
            by_knob["none"].aggregate_bandwidth_gib_s
            < 0.5 * reads_only.aggregate_bandwidth_gib_s
        )

    def test_iocost_prefers_reads_in_mixed_rw(self):
        points = {
            p.knob: p
            for p in run_mixed_workload_fairness(
                "readwrite", knob_names=("io.cost",), duration_s=0.5, warmup_s=0.15
            )
        }
        iocost = points["io.cost"]
        readers = iocost.per_group_mib_s["/tenants/readers"]
        writers = iocost.per_group_mib_s["/tenants/writers"]
        # O5: the write-cost asymmetry makes io.cost favour readers.
        assert readers > writers
        assert iocost.fairness < 0.99


@pytest.fixture(scope="module")
def batch_baseline():
    return unprotected_baseline("batch", duration_s=0.3, warmup_s=0.1)


class TestO6SchedulersTradeoffs:
    def test_mqdl_is_coarse_grained(self, batch_baseline):
        points = sweep_knob("mq-deadline", "batch", duration_s=0.3, warmup_s=0.1)
        front = pareto_front(points)
        clusters = distinct_clusters(
            front,
            x_resolution=batch_baseline.aggregate_gib_s * 0.05,
            y_resolution=max(p.priority_metric for p in points) * 0.08,
        )
        assert clusters <= 3  # paper: "coarse-grained (3 options)"

    def test_bfq_cannot_prioritize_bandwidth(self):
        points = sweep_knob(
            "bfq", "batch", duration_s=0.3, warmup_s=0.1, sweep_points=5
        )
        # Across weights 250..1000 the priority bandwidth barely moves.
        metrics = [
            p.priority_metric for p in points if p.config_label != "w=1"
        ]
        assert max(metrics) - min(metrics) < 0.3 * max(metrics) + 1e-9


class TestO8IoMaxTradeoffs:
    def test_iomax_has_a_real_tradeoff_curve(self, batch_baseline):
        points = sweep_knob("io.max", "batch", duration_s=0.3, warmup_s=0.1)
        front = pareto_front(points)
        assert len(front) >= 4
        # Tight BE caps boost the priority app at utilization cost.
        tight = min(front, key=lambda p: p.aggregate_gib_s)
        loose = max(front, key=lambda p: p.aggregate_gib_s)
        assert tight.priority_metric > 1.5 * max(loose.priority_metric, 1.0)
        assert tight.aggregate_gib_s < loose.aggregate_gib_s

    def test_iomax_not_work_conserving(self, batch_baseline):
        points = sweep_knob("io.max", "batch", duration_s=0.3, warmup_s=0.1)
        tight = min(points, key=lambda p: p.aggregate_gib_s)
        assert tight.aggregate_gib_s < 0.6 * batch_baseline.aggregate_gib_s


class TestO9IoCostTradeoffs:
    def test_iocost_protects_priority_across_utilization(self):
        points = sweep_knob("io.cost", "batch", duration_s=0.3, warmup_s=0.1)
        metrics = [p.priority_metric for p in points]
        aggregates = [p.aggregate_gib_s for p in points]
        # Utilization dial spans a wide range...
        assert max(aggregates) > 2.5 * min(aggregates)
        # ...while the priority app keeps most of its bandwidth except at
        # the most extreme throttle point.
        assert sorted(metrics)[1] > 0.5 * max(metrics)


class TestO10Bursts:
    @pytest.fixture(scope="class")
    def responses(self):
        ssd = samsung_980pro_like()
        scaled = ssd.scaled(24.0)
        knobs = burst_knobs(scaled, "batch", lc_target_us=2000.0)
        out = {}
        for name in ("io.max", "io.cost", "io.latency"):
            out[name] = measure_burst_response(
                knobs[name],
                "batch",
                burst_start_s=1.5,
                duration_s=7.0,
                device_scale=24.0,
                bucket_ms=50.0,
            )
        return out

    def test_fast_knobs_respond_in_milliseconds(self, responses):
        for name in ("io.max", "io.cost"):
            assert responses[name].reached, name
            assert responses[name].response_ms <= 200.0, name

    def test_iolatency_takes_seconds(self, responses):
        response = responses["io.latency"]
        assert response.response_ms is None or response.response_ms > 1000.0
