"""Fig. 5: weighted-Jain fairness scalability.

Regenerates: (a) uniform weights while scaling 2-16 cgroups (with the
aggregated-bandwidth line), (b) the 16-group point past CPU saturation,
(c/d) linearly increasing weights at 2 and 16 groups.
"""

from conftest import run_once

from repro.core.d2_fairness import run_uniform_fairness, run_weighted_fairness
from repro.core.report import render_table

DEVICE_SCALE = 8.0


def _rows(points):
    return [
        [p.experiment, p.knob, p.n_groups, p.fairness, p.aggregate_bandwidth_gib_s]
        for p in points
    ]


def test_fig5_fairness(benchmark, figure_output):
    def experiment():
        uniform = run_uniform_fairness(
            group_counts=(2, 4, 8, 16),
            duration_s=0.5,
            warmup_s=0.15,
            device_scale=DEVICE_SCALE,
        )
        weighted = run_weighted_fairness(
            group_counts=(2, 16),
            duration_s=4.0,
            warmup_s=2.0,
            device_scale=DEVICE_SCALE,
        )
        return uniform, weighted

    uniform, weighted = run_once(benchmark, experiment)
    table = render_table(
        ["experiment", "knob", "groups", "Jain", "GiB/s (equiv)"],
        _rows(uniform) + _rows(weighted),
        title=f"Fig. 5 -- fairness scalability (device 1/{DEVICE_SCALE:g})",
    )
    figure_output("fig5_fairness_scalability", table)

    uniform16 = {p.knob: p.fairness for p in uniform if p.n_groups == 16}
    uniform4 = {p.knob: p.fairness for p in uniform if p.n_groups == 4}
    weighted2 = {p.knob: p.fairness for p in weighted if p.n_groups == 2}

    # O3: all fair before CPU saturation; schedulers collapse past it.
    assert all(f > 0.97 for f in uniform4.values())
    assert uniform16["mq-deadline"] < 0.9
    assert uniform16["bfq"] < uniform16["none"]
    # io.cost pays bandwidth for its model (Fig. 5a): visibly below none.
    iocost_bw = next(
        p.aggregate_bandwidth_gib_s
        for p in uniform
        if p.knob == "io.cost" and p.n_groups == 4
    )
    none_bw = next(
        p.aggregate_bandwidth_gib_s
        for p in uniform
        if p.knob == "none" and p.n_groups == 4
    )
    assert iocost_bw < 0.75 * none_bw
    # O4: io.cost, io.max, BFQ enable weighted fairness; io.latency and
    # MQ-DL make it worse than no weights at all.
    assert weighted2["io.cost"] > 0.95
    assert weighted2["io.max"] > 0.95
    assert weighted2["bfq"] > 0.95
    assert weighted2["mq-deadline"] < weighted2["none"]
    assert weighted2["io.latency"] < weighted2["none"] + 0.02
