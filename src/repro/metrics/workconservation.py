"""Work-conservation probe (the paper's strict D3 definition).

The paper adopts the definition that "any requests that are not
immediately dispatched to the SSD are non-work-conserving": at any
instant where the device has idle capacity while requests sit in cgroup
throttles or scheduler queues, the I/O control is sacrificing
utilization. The probe samples that condition periodically and reports
the *violation fraction* — 0.0 for a perfectly work-conserving stack
(none), approaching 1.0 for a hard static cap (io.max with a tight
limit while demand is pent up).
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator


class WorkConservationProbe:
    """Samples "device idle while work is pending" at a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        device_idle: Callable[[], bool],
        pending_requests: Callable[[], int],
        period_us: float = 250.0,
    ):
        if period_us <= 0:
            raise ValueError("probe period must be positive")
        self.sim = sim
        self.device_idle = device_idle
        self.pending_requests = pending_requests
        self.period_us = period_us
        self.samples = 0
        self.violations = 0
        self._running = False

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.period_us, self._tick)

    def stop(self) -> None:
        self._running = False

    def reset(self) -> None:
        """Drop accumulated samples (e.g. at the end of warmup)."""
        self.samples = 0
        self.violations = 0

    def _tick(self) -> None:
        if not self._running:
            return
        self.samples += 1
        if self.device_idle() and self.pending_requests() > 0:
            self.violations += 1
        self.sim.schedule(self.period_us, self._tick)

    @property
    def violation_fraction(self) -> float:
        """Fraction of samples where utilization was being sacrificed."""
        return self.violations / self.samples if self.samples else 0.0
