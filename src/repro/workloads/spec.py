"""Job specifications (the equivalent of an fio job file)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.iorequest import KIB, Pattern


@dataclass(frozen=True)
class ActivityWindow:
    """One contiguous interval during which a job issues I/O."""

    start_us: float
    stop_us: float = math.inf

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError("window start must be >= 0")
        if self.stop_us <= self.start_us:
            raise ValueError("window stop must be after start")


@dataclass(frozen=True)
class ArrivalPhase:
    """One interval of an open-loop job's time-varying arrival rate.

    A phased job is the open-loop Poisson generator with a piecewise-
    constant rate: inside ``[start_us, stop_us)`` arrivals come at
    ``rate_iops``. Phases are the raw material of the :mod:`repro.
    workloads.patterns` builders (diurnal ramps, flash crowds) that the
    D8 online-control study stresses static configurations with.
    """

    start_us: float
    stop_us: float
    rate_iops: float

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError("phase start must be >= 0")
        if self.stop_us <= self.start_us:
            raise ValueError("phase stop must be after start")
        if self.rate_iops <= 0:
            raise ValueError("phase arrival rate must be positive")


@dataclass(frozen=True)
class JobSpec:
    """A single app's workload definition.

    ``read_fraction`` is the probability each request is a read (1.0 for
    read-only jobs). ``rate_limit_bps`` caps the job's own issue rate,
    like fio's ``rate=`` (used in the Fig. 2 examples where each app is
    limited to 1.5 GiB/s). ``windows`` is the activity timeline; jobs
    default to always-on.
    """

    name: str
    cgroup_path: str
    size: int = 4 * KIB
    pattern: Pattern = Pattern.RANDOM
    read_fraction: float = 1.0
    queue_depth: int = 1
    rate_limit_bps: float | None = None
    windows: tuple[ActivityWindow, ...] = (ActivityWindow(0.0),)
    # Free-form archetype tag ("lc", "batch", "be") used by reports.
    app_class: str = "be"
    # Direct I/O (the paper's setting) bypasses the page cache; buffered
    # jobs go through repro.fs.pagecache (§VII future-work extension).
    direct: bool = True
    # Open-loop mode: when set, requests arrive as a Poisson process at
    # this rate (IOPS) regardless of completions -- the arrival model
    # behind "bursty apps" (D4). ``queue_depth`` is ignored; backlog can
    # grow without bound under overload, as in real open-loop clients.
    arrival_rate_iops: float | None = None
    # Macro-tick arrival batching (opt-in, open-loop only): when set,
    # arrivals are drawn in blocks from a dedicated RNG stream and all
    # arrivals falling inside one tick are issued together at the tick
    # boundary -- one engine callback per tick instead of one per
    # request. Submission times are quantized to the tick, so enable it
    # only where that coarsening is acceptable (throughput studies, not
    # per-request latency tails).
    macro_tick_us: float | None = None
    # Time-varying open-loop arrivals: a sorted, non-overlapping phase
    # timeline replacing the single ``arrival_rate_iops`` constant (the
    # two are mutually exclusive). Phase times are raw simulated
    # microseconds, same convention as ``windows``.
    arrival_phases: tuple[ArrivalPhase, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must not be empty")
        if self.size <= 0:
            raise ValueError("request size must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.queue_depth < 1:
            raise ValueError("queue depth must be >= 1")
        if self.rate_limit_bps is not None and self.rate_limit_bps <= 0:
            raise ValueError("rate limit must be positive when set")
        if self.arrival_rate_iops is not None:
            if self.arrival_rate_iops <= 0:
                raise ValueError("arrival rate must be positive when set")
            if self.rate_limit_bps is not None:
                raise ValueError("open-loop jobs cannot also set a rate limit")
        if self.macro_tick_us is not None:
            if self.arrival_rate_iops is None:
                raise ValueError("macro_tick_us requires arrival_rate_iops")
            if self.macro_tick_us <= 0:
                raise ValueError("macro_tick_us must be positive when set")
        if self.arrival_phases is not None:
            if self.arrival_rate_iops is not None:
                raise ValueError(
                    "arrival_phases and arrival_rate_iops are mutually exclusive"
                )
            if self.rate_limit_bps is not None:
                raise ValueError("phased jobs cannot also set a rate limit")
            if self.macro_tick_us is not None:
                raise ValueError("phased jobs cannot use macro-tick batching")
            if not self.arrival_phases:
                raise ValueError("arrival_phases must not be empty when set")
            for earlier, later in zip(self.arrival_phases, self.arrival_phases[1:]):
                if later.start_us < earlier.stop_us:
                    raise ValueError("arrival phases must be sorted and non-overlapping")
        if not self.windows:
            raise ValueError("a job needs at least one activity window")
        ordered = sorted(self.windows, key=lambda w: w.start_us)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start_us < earlier.stop_us:
                raise ValueError("activity windows must not overlap")

    @property
    def is_read_only(self) -> bool:
        return self.read_fraction >= 1.0

    def active_at(self, time_us: float) -> bool:
        """Whether the job issues I/O at ``time_us``."""
        for w in self.windows:
            if w.start_us <= time_us < w.stop_us:
                return True
        return False


@dataclass(frozen=True)
class CgroupAppGroup:
    """Helper pairing a cgroup with the specs it should contain.

    Fairness scenarios place several identical batch apps in each cgroup
    (§VI-A uses four per group); this keeps that shape explicit.
    """

    cgroup_path: str
    specs: tuple[JobSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for spec in self.specs:
            if spec.cgroup_path != self.cgroup_path:
                raise ValueError(
                    f"spec {spec.name!r} targets {spec.cgroup_path!r}, "
                    f"not {self.cgroup_path!r}"
                )
