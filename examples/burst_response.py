#!/usr/bin/env python3
"""Burst response: how fast does each knob react to a priority burst?

A best-effort tenant saturates the SSD. At t=2s a high-priority batch
job arrives and needs its bandwidth *now*. The paper's O10: io.cost,
io.max and the schedulers react within milliseconds; io.latency can take
seconds because it only halves the offender's queue depth once per
500 ms window (1024 -> 1 is ten windows).

Run:  python examples/burst_response.py
"""

from repro.core.d4_bursts import burst_knobs, measure_burst_response
from repro.ssd.presets import samsung_980pro_like

DEVICE_SCALE = 16.0
KNOBS = ("mq-deadline", "io.max", "io.cost", "io.latency")


def main() -> None:
    ssd = samsung_980pro_like()
    knobs = burst_knobs(
        ssd.scaled(DEVICE_SCALE), "batch", lc_target_us=100.0 * DEVICE_SCALE
    )
    print(f"{'knob':<14s} {'response':>12s}  {'steady bandwidth':>18s}")
    print("-" * 50)
    for name in KNOBS:
        response = measure_burst_response(
            knobs[name],
            "batch",
            burst_start_s=2.0,
            duration_s=9.0,
            ssd=ssd,
            device_scale=DEVICE_SCALE,
            bucket_ms=50.0,
        )
        if response.response_ms is None:
            label = "never"
        elif response.response_ms >= 1000:
            label = f"{response.response_ms / 1000:.1f} s"
        else:
            label = f"{response.response_ms:.0f} ms"
        print(
            f"{name:<14s} {label:>12s}  "
            f"{response.steady_metric * DEVICE_SCALE:>12.0f} MiB/s"
        )
    print(
        "\nio.latency's staircase (one QD halving per 500 ms window) is why"
        "\nthe paper rules it out for bursty priority apps (O10)."
    )


if __name__ == "__main__":
    main()
