"""Time-varying arrival patterns (the D8 online-control stressors).

A statically tuned cgroup configuration is tuned against *one* load
level; these builders construct the load shapes under which that tuning
goes stale:

* :func:`diurnal_phases` -- a smooth day/night ramp, piecewise-constant
  approximation of a raised cosine between a base and a peak rate;
* :func:`flash_crowd_phases` -- a steady base rate with a sudden
  multiple-of-base crowd arriving mid-run and leaving again;
* :func:`churn_windows` -- staggered start/stop activity windows for a
  population of tenants, so the *set* of active groups (and with it the
  fair share each deserves) keeps changing.

Phase and window times are raw simulated microseconds, the
:class:`~repro.workloads.spec.ActivityWindow` convention: build them
against the already-dilated timeline of the scenario they feed.
"""

from __future__ import annotations

import math

from repro.workloads.spec import ActivityWindow, ArrivalPhase


def diurnal_phases(
    base_iops: float,
    peak_iops: float,
    period_us: float,
    steps: int = 8,
    start_us: float = 0.0,
    cycles: int = 1,
) -> tuple[ArrivalPhase, ...]:
    """A raised-cosine day/night arrival ramp as piecewise phases.

    The rate over one period follows ``base + (peak - base) * (1 -
    cos(2 pi t / period)) / 2`` -- starting and ending at ``base_iops``
    with the peak mid-period -- sampled at ``steps`` equal intervals
    (each interval holds the rate at its midpoint, so the approximation
    neither clips the peak nor widens it).
    """
    if peak_iops < base_iops:
        raise ValueError("peak rate must be >= base rate")
    if steps < 2:
        raise ValueError("a diurnal ramp needs at least 2 steps")
    if cycles < 1:
        raise ValueError("cycles must be >= 1")
    step_us = period_us / steps
    phases = []
    for cycle in range(cycles):
        cycle_start = start_us + cycle * period_us
        for i in range(steps):
            midpoint = (i + 0.5) / steps
            rate = base_iops + (peak_iops - base_iops) * (
                1.0 - math.cos(2.0 * math.pi * midpoint)
            ) / 2.0
            phases.append(
                ArrivalPhase(
                    start_us=cycle_start + i * step_us,
                    stop_us=cycle_start + (i + 1) * step_us,
                    rate_iops=rate,
                )
            )
    return tuple(phases)


def flash_crowd_phases(
    base_iops: float,
    crowd_iops: float,
    crowd_start_us: float,
    crowd_duration_us: float,
    end_us: float = math.inf,
) -> tuple[ArrivalPhase, ...]:
    """A steady base rate with a flash crowd arriving mid-run.

    Three phases: base until ``crowd_start_us``, ``crowd_iops`` for
    ``crowd_duration_us``, then base again until ``end_us``. The crowd
    must land strictly inside ``(0, end_us)`` so every run contains a
    before, a during and an after.
    """
    if crowd_start_us <= 0:
        raise ValueError("the crowd must arrive after the run starts")
    crowd_stop_us = crowd_start_us + crowd_duration_us
    if crowd_stop_us >= end_us:
        raise ValueError("the crowd must recede before the timeline ends")
    return (
        ArrivalPhase(0.0, crowd_start_us, base_iops),
        ArrivalPhase(crowd_start_us, crowd_stop_us, crowd_iops),
        ArrivalPhase(crowd_stop_us, end_us, base_iops),
    )


def churn_windows(
    tenant_index: int,
    n_tenants: int,
    duration_us: float,
    overlap: float = 2.0,
) -> tuple[ActivityWindow, ...]:
    """Staggered start/stop windows for one tenant of a churning set.

    The run is divided into ``n_tenants`` equal slots; tenant ``i``
    becomes active at the start of slot ``i`` and stays active for
    ``overlap`` slots (clamped to the run end), so roughly ``overlap``
    tenants run at any moment while tenant starts and stops land every
    ``duration_us / n_tenants`` -- the "new groups start or stop" regime
    the paper says static io.max translation cannot follow (§VII).
    """
    if not 0 <= tenant_index < n_tenants:
        raise ValueError("tenant_index must be in [0, n_tenants)")
    if duration_us <= 0:
        raise ValueError("duration must be positive")
    if overlap <= 0:
        raise ValueError("overlap must be positive")
    slot_us = duration_us / n_tenants
    start_us = tenant_index * slot_us
    stop_us = min(duration_us, start_us + overlap * slot_us)
    return (ActivityWindow(start_us, stop_us),)
