"""Surrogate-backed pair prediction for the fleet interference matrix.

The interference matrix costs C(N,2) measured pair scenarios; ROADMAP
item 1 caps that by measuring only a subset and letting a surrogate
stand in for the rest. :class:`SurrogatePairPredictor` implements the
``predictor=`` hook of :func:`repro.fleet.interference.build_matrix`:
for an unmeasured tenant pair it renders the exact pair scenario the
measurement *would* run, predicts both tenants' p99/bandwidth with the
model, and derives the two directional
:class:`~repro.fleet.interference.PairEffect` entries -- clamped
identically to the measured path and marked ``predicted=True`` so
downstream consumers can always tell estimate from measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.interference import (
    MatrixSettings,
    PairEffect,
    STARVED_P99_US,
    TenantMeasure,
    pair_scenario,
)
from repro.fleet.spec import FleetSpec, TenantSpec
from repro.surrogate.features import featurize
from repro.surrogate.model import SurrogateModel


@dataclass
class SurrogatePairPredictor:
    """Predicts directional pair effects from a fitted surrogate."""

    #: The fitted per-group performance model.
    model: SurrogateModel
    #: The fleet the matrix belongs to (scenario rendering context).
    fleet: FleetSpec
    #: Measurement settings matching the measured pairs' scenarios.
    settings: MatrixSettings
    #: Pairs predicted so far (telemetry).
    predicted_pairs: int = 0

    def predict_pair(
        self,
        first: TenantSpec,
        second: TenantSpec,
        solo: dict[str, TenantMeasure],
    ) -> tuple[PairEffect, PairEffect]:
        """The two directional effects of an unmeasured tenant pair.

        Renders the same scenario :func:`~repro.fleet.interference.
        pair_scenario` would measure, predicts each tenant's co-located
        delivery, and ratios it against the measured solo baseline with
        the measured path's exact clamps (``p99_ratio >= 1``,
        ``bandwidth_retention`` in ``(0, 1]``).
        """
        import numpy as np

        scenario = pair_scenario(self.fleet, first, second, self.settings)
        rows = np.asarray(
            [featurize(scenario, tenant.cgroup) for tenant in (first, second)]
        )
        means, _ = self.model.predict(rows)
        effects = []
        for tenant, partner, prediction in (
            (first, second, means[0]),
            (second, first, means[1]),
        ):
            by_target = dict(zip(self.model.target_names, prediction.tolist()))
            shared_p99 = min(STARVED_P99_US, max(0.0, by_target["p99_us"]))
            shared_bandwidth = max(0.0, by_target["bandwidth_mib_s"])
            base = solo[tenant.name]
            ratio = max(1.0, shared_p99 / base.p99_us) if base.p99_us > 0 else 1.0
            if base.bandwidth_mib_s > 0:
                retention = shared_bandwidth / base.bandwidth_mib_s
                retention = max(1e-6, min(1.0, retention))
            else:
                retention = 1.0
            effects.append(
                PairEffect(
                    tenant=tenant.name,
                    partner=partner.name,
                    p99_ratio=ratio,
                    bandwidth_retention=retention,
                    predicted=True,
                )
            )
        self.predicted_pairs += 1
        return effects[0], effects[1]

    def __call__(
        self,
        first: TenantSpec,
        second: TenantSpec,
        solo: dict[str, TenantMeasure],
    ) -> tuple[PairEffect, PairEffect]:
        """The ``predictor=`` hook protocol of ``build_matrix``."""
        return self.predict_pair(first, second, solo)
