"""Session-wide test configuration.

``ISOLBENCH_TEST_WORKERS=N`` (N > 1) installs an N-worker process-global
:class:`~repro.exec.executor.SweepExecutor` for the whole session, so
every d1–d4/fig/table sweep in the suite runs through spawned workers —
CI uses this to exercise the parallel path against the exact same
assertions the serial path passes. Unset (the default) the suite runs
serially and uncached, byte-for-byte the pre-executor behavior.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def session_sweep_executor():
    workers = int(os.environ.get("ISOLBENCH_TEST_WORKERS", "1"))
    if workers <= 1:
        yield None
        return
    from repro.exec import SweepExecutor, use_executor

    with SweepExecutor(max_workers=workers) as executor:
        with use_executor(executor):
            yield executor
