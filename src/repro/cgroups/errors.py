"""cgroup substrate error types.

Mirrors the errno-style failures the real cgroup filesystem produces:
``EINVAL`` for malformed knob writes (:class:`InvalidKnobValue`),
``EBUSY``/``ENOTSUP`` for hierarchy rule violations
(:class:`DelegationError`), with :class:`CgroupError` as the common base.
"""


class CgroupError(Exception):
    """Base class for all cgroup substrate errors."""


class DelegationError(CgroupError):
    """A hierarchy rule was violated.

    Examples: adding a process to a management group ("no internal
    processes"), enabling a controller below a group that does not
    delegate it, or writing a root-only knob (io.cost.*) elsewhere.
    """


class InvalidKnobValue(CgroupError):
    """A knob file write did not parse or was out of range (EINVAL)."""
