"""D7: fleet placement — does interference-awareness pay at fleet scale?

D1-D6 study one device; D7 asks the operator's next question: with a
fleet of hosts and devices and tenants that must land *somewhere*, how
much isolation does the **placement decision** buy before any cgroup
knob is turned, and how much does per-device tuning recover afterwards?

The experiment measures the fleet's pairwise interference matrix once
(solo + pair scenarios through the cached sweep executor), places the
tenants with each strategy (``random``, ``binpack``, ``serifos``), then
evaluates every resulting placement for real: each occupied device runs
its co-location scenario, contended devices are knob-tuned through the
:mod:`repro.tune` advisor, and each strategy gets one fleet-wide
SLO-violation score.

The expected outcome mirrors the paper's single-device findings
composed at scale: random placement co-locates latency-critical tenants
with saturating batch tenants and blows their p99 ceilings (O1/O2);
bin-packing protects latency by accident but crams the batch tenants
together, violating bandwidth floors; the interference-aware strategy
avoids both, and what violations remain are the genuine capacity
conflicts tuning cannot repair (the D3 throughput/latency trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import render_table
from repro.exec.executor import SweepExecutor
from repro.fleet.interference import InterferenceMatrix, build_matrix
from repro.fleet.placement import STRATEGIES, place
from repro.fleet.report import (
    PlacementReport,
    PlacementSettings,
    evaluate_placement,
    mini_settings,
    quick_settings,
)
from repro.fleet.spec import FleetSpec, demo_fleet

__all__ = [
    "PlacementComparison",
    "compare_placements",
    "demo_fleet",
    "mini_settings",
    "quick_settings",
]


@dataclass
class PlacementComparison:
    """Every strategy's measured outcome on one fleet, side by side."""

    #: The fleet that was placed.
    fleet_name: str
    #: Seed the random strategy drew from.
    seed: int
    #: The measured interference matrix all strategies shared.
    matrix: InterferenceMatrix
    #: Strategy name -> its full placement report, in run order.
    reports: dict[str, PlacementReport] = field(default_factory=dict)

    def best(self) -> str:
        """The winning strategy: lowest fleet score, name tie-break."""
        if not self.reports:
            raise ValueError("comparison holds no strategy reports")
        return min(
            self.reports, key=lambda name: (self.reports[name].fleet_score, name)
        )

    def score_of(self, strategy: str) -> float:
        """One strategy's fleet-wide SLO-violation score."""
        return self.reports[strategy].fleet_score

    def render(self) -> str:
        """The comparison table plus each strategy's device table."""
        headers = ("strategy", "fleet score", "meets SLO", "evicted", "migrations")
        rows = []
        for name, report in self.reports.items():
            rows.append(
                (
                    name,
                    f"{report.fleet_score:.3f}",
                    "yes" if report.meets_slo else "no",
                    len(report.placement.evicted),
                    len(report.placement.migrations),
                )
            )
        parts = [
            render_table(
                headers, rows, title=f"fleet {self.fleet_name!r} (seed {self.seed})"
            )
        ]
        parts.extend(report.render() for report in self.reports.values())
        parts.append(f"best strategy: {self.best()}")
        return "\n\n".join(parts)

    def to_json_dict(self) -> dict:
        """Golden-friendly document: matrix, per-strategy reports, winner."""
        return {
            "fleet_name": self.fleet_name,
            "seed": self.seed,
            "best": self.best(),
            "scores": {
                name: self.reports[name].fleet_score for name in self.reports
            },
            "matrix": self.matrix.to_json_dict(),
            "reports": {
                name: self.reports[name].to_json_dict() for name in self.reports
            },
        }


def compare_placements(
    fleet: FleetSpec | None = None,
    strategies: tuple[str, ...] = STRATEGIES,
    settings: PlacementSettings | None = None,
    seed: int = 42,
    executor: SweepExecutor | None = None,
) -> PlacementComparison:
    """Run the D7 experiment: one matrix, every strategy, one scoreboard.

    The matrix is measured once and shared; each strategy's placement
    and evaluation then runs against the same cached scenario pool, so
    the whole comparison is deterministic at any worker count and a
    rerun against a warm cache executes only the advisor's new probes.
    """
    fleet = fleet or demo_fleet()
    settings = settings or PlacementSettings()
    matrix = build_matrix(fleet, settings.matrix, executor=executor)
    comparison = PlacementComparison(
        fleet_name=fleet.name, seed=seed, matrix=matrix
    )
    for strategy in strategies:
        placement = place(fleet, matrix, strategy, seed=seed)
        comparison.reports[strategy] = evaluate_placement(
            fleet, placement, matrix, settings=settings, executor=executor
        )
    return comparison
