"""Observability configuration.

A scenario opts into tracing by setting ``Scenario.trace`` to a
:class:`TraceConfig`; the default (``None``) keeps the whole subsystem
dormant: no tracer or sampler objects are built, no hooks are installed,
and the event loop runs the exact seed hot path. This pay-for-what-you-
use contract is guarded by a benchmark test — the D1 overhead results
depend on the un-traced pipeline staying fast.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceConfig:
    """What to record during a scenario run.

    * ``spans`` — record one :class:`~repro.obs.span.RequestSpan` per
      completed request (submit / throttle-admit / dispatch / device-start
      / complete timestamps plus derived latency attribution).
    * ``sample_period_us`` — period of the ``io.stat``-style stack
      sampler; ``0`` disables periodic sampling.
    * ``max_spans`` — cap on retained spans (``0`` = unbounded). Once the
      cap is hit further spans are counted as dropped, not stored, so a
      long run cannot exhaust memory.
    """

    spans: bool = True
    sample_period_us: float = 10_000.0
    max_spans: int = 0

    def __post_init__(self) -> None:
        if self.sample_period_us < 0:
            raise ValueError("sample period must be >= 0 (0 disables sampling)")
        if self.max_spans < 0:
            raise ValueError("max_spans must be >= 0 (0 means unbounded)")

    @property
    def sampling(self) -> bool:
        """Whether periodic stack sampling is enabled."""
        return self.sample_period_us > 0
