"""Unit tests for SLO specs, parsing and violation scoring."""

import math

import pytest

from repro.core.config import NoneKnob, Scenario
from repro.core.scenarios import PRIORITY_GROUP, robustness_specs
from repro.exec.summary import run_scenario_summary
from repro.ssd.presets import samsung_980pro_like
from repro.tune.slo import (
    VIOLATION_CAP,
    GroupSlo,
    SloSpec,
    default_utilization_reference_mib_s,
    parse_slo,
    score_summary,
)


class TestSpecValidation:
    def test_group_needs_an_objective(self):
        with pytest.raises(ValueError, match="no objective"):
            GroupSlo("/tenants/a")

    def test_group_path_must_be_absolute(self):
        with pytest.raises(ValueError, match="absolute"):
            GroupSlo("tenants/a", p99_latency_us=100.0)

    def test_negative_targets_rejected(self):
        with pytest.raises(ValueError):
            GroupSlo("/a", p99_latency_us=-1.0)
        with pytest.raises(ValueError):
            GroupSlo("/a", min_bandwidth_mib_s=0.0)

    def test_spec_needs_groups(self):
        with pytest.raises(ValueError, match="at least one group"):
            SloSpec(groups=())

    def test_duplicate_groups_rejected(self):
        group = GroupSlo("/a", p99_latency_us=10.0)
        with pytest.raises(ValueError, match="duplicate"):
            SloSpec(groups=(group, group))

    def test_utilization_floor_bounds(self):
        group = GroupSlo("/a", p99_latency_us=10.0)
        with pytest.raises(ValueError, match="utilization_floor"):
            SloSpec(groups=(group,), utilization_floor=1.5)


class TestParse:
    def test_full_clause(self):
        spec = parse_slo("/tenants/prio:p99<=400,bw>=40;util>=0.25")
        assert spec.groups == (
            GroupSlo("/tenants/prio", p99_latency_us=400.0, min_bandwidth_mib_s=40.0),
        )
        assert spec.utilization_floor == 0.25

    def test_unit_suffixes_accepted(self):
        spec = parse_slo("/a:p99<=400us,bw>=40mib")
        assert spec.groups[0].p99_latency_us == 400.0
        assert spec.groups[0].min_bandwidth_mib_s == 40.0

    def test_multiple_groups(self):
        spec = parse_slo("/a:p99<=100;/b:bw>=200")
        assert [g.cgroup for g in spec.groups] == ["/a", "/b"]

    def test_describe_round_trips(self):
        text = "/tenants/prio:p99<=100,bw>=40;util>=0.25"
        assert parse_slo(parse_slo(text).describe()).describe() == text

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_slo("/a:p99>100")
        with pytest.raises(ValueError, match="cannot parse"):
            parse_slo("no-slash:p99<=1")

    def test_duplicate_util_rejected(self):
        with pytest.raises(ValueError, match="duplicate util"):
            parse_slo("util>=0.2;util>=0.3")


@pytest.fixture(scope="module")
def summary():
    """One tiny uncontrolled run of the D5 workload shape."""
    scenario = Scenario(
        name="slo-score-probe",
        knob=NoneKnob(),
        apps=robustness_specs(be_queue_depth=16, n_be_apps=1),
        ssd_model=samsung_980pro_like(),
        duration_s=0.2,
        warmup_s=0.05,
        device_scale=32.0,
        cores=4,
    )
    return run_scenario_summary(scenario)


class TestScoring:
    def test_met_slo_scores_zero(self, summary):
        spec = SloSpec(
            groups=(GroupSlo(PRIORITY_GROUP, p99_latency_us=1e9),),
        )
        score = score_summary(spec, summary)
        assert score.total == 0.0
        assert score.meets_slo
        assert not score.needs_tightening

    def test_latency_violation_is_relative_excess(self, summary):
        stats = summary.cgroup_stats()[PRIORITY_GROUP]
        measured = stats.latency.p99_us / summary.device_scale
        target = measured / 2.0
        spec = SloSpec(groups=(GroupSlo(PRIORITY_GROUP, p99_latency_us=target),))
        score = score_summary(spec, summary)
        assert score.latency_total == pytest.approx(1.0, rel=1e-9)
        assert score.needs_tightening

    def test_bandwidth_violation_is_relative_shortfall(self, summary):
        stats = summary.cgroup_stats()[PRIORITY_GROUP]
        measured = stats.bandwidth_mib_s * summary.device_scale
        spec = SloSpec(
            groups=(GroupSlo(PRIORITY_GROUP, min_bandwidth_mib_s=measured * 4.0),)
        )
        score = score_summary(spec, summary)
        assert score.bandwidth_total == pytest.approx(0.75, rel=1e-9)
        assert not score.needs_tightening

    def test_starved_group_scores_the_cap(self, summary):
        spec = SloSpec(
            groups=(
                GroupSlo("/tenants/ghost", p99_latency_us=1.0, min_bandwidth_mib_s=1.0),
            )
        )
        score = score_summary(spec, summary)
        assert score.latency_total == VIOLATION_CAP
        assert score.bandwidth_total == 1.0  # shortfall is capped at 100%
        (p99_term, _) = score.terms
        assert p99_term.measured == math.inf
        assert p99_term.to_json_dict()["measured"] == "inf"

    def test_utilization_term_uses_device_reference(self, summary):
        ssd = samsung_980pro_like()
        spec = SloSpec(
            groups=(GroupSlo(PRIORITY_GROUP, p99_latency_us=1e9),),
            utilization_floor=1.0,
        )
        score = score_summary(spec, summary, ssd=ssd)
        util_term = score.terms[-1]
        assert util_term.kind == "utilization"
        expected = (
            summary.equivalent_bandwidth_gib_s
            * 1024.0
            / default_utilization_reference_mib_s(ssd)
        )
        assert util_term.measured == pytest.approx(expected)

    def test_utilization_needs_reference_or_model(self, summary):
        spec = SloSpec(
            groups=(GroupSlo(PRIORITY_GROUP, p99_latency_us=1e9),),
            utilization_floor=0.5,
        )
        with pytest.raises(ValueError, match="utilization_floor"):
            score_summary(spec, summary)

    def test_weights_scale_the_total(self, summary):
        groups = (GroupSlo(PRIORITY_GROUP, p99_latency_us=1.0),)
        plain = score_summary(SloSpec(groups=groups), summary)
        doubled = score_summary(SloSpec(groups=groups, latency_weight=2.0), summary)
        assert doubled.total == pytest.approx(2.0 * plain.total)
