"""Extension (§VII future work): do the desiderata survive the page cache?

The paper evaluates direct I/O only and asks whether io.cost's isolation
properties hold at higher layers. Two experiments on the buffered-I/O
substrate (:mod:`repro.fs.pagecache`):

1. **LC protection vs writeback** -- an LC reader protected by io.cost
   against (a) a direct writer and (b) a buffered writer whose I/O
   reaches the device as background writeback bursts. With cgroup-v2
   writeback attribution, io.cost still throttles the culprit and the
   reader's P99 holds.
2. **Weighted fairness of buffered writers** -- two buffered writers
   with 1:8 io.weights. With v2 attribution their *writeback* splits by
   weight; with v1-style unattributed flusher writeback, both tenants'
   dirty pages drain from the root context and the weights become
   meaningless.
"""

import dataclasses

from conftest import run_once

from repro.cgroups.knobs import IoCostQosParams
from repro.core.config import IoCostKnob, Scenario
from repro.core.report import render_table
from repro.core.runner import run_scenario
from repro.fs.pagecache import PageCacheConfig
from repro.workloads.apps import batch_app, lc_app

DEVICE_SCALE = 8.0


def _iocost_lc_knob(writer_group):
    return IoCostKnob(
        weights={"/t/lc": 10000, writer_group: 100},
        qos=IoCostQosParams(
            enable=True, ctrl="user", rpct=99.0, rlat_us=150.0 * DEVICE_SCALE,
            vrate_min_pct=25.0, vrate_max_pct=100.0,
        ),
    )


def _run_lc_vs_writer(buffered: bool):
    writer = batch_app("writer", "/t/w", read_fraction=0.0, queue_depth=32)
    if buffered:
        writer = dataclasses.replace(writer, direct=False)
    scenario = Scenario(
        name=f"ext-pc-lc-{'buffered' if buffered else 'direct'}",
        knob=_iocost_lc_knob("/t/w"),
        apps=[lc_app("lc", "/t/lc"), writer],
        duration_s=1.0,
        warmup_s=0.3,
        device_scale=DEVICE_SCALE,
        preconditioned=True,
    )
    result = run_scenario(scenario)
    return result.app_stats("lc").latency.p99_us / DEVICE_SCALE


def _run_weighted_writers(attributed: bool):
    writers = [
        dataclasses.replace(
            batch_app("heavy", "/t/heavy", read_fraction=0.0, queue_depth=32),
            direct=False,
        ),
        dataclasses.replace(
            batch_app("light", "/t/light", read_fraction=0.0, queue_depth=32),
            direct=False,
        ),
    ]
    knob = IoCostKnob(weights={"/t/heavy": 800, "/t/light": 100})
    scenario = Scenario(
        name=f"ext-pc-weights-{'v2' if attributed else 'v1'}",
        knob=knob,
        apps=writers,
        duration_s=1.2,
        warmup_s=0.4,
        device_scale=DEVICE_SCALE,
        preconditioned=True,
        page_cache=PageCacheConfig(
            attributed=attributed,
            dirty_background_bytes=2 * 1024 * 1024,
            dirty_hard_bytes=6 * 1024 * 1024,
        ),
    )
    result = run_scenario(scenario)
    heavy = result.app_stats("heavy").bandwidth_mib_s
    light = result.app_stats("light").bandwidth_mib_s
    return heavy, light


def test_pagecache_isolation(benchmark, figure_output):
    def experiment():
        lc_direct = _run_lc_vs_writer(buffered=False)
        lc_buffered = _run_lc_vs_writer(buffered=True)
        heavy_v2, light_v2 = _run_weighted_writers(attributed=True)
        heavy_v1, light_v1 = _run_weighted_writers(attributed=False)
        return lc_direct, lc_buffered, (heavy_v2, light_v2), (heavy_v1, light_v1)

    lc_direct, lc_buffered, v2, v1 = run_once(benchmark, experiment)
    rows = [
        ["LC P99 vs direct writer (io.cost)", f"{lc_direct:.0f} us equiv"],
        ["LC P99 vs buffered writer (io.cost, v2 writeback)", f"{lc_buffered:.0f} us equiv"],
        ["buffered writers 8:1 weights, v2 attribution", f"{v2[0] / max(v2[1], 1e-9):.2f}x split"],
        ["buffered writers 8:1 weights, v1 flusher", f"{v1[0] / max(v1[1], 1e-9):.2f}x split"],
    ]
    table = render_table(
        ["extension experiment", "result"],
        rows,
        title="Extension -- cgroup I/O control above the page cache (§VII)",
    )
    figure_output("ext_pagecache_isolation", table)

    # io.cost's latency protection survives buffered writers (within 3x
    # of the direct-writer case, and far below an unprotected reader).
    assert lc_buffered < 3.0 * lc_direct
    # v2 attribution preserves weighted sharing; v1 flusher destroys it.
    assert v2[0] / max(v2[1], 1e-9) > 3.0
    assert v1[0] / max(v1[1], 1e-9) < 2.0
