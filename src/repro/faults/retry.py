"""Host-side resilience: retries, exponential backoff, watchdog timeouts.

The :class:`RetryCoordinator` sits between the :class:`~repro.core.host.Host`
completion path and the app layer and implements the
:class:`~repro.faults.plan.RetryPolicy` of the scenario's fault plan:

* a device completion that surfaces with ``req.failed`` set is retried
  (same request object resubmitted into the block layer after an
  exponential backoff with jitter) until ``max_attempts`` is exhausted,
  then delivered to the app as a failure;
* each attempt of an app-issued request can be guarded by a watchdog:
  if the attempt is still incomplete ``timeout_us`` after entering the
  block layer, it is *abandoned* — the original keeps consuming stack
  and device resources like a real timed-out NVMe command, but its
  eventual completion is dropped as stale — and a fresh clone (same
  ``submit_time``, so app-visible latency spans all attempts) is
  retried in its place.

All backoff/jitter draws come from the dedicated ``faults.retry`` RNG
stream, so retry placement never perturbs workload randomness and runs
stay bit-deterministic per seed. Counters live in :class:`FaultStats`
and surface through ``ScenarioSummary.fault_counters`` and the stack
sampler's ``faults.*`` rows.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.faults.plan import RetryPolicy
from repro.iorequest import IoRequest


def backoff_delay(policy: RetryPolicy, attempt: int, rng: random.Random) -> float:
    """Backoff (us) before ``attempt`` (the attempt about to be made).

    Attempt 2 waits ``backoff_base_us``, attempt 3 waits
    ``backoff_base_us * backoff_mult``, and so on; the result is scaled
    by a uniform ``1 ± jitter`` factor. A zero base yields zero delay
    without consuming a jitter draw, so disabling backoff does not shift
    the RNG stream.
    """
    if attempt < 2:
        raise ValueError("backoff applies from the second attempt onward")
    delay = policy.backoff_base_us * policy.backoff_mult ** (attempt - 2)
    if delay <= 0:
        return 0.0
    if policy.jitter:
        delay *= 1.0 + policy.jitter * (2.0 * rng.random() - 1.0)
    return delay


class FaultStats:
    """Lifetime failure accounting for one scenario run."""

    __slots__ = (
        "device_errors",
        "retries",
        "timeouts",
        "stale_completions",
        "failures_delivered",
        "backoff_us",
    )

    def __init__(self) -> None:
        self.device_errors = 0
        self.retries = 0
        self.timeouts = 0
        self.stale_completions = 0
        self.failures_delivered = 0
        self.backoff_us = 0.0

    def as_dict(self) -> dict[str, float]:
        """Counters keyed the way the sampler/summary expose them."""
        return {
            "device_errors": float(self.device_errors),
            "retries": float(self.retries),
            "timeouts": float(self.timeouts),
            "stale_completions": float(self.stale_completions),
            "failures_delivered": float(self.failures_delivered),
            "backoff_us": self.backoff_us,
        }


class RetryCoordinator:
    """Applies a :class:`RetryPolicy` to the host's completion path.

    The host calls :meth:`watch` whenever an app-issued request (or a
    retry of one) enters the block layer, and :meth:`resolve` when a
    device completion surfaces; ``resolve`` returns True only when the
    completion should be delivered normally. Everything else — dropping
    stale completions, scheduling backoff resubmissions via
    ``resubmit``, delivering exhausted requests via ``deliver_failure``,
    and notifying the throttle layer's degraded-mode counter via
    ``on_fault`` — happens inside the coordinator.
    """

    def __init__(
        self,
        sim,
        policy: RetryPolicy,
        rng: random.Random,
        resubmit: Callable[[IoRequest], None],
        deliver_failure: Callable[[IoRequest], None],
        on_fault: Optional[Callable[[IoRequest], None]] = None,
    ):
        self.sim = sim
        self.policy = policy
        self.rng = rng
        self.resubmit = resubmit
        self.deliver_failure = deliver_failure
        self.on_fault = on_fault or (lambda req: None)
        self.stats = FaultStats()

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    def watch(self, req: IoRequest) -> None:
        """Arm the per-attempt watchdog for a request entering the stack."""
        if self.policy.timeout_us <= 0:
            return
        req.timeout_event = self.sim.schedule(
            self.policy.timeout_us, lambda: self._on_timeout(req)
        )

    def _on_timeout(self, req: IoRequest) -> None:
        """Abandon a stalled attempt; retry a clone or give up."""
        req.abandoned = True
        req.timeout_event = None
        self.stats.timeouts += 1
        self.on_fault(req)
        if req.attempts < self.policy.max_attempts:
            self._schedule_retry(req.clone_for_retry())
        else:
            # The original stays in flight (its completion will be dropped
            # as stale); the app sees the failure now, at watchdog expiry.
            req.failed = True
            req.complete_time = self.sim.now
            self.stats.failures_delivered += 1
            self.deliver_failure(req)

    # ------------------------------------------------------------------
    # Completion path
    # ------------------------------------------------------------------
    def resolve(self, req: IoRequest) -> bool:
        """Judge a surfacing completion; True means deliver it normally."""
        if req.abandoned:
            self.stats.stale_completions += 1
            return False
        if req.timeout_event is not None:
            self.sim.cancel(req.timeout_event)
            req.timeout_event = None
        if not req.failed:
            return True
        self.stats.device_errors += 1
        self.on_fault(req)
        if req.attempts < self.policy.max_attempts:
            # Reuse the object: the device is done with it, and keeping
            # identity preserves submit_time for app-visible latency.
            self._schedule_retry(req)
        else:
            req.complete_time = self.sim.now
            self.stats.failures_delivered += 1
            self.deliver_failure(req)
        return False

    def _schedule_retry(self, req: IoRequest) -> None:
        """Resubmit ``req`` as its next attempt after backoff."""
        req.attempts += 1
        req.failed = False
        self.stats.retries += 1
        delay = backoff_delay(self.policy, req.attempts, self.rng)
        self.stats.backoff_us += delay
        if delay > 0:
            self.sim.schedule(delay, lambda: self.resubmit(req))
        else:
            self.resubmit(req)
