"""Control-plane configuration (the ``Scenario.ctl`` field).

:class:`CtlConfig` describes one online control plane: the SLO it
defends, its sampling and decision cadence, and per-controller
parameters. Everything is a frozen dataclass with validated fields, so
a config renders canonically into the exec cache key (like
:class:`~repro.faults.plan.FaultPlan`) and two scenarios differing only
in a gain or a deadband key differently.

Time fields are *raw simulated microseconds* (the same convention as
:class:`~repro.workloads.spec.ActivityWindow`): a D8 builder that
dilates its workload timeline by ``device_scale`` dilates its control
periods alongside, keeping the ratio of control steps to traffic shifts
constant across effort levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.tune.slo import SloSpec


def _require_positive(name: str, value: float) -> None:
    """Shared validator: ``value`` must be finite and > 0."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be positive and finite, got {value!r}")


@dataclass(frozen=True)
class PidParams:
    """Gains of the io.max PID loop (per control step, unit-free).

    ``violation_boost`` multiplies negative (SLO-violating) errors
    before they enter the loop: tighten fast, loosen slow -- the
    asymmetry that keeps the whole-window p99 down while still
    reclaiming bandwidth once the pressure passes.
    """

    kp: float = 0.5
    ki: float = 0.1
    kd: float = 0.0
    violation_boost: float = 4.0

    def __post_init__(self) -> None:
        for name in ("kp", "ki", "kd"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be >= 0 and finite")
        if not math.isfinite(self.violation_boost) or self.violation_boost < 1.0:
            raise ValueError("violation_boost must be >= 1")


@dataclass(frozen=True)
class IoMaxCtlParams:
    """PID control of a cgroup's io.max cap, as a fraction of saturation.

    ``group`` names the capped cgroup (None infers the scenario's sole
    limited group); ``initial_fraction=None`` infers the starting point
    from the knob's static rbps limit, so the online run begins exactly
    where the static config stands and every later move is the
    controller's doing.

    The actuation profile is asymmetric: downward (tightening) steps
    may move up to ``max_step_fraction`` of the current cap per step,
    upward (recovery) steps only ``max_recover_fraction`` -- cut fast
    under violation, creep back slowly, so the loop does not oscillate
    straight back into the drift it just escaped. The deadband is
    *relative* to the current fraction for the same reason: an absolute
    deadband would swallow the small recovery steps entirely once the
    cap sits low.
    """

    pid: PidParams = field(default_factory=PidParams)
    group: str | None = None
    initial_fraction: float | None = None
    floor_fraction: float = 0.05
    ceiling_fraction: float = 0.95
    deadband_fraction: float = 0.02
    max_step_fraction: float = 0.5
    max_recover_fraction: float = 0.1
    min_interval_us: float = 0.0

    def __post_init__(self) -> None:
        if self.initial_fraction is not None:
            _require_positive("initial_fraction", self.initial_fraction)
        _require_positive("floor_fraction", self.floor_fraction)
        _require_positive("ceiling_fraction", self.ceiling_fraction)
        if self.floor_fraction >= self.ceiling_fraction:
            raise ValueError("floor_fraction must be below ceiling_fraction")
        if not math.isfinite(self.deadband_fraction) or self.deadband_fraction < 0:
            raise ValueError("deadband_fraction must be >= 0")
        _require_positive("max_step_fraction", self.max_step_fraction)
        _require_positive("max_recover_fraction", self.max_recover_fraction)
        if not math.isfinite(self.min_interval_us) or self.min_interval_us < 0:
            raise ValueError("min_interval_us must be >= 0")


@dataclass(frozen=True)
class VrateCtlParams:
    """Multiplicative nudging of io.cost's vrate ceiling.

    On SLO drift the controller shrinks the qos ``max`` percentage by
    ``down_step`` (forcing blk-iocost to issue less virtual time); when
    every objective is met it recovers by ``up_step`` toward the
    original ceiling. Mirrors the kernel's own vrate adjustment steps,
    but driven by the *tenant* SLO instead of device-level percentiles.
    """

    down_step: float = 0.8
    up_step: float = 1.1
    floor_pct: float = 10.0
    deadband_pct: float = 0.5
    min_interval_us: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.down_step < 1:
            raise ValueError("down_step must be in (0, 1)")
        if not self.up_step > 1 or not math.isfinite(self.up_step):
            raise ValueError("up_step must be > 1 and finite")
        _require_positive("floor_pct", self.floor_pct)
        if not math.isfinite(self.deadband_pct) or self.deadband_pct < 0:
            raise ValueError("deadband_pct must be >= 0")
        if not math.isfinite(self.min_interval_us) or self.min_interval_us < 0:
            raise ValueError("min_interval_us must be >= 0")


@dataclass(frozen=True)
class QdLimitCtlParams:
    """Adaptive io.latency target driving the kernel's QD throttling.

    io.latency halves unprotected groups' queue depths only while the
    protected group misses its *knob* target; tightening that target on
    SLO drift makes the halving engage earlier and deeper, and loosening
    it afterwards lets queue depths recover. Factors are relative to the
    statically configured target.
    """

    tighten_factor: float = 0.7
    loosen_factor: float = 1.2
    floor_fraction: float = 0.1
    ceiling_fraction: float = 1.0
    min_interval_us: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.tighten_factor < 1:
            raise ValueError("tighten_factor must be in (0, 1)")
        if not self.loosen_factor > 1 or not math.isfinite(self.loosen_factor):
            raise ValueError("loosen_factor must be > 1 and finite")
        _require_positive("floor_fraction", self.floor_fraction)
        _require_positive("ceiling_fraction", self.ceiling_fraction)
        if self.floor_fraction >= self.ceiling_fraction:
            raise ValueError("floor_fraction must be below ceiling_fraction")
        if not math.isfinite(self.min_interval_us) or self.min_interval_us < 0:
            raise ValueError("min_interval_us must be >= 0")


@dataclass(frozen=True)
class CtlConfig:
    """One online control plane: SLO, cadence, controller parameters.

    The host instantiates only the controller matching the scenario's
    knob type (PID for io.max, vrate for io.cost, target adaptation for
    io.latency); scenarios under other knobs still get the observation
    stream and decision trace, just no actuator.
    """

    #: The SLO the plane defends; drift is scored per observation window
    #: with the tuner's own machinery.
    slo: SloSpec
    #: Control decision cadence in simulated microseconds.
    period_us: float = 100_000.0
    #: Sampling cadence of the dedicated StackSampler the plane
    #: subscribes to; the decision cadence is rounded to a whole number
    #: of sampler ticks.
    sample_period_us: float = 20_000.0
    #: Observation windows with fewer completions than this across all
    #: groups are skipped (p99 over a handful of samples is noise).
    min_window_ios: int = 8
    iomax: IoMaxCtlParams = field(default_factory=IoMaxCtlParams)
    vrate: VrateCtlParams = field(default_factory=VrateCtlParams)
    qdlimit: QdLimitCtlParams = field(default_factory=QdLimitCtlParams)

    def __post_init__(self) -> None:
        _require_positive("period_us", self.period_us)
        _require_positive("sample_period_us", self.sample_period_us)
        if self.sample_period_us > self.period_us:
            raise ValueError("sample_period_us must not exceed period_us")
        if self.min_window_ios < 0:
            raise ValueError("min_window_ios must be >= 0")

    @property
    def ticks_per_step(self) -> int:
        """Sampler ticks per control decision (always >= 1)."""
        return max(1, round(self.period_us / self.sample_period_us))
