"""The cgroup v2 tree.

Implements the structural rules the paper describes in §IV-A:

* every process lives in exactly one group; the root always exists;
* a group is either a *management group* (has controllers enabled in
  ``cgroup.subtree_control``, may not hold processes) or a *process
  group* (holds processes, may not delegate controllers) -- the "no
  internal processes" rule;
* I/O knob files are only writable when the parent delegates the ``io``
  controller (the "+io" marks in the paper's Fig. 1);
* ``io.cost.qos`` / ``io.cost.model`` are root-only;
* ``io.prio.class`` is not inheritable: controllers read it from the
  process's own group only.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.cgroups.errors import DelegationError, InvalidKnobValue
from repro.cgroups.knobs import (
    IO_WEIGHT_DEFAULT,
    BFQ_WEIGHT_DEFAULT,
    KNOB_SPECS,
    PrioClass,
)

_VALID_CONTROLLERS = {"io", "cpu", "memory"}


class Cgroup:
    """One node of the cgroup v2 tree."""

    def __init__(self, name: str, parent: Optional["Cgroup"]):
        if parent is not None:
            if not name or "/" in name or name in (".", ".."):
                raise DelegationError(f"invalid cgroup name {name!r}")
        self.name = name
        self.parent = parent
        # name/parent never change after construction, so the absolute
        # path is computed once; controllers key per-group state by it on
        # every request.
        if parent is None:
            self._path = "/"
        else:
            parent_path = parent._path
            self._path = parent_path + name if parent_path == "/" else f"{parent_path}/{name}"
        self.children: dict[str, Cgroup] = {}
        self.processes: set[str] = set()
        self.subtree_control: set[str] = set()
        # Parsed knob state. Scalar knobs store a single value; per-device
        # knobs store {device_id: params}.
        self._scalar_knobs: dict[str, object] = {}
        self._device_knobs: dict[str, dict[str, object]] = {}

    # ------------------------------------------------------------------
    # Tree structure
    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def path(self) -> str:
        return self._path

    def create_child(self, name: str) -> "Cgroup":
        """Create a child group (mkdir)."""
        if name in self.children:
            raise DelegationError(f"cgroup {self.path}/{name} already exists")
        child = Cgroup(name, self)
        self.children[name] = child
        return child

    def remove_child(self, name: str) -> None:
        """Remove an empty child group (rmdir)."""
        child = self.children.get(name)
        if child is None:
            raise DelegationError(f"no child {name!r} under {self.path}")
        if child.processes or child.children:
            raise DelegationError(f"cgroup {child.path} is not empty")
        del self.children[name]

    def enable_subtree_control(self, controller: str) -> None:
        """Write ``+controller`` to cgroup.subtree_control."""
        if controller not in _VALID_CONTROLLERS:
            raise DelegationError(f"unknown controller {controller!r}")
        if self.processes:
            raise DelegationError(
                f"cannot enable +{controller} on {self.path}: group has processes "
                "(no-internal-processes rule)"
            )
        if not self.is_root and controller not in self.parent.subtree_control:
            raise DelegationError(
                f"cannot enable +{controller} on {self.path}: parent does not delegate it"
            )
        self.subtree_control.add(controller)

    def disable_subtree_control(self, controller: str) -> None:
        """Write ``-controller`` to cgroup.subtree_control."""
        for child in self.children.values():
            if controller in child.subtree_control:
                raise DelegationError(
                    f"cannot disable +{controller} on {self.path}: child {child.path} uses it"
                )
        self.subtree_control.discard(controller)

    def add_process(self, proc_name: str) -> None:
        """Attach a process (write to cgroup.procs)."""
        if self.subtree_control:
            raise DelegationError(
                f"cannot add process to management group {self.path} "
                "(no-internal-processes rule)"
            )
        self.processes.add(proc_name)

    def remove_process(self, proc_name: str) -> None:
        self.processes.discard(proc_name)

    @property
    def is_management_group(self) -> bool:
        return bool(self.subtree_control)

    @property
    def is_process_group(self) -> bool:
        return bool(self.processes)

    def walk(self) -> Iterator["Cgroup"]:
        """Depth-first traversal including self."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def ancestors(self) -> Iterator["Cgroup"]:
        """From parent up to (and including) the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # ------------------------------------------------------------------
    # Knob files
    # ------------------------------------------------------------------
    def _check_io_writable(self, knob_name: str) -> None:
        spec = KNOB_SPECS[knob_name]
        if spec.root_only and not self.is_root:
            raise DelegationError(f"{knob_name} can only be set in the root cgroup")
        if spec.root_only:
            return
        # io.prio.class exists in every group (it is a hint, not an io
        # controller file); other knobs need the parent to delegate io.
        if knob_name == "io.prio.class":
            return
        if self.is_root:
            return
        if "io" not in self.parent.subtree_control:
            raise DelegationError(
                f"cannot write {knob_name} on {self.path}: parent {self.parent.path} "
                "does not enable +io in cgroup.subtree_control"
            )

    def write(self, knob_name: str, raw: str) -> None:
        """Write a string to a knob file, with kernel-style validation."""
        spec = KNOB_SPECS.get(knob_name)
        if spec is None:
            raise InvalidKnobValue(
                f"unknown knob file {knob_name!r}; options: {sorted(KNOB_SPECS)}"
            )
        self._check_io_writable(knob_name)
        if spec.per_device:
            device, params = spec.parse(raw)
            self._device_knobs.setdefault(knob_name, {})[device] = params
        else:
            self._scalar_knobs[knob_name] = spec.parse(raw)

    def read_parsed(self, knob_name: str, device: Optional[str] = None):
        """Read back parsed knob state (None when unset)."""
        spec = KNOB_SPECS.get(knob_name)
        if spec is None:
            raise InvalidKnobValue(f"unknown knob file {knob_name!r}")
        if spec.per_device:
            table = self._device_knobs.get(knob_name, {})
            return table.get(device) if device is not None else dict(table)
        return self._scalar_knobs.get(knob_name)

    # Convenience accessors used by the controllers ---------------------
    def io_weight(self) -> int:
        """Effective io.weight (default 100 when unset)."""
        value = self._scalar_knobs.get("io.weight")
        return value if value is not None else IO_WEIGHT_DEFAULT

    def bfq_weight(self) -> int:
        """Effective io.bfq.weight (default 100 when unset)."""
        value = self._scalar_knobs.get("io.bfq.weight")
        return value if value is not None else BFQ_WEIGHT_DEFAULT

    def prio_class(self) -> PrioClass:
        """io.prio.class of *this* group only (not inheritable, §IV-B)."""
        value = self._scalar_knobs.get("io.prio.class")
        return value if value is not None else PrioClass.NONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "mgmt" if self.is_management_group else "proc" if self.is_process_group else "empty"
        return f"Cgroup({self.path}, {kind})"


class CgroupHierarchy:
    """The mounted cgroup v2 tree with path lookup helpers."""

    def __init__(self) -> None:
        self.root = Cgroup("", None)
        # The root implicitly has every controller available to delegate.
        self.root.subtree_control.update(_VALID_CONTROLLERS)

    def find(self, path: str) -> Cgroup:
        """Resolve an absolute path like ``/tenants/a.service``."""
        if not path.startswith("/"):
            raise DelegationError(f"cgroup paths are absolute, got {path!r}")
        node = self.root
        for part in path.strip("/").split("/"):
            if not part:
                continue
            child = node.children.get(part)
            if child is None:
                raise DelegationError(f"no such cgroup: {path!r} (missing {part!r})")
            node = child
        return node

    def create(self, path: str, processes: bool = False) -> Cgroup:
        """Create all groups along ``path``; intermediate groups get +io.

        ``processes=True`` marks the leaf as a process group (it will hold
        apps); intermediate nodes become management groups so the leaf's
        io knob files are writable, matching the paper's Fig. 1 layout.
        """
        if not path.startswith("/"):
            raise DelegationError(f"cgroup paths are absolute, got {path!r}")
        node = self.root
        parts = [part for part in path.strip("/").split("/") if part]
        for i, part in enumerate(parts):
            child = node.children.get(part)
            if child is None:
                child = node.create_child(part)
            is_leaf = i == len(parts) - 1
            if not is_leaf and "io" not in child.subtree_control:
                child.enable_subtree_control("io")
            node = child
        if processes and node.subtree_control:
            raise DelegationError(f"{path} is a management group; cannot hold processes")
        return node

    def groups(self) -> Iterator[Cgroup]:
        """All groups, depth-first from the root."""
        return self.root.walk()

    def leaf_for_process(self, proc_name: str) -> Optional[Cgroup]:
        """Find the group holding ``proc_name`` (None if not attached)."""
        for group in self.root.walk():
            if proc_name in group.processes:
                return group
        return None
