"""Candidate evaluation: assignments -> scenarios -> SLO scores.

:class:`TuneEvaluator` is the bridge between the search strategies and
the simulator: it renders each candidate value assignment into a
deterministic :class:`~repro.core.config.Scenario` (fixed workload,
seed, effort level -- only the knob configuration varies), fans the
whole batch through the sweep executor, and scores every summary
against the SLO spec.

Because the scenario is a pure function of the assignment, a re-proposed
candidate renders the *same* scenario text: the executor's
content-addressed cache and its in-sweep dedup collapse repeats to a
single simulation for free, which is what makes iterative search loops
affordable. With ``faults=`` set, every candidate runs under the given
fault plan, so the search optimizes for robust isolation rather than
fair-weather isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import KnobConfig, Scenario
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.faults.plan import FaultPlan
from repro.ssd.model import SsdModel
from repro.tune.slo import SloScore, SloSpec, score_summary
from repro.tune.space import KnobSpace
from repro.workloads.spec import JobSpec


@dataclass(frozen=True)
class Evaluation:
    """One scored candidate: assignment, effort level, and its score."""

    #: The space's deterministic label for the assignment.
    label: str
    #: The normalized value assignment that was evaluated.
    values: dict
    #: Fraction of the full run duration this evaluation used (successive
    #: halving runs early rungs at < 1.0; only 1.0 competes for "best").
    fidelity: float
    #: The SLO score of the run.
    score: SloScore


class TuneEvaluator:
    """Renders, runs and scores candidate assignments for one space."""

    def __init__(
        self,
        space: KnobSpace,
        slo: SloSpec,
        apps: list[JobSpec],
        ssd: SsdModel,
        device_scale: float,
        duration_s: float,
        warmup_s: float,
        seed: int = 42,
        cores: int = 10,
        faults: FaultPlan | None = None,
        executor: SweepExecutor | None = None,
    ):
        if duration_s <= 0 or not 0 <= warmup_s < duration_s:
            raise ValueError("need duration_s > 0 and 0 <= warmup_s < duration_s")
        self.space = space
        self.slo = slo
        self.apps = apps
        self.ssd = ssd
        self.device_scale = device_scale
        self.duration_s = duration_s
        self.warmup_s = warmup_s
        self.seed = seed
        self.cores = cores
        self.faults = faults
        self.executor = executor
        #: Every evaluation performed, in order (the decision trace).
        self.evaluations: list[Evaluation] = []
        #: Scenario count handed to the executor (dedup/cache may run fewer).
        self.scenarios_submitted = 0

    def _scenario(self, knob: KnobConfig, label: str, fidelity: float) -> Scenario:
        """The deterministic scenario for one (knob, fidelity) pair.

        The name is a pure function of the assignment label and
        fidelity, and every other field is fixed, so equal assignments
        produce content-equal scenarios -- the executor's cache key
        collapses them.
        """
        suffix = "" if fidelity == 1.0 else f"@f{fidelity:g}"
        return Scenario(
            name=f"tune-{self.space.name}-{label}{suffix}",
            knob=knob,
            apps=self.apps,
            ssd_model=self.ssd,
            cores=self.cores,
            duration_s=self.duration_s * fidelity,
            warmup_s=self.warmup_s * fidelity,
            seed=self.seed,
            device_scale=self.device_scale,
            faults=self.faults,
        )

    def scenario_for(
        self, values: dict, label: str | None = None, fidelity: float = 1.0
    ) -> Scenario:
        """The exact scenario one assignment would run (no execution).

        The surrogate prefilter featurizes this to score candidates
        without simulating them, and the D9 training sweep renders its
        corpus scenarios through it -- both therefore share cache keys
        with real evaluations of the same assignment.
        """
        normalized = self.space.normalize(values)
        if label is None:
            label = self.space.label(normalized)
        return self._scenario(self.space.build(normalized), label, fidelity)

    def _score(self, summary: ScenarioSummary) -> SloScore:
        """Score one summary against the evaluator's SLO spec."""
        return score_summary(self.slo, summary, ssd=self.ssd)

    def evaluate_values(
        self, values_list: list[dict], fidelity: float = 1.0
    ) -> list[Evaluation]:
        """Evaluate a batch of assignments in one executor sweep."""
        if not 0 < fidelity <= 1.0:
            raise ValueError("fidelity must be in (0, 1]")
        normalized = [self.space.normalize(values) for values in values_list]
        labels = [self.space.label(values) for values in normalized]
        scenarios = [
            self._scenario(self.space.build(values), label, fidelity)
            for values, label in zip(normalized, labels)
        ]
        self.scenarios_submitted += len(scenarios)
        summaries = resolve_executor(self.executor).run_strict(scenarios)
        evaluations = [
            Evaluation(
                label=label, values=values, fidelity=fidelity, score=self._score(summary)
            )
            for values, label, summary in zip(normalized, labels, summaries)
        ]
        self.evaluations.extend(evaluations)
        return evaluations

    def evaluate_knob(self, knob: KnobConfig, label: str) -> Evaluation:
        """Score an explicit knob config (the untuned-default baseline)."""
        scenario = self._scenario(knob, label, fidelity=1.0)
        self.scenarios_submitted += 1
        summary = resolve_executor(self.executor).run_one(scenario)
        evaluation = Evaluation(
            label=label, values={}, fidelity=1.0, score=self._score(summary)
        )
        self.evaluations.append(evaluation)
        return evaluation
