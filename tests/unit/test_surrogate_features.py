"""Unit tests for the surrogate feature encoding and training targets.

The feature schema is a frozen contract between corpus, model, and
prefilter: pinned width, pinned version, finite cells, sorted cgroup
order, and training targets in full-device-speed units with starved
groups at the :data:`TARGET_P99_CAP_US` ceiling.
"""

import math

import pytest

from repro.core.config import IoMaxKnob, NoneKnob, Scenario
from repro.surrogate.features import (
    FEATURE_SCHEMA_VERSION,
    TARGET_NAMES,
    TARGET_P99_CAP_US,
    feature_names,
    featurize,
    featurize_scenario,
    scenario_cgroups,
    targets_from_summary,
    utilization_reference_mib_s,
)
from repro.workloads.spec import JobSpec


def make_scenario(knob=None) -> Scenario:
    apps = [
        JobSpec(name="prio", cgroup_path="/t/prio", queue_depth=8, app_class="lc"),
        JobSpec(name="be0", cgroup_path="/t/be", queue_depth=32, read_fraction=0.5),
        JobSpec(name="be1", cgroup_path="/t/be", queue_depth=32, read_fraction=0.5),
    ]
    return Scenario(
        name="feat-test", knob=knob or NoneKnob(), apps=apps, device_scale=8.0
    )


class FakeLatency:
    def __init__(self, p99_us):
        self.p99_us = p99_us


class FakeStats:
    def __init__(self, p99_us, bandwidth_mib_s):
        self.latency = FakeLatency(p99_us) if p99_us is not None else None
        self.bandwidth_mib_s = bandwidth_mib_s


class FakeSummary:
    """Duck-typed ScenarioSummary: just cgroup_stats + device_scale."""

    def __init__(self, stats, device_scale):
        self._stats = stats
        self.device_scale = device_scale

    def cgroup_stats(self):
        return self._stats


class TestFeatureSchema:
    def test_width_and_version_are_pinned(self):
        # Widening the vector must bump FEATURE_SCHEMA_VERSION (saved
        # models refuse mismatched corpora); this pin forces the bump.
        assert len(feature_names()) == 59
        assert FEATURE_SCHEMA_VERSION == 1
        assert TARGET_NAMES == ("p99_us", "bandwidth_mib_s", "util")

    def test_names_unique_and_stable(self):
        names = feature_names()
        assert len(names) == len(set(names))
        assert names == feature_names()

    def test_featurize_is_full_width_and_finite(self):
        scenario = make_scenario()
        for cgroup in scenario_cgroups(scenario):
            row = featurize(scenario, cgroup)
            assert len(row) == len(feature_names())
            assert all(math.isfinite(cell) for cell in row)

    def test_cgroups_sorted_and_deduped(self):
        assert scenario_cgroups(make_scenario()) == ["/t/be", "/t/prio"]

    def test_knob_identity_changes_features(self):
        plain = featurize_scenario(make_scenario())
        capped = featurize_scenario(
            make_scenario(IoMaxKnob(limits={"/t/be": {"rbps": 10**8}}))
        )
        assert plain != capped


class TestTargets:
    def test_full_speed_units(self):
        summary = FakeSummary({"/t/prio": FakeStats(800.0, 10.0)}, device_scale=8.0)
        p99, bandwidth, util = targets_from_summary(summary, "/t/prio", 400.0)
        assert p99 == pytest.approx(100.0)  # /= scale
        assert bandwidth == pytest.approx(80.0)  # *= scale
        assert util == pytest.approx(0.2)

    def test_starved_group_trains_at_the_cap(self):
        summary = FakeSummary({"/t/be": FakeStats(None, 0.0)}, device_scale=8.0)
        p99, bandwidth, _ = targets_from_summary(summary, "/t/be", 400.0)
        assert p99 == TARGET_P99_CAP_US
        assert bandwidth == 0.0

    def test_missing_group_trains_at_the_cap(self):
        summary = FakeSummary({}, device_scale=1.0)
        assert targets_from_summary(summary, "/t/gone", 400.0) == (
            TARGET_P99_CAP_US,
            0.0,
            0.0,
        )

    def test_measured_p99_clamps_to_the_cap(self):
        summary = FakeSummary(
            {"/t/prio": FakeStats(10.0 * TARGET_P99_CAP_US, 1.0)}, device_scale=1.0
        )
        p99, _, _ = targets_from_summary(summary, "/t/prio", None)
        assert p99 == TARGET_P99_CAP_US

    def test_no_reference_means_zero_util(self):
        summary = FakeSummary({"/t/prio": FakeStats(100.0, 10.0)}, device_scale=1.0)
        assert targets_from_summary(summary, "/t/prio", None)[2] == 0.0

    def test_utilization_reference_positive(self):
        assert utilization_reference_mib_s(make_scenario()) > 0.0
