"""Core set: N cores behind one run queue, plus spin accounting.

On-core work (per-I/O submission/completion costs) goes through a
:class:`~repro.sim.resources.QueuedServer`; when the demanded rate exceeds
capacity, work queues up and app-visible latency inflates -- which is how
the CPU saturation effects of the paper's Fig. 3 emerge rather than being
scripted.

Spin time (busy-waiting on a contended scheduler dispatch lock) does not
occupy the run queue -- the waiter burns its own core -- so it is recorded
as a separate integral and folded into the reported utilization, exactly
the effect that makes MQ-DL/BFQ "require a full core per batch app"
(Fig. 4c/d).
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.resources import QueuedServer


class CoreSet:
    """A pool of identical CPU cores shared by a set of apps."""

    def __init__(self, sim: Simulator, cores: int, name: str = "cpu"):
        if cores < 1:
            raise ValueError(f"core count must be >= 1, got {cores}")
        self.sim = sim
        self.cores = cores
        self.server = QueuedServer(sim, cores, name=name)
        self._spin_integral = 0.0

    def charge(self, cost_us: float, done: Callable[[], None]) -> None:
        """Run ``cost_us`` of work on some core, then call ``done``."""
        if cost_us <= 0:
            done()
            return
        self.server.submit(cost_us, done)

    def account_spin(self, spin_us: float) -> None:
        """Record lock busy-wait time (affects utilization, not the queue)."""
        if spin_us > 0:
            self._spin_integral += spin_us

    @property
    def run_queue_depth(self) -> int:
        """Work items waiting for a core right now."""
        return self.server.queue_depth

    def is_saturated(self, backlog_threshold: int = 4) -> bool:
        """Heuristic saturation probe: a persistent run-queue backlog.

        Used by the io.cost model to decide when deferred-timer latency
        applies (paper O1: io.cost's latency overhead appears only past
        the CPU saturation point).
        """
        return self.server.queue_depth >= backlog_threshold

    # -- measurement window support ------------------------------------
    def snapshot(self) -> tuple[float, float, float]:
        """Opaque utilization checkpoint: pass to :meth:`utilization`."""
        return (self.server.busy_integral(), self._spin_integral, self.sim.now)

    def utilization(self, snapshot: tuple[float, float, float]) -> float:
        """Mean utilization (work + spin) since ``snapshot``, capped at 1."""
        busy0, spin0, t0 = snapshot
        now = self.sim.now
        if now <= t0:
            return 0.0
        span = (now - t0) * self.cores
        used = (self.server.busy_integral() - busy0) + (self._spin_integral - spin0)
        return min(1.0, used / span)

    def busy_time_us(self, snapshot: tuple[float, float, float]) -> float:
        """Core-microseconds of work+spin accumulated since ``snapshot``."""
        busy0, spin0, _ = snapshot
        return (self.server.busy_integral() - busy0) + (self._spin_integral - spin0)
