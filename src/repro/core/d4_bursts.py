"""D4: burst support (§VI-C, Q10).

A BE-app saturates the device; the priority app (LC or batch) arrives
mid-run as a burst. We measure the *response time*: how long after the
burst starts the I/O control delivers the priority app's objective --
steady-state bandwidth for a batch app, steady-state latency for an
LC-app. The paper's headline: io.cost/io.max/schedulers respond within
milliseconds, io.latency can take seconds because its 500 ms windows
halve the BE queue depth one step at a time (1024 -> 1 is ten windows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cgroups.knobs import IoCostQosParams
from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    KnobConfig,
    MqDeadlineKnob,
    Scenario,
)
from repro.core.scenarios import (
    BE_GROUP,
    PRIORITY_GROUP,
    burst_specs,
    scaled_priority_qd,
)
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.iorequest import KIB, OpType, Pattern
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like


@dataclass(frozen=True)
class BurstResponse:
    """Response-time measurement for one knob."""

    knob: str
    priority_kind: str
    response_ms: float | None  # None when the objective was never reached
    steady_metric: float
    bucket_ms: float

    @property
    def reached(self) -> bool:
        return self.response_ms is not None


def burst_knobs(
    ssd: SsdModel, priority_kind: str, lc_target_us: float = 400.0
) -> dict[str, KnobConfig]:
    """Prioritizing configurations per knob for the burst study."""
    saturation = ssd.saturation_bandwidth_bps(OpType.READ, Pattern.RANDOM, 4 * KIB)
    return {
        "mq-deadline": MqDeadlineKnob(
            classes={PRIORITY_GROUP: "realtime", BE_GROUP: "best-effort"}
        ),
        "bfq": BfqKnob(weights={PRIORITY_GROUP: 1000, BE_GROUP: 100}),
        "io.max": IoMaxKnob(limits={BE_GROUP: {"rbps": saturation * 0.3}}),
        "io.latency": IoLatencyKnob(targets_us={PRIORITY_GROUP: lc_target_us}),
        "io.cost": IoCostKnob(
            weights={PRIORITY_GROUP: 10000, BE_GROUP: 100},
            qos=IoCostQosParams(
                enable=True,
                ctrl="user",
                rpct=99.0,
                rlat_us=lc_target_us,
                vrate_min_pct=25.0,
                vrate_max_pct=100.0,
            ),
        ),
    }


def _bucketized(
    summary: ScenarioSummary,
    app_name: str,
    bucket_us: float,
    value: str,
) -> tuple[list[float], list[float]]:
    """Per-bucket (start_us, metric) for one app: 'mib_s' or 'mean_lat'."""
    log_times, log_sizes = summary.series_of(app_name)
    latencies = summary.window_latencies(app_name, 0.0, math.inf)
    end = summary.t_end_us
    n_buckets = max(1, int(end / bucket_us))
    sums = [0.0] * n_buckets
    counts = [0] * n_buckets
    for i, time_us in enumerate(log_times):
        if time_us >= n_buckets * bucket_us:
            continue
        bucket = int(time_us / bucket_us)
        counts[bucket] += 1
        sums[bucket] += log_sizes[i] if value == "mib_s" else latencies[i]
    starts = [i * bucket_us for i in range(n_buckets)]
    if value == "mib_s":
        values = [s / (1024.0 * 1024.0) / (bucket_us / 1e6) for s in sums]
    else:
        values = [
            s / c if c else math.inf for s, c in zip(sums, counts)
        ]
    return starts, values


def measure_burst_response(
    knob: KnobConfig,
    priority_kind: str,
    burst_start_s: float = 2.0,
    duration_s: float = 10.0,
    ssd: SsdModel | None = None,
    cores: int = 10,
    seed: int = 42,
    device_scale: float = 16.0,
    bucket_ms: float = 50.0,
    be_queue_depth: int = 256,
    settle_fraction: float = 0.7,
    executor: SweepExecutor | None = None,
) -> BurstResponse:
    """Run one burst scenario and locate the response time.

    The steady-state objective is measured over the last
    ``1 - settle_fraction`` of the run; the response time is the first
    bucket after the burst whose metric is within 20% of it (bandwidth)
    or below 1.3x it (latency).
    """
    ssd = ssd or samsung_980pro_like()
    burst_start_us = burst_start_s * 1e6
    specs = burst_specs(
        priority_kind,
        burst_start_us,
        be_queue_depth=be_queue_depth,
        priority_queue_depth=scaled_priority_qd(device_scale),
    )
    scenario = Scenario(
        name=f"d4-{knob.profile_name}-{priority_kind}",
        knob=knob,
        apps=specs,
        ssd_model=ssd,
        cores=cores,
        duration_s=duration_s,
        warmup_s=burst_start_s * 0.5,
        seed=seed,
        device_scale=device_scale,
    )
    summary = resolve_executor(executor).run_one(scenario)
    bucket_us = bucket_ms * 1e3
    value_kind = "mib_s" if priority_kind == "batch" else "mean_lat"
    starts, values = _bucketized(summary, "prio", bucket_us, value_kind)

    settle_from = burst_start_us + (duration_s * 1e6 - burst_start_us) * settle_fraction
    steady_samples = [
        v
        for t, v in zip(starts, values)
        if t >= settle_from and not math.isinf(v) and v > 0
    ]
    if not steady_samples:
        return BurstResponse(knob.profile_name, priority_kind, None, math.inf, bucket_ms)
    steady = sum(steady_samples) / len(steady_samples)

    response_ms = None
    for t, v in zip(starts, values):
        if t < burst_start_us:
            continue
        if value_kind == "mib_s" and v >= steady * 0.8:
            response_ms = (t + bucket_us - burst_start_us) / 1e3
            break
        if value_kind == "mean_lat" and v <= steady * 1.3:
            response_ms = (t + bucket_us - burst_start_us) / 1e3
            break
    return BurstResponse(knob.profile_name, priority_kind, response_ms, steady, bucket_ms)


def be_bandwidth_settle_time(
    knob: KnobConfig,
    burst_start_s: float = 2.0,
    duration_s: float = 10.0,
    ssd: SsdModel | None = None,
    device_scale: float = 16.0,
    bucket_ms: float = 100.0,
    seed: int = 42,
    executor: SweepExecutor | None = None,
) -> float | None:
    """How long until the BE side reaches its final (throttled) level.

    For io.latency this exposes the multi-second QD-halving staircase
    (Q10) even when the priority app's own metric settles earlier.
    """
    ssd = ssd or samsung_980pro_like()
    burst_start_us = burst_start_s * 1e6
    specs = burst_specs("lc", burst_start_us)
    scenario = Scenario(
        name=f"d4-settle-{knob.profile_name}",
        knob=knob,
        apps=specs,
        ssd_model=ssd,
        cores=10,
        duration_s=duration_s,
        warmup_s=burst_start_s * 0.5,
        seed=seed,
        device_scale=device_scale,
    )
    summary = resolve_executor(executor).run_one(scenario)
    bucket_us = bucket_ms * 1e3
    per_app = [
        _bucketized(summary, spec.name, bucket_us, "mib_s")
        for spec in specs
        if spec.cgroup_path == BE_GROUP
    ]
    starts = per_app[0][0]
    totals = [sum(vals[i] for _, vals in per_app) for i in range(len(starts))]
    settle_from = burst_start_us + (duration_s * 1e6 - burst_start_us) * 0.7
    steady = [v for t, v in zip(starts, totals) if t >= settle_from]
    if not steady:
        return None
    target = sum(steady) / len(steady)
    for t, v in zip(starts, totals):
        if t >= burst_start_us and v <= target * 1.25:
            return (t + bucket_us - burst_start_us) / 1e3
    return None
