#!/usr/bin/env python3
"""Trace the noisy-neighbor scenario through the simulated I/O stack.

Runs the paper's introductory co-location — a QD=1 latency-critical
cache beside saturating batch jobs — with request-lifecycle tracing and
periodic stack sampling enabled, then shows where each app's latency
actually goes: held in the throttle layer, queued in the scheduler, or
in service at the device. The full trace is exported in Chrome Trace
Event Format; open it at https://ui.perfetto.dev to scrub through
every request's held/queued/service phases on a timeline.

Run:  python examples/trace_noisy_neighbor.py
"""

from repro import IoCostKnob, Scenario, TraceConfig, run_scenario
from repro.obs import write_chrome_trace
from repro.workloads import batch_app, lc_app

OUT = "/tmp/noisy_neighbor_trace.json"

scenario = Scenario(
    name="traced-noisy-neighbor",
    knob=IoCostKnob(weights={"/tenants/lc": 800, "/tenants/batch": 100}),
    apps=[
        lc_app("cache", "/tenants/lc"),
        batch_app("batch0", "/tenants/batch", queue_depth=32),
        batch_app("batch1", "/tenants/batch", queue_depth=32),
    ],
    duration_s=0.2,
    warmup_s=0.05,
    device_scale=8.0,  # slow the simulated device 8x for a quick run
    trace=TraceConfig(sample_period_us=5_000.0),
)

result = run_scenario(scenario)
trace = result.trace

print(result.describe())
print()

print("Latency attribution (mean us per request):")
print(f"  {'app':<8} {'ios':>7} {'held':>9} {'queued':>9} {'service':>9} {'total':>9}")
for name, attr in sorted(trace.attribution().items()):
    print(
        f"  {name:<8} {attr.ios:>7} {attr.mean_held_us:>9.1f}"
        f" {attr.mean_queued_us:>9.1f} {attr.mean_service_us:>9.1f}"
        f" {attr.mean_latency_us:>9.1f}"
    )
print()

# The sampler's io.stat-style counters: how much each cgroup actually read.
last = trace.samples[-1]
for group in ("/tenants/lc", "/tenants/batch"):
    rbytes = last.get(f"cgroup.{group}.rbytes", 0.0)
    rios = last.get(f"cgroup.{group}.rios", 0.0)
    print(f"  {group}: rbytes={rbytes / 1e6:.1f} MB rios={int(rios)}")
print()

write_chrome_trace(trace, OUT)
print(f"{len(trace.spans)} spans, {len(trace.samples)} samples -> {OUT}")
print("Open it at https://ui.perfetto.dev (or chrome://tracing).")
