"""The ``none`` scheduler: FIFO passthrough.

This is the NVMe default and the paper's baseline ("no knob"). Requests
dispatch in arrival order with a negligible serialized section, so the
device itself is the only bottleneck -- which is why "none" defines the
saturation bandwidth every other knob is compared against.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.iocontrol.base import IoScheduler
from repro.iorequest import IoRequest


class NoneScheduler(IoScheduler):
    """FIFO dispatch, per-CPU submission (no shared lock to speak of)."""

    name = "none"
    lock_overhead_us = 0.15

    def __init__(self) -> None:
        self._queue: deque[IoRequest] = deque()

    def add(self, req: IoRequest) -> None:
        self._queue.append(req)

    def pop(self, now: float) -> tuple[Optional[IoRequest], Optional[float]]:
        if self._queue:
            return self._queue.popleft(), None
        return None, None

    def queued(self) -> int:
        return len(self._queue)
