"""The configuration advisor: rank knobs against an SLO, Table-I style.

:func:`advise` runs one search per candidate knob (each against its own
:class:`~repro.tune.evaluator.TuneEvaluator`), scores every knob's
*untuned default* as the "before" column, and assembles an
:class:`AdvisorReport`: knobs ranked by tuned SLO-violation score, the
winning configuration rendered as concrete sysfs-flavoured settings, and
a machine-readable decision trace (every evaluation the searches
performed, in obs-style self-describing JSONL) for post-hoc audit.

This is the automated counterpart of the paper's hand-derived Table I:
instead of "which knob satisfies which desiderata", the report answers
"which knob -- configured how -- satisfies *your* SLO, and what did it
cost the others".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.report import render_table
from repro.tune.evaluator import Evaluation
from repro.tune.search import SearchOutcome, search
from repro.tune.slo import SloSpec


@dataclass
class KnobAdvice:
    """One knob's row in the advisor report: before, after, and how."""

    #: Knob name (Table I row).
    knob: str
    #: Strategy that searched the knob's space.
    strategy: str
    #: SLO score of the untuned default configuration.
    baseline: Evaluation
    #: Best full-fidelity configuration the search found.
    best: Evaluation
    #: Sysfs-flavoured rendering of the best configuration.
    settings: str
    #: Every evaluation the search performed, in order.
    evaluations: list[Evaluation] = field(default_factory=list)
    #: Surrogate trust report (``SurrogatePrefilter.to_json_dict``)
    #: when this knob was searched surrogate-prefiltered; None for pure
    #: simulator searches.
    surrogate: dict | None = None

    @property
    def improved(self) -> bool:
        """True when tuning strictly reduced the SLO-violation score."""
        return self.best.score.total < self.baseline.score.total

    def to_json_dict(self) -> dict:
        """Golden-friendly document for one knob row."""
        doc = {
            "knob": self.knob,
            "strategy": self.strategy,
            "baseline_score": self.baseline.score.to_json_dict(),
            "tuned_score": self.best.score.to_json_dict(),
            "best_label": self.best.label,
            "best_values": dict(self.best.values),
            "settings": self.settings,
            "improved": self.improved,
            "evaluations": len(self.evaluations),
        }
        if self.surrogate is not None:
            doc["surrogate"] = dict(self.surrogate)
        return doc

    def surrogate_stats_line(self) -> str | None:
        """The per-knob ``surrogate: ...`` trust line (None when pure)."""
        if self.surrogate is None:
            return None
        return (
            f"surrogate[{self.knob}]: scored={self.surrogate['scored']} "
            f"verified={self.surrogate['verified']} "
            f"mae_p99={self.surrogate['mae_p99_us']:.1f}us "
            f"spearman={self.surrogate['spearman_p99']:.2f}"
        )


@dataclass
class AdvisorReport:
    """The full advisor result: ranked knob rows plus provenance."""

    #: The SLO the knobs were tuned against, in ``parse_slo`` syntax.
    slo: str
    #: Per-search evaluation budget that produced the report.
    budget: int
    rows: list[KnobAdvice] = field(default_factory=list)
    #: Operator-facing notices (e.g. the surrogate's too-small-corpus
    #: fallback); empty for a plain run.
    notices: list[str] = field(default_factory=list)

    def rank(self) -> list[KnobAdvice]:
        """Rows best-first: lowest tuned score, knob-name tie-break."""
        return sorted(self.rows, key=lambda row: (row.best.score.total, row.knob))

    def recommended(self) -> KnobAdvice:
        """The winning row (the advisor's recommendation)."""
        if not self.rows:
            raise ValueError("advisor report has no rows")
        return self.rank()[0]

    def row(self, knob: str) -> KnobAdvice:
        """The row for one knob name."""
        for candidate in self.rows:
            if candidate.knob == knob:
                return candidate
        raise KeyError(f"no advice for knob {knob!r}")

    def surrogate_summary(self) -> dict | None:
        """Pooled surrogate trust metrics across every knob's search.

        Per-knob verified sets are a handful of near-tie candidates, so
        their rank correlations are noise; pooling every verified
        ``(predicted, measured)`` p99 pair across knobs gives the
        spread that makes MAE and spearman meaningful. None when no
        knob was surrogate-prefiltered.
        """
        records = [
            record
            for row in self.rows
            if row.surrogate is not None
            for record in row.surrogate["records"]
        ]
        if not records:
            return None
        from repro.surrogate.model import mean_absolute_error, spearman

        predicted = [record["predicted_p99_us"] for record in records]
        measured = [record["measured_p99_us"] for record in records]
        return {
            "scored": sum(
                row.surrogate["scored"]
                for row in self.rows
                if row.surrogate is not None
            ),
            "verified": len(records),
            "mae_p99_us": mean_absolute_error(predicted, measured),
            "spearman_p99": spearman(predicted, measured),
        }

    def surrogate_stats_line(self) -> str | None:
        """The pooled ``surrogate: ...`` trust line (None for pure runs)."""
        summary = self.surrogate_summary()
        if summary is None:
            return None
        return (
            f"surrogate: scored={summary['scored']} "
            f"verified={summary['verified']} "
            f"mae_p99={summary['mae_p99_us']:.1f}us "
            f"spearman={summary['spearman_p99']:.2f}"
        )

    def render(self) -> str:
        """The Table-I-style text report (the ``isol-bench tune`` output)."""
        headers = ("rank", "knob", "strategy", "untuned", "tuned", "meets SLO", "best configuration")
        rows = []
        for position, row in enumerate(self.rank(), start=1):
            rows.append(
                (
                    position,
                    row.knob,
                    row.strategy,
                    f"{row.baseline.score.total:.3f}",
                    f"{row.best.score.total:.3f}",
                    "yes" if row.best.score.meets_slo else "no",
                    row.best.label,
                )
            )
        table = render_table(headers, rows, title=f"SLO: {self.slo}")
        winner = self.recommended()
        extra_lines = [
            line
            for line in (row.surrogate_stats_line() for row in self.rank())
            if line is not None
        ]
        pooled = self.surrogate_stats_line()
        if pooled is not None:
            extra_lines.append(pooled)
        extra_lines.extend(f"notice: {notice}" for notice in self.notices)
        extras = ("\n" + "\n".join(extra_lines)) if extra_lines else ""
        return (
            f"{table}\n\n"
            f"recommended: {winner.knob} ({winner.best.label})\n"
            f"settings:    {winner.settings}"
            f"{extras}"
        )

    def to_json_dict(self) -> dict:
        """Golden-friendly document (insertion order is rank order)."""
        doc = {
            "slo": self.slo,
            "budget": self.budget,
            "ranking": [row.knob for row in self.rank()],
            "recommended": self.recommended().knob,
            "rows": {row.knob: row.to_json_dict() for row in self.rank()},
        }
        summary = self.surrogate_summary()
        if summary is not None:
            doc["surrogate"] = summary
        if self.notices:
            doc["notices"] = list(self.notices)
        return doc


def advise(
    searches: list[tuple],
    slo: SloSpec,
    budget: int,
    strategy: str = "auto",
    seed: int = 42,
    prefilters: dict | None = None,
    notices: list[str] | None = None,
) -> AdvisorReport:
    """Search every (space, evaluator) pair and rank the knobs.

    ``searches`` pairs each :class:`~repro.tune.space.KnobSpace` with
    the :class:`~repro.tune.evaluator.TuneEvaluator` that runs its
    candidates (one evaluator per space, so per-space evaluation logs
    stay separable). The untuned-default baseline evaluation is *not*
    counted against ``budget`` -- the budget buys search.

    ``prefilters`` maps knob names to
    :class:`~repro.surrogate.filter.SurrogatePrefilter` instances;
    knobs with one are searched surrogate-prefiltered and their rows
    carry the prefilter's trust report. ``notices`` seeds the report's
    operator-facing notice list (e.g. a surrogate fallback).
    """
    report = AdvisorReport(
        slo=slo.describe(), budget=budget, notices=list(notices or [])
    )
    prefilters = prefilters or {}
    for space, evaluator in searches:
        baseline = evaluator.evaluate_knob(space.default_knob(), "default")
        prefilter = prefilters.get(space.name)
        outcome: SearchOutcome = search(
            space, evaluator, budget, strategy=strategy, seed=seed,
            prefilter=prefilter,
        )
        report.rows.append(
            KnobAdvice(
                knob=space.name,
                strategy=outcome.strategy,
                baseline=baseline,
                best=outcome.best,
                settings=space.render_settings(outcome.best.values),
                evaluations=list(outcome.evaluations),
                surrogate=prefilter.to_json_dict() if prefilter else None,
            )
        )
    return report


def decision_trace_records(report: AdvisorReport) -> list[dict]:
    """The report as obs-style self-describing records (``type`` field).

    One ``advice`` record per knob followed by one ``evaluation`` record
    per candidate the search tried, in evaluation order -- enough to
    replay why the advisor picked what it picked.
    """
    records: list[dict] = [
        {"type": "slo", "spec": report.slo, "budget": report.budget}
    ]
    for notice in report.notices:
        records.append({"type": "notice", "message": notice})
    summary = report.surrogate_summary()
    if summary is not None:
        records.append({"type": "surrogate_summary", **summary})
    for row in report.rank():
        records.append({"type": "advice", **row.to_json_dict()})
        if row.surrogate is not None:
            records.append(
                {"type": "surrogate", "knob": row.knob, **row.surrogate}
            )
        for evaluation in row.evaluations:
            records.append(
                {
                    "type": "evaluation",
                    "knob": row.knob,
                    "label": evaluation.label,
                    "values": dict(evaluation.values),
                    "fidelity": evaluation.fidelity,
                    "score": evaluation.score.to_json_dict(),
                }
            )
    return records


def write_decision_trace(report: AdvisorReport, path: str) -> None:
    """Write the decision trace as JSONL (obs export convention)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in decision_trace_records(report):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
