"""Unit tests for Table I scoring rules."""

from repro.core.desiderata import (
    DesiderataInputs,
    PAPER_TABLE_ONE,
    Score,
    TableOne,
    score_all,
    score_bursts,
    score_fairness,
    score_low_overhead,
    score_tradeoffs,
)


def inputs(**overrides) -> DesiderataInputs:
    return DesiderataInputs(knob="test", **overrides)


class TestLowOverhead:
    def test_clean_knob_scores_yes(self):
        assert score_low_overhead(inputs()) == Score.YES

    def test_bandwidth_loss_scores_no(self):
        assert (
            score_low_overhead(inputs(peak_bandwidth_ratio_vs_none=0.6)) == Score.NO
        )

    def test_latency_overhead_scores_no(self):
        assert score_low_overhead(inputs(p99_overhead_1app=0.2)) == Score.NO

    def test_only_saturated_latency_is_partial(self):
        # The io.cost case: fine until CPU saturation.
        assert (
            score_low_overhead(inputs(p99_overhead_saturated=0.48)) == Score.PARTIAL
        )


class TestFairness:
    def test_fair_dynamic_knob_scores_yes(self):
        assert score_fairness(inputs()) == Score.YES

    def test_fair_but_static_scores_partial(self):
        assert score_fairness(inputs(static_configuration=True)) == Score.PARTIAL

    def test_unfair_weighted_scores_no(self):
        assert score_fairness(inputs(fairness_weighted_2=0.5)) == Score.NO

    def test_unfair_past_saturation_scores_no(self):
        assert score_fairness(inputs(fairness_uniform_16=0.8)) == Score.NO

    def test_unfair_mixed_sizes_scores_no(self):
        assert score_fairness(inputs(fairness_mixed_sizes=0.5)) == Score.NO


class TestTradeoffs:
    def test_fine_grained_all_variants_yes(self):
        assert (
            score_tradeoffs(
                inputs(
                    front_clusters_rand4k=6,
                    front_utilization_span_fraction=0.6,
                    hard_variants_effective=True,
                )
            )
            == Score.YES
        )

    def test_coarse_front_scores_no(self):
        assert (
            score_tradeoffs(
                inputs(front_clusters_rand4k=3, front_utilization_span_fraction=0.6)
            )
            == Score.NO
        )

    def test_narrow_span_scores_no(self):
        assert (
            score_tradeoffs(
                inputs(front_clusters_rand4k=6, front_utilization_span_fraction=0.05)
            )
            == Score.NO
        )

    def test_easy_only_scores_partial(self):
        assert (
            score_tradeoffs(
                inputs(
                    front_clusters_rand4k=6,
                    front_utilization_span_fraction=0.6,
                    hard_variants_effective=False,
                )
            )
            == Score.PARTIAL
        )

    def test_static_knob_capped_at_partial(self):
        assert (
            score_tradeoffs(
                inputs(
                    front_clusters_rand4k=6,
                    front_utilization_span_fraction=0.6,
                    hard_variants_effective=True,
                    static_configuration=True,
                )
            )
            == Score.PARTIAL
        )


class TestBursts:
    def test_fast_response_yes(self):
        assert score_bursts(inputs(burst_response_ms=50.0), Score.YES) == Score.YES

    def test_slow_response_no(self):
        assert score_bursts(inputs(burst_response_ms=5000.0), Score.YES) == Score.NO

    def test_never_reached_no(self):
        assert score_bursts(inputs(burst_response_ms=None), Score.YES) == Score.NO

    def test_middling_response_partial(self):
        assert (
            score_bursts(inputs(burst_response_ms=900.0), Score.YES)
            == Score.PARTIAL
        )

    def test_no_prioritization_no(self):
        assert (
            score_bursts(
                inputs(burst_response_ms=10.0, has_prioritization=False), Score.YES
            )
            == Score.NO
        )

    def test_no_tradeoff_capability_no(self):
        # MQ-DL reacts fast but its 3 coarse options cannot serve a
        # priority burst (the paper's all-x row).
        assert score_bursts(inputs(burst_response_ms=10.0), Score.NO) == Score.NO

    def test_partial_tradeoffs_still_eligible(self):
        assert (
            score_bursts(inputs(burst_response_ms=10.0), Score.PARTIAL) == Score.YES
        )

    def test_static_fast_knob_partial(self):
        assert (
            score_bursts(
                inputs(burst_response_ms=10.0, static_configuration=True), Score.YES
            )
            == Score.PARTIAL
        )


class TestTableRendering:
    def test_render_contains_all_rows(self):
        table = TableOne(rows=[score_all(inputs())])
        text = table.render()
        assert "test" in text
        assert "LowOverhead" in text

    def test_paper_reference_covers_all_knobs(self):
        assert set(PAPER_TABLE_ONE) == {
            "mq-deadline",
            "bfq",
            "io.max",
            "io.latency",
            "io.cost",
        }

    def test_matches_paper_counts_cells(self):
        row = score_all(
            DesiderataInputs(
                knob="io.cost",
                p99_overhead_saturated=0.48,
                front_clusters_rand4k=6,
                front_utilization_span_fraction=0.6,
                hard_variants_effective=True,
                burst_response_ms=50.0,
            )
        )
        table = TableOne(rows=[row])
        assert table.matches_paper() == {"io.cost": 4}

    def test_symbols(self):
        assert Score.YES.symbol == "v"
        assert Score.PARTIAL.symbol == "-"
        assert Score.NO.symbol == "x"
