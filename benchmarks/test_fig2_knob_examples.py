"""Fig. 2: per-knob three-app bandwidth timelines (8 panels).

Regenerates the illustrative examples of §IV-B: three rate-limited
64 KiB QD=8 apps on the staggered A/B/C schedule under each knob.
Output: one bandwidth series per app per panel plus the contention-window
summary (A/B/C means during full contention, B's level after A stops).

Scale: device 1/8, timeline x0.5 (io.latency's 500 ms window is a kernel
constant, so the timeline is kept long enough for its dynamics).
"""

from conftest import run_once

from repro.core.fig2 import FIG2_PANELS, run_fig2
from repro.core.report import render_table

TIME_SCALE = 0.5
DEVICE_SCALE = 8.0

CONTENTION = (30, 48)
AFTER_A = (55, 68)


def test_fig2_all_panels(benchmark, figure_output):
    panels = run_once(
        benchmark,
        lambda: run_fig2(FIG2_PANELS, time_scale=TIME_SCALE, device_scale=DEVICE_SCALE),
    )
    rows = []
    for name in FIG2_PANELS:
        panel = panels[name]
        rows.append(
            [
                name,
                panel.mean_between("A", *CONTENTION),
                panel.mean_between("B", *CONTENTION),
                panel.mean_between("C", *CONTENTION),
                panel.mean_between("B", *AFTER_A),
            ]
        )
    table = render_table(
        ["panel", "A@contention MiB/s", "B@contention", "C@contention", "B after A stops"],
        rows,
        title=(
            "Fig. 2 -- three-app timelines per knob "
            f"(timeline x{TIME_SCALE}, device 1/{DEVICE_SCALE:g}, "
            "equivalent full-speed MiB/s)"
        ),
    )
    series_lines = ["", "Raw series (paper-seconds -> MiB/s):"]
    for name in FIG2_PANELS:
        panel = panels[name]
        for app in ("A", "B", "C"):
            xs, ys = panel.series[app]
            points = " ".join(f"{x:.0f}:{y:.0f}" for x, y in zip(xs, ys))
            series_lines.append(f"  [{name}] {app}: {points}")
    figure_output("fig2_knob_examples", table + "\n" + "\n".join(series_lines))

    # Shape guards (the paper's qualitative claims).
    mq = panels["mq-deadline"]
    assert mq.mean_between("A", *CONTENTION) > 50 * mq.mean_between("C", *CONTENTION)
    iomax = panels["io.max"]
    assert iomax.mean_between("B", *AFTER_A) < 1100  # static cap persists
    iolat = panels["io.latency"]
    assert iolat.mean_between("B", *AFTER_A) < 1000  # use_delay blocks recovery
