"""Compact, serializable scenario results.

:class:`ScenarioSummary` is the unit the sweep executor moves across
process boundaries and stores in the result cache. It carries the
windowed stats, CDFs, fairness inputs and CPU report that the Table I /
figure modules consume -- everything a :class:`~repro.core.runner.
ScenarioResult` offers except the live :class:`~repro.core.host.Host`
(event heap, controllers, tracer), which is deliberately and permanently
excluded: hosts hold closures over the simulator and do not pickle, and
a cached result must not pretend to offer live-object access.

The contract, enforced by unit tests:

* a summary round-trips unchanged through ``pickle`` and JSON;
* two runs of the same seeded scenario -- in-process or in a spawned
  worker -- produce summaries whose :meth:`ScenarioSummary.content_equal`
  is True (``wall_seconds`` is wall-clock noise and excluded);
* there is no ``host`` attribute, ever.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.cpu.accounting import CpuReport
from repro.iorequest import GIB
from repro.metrics.collector import AppWindowStats
from repro.metrics.fairness import weighted_jain_index
from repro.metrics.latency import cdf, summarize_latencies

#: Bump when the summary layout changes; folded into cache keys so stale
#: cache entries from older layouts can never be returned.
#: v2: added fault_counters (failure accounting under Scenario.faults).
#: v3: added ctl_counters (control-plane accounting under Scenario.ctl).
SUMMARY_SCHEMA_VERSION = 3


@dataclass
class AppSeries:
    """One app's full completion log (the collector's view, frozen)."""

    name: str
    cgroup_path: str
    times: list[float] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    sizes: list[int] = field(default_factory=list)
    ops: list[int] = field(default_factory=list)


@dataclass
class ScenarioSummary:
    """Measurements of one scenario run, detached from the live host."""

    scenario_name: str
    knob_label: str
    seed: int
    num_devices: int
    cores: int
    device_scale: float
    t_start_us: float
    t_end_us: float
    apps: dict[str, AppSeries]
    cpu: CpuReport
    work_conservation_violation: float
    events_processed: int = 0
    # Failure accounting under Scenario.faults (retries, timeouts,
    # delivered failures, per-device injector counters); empty for
    # fault-free runs. Deterministic content: same seed + same plan
    # must reproduce it bit-identically.
    fault_counters: dict[str, float] = field(default_factory=dict)
    # Control-plane accounting under Scenario.ctl (plane steps, per-
    # controller applied/skipped and final-setting counters); empty for
    # uncontrolled runs. Deterministic content like fault_counters: the
    # plane runs on the sim clock, so same scenario -> same counters.
    ctl_counters: dict[str, float] = field(default_factory=dict)
    # Wall-clock diagnostics of the run that produced this summary; not
    # part of the deterministic content (see content_equal).
    wall_seconds: float = 0.0
    schema_version: int = SUMMARY_SCHEMA_VERSION

    # ------------------------------------------------------------------
    # Windows and series (mirrors ScenarioResult / MetricsCollector)
    # ------------------------------------------------------------------
    @property
    def window_us(self) -> float:
        """Measurement-window length in microseconds."""
        return self.t_end_us - self.t_start_us

    @property
    def events_per_sec(self) -> float:
        """Simulator throughput of the producing run (wall-clock rate)."""
        return self.events_processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def app_names(self) -> list[str]:
        """Sorted names of every app that completed at least one IO."""
        return sorted(self.apps)

    def cgroup_of(self, app_name: str) -> str:
        """The cgroup path the app ran in."""
        return self.apps[app_name].cgroup_path

    def series_of(self, app_name: str) -> tuple[list[float], list[int]]:
        """Completion series as ``(times_us, sizes_bytes)``."""
        series = self.apps[app_name]
        return series.times, series.sizes

    def window_latencies(self, app_name: str, t_start: float, t_end: float) -> list[float]:
        """Latencies of completions inside ``[t_start, t_end)``."""
        series = self.apps[app_name]
        return [
            lat
            for time, lat in zip(series.times, series.latencies)
            if t_start <= time < t_end
        ]

    def app_stats_window(self, app_name: str, t_start: float, t_end: float) -> AppWindowStats:
        """IOs/bytes/latency digest of one app over an arbitrary window."""
        series = self.apps[app_name]
        total_bytes = 0
        ios = 0
        latencies: list[float] = []
        for time, lat, size in zip(series.times, series.latencies, series.sizes):
            if t_start <= time < t_end:
                total_bytes += size
                ios += 1
                latencies.append(lat)
        return AppWindowStats(
            name=app_name,
            cgroup_path=series.cgroup_path,
            ios=ios,
            bytes=total_bytes,
            window_us=t_end - t_start,
            latency=summarize_latencies(latencies) if latencies else None,
        )

    def app_stats(self, app_name: str) -> AppWindowStats:
        """:meth:`app_stats_window` over the full measurement window."""
        return self.app_stats_window(app_name, self.t_start_us, self.t_end_us)

    def all_app_stats(self) -> dict[str, AppWindowStats]:
        """Full-window stats for every app, keyed by name."""
        return {name: self.app_stats(name) for name in self.app_names()}

    def cgroup_stats(self) -> dict[str, AppWindowStats]:
        """Per-cgroup stats: member apps merged, latencies pooled."""
        by_group: dict[str, list[str]] = {}
        for name in self.app_names():
            by_group.setdefault(self.apps[name].cgroup_path, []).append(name)
        merged: dict[str, AppWindowStats] = {}
        for path, names in by_group.items():
            stats_list = [self.app_stats(name) for name in names]
            all_lat: list[float] = []
            for name in names:
                all_lat.extend(
                    self.window_latencies(name, self.t_start_us, self.t_end_us)
                )
            merged[path] = AppWindowStats(
                name=path,
                cgroup_path=path,
                ios=sum(s.ios for s in stats_list),
                bytes=sum(s.bytes for s in stats_list),
                window_us=self.window_us,
                latency=summarize_latencies(all_lat) if all_lat else None,
            )
        return merged

    def latency_cdf(self, app_name: str, points: int = 200):
        """Empirical latency CDF of one app over the full window."""
        samples = self.window_latencies(app_name, self.t_start_us, self.t_end_us)
        return cdf(samples, points=points)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_bytes(self, t_start: float, t_end: float) -> int:
        """Bytes completed by all apps inside the window."""
        return sum(
            self.app_stats_window(name, t_start, t_end).bytes for name in self.apps
        )

    @property
    def aggregate_bandwidth_gib_s(self) -> float:
        """All-app bandwidth over the measurement window, in GiB/s."""
        total = self.total_bytes(self.t_start_us, self.t_end_us)
        return total / GIB / (self.window_us / 1e6)

    @property
    def equivalent_bandwidth_gib_s(self) -> float:
        """Bandwidth rescaled to the unscaled device (x ``device_scale``)."""
        return self.aggregate_bandwidth_gib_s * self.device_scale

    def fairness(self, weights_by_group: dict[str, float] | None = None) -> float:
        """Weighted Jain fairness index over per-cgroup bandwidth."""
        groups = self.cgroup_stats()
        if not groups:
            raise ValueError("no completions in the measurement window")
        paths = sorted(groups)
        bandwidths = [groups[path].bytes / (self.window_us / 1e6) for path in paths]
        if weights_by_group is None:
            weights = [1.0] * len(paths)
        else:
            missing = [path for path in paths if path not in weights_by_group]
            if missing:
                raise ValueError(f"missing weights for groups: {missing}")
            weights = [weights_by_group[path] for path in paths]
        return weighted_jain_index(bandwidths, weights)

    def describe(self) -> str:
        """One-paragraph text summary (used by the CLI)."""
        lines = [
            f"scenario {self.scenario_name!r} "
            f"[knob={self.knob_label}, "
            f"{self.num_devices} SSD(s), {self.cores} cores]",
            f"  aggregate bandwidth: {self.aggregate_bandwidth_gib_s:.3f} GiB/s",
            f"  cpu: {self.cpu}",
            f"  engine: {self.events_processed:,} events in "
            f"{self.wall_seconds:.2f}s wall ({self.events_per_sec:,.0f} events/s)",
        ]
        for name, stats in sorted(self.all_app_stats().items()):
            latency = f", {stats.latency}" if stats.latency else ""
            lines.append(
                f"  app {name:<12s} {stats.bandwidth_mib_s:9.1f} MiB/s "
                f"({stats.iops:9.0f} IOPS){latency}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Equality and serialization
    # ------------------------------------------------------------------
    def content_dict(self) -> dict:
        """The deterministic content, excluding wall-clock noise."""
        doc = self.to_json_dict()
        doc.pop("wall_seconds", None)
        return doc

    def content_equal(self, other: "ScenarioSummary") -> bool:
        """Bit-identical deterministic content (ignores wall_seconds)."""
        return self.content_dict() == other.content_dict()

    def to_json_dict(self) -> dict:
        """Plain-dict form (JSON-serializable, nested dataclasses inlined)."""
        return asdict(self)

    @classmethod
    def from_json_dict(cls, doc: dict) -> "ScenarioSummary":
        """Rebuild a summary from a :meth:`to_json_dict` document."""
        doc = dict(doc)
        doc["apps"] = {
            name: AppSeries(**series) for name, series in doc["apps"].items()
        }
        doc["cpu"] = CpuReport(**doc["cpu"])
        return cls(**doc)


def summarize(result) -> ScenarioSummary:
    """Distill a live :class:`~repro.core.runner.ScenarioResult`.

    Reads the collector's raw per-app logs (via the public series/window
    accessors), the CPU report and the engine counters; the host object
    itself is dropped here and never travels further.
    """
    scenario = result.scenario
    apps: dict[str, AppSeries] = {}
    for name in result.collector.app_names():
        times, latencies, sizes, ops = result.collector.full_log_of(name)
        apps[name] = AppSeries(
            name=name,
            cgroup_path=result.collector.cgroup_of(name),
            times=list(times),
            latencies=list(latencies),
            sizes=list(sizes),
            ops=list(ops),
        )
    return ScenarioSummary(
        scenario_name=scenario.name,
        knob_label=scenario.knob.label,
        seed=scenario.seed,
        num_devices=scenario.num_devices,
        cores=scenario.cores,
        device_scale=scenario.device_scale,
        t_start_us=result.t_start_us,
        t_end_us=result.t_end_us,
        apps=apps,
        cpu=result.cpu,
        work_conservation_violation=result.work_conservation_violation,
        events_processed=result.events_processed,
        fault_counters=dict(result.fault_counters),
        ctl_counters=dict(result.ctl_counters),
        wall_seconds=result.wall_seconds,
    )


def run_scenario_summary(scenario) -> ScenarioSummary:
    """Run one scenario and return its summary (the worker entry point)."""
    from repro.core.runner import run_scenario

    return summarize(run_scenario(scenario))
