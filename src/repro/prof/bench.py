"""Pinned benchmark suite and trajectory comparison (``isol-bench bench``).

The simulator's own performance is an experimental artifact too: the
paper's sweeps are only tractable because the event loop sustains its
events/sec, the executor keeps its workers busy, and the result cache
absorbs repeat work. This module pins a small suite of representative
cases and tracks their throughput over the repo's history:

* ``d1-overhead`` — two saturating batch apps under an io.cost knob
  configured not to control (the §V overhead shape), run with the
  self-profiler on;
* ``d2-fairness`` — three uniform cgroups under BFQ weights (the §VI-A
  fairness shape), profiled;
* ``d5-faulted`` — the D5 LC-vs-BE shape under a GC-storm fault plan
  and an MQ-Deadline priority knob, profiled (exercises the fault
  injection and retry paths);
* ``exec-batch`` — a six-submission sweep (three distinct scenarios,
  each submitted twice) run twice through a :class:`~repro.exec.
  executor.SweepExecutor` with a fresh cache: the first sweep measures
  dedup + execution, the second measures pure cache hits; worker
  utilization and cache hit stats land in the bench record.

Raw events/sec is machine-dependent, so every repeat also runs a
*calibration* loop — a closed chain of trivial callbacks on a bare
:class:`~repro.sim.engine.Simulator`, the same drive the overhead guard
in ``tests/unit/test_obs_overhead.py`` uses — interleaved with the
cases. Trajectory comparison operates on **normalized** rates
(case events/sec divided by the paired calibration events/sec), so a
committed trajectory from one machine remains comparable on another;
the medians over repeats give the paired-median robustness the overhead
guard established.

Bench records are JSON files named ``BENCH_<nnnn>.json`` (monotonic
counter) under ``benchmarks/trajectory/``; :func:`compare_benches`
diffs two records and flags any case whose normalized throughput
regressed by more than ``threshold``.
"""

from __future__ import annotations

import json
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from time import perf_counter

from repro.core.config import MqDeadlineKnob, Scenario
from repro.core.knob_catalog import fairness_knobs, overhead_knobs
from repro.core.runner import run_scenario
from repro.core.scenarios import (
    batch_scaling_specs,
    robustness_specs,
    uniform_fairness_groups,
)
from repro.exec.cache import ResultCache
from repro.exec.executor import SweepExecutor
from repro.faults.presets import gc_storm_plan
from repro.prof.config import ProfConfig
from repro.sim.engine import Simulator
from repro.ssd.presets import samsung_980pro_like

#: Bumped when the bench record layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Default trajectory directory, relative to the repo root / cwd.
DEFAULT_TRAJECTORY_DIR = Path("benchmarks") / "trajectory"

#: Default paired-median slowdown threshold for :func:`compare_benches`.
DEFAULT_THRESHOLD = 1.3

#: Case names in suite order.
CASE_NAMES = ("d1-overhead", "d2-fairness", "d5-faulted", "exec-batch")

#: Events fired per calibration run (split over several closed chains).
CALIBRATION_EVENTS = 40_000
_CALIBRATION_CHAINS = 8

#: All bench scenarios run at this device scale (events-per-run control).
_DEVICE_SCALE = 8.0
_SEED = 42

_BENCH_NAME_RE = re.compile(r"^BENCH_(\d{4,})\.json$")


# ----------------------------------------------------------------------
# Case scenario builders (fixed content: the whole point is that the
# same work is measured across the repo's history)
# ----------------------------------------------------------------------
def _d1_scenario() -> Scenario:
    """The §V overhead shape: saturating batch apps, knob not controlling."""
    ssd = samsung_980pro_like()
    apps = batch_scaling_specs(2, queue_depth=64)
    knob = overhead_knobs(
        ssd.scaled(_DEVICE_SCALE), [spec.cgroup_path for spec in apps]
    )["io.cost"]
    return Scenario(
        name="bench-d1-overhead",
        knob=knob,
        apps=apps,
        ssd_model=ssd,
        duration_s=0.3,
        warmup_s=0.1,
        seed=_SEED,
        device_scale=_DEVICE_SCALE,
        prof=ProfConfig(),
    )


def _d2_scenario() -> Scenario:
    """The §VI-A fairness shape: three uniform cgroups under BFQ."""
    from repro.core.scenarios import fairness_specs

    ssd = samsung_980pro_like()
    groups = uniform_fairness_groups(3)
    knob = fairness_knobs(
        groups, ssd.scaled(_DEVICE_SCALE), weighted=False,
        latency_scale=_DEVICE_SCALE,
    )["bfq"]
    return Scenario(
        name="bench-d2-fairness",
        knob=knob,
        apps=fairness_specs(groups, apps_per_group=2, queue_depth=64),
        ssd_model=ssd,
        duration_s=0.3,
        warmup_s=0.1,
        seed=_SEED,
        device_scale=_DEVICE_SCALE,
        prof=ProfConfig(),
    )


def _d5_scenario() -> Scenario:
    """A faulted D5 cell: LC vs BE under a GC storm, MQ-DL priorities."""
    return Scenario(
        name="bench-d5-faulted",
        knob=MqDeadlineKnob(
            classes={"/tenants/prio": "realtime", "/tenants/be": "idle"}
        ),
        apps=robustness_specs(be_queue_depth=32, n_be_apps=2),
        ssd_model=samsung_980pro_like(),
        duration_s=0.3,
        warmup_s=0.1,
        seed=_SEED,
        device_scale=_DEVICE_SCALE,
        faults=gc_storm_plan(),
        prof=ProfConfig(),
    )


def _exec_batch_scenarios() -> list[Scenario]:
    """Six submissions: three distinct tiny scenarios, each twice.

    Submitted to one sweep the duplicates dedupe (3 executed, 3
    deduped); resubmitted against the same cache they all hit (6
    cached). Both behaviours are part of what the case measures.
    """
    distinct = [
        Scenario(
            name=f"bench-exec-{seed}",
            knob=MqDeadlineKnob(),
            apps=batch_scaling_specs(1, queue_depth=32),
            ssd_model=samsung_980pro_like(),
            duration_s=0.15,
            warmup_s=0.05,
            seed=seed,
            device_scale=_DEVICE_SCALE,
        )
        for seed in (1, 2, 3)
    ]
    return distinct + list(distinct)


_PROFILED_BUILDERS = {
    "d1-overhead": _d1_scenario,
    "d2-fairness": _d2_scenario,
    "d5-faulted": _d5_scenario,
}


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
def run_calibration(
    n_events: int = CALIBRATION_EVENTS, chains: int = _CALIBRATION_CHAINS
) -> tuple[int, float]:
    """Fire ``n_events`` trivial callbacks on a bare engine.

    Returns ``(events_fired, elapsed_seconds)``. The drive is a set of
    closed reschedule chains (constant heap size), i.e. pure engine
    overhead: pop, fire, push. Case rates divided by this rate are
    machine-independent enough to commit and compare across hosts.
    """
    sim = Simulator()
    remaining = [n_events]

    def _make(delay_us: float):
        """One self-rescheduling chain link with a fixed period."""

        def tick() -> None:
            """Burn one event and keep the chain alive."""
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(delay_us, tick)

        return tick

    for i in range(chains):
        sim.schedule(1.0 + 0.1 * i, _make(1.0 + 0.1 * i))
    start = perf_counter()
    sim.run()
    elapsed = perf_counter() - start
    return sim.events_processed, elapsed


# ----------------------------------------------------------------------
# Case runners
# ----------------------------------------------------------------------
def _run_profiled_case(name: str) -> dict:
    """One repeat of a profiled case; returns events/rate/profile."""
    result = run_scenario(_PROFILED_BUILDERS[name]())
    profile = result.profile
    loop_wall = profile.loop_wall_seconds
    return {
        "events": result.events_processed,
        "rate": result.events_processed / loop_wall if loop_wall > 0 else 0.0,
        "profile": profile,
    }


def _run_exec_case(workers: int) -> dict:
    """One repeat of the executor case; returns events/rate/stats.

    A fresh executor and a fresh (temporary) cache per repeat, so the
    cold-sweep/warm-sweep structure is identical every time.
    """
    scenarios = _exec_batch_scenarios()
    with tempfile.TemporaryDirectory(prefix="isolbench-bench-") as tmp:
        cache = ResultCache(Path(tmp))
        with SweepExecutor(max_workers=workers, cache=cache) as executor:
            executor.run_strict(scenarios)  # cold: execute + dedup
            executor.run_strict(scenarios)  # warm: pure cache hits
            stats = executor.stats
            return {
                "events": stats.events_processed,
                "rate": stats.events_per_sec,
                "executor": stats.to_json_dict(),
                "cache": {
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "stores": cache.stats.stores,
                },
            }


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------
def run_bench(
    repeats: int = 3,
    mini: bool = False,
    cases: tuple[str, ...] | None = None,
    workers: int = 1,
    label: str | None = None,
) -> dict:
    """Run the pinned suite and return a bench record (JSON-ready dict).

    ``mini`` drops to one repeat but keeps every case's *content*
    identical, so a mini record (the CI job) remains comparable against
    a committed full record. ``cases`` filters the suite by name;
    ``workers`` sizes the executor case's pool.
    """
    selected = CASE_NAMES if cases is None else tuple(cases)
    unknown = [name for name in selected if name not in CASE_NAMES]
    if unknown:
        raise ValueError(f"unknown bench case(s): {unknown}; know {CASE_NAMES}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if mini:
        repeats = 1

    samples: dict[str, list[dict]] = {name: [] for name in selected}
    calib_rates: dict[str, list[float]] = {name: [] for name in selected}
    for _ in range(repeats):
        for name in selected:
            # Interleaved pairing: each case sample gets its own
            # calibration sample taken immediately before it, so slow
            # machine moments cancel out of the normalized rate.
            calib_events, calib_elapsed = run_calibration()
            calib_rate = calib_events / calib_elapsed if calib_elapsed > 0 else 0.0
            if name == "exec-batch":
                sample = _run_exec_case(workers)
            else:
                sample = _run_profiled_case(name)
            calib_rates[name].append(calib_rate)
            samples[name].append(sample)

    record: dict = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "mini": mini,
        "repeats": repeats,
        "workers": workers,
        "calibration_events": CALIBRATION_EVENTS,
        "cases": {},
    }
    for name in selected:
        rows = samples[name]
        rates = [row["rate"] for row in rows]
        calibs = calib_rates[name]
        normalized = [
            rate / calib if calib > 0 else 0.0
            for rate, calib in zip(rates, calibs)
        ]
        entry: dict = {
            "kind": "executor" if name == "exec-batch" else "profiled",
            "events": rows[-1]["events"],
            "rates": rates,
            "median_rate": median(rates),
            "calibration_rates": calibs,
            "normalized_rates": normalized,
            "median_normalized": median(normalized),
        }
        if name == "exec-batch":
            entry["executor"] = rows[-1]["executor"]
            entry["cache"] = rows[-1]["cache"]
        else:
            profile = rows[-1]["profile"]
            entry["loop_wall_seconds"] = profile.loop_wall_seconds
            entry["coverage"] = profile.coverage()
            entry["phase_wall"] = dict(sorted(profile.phase_wall.items()))
            entry["phase_events"] = dict(sorted(profile.phase_events.items()))
            entry["counters"] = dict(sorted(profile.counters.items()))
        record["cases"][name] = entry
    return record


# ----------------------------------------------------------------------
# Trajectory files
# ----------------------------------------------------------------------
def bench_paths(directory: Path | str) -> list[Path]:
    """All ``BENCH_<nnnn>.json`` files in ``directory``, in number order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    matches = [
        (int(match.group(1)), path)
        for path in directory.iterdir()
        if (match := _BENCH_NAME_RE.match(path.name))
    ]
    return [path for _, path in sorted(matches)]


def next_bench_path(directory: Path | str) -> Path:
    """The next free ``BENCH_<nnnn>.json`` slot in ``directory``."""
    directory = Path(directory)
    existing = bench_paths(directory)
    if existing:
        last = int(_BENCH_NAME_RE.match(existing[-1].name).group(1))
    else:
        last = 0
    return directory / f"BENCH_{last + 1:04d}.json"


def latest_bench_path(directory: Path | str) -> Path | None:
    """The highest-numbered bench record, or None if there is none."""
    existing = bench_paths(directory)
    return existing[-1] if existing else None


def write_bench(record: dict, directory: Path | str) -> Path:
    """Write ``record`` into the next numbered slot; returns the path."""
    path = next_bench_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: Path | str) -> dict:
    """Load a bench record, checking its schema version."""
    record = json.loads(Path(path).read_text())
    version = record.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {version!r}, expected {BENCH_SCHEMA_VERSION}"
        )
    return record


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CaseComparison:
    """One case's baseline-vs-current normalized throughput."""

    name: str
    baseline: float
    current: float
    #: ``baseline / current`` — how many times slower the current run is.
    slowdown: float
    regressed: bool
    #: Raw (machine-dependent) median events/sec, for context alongside
    #: the normalized numbers the verdict is computed from.
    baseline_rate: float = 0.0
    current_rate: float = 0.0

    @property
    def speedup(self) -> float:
        """``current / baseline`` normalized — the improvement factor."""
        return self.current / self.baseline if self.baseline > 0 else float("inf")

    @property
    def raw_speedup(self) -> float:
        """``current / baseline`` on raw events/sec (machine-dependent)."""
        if self.baseline_rate > 0:
            return self.current_rate / self.baseline_rate
        return float("inf")


@dataclass(frozen=True)
class CompareReport:
    """The result of diffing two bench records."""

    threshold: float
    rows: list[CaseComparison] = field(default_factory=list)
    #: Baseline cases absent from the current record (treated as failures).
    missing: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[CaseComparison]:
        """The rows whose slowdown exceeded the threshold."""
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        """True when no case regressed and none went missing."""
        return not self.regressions and not self.missing

    def render(self) -> str:
        """Human-readable comparison table.

        The verdict column is computed on normalized rates; the raw
        events/sec speedup is shown alongside for context (it is
        machine-dependent and carries no pass/fail weight).
        """
        lines = [
            f"{'case':<14s} {'baseline':>10s} {'current':>10s} "
            f"{'speedup':>8s} {'raw':>9s}  status"
        ]
        for row in self.rows:
            status = "REGRESSED" if row.regressed else "ok"
            if row.baseline_rate > 0 and row.current_rate > 0:
                raw = f"{row.raw_speedup:>8.2f}x"
            else:
                raw = f"{'-':>9s}"
            lines.append(
                f"{row.name:<14s} {row.baseline:>10.3f} {row.current:>10.3f} "
                f"{row.speedup:>7.2f}x {raw}  {status}"
            )
        for name in self.missing:
            lines.append(
                f"{name:<14s} {'-':>10s} {'-':>10s} {'-':>8s} {'-':>9s}  MISSING"
            )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.regressions)} regression(s), "
            f"{len(self.missing)} missing case(s) "
            f"(threshold {self.threshold:g}x on normalized rate)"
        )
        return "\n".join(lines)


def compare_benches(
    baseline: dict, current: dict, threshold: float = DEFAULT_THRESHOLD
) -> CompareReport:
    """Diff two bench records on paired-median normalized throughput.

    A case regresses when ``baseline_median_normalized /
    current_median_normalized > threshold`` — i.e. the current run's
    machine-normalized events/sec fell by more than the threshold
    factor. Cases present only in ``current`` are ignored (new cases
    cannot regress); cases present only in ``baseline`` fail the
    comparison as missing.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    rows: list[CaseComparison] = []
    missing: list[str] = []
    for name, base_entry in baseline.get("cases", {}).items():
        cur_entry = current.get("cases", {}).get(name)
        if cur_entry is None:
            missing.append(name)
            continue
        base = float(base_entry["median_normalized"])
        cur = float(cur_entry["median_normalized"])
        slowdown = base / cur if cur > 0 else float("inf")
        rows.append(
            CaseComparison(
                name=name,
                baseline=base,
                current=cur,
                slowdown=slowdown,
                regressed=slowdown > threshold,
                baseline_rate=float(base_entry.get("median_rate", 0.0)),
                current_rate=float(cur_entry.get("median_rate", 0.0)),
            )
        )
    return CompareReport(threshold=threshold, rows=rows, missing=missing)
