"""Unit tests for job specs and the closed-loop app driver."""

import random

import pytest

from repro.iorequest import KIB, OpType, Pattern
from repro.sim.engine import Simulator
from repro.workloads.apps import batch_app, be_app, lc_app
from repro.workloads.generator import App
from repro.workloads.spec import ActivityWindow, CgroupAppGroup, JobSpec


class TestActivityWindow:
    def test_valid(self):
        window = ActivityWindow(0.0, 100.0)
        assert window.stop_us == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            ActivityWindow(-1.0)

    def test_stop_before_start_rejected(self):
        with pytest.raises(ValueError):
            ActivityWindow(100.0, 50.0)

    def test_open_ended_by_default(self):
        import math

        assert math.isinf(ActivityWindow(0.0).stop_us)


class TestJobSpec:
    def test_defaults(self):
        spec = JobSpec(name="j", cgroup_path="/g")
        assert spec.size == 4 * KIB
        assert spec.is_read_only
        assert spec.active_at(1e9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"size": 0},
            {"read_fraction": 1.5},
            {"read_fraction": -0.1},
            {"queue_depth": 0},
            {"rate_limit_bps": 0.0},
            {"windows": ()},
        ],
    )
    def test_validation(self, kwargs):
        params = dict(name="j", cgroup_path="/g")
        params.update(kwargs)
        with pytest.raises(ValueError):
            JobSpec(**params)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(
                name="j",
                cgroup_path="/g",
                windows=(ActivityWindow(0.0, 100.0), ActivityWindow(50.0, 200.0)),
            )

    def test_active_at_respects_windows(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            windows=(ActivityWindow(10.0, 20.0), ActivityWindow(30.0, 40.0)),
        )
        assert not spec.active_at(5.0)
        assert spec.active_at(15.0)
        assert not spec.active_at(25.0)
        assert spec.active_at(35.0)
        assert not spec.active_at(45.0)


class TestAppPresets:
    def test_lc_app_shape(self):
        spec = lc_app("l", "/g")
        assert spec.queue_depth == 1
        assert spec.size == 4 * KIB
        assert spec.app_class == "lc"

    def test_batch_app_shape(self):
        spec = batch_app("b", "/g")
        assert spec.queue_depth == 256
        assert spec.app_class == "batch"

    def test_be_app_write_variant(self):
        spec = be_app("w", "/g", read_fraction=0.0)
        assert not spec.is_read_only
        assert spec.app_class == "be"


class TestCgroupAppGroup:
    def test_mismatched_spec_rejected(self):
        with pytest.raises(ValueError):
            CgroupAppGroup("/g", (JobSpec(name="j", cgroup_path="/other"),))


class TestAppDriver:
    @staticmethod
    def run_app(spec, duration_us, complete_after_us=10.0):
        """Drive an app against an instant-completion fake device."""
        sim = Simulator()
        submitted = []

        app_holder = []

        def submit(req):
            submitted.append((sim.now, req))
            sim.schedule(complete_after_us, lambda: app_holder[0].on_complete(req))

        app = App(sim, spec, submit, random.Random(0))
        app_holder.append(app)
        app.start()
        sim.run_until(duration_us)
        return submitted, app

    def test_keeps_queue_depth_outstanding(self):
        spec = JobSpec(name="j", cgroup_path="/g", queue_depth=4)
        submitted, app = self.run_app(spec, duration_us=5.0)
        assert len(submitted) == 4  # initial fill, none completed yet

    def test_closed_loop_reissues_on_completion(self):
        spec = JobSpec(name="j", cgroup_path="/g", queue_depth=1)
        submitted, _ = self.run_app(spec, duration_us=100.0)
        # One completion every 10us -> ~10 sequential requests.
        assert 9 <= len(submitted) <= 11

    def test_stops_issuing_after_window(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            queue_depth=1,
            windows=(ActivityWindow(0.0, 50.0),),
        )
        submitted, app = self.run_app(spec, duration_us=500.0)
        assert all(t < 50.0 for t, _ in submitted)
        assert app.outstanding == 0

    def test_starts_at_window_start(self):
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            queue_depth=1,
            windows=(ActivityWindow(200.0, 400.0),),
        )
        submitted, _ = self.run_app(spec, duration_us=300.0)
        assert submitted and submitted[0][0] == 200.0

    def test_read_fraction_mixes_ops(self):
        spec = JobSpec(name="j", cgroup_path="/g", queue_depth=1, read_fraction=0.5)
        submitted, _ = self.run_app(spec, duration_us=10_000.0)
        ops = {req.op for _, req in submitted}
        assert ops == {OpType.READ, OpType.WRITE}

    def test_read_only_never_writes(self):
        spec = JobSpec(name="j", cgroup_path="/g", queue_depth=2, read_fraction=1.0)
        submitted, _ = self.run_app(spec, duration_us=1_000.0)
        assert all(req.op == OpType.READ for _, req in submitted)

    def test_rate_limit_bounds_issue_rate(self):
        # 4 KiB at 4 MiB/s -> ~1 request per ms.
        spec = JobSpec(
            name="j",
            cgroup_path="/g",
            queue_depth=8,
            rate_limit_bps=4.0 * 1024 * 1024,
        )
        submitted, _ = self.run_app(spec, duration_us=20_000.0, complete_after_us=1.0)
        assert len(submitted) <= 25  # ~20 expected

    def test_request_metadata(self):
        spec = JobSpec(name="j", cgroup_path="/g", pattern=Pattern.SEQUENTIAL)
        sim = Simulator()
        seen = []
        app = App(sim, spec, seen.append, random.Random(0), device_index=3, prio_class=2)
        app.start()
        sim.run_until(1.0)
        req = seen[0]
        assert req.app_name == "j"
        assert req.cgroup_path == "/g"
        assert req.device_index == 3
        assert req.prio_class == 2
        assert req.pattern == Pattern.SEQUENTIAL
