"""Unit tests for the surrogate prefilter and the surrogate strategy.

Driven by a fake evaluator (a pure objective over ``bps_fraction``-style
dimensions) and a real model fitted on a tiny synthetic corpus built
from the space's own rendered scenarios, so ranking, verification
accounting, and the trust-report format are all exercised without long
simulator runs.
"""

import pytest

from repro.core.d6_autotune import default_slo, mini_settings
from repro.core.scenarios import BE_GROUP, PRIORITY_GROUP, robustness_specs
from repro.exec.summary import run_scenario_summary
from repro.ssd.presets import samsung_980pro_like
from repro.surrogate.corpus import corpus_from_pairs
from repro.surrogate.filter import SurrogatePrefilter, fit_from_corpus
from repro.surrogate.model import SurrogateConfig
from repro.tune.evaluator import TuneEvaluator
from repro.tune.search import search, surrogate_pool, surrogate_search
from repro.tune.space import build_space

FAST = SurrogateConfig(n_members=2, n_rounds=8)


@pytest.fixture(scope="module")
def setup():
    """A real io.max evaluator + a model fitted on its own grid."""
    ssd = samsung_980pro_like()
    space = build_space(
        "io.max",
        ssd,
        device_scale=16.0,
        priority_group=PRIORITY_GROUP,
        be_group=BE_GROUP,
    )
    evaluator = TuneEvaluator(
        space=space,
        slo=default_slo(),
        apps=robustness_specs(be_queue_depth=16, n_be_apps=1),
        ssd=ssd,
        device_scale=16.0,
        duration_s=0.05,
        warmup_s=0.01,
    )
    values = surrogate_pool(space, 12, seed=1)
    pairs = []
    for assignment in values:
        scenario = evaluator.scenario_for(assignment)
        pairs.append((scenario, run_scenario_summary(scenario)))
    corpus = corpus_from_pairs(pairs)
    model = fit_from_corpus(corpus, config=FAST)
    return space, evaluator, model


def make_prefilter(setup, pool_factor=8):
    space, evaluator, model = setup
    return SurrogatePrefilter(
        model=model,
        slo=default_slo(),
        ssd=samsung_980pro_like(),
        pool_factor=pool_factor,
    )


class TestPool:
    def test_pool_is_wide_deduped_and_deterministic(self, setup):
        space, _, _ = setup
        pool = surrogate_pool(space, 64, seed=42)
        labels = [space.label(v) for v in pool]
        assert len(labels) == len(set(labels))
        assert len(pool) == 64
        assert pool == surrogate_pool(space, 64, seed=42)
        # The default anchor is always in the pool, first.
        assert pool[0] == space.normalize(space.default_values())

    def test_small_discrete_space_exhausts_early(self):
        space = build_space(
            "mq-deadline",
            samsung_980pro_like(),
            device_scale=16.0,
            priority_group=PRIORITY_GROUP,
            be_group=BE_GROUP,
        )
        pool = surrogate_pool(space, 1000, seed=42)
        assert len(pool) < 1000  # 3x3 priority classes minus overlaps

    def test_pool_size_validation(self, setup):
        space, _, _ = setup
        with pytest.raises(ValueError):
            surrogate_pool(space, 0)


class TestSurrogateSearch:
    def test_spends_the_exact_verification_budget(self, setup):
        space, evaluator, _ = setup
        prefilter = make_prefilter(setup)
        outcome = surrogate_search(space, evaluator, 5, prefilter, seed=42)
        assert len(outcome.evaluations) == 5
        assert len(prefilter.verified) == 5
        assert prefilter.scored >= 5 * prefilter.pool_factor
        labels = [e.label for e in outcome.evaluations]
        assert len(labels) == len(set(labels))

    def test_deterministic(self, setup):
        space, evaluator, _ = setup
        first = surrogate_search(space, evaluator, 4, make_prefilter(setup), seed=42)
        second = surrogate_search(space, evaluator, 4, make_prefilter(setup), seed=42)
        assert [e.label for e in first.evaluations] == [
            e.label for e in second.evaluations
        ]
        assert first.best.label == second.best.label

    def test_anchor_default_is_always_verified(self, setup):
        space, evaluator, _ = setup
        outcome = surrogate_search(space, evaluator, 4, make_prefilter(setup), seed=42)
        anchor = space.label(space.normalize(space.default_values()))
        assert anchor in [e.label for e in outcome.evaluations]

    def test_search_entry_point_layering(self, setup):
        space, evaluator, _ = setup
        prefilter = make_prefilter(setup)
        outcome = search(
            space, evaluator, 4, strategy="auto", seed=42, prefilter=prefilter
        )
        assert outcome.strategy == "surrogate"
        with pytest.raises(ValueError):
            search(space, evaluator, 4, strategy="surrogate", seed=42)


class TestTrustReport:
    def test_stats_line_format(self, setup):
        space, evaluator, _ = setup
        prefilter = make_prefilter(setup)
        surrogate_search(space, evaluator, 4, prefilter, seed=42)
        line = prefilter.stats_line()
        assert line.startswith("surrogate: scored=")
        assert " verified=4 " in line
        assert "mae_p99=" in line and "us spearman=" in line

    def test_json_payload(self, setup):
        space, evaluator, _ = setup
        prefilter = make_prefilter(setup)
        surrogate_search(space, evaluator, 3, prefilter, seed=42)
        doc = prefilter.to_json_dict()
        assert doc["verified"] == 3
        assert doc["scored"] == prefilter.scored
        assert doc["model_rows"] > 0
        assert len(doc["records"]) == 3
        for record in doc["records"]:
            assert set(record) == {
                "label",
                "predicted_total",
                "measured_total",
                "predicted_p99_us",
                "measured_p99_us",
            }
