"""Per-knob parameter spaces with device-derived bounds.

Each of the paper's five cgroup I/O-control knobs becomes a
:class:`KnobSpace`: a handful of named :class:`Parameter` dimensions
with bounds derived from the device's nominal saturation points (via
:func:`~repro.ssd.model.describe_model_dict` -- the same document
``isol-bench describe-device --json`` prints), plus a ``build`` method
that turns a value assignment into the concrete
:class:`~repro.core.config.KnobConfig` a scenario runs with.

Two unit conventions keep the spaces portable across effort levels:

* parameter values are *full-device-speed* and mostly dimensionless
  (fractions of saturation, weights, full-speed microseconds);
* ``build`` converts into the time-dilated sysfs numbers the scaled
  device expects (caps against the scaled saturation point, latency
  targets multiplied by ``device_scale``) -- mirroring how the D3/D4
  modules configure the same knobs.

Every space also knows its **untuned default**: the knob merely enabled
but not configured (``IoMaxKnob()`` with no limits, ``BfqKnob()`` with
default weights, ...). The advisor scores that default as the "before"
column of its Table-I-style report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cgroups.knobs import IoCostQosParams
from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    KnobConfig,
    MqDeadlineKnob,
)
from repro.ssd.model import SsdModel, describe_model_dict

#: The knobs the tuner can search, in Table I's order.
TUNABLE_KNOBS = ("mq-deadline", "bfq", "io.max", "io.latency", "io.cost")


@dataclass(frozen=True)
class Parameter:
    """One searchable dimension of a knob's configuration space."""

    name: str
    lo: float
    hi: float
    #: Grid/sampling in log space (latency targets, weights).
    log: bool = False
    #: Values are rounded to integers before building a config.
    integer: bool = False
    #: True when *decreasing* the value strengthens I/O control (an
    #: io.max cap, a latency target); False when increasing does (a
    #: weight). The binary-search strategy brackets along this axis;
    #: None marks an unordered dimension (discrete classes).
    stricter_low: bool | None = True

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise ValueError(f"parameter {self.name}: need lo < hi, got [{self.lo}, {self.hi}]")
        if self.log and self.lo <= 0:
            raise ValueError(f"parameter {self.name}: log scale needs lo > 0")

    def clamp(self, value: float) -> float:
        """Clamp (and for integer parameters, round) into bounds."""
        clamped = min(self.hi, max(self.lo, value))
        return float(round(clamped)) if self.integer else clamped

    def midpoint(self, lo: float, hi: float) -> float:
        """The bracket midpoint, geometric on log-scaled dimensions."""
        mid = math.sqrt(lo * hi) if self.log else (lo + hi) / 2.0
        return self.clamp(mid)

    def grid(self, points: int) -> list[float]:
        """``points`` values spanning the bounds (log-aware, inclusive)."""
        if points < 2:
            return [self.clamp(self.hi)]
        if self.log:
            ratio = (self.hi / self.lo) ** (1.0 / (points - 1))
            raw = [self.lo * ratio**i for i in range(points)]
        else:
            raw = [
                self.lo + (self.hi - self.lo) * i / (points - 1) for i in range(points)
            ]
        values: list[float] = []
        for value in (self.clamp(v) for v in raw):
            if value not in values:  # integer rounding can collide
                values.append(value)
        return values

    def sample(self, rng) -> float:
        """Draw one value from the bounds using ``rng`` (log-aware)."""
        unit = rng.random()
        if self.log:
            value = self.lo * (self.hi / self.lo) ** unit
        else:
            value = self.lo + (self.hi - self.lo) * unit
        return self.clamp(value)


class KnobSpace:
    """Base class: a knob's searchable dimensions and config builder."""

    #: Knob name as used by Table I / the CLI (e.g. ``io.max``).
    name = "abstract"
    #: The search strategy ``--strategy auto`` resolves to.
    default_strategy = "binary"

    def __init__(self, ssd: SsdModel, device_scale: float, priority_group: str, be_group: str):
        if device_scale < 1:
            raise ValueError("device_scale must be >= 1")
        self.ssd = ssd
        self.device_scale = device_scale
        self.priority_group = priority_group
        self.be_group = be_group
        #: Saturation document bounds are derived from (the
        #: ``describe-device --json`` source of truth).
        self.device_doc = describe_model_dict(ssd)

    # -- searchable surface --------------------------------------------
    def parameters(self) -> tuple[Parameter, ...]:
        """The knob's searchable dimensions."""
        raise NotImplementedError

    def default_values(self) -> dict[str, float]:
        """The search's starting assignment (the loosest sane point)."""
        raise NotImplementedError

    def build(self, values: dict[str, float]) -> KnobConfig:
        """Concrete knob config for one value assignment."""
        raise NotImplementedError

    def default_knob(self) -> KnobConfig:
        """The untuned default: knob enabled, nothing configured."""
        raise NotImplementedError

    # -- bookkeeping ----------------------------------------------------
    def normalize(self, values: dict[str, float]) -> dict[str, float]:
        """Clamp an assignment into bounds, in declared parameter order."""
        params = {p.name: p for p in self.parameters()}
        unknown = set(values) - set(params)
        if unknown:
            raise KeyError(f"{self.name}: unknown parameters {sorted(unknown)}")
        missing = set(params) - set(values)
        if missing:
            raise KeyError(f"{self.name}: missing parameters {sorted(missing)}")
        return {name: params[name].clamp(values[name]) for name in params}

    def label(self, values: dict[str, float]) -> str:
        """Deterministic short label for one assignment.

        The label doubles as the scenario-name suffix, so identical
        assignments proposed twice render identical scenarios and the
        executor's dedup/cache collapses them to a single run.
        """
        parts = []
        for param in self.parameters():
            value = values[param.name]
            rendered = f"{int(value)}" if param.integer else f"{value:.6g}"
            parts.append(f"{param.name}={rendered}")
        return ",".join(parts)

    def render_settings(self, values: dict[str, float]) -> str:
        """Sysfs-flavoured one-liner of the recommended configuration."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------
    def _scaled_case(self, key: str) -> dict:
        """A saturation case of the *scaled* device (time dilation)."""
        case = dict(self.device_doc["cases"][key])
        case["iops"] = case["iops"] / self.device_scale
        case["bandwidth_bps"] = case["bandwidth_bps"] / self.device_scale
        return case


class IoMaxSpace(KnobSpace):
    """io.max: static rd/wr bandwidth + IOPS caps on the BE group.

    Both dimensions are fractions of the device's nominal 4 KiB
    random saturation point (read caps against the read point, write
    caps against the write point), so one assignment is meaningful on
    any device preset. Lower fraction = stricter.
    """

    name = "io.max"
    default_strategy = "binary"

    def parameters(self) -> tuple[Parameter, ...]:
        """``bps_fraction`` and ``iops_fraction``, each in [0.05, 1]."""
        return (
            Parameter("bps_fraction", 0.05, 1.0, stricter_low=True),
            Parameter("iops_fraction", 0.05, 1.0, stricter_low=True),
        )

    def default_values(self) -> dict[str, float]:
        """Caps at 100% of saturation (present but not binding)."""
        return {"bps_fraction": 1.0, "iops_fraction": 1.0}

    def _limits(self, values: dict[str, float]) -> dict[str, float]:
        """Scaled-unit rbps/wbps/riops/wiops caps for the BE group."""
        read = self._scaled_case("rand-read-4k")
        write = self._scaled_case("rand-write-4k")
        return {
            "rbps": values["bps_fraction"] * read["bandwidth_bps"],
            "wbps": values["bps_fraction"] * write["bandwidth_bps"],
            "riops": values["iops_fraction"] * read["iops"],
            "wiops": values["iops_fraction"] * write["iops"],
        }

    def build(self, values: dict[str, float]) -> KnobConfig:
        """An :class:`IoMaxKnob` capping the BE group."""
        return IoMaxKnob(limits={self.be_group: self._limits(values)})

    def default_knob(self) -> KnobConfig:
        """io.max with no limits written."""
        return IoMaxKnob()

    def render_settings(self, values: dict[str, float]) -> str:
        """``io.max`` line for the BE group, scaled-device units."""
        limits = self._limits(values)
        rendered = " ".join(f"{k}={int(v)}" for k, v in sorted(limits.items()))
        return f"{self.be_group} io.max: {rendered}"


class IoLatencySpace(KnobSpace):
    """io.latency: the priority group's latency target.

    Bounds run from just under the device's isolated random-read cost
    (persistently violated -> maximum protection) up to 20x it (never
    violated -> no control), log-spaced. Lower target = stricter.
    """

    name = "io.latency"
    default_strategy = "binary"

    def _floor_us(self) -> float:
        """Lowest meaningful target: just under the read service time."""
        return self.device_doc["read_fixed_us"] * 0.9

    def parameters(self) -> tuple[Parameter, ...]:
        """``target_us`` in full-speed microseconds, log-spaced."""
        floor = self._floor_us()
        return (Parameter("target_us", floor, floor * 20.0, log=True, stricter_low=True),)

    def default_values(self) -> dict[str, float]:
        """The loosest target (no control pressure)."""
        return {"target_us": self._floor_us() * 20.0}

    def build(self, values: dict[str, float]) -> KnobConfig:
        """An :class:`IoLatencyKnob` targeting the priority group."""
        return IoLatencyKnob(
            targets_us={self.priority_group: values["target_us"] * self.device_scale}
        )

    def default_knob(self) -> KnobConfig:
        """io.latency with no targets written."""
        return IoLatencyKnob()

    def render_settings(self, values: dict[str, float]) -> str:
        """``io.latency`` line for the priority group (scaled target)."""
        target = values["target_us"] * self.device_scale
        return f"{self.priority_group} io.latency: target={target:g}"


class BfqSpace(KnobSpace):
    """BFQ: the priority group's io.bfq.weight (BE pinned at 100).

    Higher weight = stricter prioritization, so ``stricter_low`` is
    False. Searched in log space over the kernel's full 1-1000 range.
    """

    name = "bfq"
    default_strategy = "binary"

    def parameters(self) -> tuple[Parameter, ...]:
        """``prio_weight`` in the kernel's [1, 1000] range."""
        return (Parameter("prio_weight", 1, 1000, log=True, integer=True, stricter_low=False),)

    def default_values(self) -> dict[str, float]:
        """The kernel default weight (100): no relative priority."""
        return {"prio_weight": 100.0}

    def build(self, values: dict[str, float]) -> KnobConfig:
        """A :class:`BfqKnob` weighting priority vs BE."""
        return BfqKnob(
            weights={self.priority_group: int(values["prio_weight"]), self.be_group: 100}
        )

    def default_knob(self) -> KnobConfig:
        """BFQ scheduling with default weights everywhere."""
        return BfqKnob()

    def render_settings(self, values: dict[str, float]) -> str:
        """``io.bfq.weight`` lines for both groups."""
        return (
            f"{self.priority_group} io.bfq.weight: {int(values['prio_weight'])}; "
            f"{self.be_group} io.bfq.weight: 100"
        )


#: MQ-Deadline's discrete configuration space: every (priority, BE)
#: io.prio.class pair, ordered deterministically.
MQ_CLASS_PAIRS: tuple[tuple[str, str], ...] = tuple(
    (prio, be)
    for prio in ("realtime", "best-effort", "idle")
    for be in ("realtime", "best-effort", "idle")
)


class MqDeadlineSpace(KnobSpace):
    """MQ-Deadline: the (priority, BE) io.prio.class pair.

    The space is discrete and unordered (an index into
    :data:`MQ_CLASS_PAIRS`), so ``--strategy auto`` enumerates it
    exhaustively instead of bracketing.
    """

    name = "mq-deadline"
    default_strategy = "grid"

    def parameters(self) -> tuple[Parameter, ...]:
        """``class_pair`` indexing :data:`MQ_CLASS_PAIRS`."""
        return (
            Parameter(
                "class_pair", 0, len(MQ_CLASS_PAIRS) - 1, integer=True, stricter_low=None
            ),
        )

    def default_values(self) -> dict[str, float]:
        """Both groups best-effort (the kernel's effective default)."""
        return {"class_pair": float(MQ_CLASS_PAIRS.index(("best-effort", "best-effort")))}

    def build(self, values: dict[str, float]) -> KnobConfig:
        """An :class:`MqDeadlineKnob` with the indexed class pair."""
        prio_cls, be_cls = MQ_CLASS_PAIRS[int(values["class_pair"])]
        return MqDeadlineKnob(
            classes={self.priority_group: prio_cls, self.be_group: be_cls}
        )

    def default_knob(self) -> KnobConfig:
        """MQ-Deadline active but no io.prio.class written."""
        return MqDeadlineKnob()

    def label(self, values: dict[str, float]) -> str:
        """Readable class names instead of the raw index."""
        prio_cls, be_cls = MQ_CLASS_PAIRS[int(values["class_pair"])]
        return f"prio={prio_cls},be={be_cls}"

    def render_settings(self, values: dict[str, float]) -> str:
        """``io.prio.class`` lines for both groups."""
        prio_cls, be_cls = MQ_CLASS_PAIRS[int(values["class_pair"])]
        return (
            f"{self.priority_group} io.prio.class: {prio_cls}; "
            f"{self.be_group} io.prio.class: {be_cls}"
        )


class IoCostSpace(KnobSpace):
    """io.cost: vrate window, QoS read-latency target, priority weight.

    The paper's Q9 recipe: ``vrate_pct`` pins ``min=max`` (the
    utilization dial), ``rlat_us`` sets the p99 read-latency congestion
    signal, and ``prio_weight`` divides the resulting budget. Three
    interacting dimensions -> coordinate descent by default.
    """

    name = "io.cost"
    default_strategy = "coordinate"

    def _rlat_bounds(self) -> tuple[float, float]:
        """Full-speed rlat_us bounds anchored to the read service time."""
        floor = self.device_doc["read_fixed_us"] * 0.9
        return floor, floor * 20.0

    def parameters(self) -> tuple[Parameter, ...]:
        """``prio_weight`` (log), ``rlat_us`` (log) and ``vrate_pct``.

        Declared in impact order -- coordinate descent walks dimensions
        in declaration order, so under a small budget the weight split
        (the knob's main lever for this workload) is explored before
        the QoS signal and the vrate window refine it.
        """
        rlat_lo, rlat_hi = self._rlat_bounds()
        return (
            Parameter("prio_weight", 100, 10000, log=True, integer=True, stricter_low=False),
            Parameter("rlat_us", rlat_lo, rlat_hi, log=True, stricter_low=True),
            Parameter("vrate_pct", 20.0, 100.0, stricter_low=True),
        )

    def default_values(self) -> dict[str, float]:
        """Full vrate, loosest latency signal, default weight."""
        _, rlat_hi = self._rlat_bounds()
        return {"vrate_pct": 100.0, "rlat_us": rlat_hi, "prio_weight": 100.0}

    def build(self, values: dict[str, float]) -> KnobConfig:
        """An :class:`IoCostKnob` with pinned vrate and p99 rlat QoS."""
        vrate = values["vrate_pct"]
        return IoCostKnob(
            weights={self.priority_group: int(values["prio_weight"]), self.be_group: 100},
            qos=IoCostQosParams(
                enable=True,
                ctrl="user",
                rpct=99.0,
                rlat_us=values["rlat_us"] * self.device_scale,
                vrate_min_pct=vrate,
                vrate_max_pct=vrate,
            ),
        )

    def default_knob(self) -> KnobConfig:
        """io.cost enabled with its default QoS and no weights."""
        return IoCostKnob()

    def render_settings(self, values: dict[str, float]) -> str:
        """``io.cost.qos`` + ``io.weight`` one-liner (scaled rlat)."""
        vrate = values["vrate_pct"]
        rlat = values["rlat_us"] * self.device_scale
        return (
            f"io.cost.qos: rpct=99 rlat={rlat:g} min={vrate:g} max={vrate:g}; "
            f"{self.priority_group} io.weight: {int(values['prio_weight'])}; "
            f"{self.be_group} io.weight: 100"
        )


#: Registry mapping knob names to their space classes.
SPACE_CLASSES: dict[str, type[KnobSpace]] = {
    "mq-deadline": MqDeadlineSpace,
    "bfq": BfqSpace,
    "io.max": IoMaxSpace,
    "io.latency": IoLatencySpace,
    "io.cost": IoCostSpace,
}


def build_space(
    knob_name: str,
    ssd: SsdModel,
    device_scale: float = 1.0,
    priority_group: str = "/tenants/prio",
    be_group: str = "/tenants/be",
) -> KnobSpace:
    """Instantiate the parameter space for one knob on one device."""
    try:
        cls = SPACE_CLASSES[knob_name]
    except KeyError:
        raise KeyError(
            f"no parameter space for knob {knob_name!r}; options: {sorted(SPACE_CLASSES)}"
        ) from None
    return cls(ssd, device_scale, priority_group, be_group)
