"""BFQ: budget fair queueing over cgroup weights (io.bfq.weight).

Re-implements the mechanisms behind the paper's BFQ observations:

* one service queue per cgroup; groups are scheduled by weighted virtual
  time, so long-run service is proportional to io.bfq.weight resolved
  through the hierarchy (D2, Fig. 2d / Fig. 5);
* *exclusive* slices: one group owns the device at a time, up to a byte
  budget or a wall-clock timeout -- this is what makes bandwidth bursty
  at per-second granularity (Fig. 2c/d);
* ``slice_idle``: when the owning group's queue runs dry the scheduler
  keeps the device idle for a short window hoping for more I/O from the
  same group. Required for prioritization, but it wastes device time and
  destabilizes bandwidth (§IV-B). The paper disables it for the overhead
  study (§V); scenarios control it via ``slice_idle_us``;
* a heavyweight serialized dispatch section (~5.5 us/request) capping
  bandwidth around 0.7 GiB/s of 4 KiB I/O on one device (O2);
* io.prio.class hints are ignored across cgroups, as the paper notes.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Optional

from repro.iocontrol.base import IoScheduler
from repro.iocontrol.mq_deadline import affinity_strength, group_affinity_unit
from repro.iorequest import IoRequest


class _BfqGroupQueue:
    """Per-cgroup service queue with virtual-time bookkeeping."""

    __slots__ = ("path", "queue", "vfinish", "in_flight")

    def __init__(self, path: str):
        self.path = path
        self.queue: deque[IoRequest] = deque()
        self.vfinish = 0.0
        self.in_flight = 0


class BfqScheduler(IoScheduler):
    """Budget fair queueing with slice idling."""

    name = "bfq"
    lock_overhead_us = 5.5

    def __init__(
        self,
        weight_of: Callable[[str], float],
        slice_idle_us: float = 2_000.0,
        slice_budget_bytes: int = 1024 * 1024,
        slice_timeout_us: float = 25_000.0,
        affinity_sigma: float = 0.0,
    ):
        """``weight_of(cgroup_path)`` resolves the group's relative weight.

        ``affinity_sigma`` enables the lock-affinity skew under deep
        group contention (see :mod:`repro.iocontrol.mq_deadline`): a
        group's virtual-time charge is scaled by its affinity factor, so
        fairness degrades once many groups contend (O3).
        """
        if slice_budget_bytes <= 0 or slice_timeout_us <= 0:
            raise ValueError("slice budget and timeout must be positive")
        self.weight_of = weight_of
        self.slice_idle_us = slice_idle_us
        self.slice_budget_bytes = slice_budget_bytes
        self.slice_timeout_us = slice_timeout_us
        self.affinity_sigma = affinity_sigma
        self._affinity_cache: dict[str, float] = {}
        self._groups: dict[str, _BfqGroupQueue] = {}
        self._queued = 0
        self._active: Optional[_BfqGroupQueue] = None
        self._slice_start = 0.0
        self._slice_used_bytes = 0
        self._idle_deadline: Optional[float] = None
        self._vtime = 0.0

    def _group(self, path: str) -> _BfqGroupQueue:
        group = self._groups.get(path)
        if group is None:
            group = _BfqGroupQueue(path)
            group.vfinish = self._vtime
            self._groups[path] = group
        return group

    def add(self, req: IoRequest) -> None:
        group = self._group(req.cgroup_path)
        if not group.queue and group is not self._active:
            # A newly backlogged group re-enters at the system virtual
            # time: it may not bank credit while idle, but keeps any
            # accumulated debt (standard WFQ clamping).
            group.vfinish = max(group.vfinish, self._vtime)
        group.queue.append(req)
        self._queued += 1
        if group is self._active:
            # New I/O from the slice owner cancels idling.
            self._idle_deadline = None

    # ------------------------------------------------------------------
    # Slice management
    # ------------------------------------------------------------------
    def _expire_active(self) -> None:
        self._active = None
        self._idle_deadline = None
        self._slice_used_bytes = 0

    def _select_next(self, now: float) -> Optional[_BfqGroupQueue]:
        candidates = [group for group in self._groups.values() if group.queue]
        if not candidates:
            return None
        best = min(candidates, key=lambda group: group.vfinish)
        # System virtual time follows the minimum backlogged vfinish.
        self._vtime = max(self._vtime, best.vfinish)
        self._active = best
        self._slice_start = now
        self._slice_used_bytes = 0
        self._idle_deadline = None
        return best

    def pop(self, now: float) -> tuple[Optional[IoRequest], Optional[float]]:
        active = self._active
        if active is not None:
            over_budget = self._slice_used_bytes >= self.slice_budget_bytes
            timed_out = now - self._slice_start >= self.slice_timeout_us
            if over_budget or timed_out:
                self._expire_active()
                active = None
        if active is not None and not active.queue:
            if self.slice_idle_us > 0:
                if self._idle_deadline is None:
                    self._idle_deadline = now + self.slice_idle_us
                if now < self._idle_deadline:
                    # Keep the device idle, hoping the owner sends more.
                    return None, self._idle_deadline
            self._expire_active()
            active = None
        if active is None:
            active = self._select_next(now)
            if active is None:
                return None, None
        req = active.queue.popleft()
        self._queued -= 1
        weight = max(self.weight_of(active.path), 1e-9)
        active.vfinish += req.size / weight * self._charge_bias(active.path)
        self._slice_used_bytes += req.size
        active.in_flight += 1
        return req, None

    def _charge_bias(self, path: str) -> float:
        """Lock-affinity charge multiplier under deep group contention."""
        if self.affinity_sigma <= 0:
            return 1.0
        strength = affinity_strength(len(self._groups))
        if strength <= 0:
            return 1.0
        bias = self._affinity_cache.get(path)
        if bias is None:
            bias = math.exp(self.affinity_sigma * group_affinity_unit(path))
            self._affinity_cache[path] = bias
        return bias**strength

    def on_complete(self, req: IoRequest) -> None:
        group = self._groups.get(req.cgroup_path)
        if group is not None and group.in_flight > 0:
            group.in_flight -= 1

    def queued(self) -> int:
        return self._queued

    def snapshot(self) -> dict[str, float]:
        """Slice-owner and per-group backlog state for the sampler."""
        row: dict[str, float] = {
            "queued": float(self.queued()),
            "slice_used_bytes": float(self._slice_used_bytes),
            "idling": 1.0 if self._idle_deadline is not None else 0.0,
        }
        for path, group in self._groups.items():
            row[f"group.{path}.queued"] = float(len(group.queue))
            row[f"group.{path}.in_flight"] = float(group.in_flight)
            row[f"group.{path}.active"] = 1.0 if group is self._active else 0.0
        return row
