"""Golden regression for the D9 surrogate-vs-pure tuning study.

Mirrors ``test_d8_golden.py``: the ``mini`` study (the ``isol-bench d9
--mini`` configuration) runs cold in tier-1 against
``tests/data/d9_mini_golden.json``; the same module-scoped run doubles
as the warm-cache proof (re-evaluating against the populated cache must
execute zero scenarios) and the determinism bar (a 2-worker spawned
sweep reproduces the study bit-identically).

The *headline structure* is compared exactly — per-knob meets-or-beats
verdicts, arm call counts, pool widths, and the winning labels.
Dimensionful numbers (violation totals, MAE) carry tolerances that only
absorb deliberate small re-calibrations.

Regenerate after an intentional simulator change::

    PYTHONPATH=src python -m tests.integration.test_d9_golden
"""

import json
import pathlib

import pytest

from repro.core.d9_surrogate import evaluate_surrogate_study, mini_settings
from repro.exec import ResultCache, SweepExecutor

DATA_DIR = pathlib.Path(__file__).parent.parent / "data"
MINI_GOLDEN = DATA_DIR / "d9_mini_golden.json"

#: Relative tolerance for dimensionful cells (violation totals, MAE us).
REL_TOL = 0.5
#: Absolute slack for near-zero violation totals.
ATOL = 0.05


def assert_row_close(got: dict, want: dict, context: str) -> None:
    # Structure is exact: verdicts, budgets, pool width, labels.
    for name in ("knob", "meets_or_beats", "train_calls", "scored", "verified"):
        assert got[name] == want[name], f"{context}.{name}"
    for arm in ("pure", "surrogate"):
        assert got[arm]["calls"] == want[arm]["calls"], f"{context}.{arm}.calls"
        assert got[arm]["meets_slo"] == want[arm]["meets_slo"], (
            f"{context}.{arm}.meets_slo"
        )
        assert got[arm]["best_total"] == pytest.approx(
            want[arm]["best_total"], rel=REL_TOL, abs=ATOL
        ), f"{context}.{arm}.best_total"
    assert got["mae_p99_us"] == pytest.approx(
        want["mae_p99_us"], rel=REL_TOL, abs=25.0
    ), f"{context}.mae_p99_us"


def assert_matches_golden(report, golden_path: pathlib.Path) -> None:
    golden = json.loads(golden_path.read_text())
    doc = report.to_json_dict()
    assert doc["slo"] == golden["slo"]
    assert doc["budget"] == golden["budget"]
    assert doc["train_budget"] == golden["train_budget"]
    assert doc["pool_factor"] == golden["pool_factor"]
    assert doc["meets_or_beats_all"] == golden["meets_or_beats_all"]
    assert sorted(doc["rows"]) == sorted(golden["rows"])
    for knob, expected in golden["rows"].items():
        assert_row_close(doc["rows"][knob], expected, knob)


@pytest.fixture(scope="module")
def mini_run(tmp_path_factory):
    """One cold mini study against a fresh cache."""
    cache_dir = tmp_path_factory.mktemp("d9-cache")
    with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as executor:
        report = evaluate_surrogate_study(mini_settings(), executor=executor)
        stats = executor.stats
    # Some hits happen even cold: the arms re-submit shared labels (the
    # anchor default, training points the search pool re-proposes).
    assert stats.executed > 0
    return report, cache_dir, stats


class TestMiniStudy:
    def test_matches_golden(self, mini_run):
        report, _, _ = mini_run
        assert_matches_golden(report, MINI_GOLDEN)

    def test_surrogate_meets_or_beats_pure_everywhere(self, mini_run):
        """The acceptance bar: budget for budget, the surrogate arm never
        finds a worse configuration than pure search."""
        report, _, _ = mini_run
        assert report.meets_or_beats_all(), report.render()

    def test_budget_for_budget_accounting(self, mini_run):
        """Both arms submit exactly the same number of scenarios, and the
        surrogate arm considers >= 10x more candidates for that budget."""
        report, _, _ = mini_run
        for row in report.rows:
            assert row.pure.calls == row.surrogate.calls == report.budget
            assert row.widening >= 10.0, (
                f"{row.knob}: widening {row.widening:.1f}x < 10x"
            )

    def test_training_fit_is_trustworthy(self, mini_run):
        """The model must actually rank its own training corpus: p99
        spearman >= 0.8 on every knob's training fit."""
        report, _, _ = mini_run
        for row in report.rows:
            assert row.fit["p99_us"]["spearman"] >= 0.8, (
                f"{row.knob}: train p99 spearman "
                f"{row.fit['p99_us']['spearman']:.2f}"
            )

    def test_warm_cache_executes_zero_scenarios(self, mini_run):
        report, cache_dir, cold_stats = mini_run
        with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as warm:
            rerun = evaluate_surrogate_study(mini_settings(), executor=warm)
            assert warm.stats.executed == 0
            assert warm.stats.failed == 0
            assert warm.stats.cached == cold_stats.executed + cold_stats.cached
        assert rerun.render() == report.render()
        assert rerun.to_json_dict() == report.to_json_dict()

    def test_two_worker_sweep_bit_identical_to_serial(self, mini_run):
        """The determinism bar: --workers 2 vs serial, uncached."""
        report, _, _ = mini_run
        with SweepExecutor(max_workers=2) as pool:
            parallel = evaluate_surrogate_study(mini_settings(), executor=pool)
            assert pool.stats.executed > 0  # genuinely recomputed
        assert parallel.to_json_dict() == report.to_json_dict()
        assert parallel.render() == report.render()


def _regenerate() -> None:
    report = evaluate_surrogate_study(mini_settings())
    MINI_GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    MINI_GOLDEN.write_text(
        json.dumps(report.to_json_dict(), indent=2, sort_keys=True) + "\n"
    )
    print(report.render())
    print(f"wrote {MINI_GOLDEN}")


if __name__ == "__main__":
    _regenerate()
