"""Placement evaluation: measured per-device scores and knob configs.

A :class:`~repro.fleet.placement.Placement` is judged on *predicted*
violations; this module measures what the placement actually delivers.
Every occupied device becomes one single-device scenario (its resident
tenants' workloads co-located), and devices where cgroup I/O control
can help — at least two residents, at least one p99 objective — are
additionally handed to :func:`repro.tune.advisor.advise`, which
searches the configured knob spaces per device and reports the best
knob *configuration* alongside the assignment (placement says *where*,
tuning says *how*; the paper's Table I per device).

The fleet-wide **SLO-violation score** is the sum of every device's
best measured score plus an eviction penalty per unplaced tenant
(:func:`~repro.fleet.placement.eviction_penalty`) — the scalar
``isol-bench place`` compares strategies on. Lower is better; 0 means
every placed tenant meets its SLO and nobody was evicted.

Cache behaviour: single-resident and pair devices render the *exact*
solo/pair scenarios the interference matrix already ran, so evaluating
a placement against a warm cache re-executes nothing for untuned
devices; tuned devices add one advisor search per knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import NoneKnob, Scenario
from repro.core.report import render_table
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.fleet.interference import (
    InterferenceMatrix,
    MatrixSettings,
    MINI_MATRIX,
    QUICK_MATRIX,
    pair_scenario,
    solo_scenario,
)
from repro.fleet.placement import Placement, eviction_penalty
from repro.fleet.spec import FleetSpec
from repro.tune.advisor import advise
from repro.tune.evaluator import TuneEvaluator
from repro.tune.slo import SloScore, SloSpec, score_summary
from repro.tune.space import TUNABLE_KNOBS, build_space


@dataclass(frozen=True)
class PlacementSettings:
    """Effort level for placement evaluation (measurement + tuning)."""

    #: Timeline/scale of every measurement scenario (shared with the
    #: interference matrix, so solo/pair runs hit the same cache keys).
    matrix: MatrixSettings = field(default_factory=MatrixSettings)
    #: Knob spaces the per-device advisor searches.
    tune_knobs: tuple[str, ...] = ("io.max", "io.latency")
    #: Per-knob advisor evaluation budget.
    budget: int = 8
    #: Search strategy ("auto" defers to each space's default).
    search_strategy: str = "auto"
    #: Host cores for every scenario.
    cores: int = 10

    def __post_init__(self) -> None:
        unknown = set(self.tune_knobs) - set(TUNABLE_KNOBS)
        if unknown:
            raise ValueError(
                f"unknown knobs {sorted(unknown)}; options: {TUNABLE_KNOBS}"
            )
        if self.budget < 1:
            raise ValueError("budget must be >= 1")


def mini_settings() -> PlacementSettings:
    """The ``place --mini`` effort level: seconds of wall time."""
    return PlacementSettings(matrix=MINI_MATRIX, tune_knobs=("io.max",), budget=3)


def quick_settings() -> PlacementSettings:
    """The ``place --quick`` effort level: CI-friendly fidelity."""
    return PlacementSettings(
        matrix=QUICK_MATRIX, tune_knobs=("io.max", "io.latency"), budget=4
    )


def device_scenario(
    fleet: FleetSpec, residents: tuple[str, ...], settings: MatrixSettings
) -> Scenario:
    """The untuned measurement scenario for one device's residents.

    Residents are normalized to tenant declaration order, and one- and
    two-resident devices reuse the matrix's solo/pair scenario builders
    verbatim — identical content, identical cache key, zero re-runs
    against a warm matrix cache.
    """
    ordered = tuple(
        name for name in fleet.tenant_names() if name in residents
    )
    if not ordered:
        raise ValueError("cannot build a scenario for an empty device")
    if len(ordered) == 1:
        return solo_scenario(fleet, fleet.tenant(ordered[0]), settings)
    if len(ordered) == 2:
        return pair_scenario(
            fleet, fleet.tenant(ordered[0]), fleet.tenant(ordered[1]), settings
        )
    return Scenario(
        name=f"fleet-{fleet.name}-dev-{'+'.join(ordered)}",
        knob=NoneKnob(),
        apps=[fleet.tenant(name).job_spec() for name in ordered],
        ssd_model=fleet.ssd_model(),
        duration_s=settings.duration_s,
        warmup_s=settings.warmup_s,
        seed=settings.seed,
        device_scale=settings.device_scale,
    )


def device_slo(fleet: FleetSpec, residents: tuple[str, ...]) -> SloSpec | None:
    """The SLO spec covering one device's residents; None if no objectives."""
    groups = tuple(
        group
        for group in (fleet.tenant(name).group_slo() for name in residents)
        if group is not None
    )
    return SloSpec(groups=groups) if groups else None


def _tuning_groups(
    fleet: FleetSpec,
    matrix: InterferenceMatrix,
    residents: tuple[str, ...],
) -> tuple[str, str] | None:
    """Pick the (priority, best-effort) cgroups for a device's tuner.

    The priority group belongs to the resident with the tightest p99
    ceiling; the best-effort group to the co-resident with the largest
    solo bandwidth demand (the aggressor worth throttling). Returns None
    when the device cannot benefit from tuning: fewer than two
    residents, or no p99 objective to protect.
    """
    if len(residents) < 2:
        return None
    with_p99 = [
        (fleet.tenant(name).p99_target_us, name)
        for name in residents
        if fleet.tenant(name).p99_target_us is not None
    ]
    if not with_p99:
        return None
    priority = min(with_p99)[1]
    others = [name for name in residents if name != priority]
    be = max(others, key=lambda name: (matrix.solo[name].bandwidth_mib_s, name))
    return fleet.tenant(priority).cgroup, fleet.tenant(be).cgroup


@dataclass
class DeviceEvaluation:
    """One device's measured outcome: residents, knob config, score."""

    #: Device slot name.
    slot: str
    #: Residents, in tenant declaration order.
    tenants: tuple[str, ...]
    #: Knob the device ends up running ("none" when untuned).
    knob: str
    #: Sysfs-flavoured rendering of the knob configuration ("" if none).
    settings: str
    #: Measured SLO score; None for devices with no objectives.
    score: SloScore | None
    #: True when the advisor searched this device's knob spaces.
    tuned: bool = False

    @property
    def total(self) -> float:
        """The device's contribution to the fleet score."""
        return self.score.total if self.score is not None else 0.0

    def to_json_dict(self) -> dict:
        """Plain-dict form for reports and goldens."""
        return {
            "slot": self.slot,
            "tenants": list(self.tenants),
            "knob": self.knob,
            "settings": self.settings,
            "tuned": self.tuned,
            "score": self.score.to_json_dict() if self.score else None,
            "total": self.total,
        }


@dataclass
class PlacementReport:
    """One strategy's full outcome: assignment, knobs, fleet score."""

    placement: Placement
    devices: list[DeviceEvaluation]
    #: Summed eviction penalties (part of the fleet score).
    eviction_total: float = 0.0

    @property
    def fleet_score(self) -> float:
        """The fleet-wide SLO-violation score (lower is better)."""
        return sum(device.total for device in self.devices) + self.eviction_total

    @property
    def meets_slo(self) -> bool:
        """True when every device meets its SLO and nobody was evicted."""
        return self.fleet_score == 0.0

    def to_json_dict(self) -> dict:
        """Plain-dict form for goldens and the CLI's ``--json`` output."""
        return {
            "strategy": self.placement.strategy,
            "placement": self.placement.to_json_dict(),
            "devices": [device.to_json_dict() for device in self.devices],
            "eviction_total": self.eviction_total,
            "fleet_score": self.fleet_score,
            "meets_slo": self.meets_slo,
        }

    def render(self) -> str:
        """Per-device text table for one strategy."""
        headers = ("device", "tenants", "knob", "score", "configuration")
        rows = []
        for device in self.devices:
            rows.append(
                (
                    device.slot,
                    "+".join(device.tenants) if device.tenants else "(idle)",
                    device.knob,
                    f"{device.total:.3f}",
                    device.settings or "-",
                )
            )
        for name in self.placement.evicted:
            rows.append((name, "EVICTED", "-", "-", "-"))
        title = (
            f"strategy={self.placement.strategy}  "
            f"fleet score={self.fleet_score:.3f}"
        )
        return render_table(headers, rows, title=title)


def evaluate_placement(
    fleet: FleetSpec,
    placement: Placement,
    matrix: InterferenceMatrix,
    settings: PlacementSettings | None = None,
    executor: SweepExecutor | None = None,
) -> PlacementReport:
    """Measure what a placement delivers, device by device.

    Untuned devices (single resident, or no p99 objective to protect)
    run their co-location scenario once under ``NoneKnob`` and are
    scored directly; tunable devices run one advisor search per knob in
    ``settings.tune_knobs`` and contribute their best *tuned* score plus
    the winning knob configuration. Deterministic at any worker count.
    """
    settings = settings or PlacementSettings()
    runner = resolve_executor(executor)
    ssd = fleet.ssd_model()
    timeline = settings.matrix
    devices: list[DeviceEvaluation] = []

    # Untuned devices batch into one sweep; tuned devices then run
    # their advisor searches (each its own sweep inside advise()).
    plain: list[tuple[str, tuple[str, ...], SloSpec | None]] = []
    tunable: list[tuple[str, tuple[str, ...], SloSpec, tuple[str, str]]] = []
    for slot in fleet.slots():
        residents = tuple(
            name
            for name in fleet.tenant_names()
            if name in placement.residents(slot)
        )
        slo = device_slo(fleet, residents)
        groups = _tuning_groups(fleet, matrix, residents) if slo else None
        if slo is not None and groups is not None:
            tunable.append((slot, residents, slo, groups))
        else:
            plain.append((slot, residents, slo))

    scored = [
        (slot, residents, slo)
        for slot, residents, slo in plain
        if residents and slo is not None
    ]
    summaries = runner.run_strict(
        [
            device_scenario(fleet, residents, timeline)
            for _, residents, _ in scored
        ]
    )
    plain_scores = {
        slot: score_summary(slo, summary, ssd=ssd)
        for (slot, _, slo), summary in zip(scored, summaries)
    }

    for slot, residents, slo in plain:
        devices.append(
            DeviceEvaluation(
                slot=slot,
                tenants=residents,
                knob="none",
                settings="",
                score=plain_scores.get(slot),
                tuned=False,
            )
        )

    for slot, residents, slo, (priority_group, be_group) in tunable:
        apps = [fleet.tenant(name).job_spec() for name in residents]
        searches = []
        for knob_name in settings.tune_knobs:
            space = build_space(
                knob_name,
                ssd,
                device_scale=timeline.device_scale,
                priority_group=priority_group,
                be_group=be_group,
            )
            evaluator = TuneEvaluator(
                space=space,
                slo=slo,
                apps=apps,
                ssd=ssd,
                device_scale=timeline.device_scale,
                duration_s=timeline.duration_s,
                warmup_s=timeline.warmup_s,
                seed=timeline.seed,
                cores=settings.cores,
                executor=executor,
            )
            searches.append((space, evaluator))
        advice = advise(
            searches,
            slo,
            budget=settings.budget,
            strategy=settings.search_strategy,
            seed=timeline.seed,
        )
        winner = advice.recommended()
        devices.append(
            DeviceEvaluation(
                slot=slot,
                tenants=residents,
                knob=winner.knob,
                settings=winner.settings,
                score=winner.best.score,
                tuned=True,
            )
        )

    devices.sort(key=lambda device: device.slot)
    return PlacementReport(
        placement=placement,
        devices=devices,
        eviction_total=sum(
            eviction_penalty(fleet, name) for name in placement.evicted
        ),
    )
