#!/usr/bin/env python3
"""Multi-tenant weighted sharing: gold/silver/bronze service tiers.

A cloud operator sells three storage tiers with 4:2:1 weights. Each tier
runs four throughput-bound tenants in its own cgroup. We compare the two
knobs the paper found capable of weighted fairness -- io.cost+io.weight
and io.max with the naive weight->limit translation -- and show why the
paper calls io.max static: when the gold tier goes idle, io.max strands
its share while io.cost redistributes it (O8 vs work-conserving weights).

Run:  python examples/multi_tenant_fairness.py
"""

import dataclasses

from repro import GIB, IoCostKnob, IoMaxKnob, Scenario, run_scenario
from repro.core.knob_catalog import iomax_limit_for_share
from repro.core.scenarios import FairnessGroupSpec, fairness_specs
from repro.ssd.presets import samsung_980pro_like
from repro.workloads.spec import ActivityWindow

DEVICE_SCALE = 8.0
TIERS = [
    FairnessGroupSpec(path="/tiers/gold", weight=400),
    FairnessGroupSpec(path="/tiers/silver", weight=200),
    FairnessGroupSpec(path="/tiers/bronze", weight=100),
]


def tier_knobs():
    ssd = samsung_980pro_like().scaled(DEVICE_SCALE)
    total = sum(tier.weight for tier in TIERS)
    return {
        "io.cost": IoCostKnob(weights={t.path: t.weight for t in TIERS}),
        "io.max": IoMaxKnob(
            limits={
                t.path: {"rbps": iomax_limit_for_share(t.weight / total, ssd)}
                for t in TIERS
            }
        ),
    }


def run_case(knob_name, knob, gold_stops_at_s=None):
    specs = fairness_specs(TIERS, apps_per_group=4, queue_depth=64)
    if gold_stops_at_s is not None:
        specs = [
            dataclasses.replace(
                spec, windows=(ActivityWindow(0.0, gold_stops_at_s * 1e6),)
            )
            if spec.cgroup_path == "/tiers/gold"
            else spec
            for spec in specs
        ]
    scenario = Scenario(
        name=f"tiers-{knob_name}",
        knob=knob,
        apps=specs,
        duration_s=1.0,
        warmup_s=0.2,
        device_scale=DEVICE_SCALE,
    )
    return run_scenario(scenario)


def equivalent_gib_s(result, t_start_us, t_end_us):
    """Aggregate full-speed-equivalent bandwidth over a sub-window."""
    total_bytes = result.collector.total_bytes(t_start_us, t_end_us)
    seconds = (t_end_us - t_start_us) / 1e6
    return total_bytes / seconds / GIB * DEVICE_SCALE


def main() -> None:
    weights = {t.path: float(t.weight) for t in TIERS}

    print("=== all tiers active ===")
    for name, knob in tier_knobs().items():
        result = run_case(name, knob)
        shares = "  ".join(
            f"{path.rsplit('/', 1)[-1]}={stats.bandwidth_mib_s * DEVICE_SCALE:6.0f}MiB/s"
            for path, stats in sorted(result.cgroup_stats().items())
        )
        print(
            f"{name:<8s} {shares}  J={result.fairness(weights):.3f} "
            f"total={result.equivalent_bandwidth_gib_s:.2f}GiB/s"
        )

    print("\n=== gold tier stops at t=0.5s (work-conservation test) ===")
    for name, knob in tier_knobs().items():
        result = run_case(name, knob, gold_stops_at_s=0.5)
        after = equivalent_gib_s(result, 0.6e6, 1.0e6)
        print(f"{name:<8s} total bandwidth after gold left = {after:.2f} GiB/s")
    print(
        "\nio.max keeps silver+bronze at their static caps (gold's share"
        "\nis stranded); io.cost's weight sharing redistributes it."
    )


if __name__ == "__main__":
    main()
