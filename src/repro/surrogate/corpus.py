"""Training corpora from the ``.isolbench-cache/`` result store.

Every sweep the executor runs leaves ``(Scenario, ScenarioSummary)``
pairs behind in the content-addressed cache -- free training data. This
module turns them into the ``(X, y)`` matrices
:func:`~repro.surrogate.model.fit_surrogate` consumes: one row per
``(scenario, cgroup)`` with features from
:mod:`repro.surrogate.features` and full-speed
``(p99_us, bandwidth_mib_s, util)`` targets.

Loading is **defensive and deterministic**: entries are read in sorted
path order (so identical cache contents produce identical corpora,
hence bit-identical refits), and anything unusable is *counted and
skipped*, never fatal -- truncated gzip, pickle garbage, pre-v4 schema
versions, and entries written before the cache stored scenarios (see
:meth:`repro.exec.cache.ResultCache.put`) all become
:class:`CorpusStats` counters.
"""

from __future__ import annotations

import gzip
import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import Scenario
from repro.exec.cache import ResultCache
from repro.exec.cachekey import SCHEMA_VERSION
from repro.exec.summary import ScenarioSummary
from repro.surrogate.features import (
    FEATURE_SCHEMA_VERSION,
    TARGET_NAMES,
    feature_names,
    featurize,
    scenario_cgroups,
    targets_from_summary,
    utilization_reference_mib_s,
)

#: Fewest rows ``--surrogate=auto`` will fit on; below this the tuner
#: falls back to pure-simulator search with an explicit notice.
MIN_CORPUS_ROWS = 32


@dataclass
class CorpusStats:
    """What the loader saw: usable rows and every skip, by cause."""

    #: Cache entry files inspected.
    entries_seen: int = 0
    #: Entries that contributed at least one training row.
    entries_loaded: int = 0
    #: Unreadable files (truncated gzip, pickle garbage, not a dict).
    skipped_corrupt: int = 0
    #: Entries with a non-current cache schema version (pre-v4 etc.).
    skipped_schema: int = 0
    #: Valid entries written before scenarios were stored alongside
    #: summaries (they cache fine but cannot be featurized).
    skipped_no_scenario: int = 0
    #: Entries whose scenario or summary failed featurization.
    skipped_unfeaturizable: int = 0

    @property
    def skipped(self) -> int:
        """Total entries skipped for any reason."""
        return (
            self.skipped_corrupt
            + self.skipped_schema
            + self.skipped_no_scenario
            + self.skipped_unfeaturizable
        )

    def __str__(self) -> str:
        parts = [f"{self.entries_loaded}/{self.entries_seen} entries loaded"]
        if self.skipped:
            parts.append(
                f"skipped {self.skipped} "
                f"(corrupt={self.skipped_corrupt} schema={self.skipped_schema} "
                f"no-scenario={self.skipped_no_scenario} "
                f"unfeaturizable={self.skipped_unfeaturizable})"
            )
        return ", ".join(parts)

    def to_json_dict(self) -> dict:
        """Plain-dict form for reports."""
        return {
            "entries_seen": self.entries_seen,
            "entries_loaded": self.entries_loaded,
            "skipped_corrupt": self.skipped_corrupt,
            "skipped_schema": self.skipped_schema,
            "skipped_no_scenario": self.skipped_no_scenario,
            "skipped_unfeaturizable": self.skipped_unfeaturizable,
        }


@dataclass(frozen=True)
class CorpusRow:
    """One training example: a ``(scenario, cgroup)`` pair."""

    #: The source scenario's name (provenance; not a feature).
    scenario_name: str
    #: The cgroup the targets describe.
    cgroup: str
    #: Feature vector in :func:`~repro.surrogate.features.feature_names`
    #: order.
    features: tuple[float, ...]
    #: ``(p99_us, bandwidth_mib_s, util)`` at full device speed.
    targets: tuple[float, float, float]


@dataclass
class Corpus:
    """An ordered, reproducible training set with load provenance."""

    #: Feature-encoding version of every row.
    feature_schema_version: int = FEATURE_SCHEMA_VERSION
    #: Column names (order contract with the model).
    feature_names: tuple[str, ...] = field(default_factory=feature_names)
    #: Training rows in deterministic (sorted-entry, sorted-cgroup) order.
    rows: list[CorpusRow] = field(default_factory=list)
    #: Loader counters.
    stats: CorpusStats = field(default_factory=CorpusStats)

    @property
    def n_rows(self) -> int:
        """Number of training rows."""
        return len(self.rows)

    def matrices(self):
        """The ``(X, y)`` numpy training matrices."""
        import numpy as np

        if not self.rows:
            return (
                np.empty((0, len(self.feature_names))),
                np.empty((0, len(TARGET_NAMES))),
            )
        X = np.asarray([row.features for row in self.rows], dtype=float)
        y = np.asarray([row.targets for row in self.rows], dtype=float)
        return X, y

    def digest(self) -> str:
        """SHA-256 over the full row content (corpus identity)."""
        hasher = hashlib.sha256()
        for row in self.rows:
            hasher.update(
                repr(
                    (row.scenario_name, row.cgroup, row.features, row.targets)
                ).encode()
            )
        return hasher.hexdigest()

    def extend_from_pair(self, scenario: Scenario, summary: ScenarioSummary) -> int:
        """Append one run's rows (one per cgroup); returns rows added."""
        reference = utilization_reference_mib_s(scenario)
        added = 0
        for cgroup in scenario_cgroups(scenario):
            features = tuple(featurize(scenario, cgroup))
            targets = targets_from_summary(summary, cgroup, reference)
            self.rows.append(
                CorpusRow(
                    scenario_name=scenario.name,
                    cgroup=cgroup,
                    features=features,
                    targets=targets,
                )
            )
            added += 1
        return added


def read_entry(path: Path) -> tuple[str, Scenario | None, ScenarioSummary | None]:
    """Classify one cache entry file for corpus loading.

    Returns ``(status, scenario, summary)`` where status is one of
    ``ok`` / ``corrupt`` / ``schema`` / ``no_scenario``. Unlike
    :meth:`~repro.exec.cache.ResultCache.get`, this never unlinks
    anything -- the corpus is a read-only consumer of the cache.
    """
    try:
        with gzip.open(path, "rb") as fh:
            entry = pickle.load(fh)
        if not isinstance(entry, dict) or not isinstance(
            entry.get("summary"), ScenarioSummary
        ):
            return "corrupt", None, None
    except Exception:
        return "corrupt", None, None
    if entry.get("schema_version") != SCHEMA_VERSION:
        return "schema", None, None
    scenario = entry.get("scenario")
    if not isinstance(scenario, Scenario):
        return "no_scenario", None, None
    return "ok", scenario, entry["summary"]


def load_corpus(cache_dir: Path | str | None = None) -> Corpus:
    """Load every usable cache entry into a corpus, sorted and counted.

    ``cache_dir`` defaults to the ambient cache location
    (:func:`~repro.exec.cache.default_cache_dir`). Entries are visited
    in sorted path order; unusable ones increment the matching
    :class:`CorpusStats` counter and are skipped, never fatal.
    """
    cache = ResultCache(Path(cache_dir)) if cache_dir is not None else ResultCache()
    corpus = Corpus()
    for path in cache.entries():
        corpus.stats.entries_seen += 1
        status, scenario, summary = read_entry(path)
        if status == "corrupt":
            corpus.stats.skipped_corrupt += 1
            continue
        if status == "schema":
            corpus.stats.skipped_schema += 1
            continue
        if status == "no_scenario":
            corpus.stats.skipped_no_scenario += 1
            continue
        try:
            corpus.extend_from_pair(scenario, summary)
        except Exception:
            corpus.stats.skipped_unfeaturizable += 1
            continue
        corpus.stats.entries_loaded += 1
    return corpus


def holdout_split(corpus: Corpus, every: int = 4) -> tuple[Corpus, Corpus]:
    """Deterministic train/held-out split: every ``every``-th row held out.

    Row order is already deterministic (sorted cache entries, sorted
    cgroups), so the same corpus always yields the same split -- the
    ``isol-bench surrogate eval`` command relies on this to report
    reproducible held-out error.
    """
    if every < 2:
        raise ValueError(f"every must be >= 2, got {every}")
    train = Corpus(
        feature_schema_version=corpus.feature_schema_version,
        feature_names=corpus.feature_names,
    )
    held = Corpus(
        feature_schema_version=corpus.feature_schema_version,
        feature_names=corpus.feature_names,
    )
    for i, row in enumerate(corpus.rows):
        (held if i % every == every - 1 else train).rows.append(row)
    return train, held


def corpus_from_pairs(pairs) -> Corpus:
    """Build a corpus from in-hand ``(scenario, summary)`` pairs.

    The D9 study uses this to train on its own sweep without round-
    tripping through a cache directory; rows appear in the order the
    pairs are given (callers pass a deterministic order).
    """
    corpus = Corpus()
    for scenario, summary in pairs:
        corpus.stats.entries_seen += 1
        try:
            corpus.extend_from_pair(scenario, summary)
        except Exception:
            corpus.stats.skipped_unfeaturizable += 1
            continue
        corpus.stats.entries_loaded += 1
    return corpus
