"""Unit tests for the io.latency controller (blk-iolatency)."""

import pytest

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.iocontrol.iolatency import IoLatencyController
from repro.iorequest import IoRequest, KIB, OpType, Pattern
from repro.sim.engine import Simulator

DEV = "259:0"
WINDOW = IoLatencyController.WINDOW_US


@pytest.fixture
def env():
    sim = Simulator()
    tree = CgroupHierarchy()
    tree.create("/t/prio", processes=True)
    tree.create("/t/be", processes=True)
    tree.find("/t/prio").write("io.latency", f"{DEV} target=100")
    controller = IoLatencyController(sim, tree, DEV, max_qd=64)
    controller.start()
    return sim, tree, controller


def make_request(cgroup):
    return IoRequest("app", cgroup, OpType.READ, Pattern.RANDOM, 4 * KIB)


def feed_window(sim, controller, cgroup, latency_us, count=20):
    """Simulate ``count`` completions with a given block-layer latency.

    Pipelined: submissions that exceed the group's QD limit wait in the
    controller and are driven by the completions of earlier requests,
    as in the real data path.
    """
    admitted = []
    for _ in range(count):
        controller.submit(make_request(cgroup), lambda r: admitted.append(r))
    completed = 0
    while admitted:
        req = admitted.pop()
        req.queued_time = sim.now - latency_us
        controller.on_complete(req)
        completed += 1
    assert completed == count


class TestAdmission:
    def test_admits_up_to_qd_limit(self, env):
        sim, _, controller = env
        admitted = []
        for _ in range(70):
            controller.submit(make_request("/t/be"), lambda r: admitted.append(r))
        assert len(admitted) == 64  # max_qd

    def test_completion_drains_pending(self, env):
        sim, _, controller = env
        admitted = []
        reqs = [make_request("/t/be") for _ in range(65)]
        for req in reqs:
            controller.submit(req, lambda r: admitted.append(r))
        assert len(admitted) == 64
        reqs[0].queued_time = sim.now
        controller.on_complete(reqs[0])
        assert len(admitted) == 65


class TestThrottling:
    def test_violation_halves_lower_priority_qd(self, env):
        sim, _, controller = env
        feed_window(sim, controller, "/t/prio", latency_us=500.0)  # violated
        feed_window(sim, controller, "/t/be", latency_us=500.0)
        sim.run_until(WINDOW)
        assert controller.qd_limit_of("/t/be") == 32
        # The protected group itself is never throttled.
        assert controller.qd_limit_of("/t/prio") == 64

    def test_qd_halves_once_per_window(self, env):
        sim, _, controller = env
        for window in range(3):
            feed_window(sim, controller, "/t/prio", latency_us=500.0)
            feed_window(sim, controller, "/t/be", latency_us=500.0)
            sim.run_until((window + 1) * WINDOW)
        assert controller.qd_limit_of("/t/be") == 8  # 64 -> 32 -> 16 -> 8

    def test_qd_floor_is_one(self, env):
        sim, _, controller = env
        for window in range(10):
            feed_window(sim, controller, "/t/prio", latency_us=500.0)
            feed_window(sim, controller, "/t/be", latency_us=500.0)
            sim.run_until((window + 1) * WINDOW)
        assert controller.qd_limit_of("/t/be") == 1

    def test_no_violation_means_no_throttling(self, env):
        sim, _, controller = env
        feed_window(sim, controller, "/t/prio", latency_us=50.0)  # under target
        sim.run_until(WINDOW)
        assert controller.qd_limit_of("/t/be") == 64

    def test_few_samples_do_not_trigger(self, env):
        sim, _, controller = env
        feed_window(sim, controller, "/t/prio", latency_us=500.0, count=2)
        sim.run_until(WINDOW)
        assert controller.qd_limit_of("/t/be") == 64

    def test_unthrottle_adds_quarter_of_max(self, env):
        sim, _, controller = env
        feed_window(sim, controller, "/t/prio", latency_us=500.0)
        feed_window(sim, controller, "/t/be", latency_us=500.0)
        sim.run_until(WINDOW)  # be: 32
        feed_window(sim, controller, "/t/prio", latency_us=50.0)
        sim.run_until(2 * WINDOW)
        assert controller.qd_limit_of("/t/be") == min(64, 32 + 64 // 4)


class TestUseDelay:
    def _throttle_to_one(self, sim, controller, windows=8):
        for window in range(windows):
            feed_window(sim, controller, "/t/prio", latency_us=500.0)
            feed_window(sim, controller, "/t/be", latency_us=500.0)
            sim.run_until((window + 1) * WINDOW)

    def test_use_delay_accumulates_at_qd_one(self, env):
        sim, _, controller = env
        self._throttle_to_one(sim, controller, windows=9)
        assert controller.qd_limit_of("/t/be") == 1
        assert controller.use_delay_of("/t/be") >= 2

    def test_use_delay_blocks_recovery(self, env):
        sim, _, controller = env
        self._throttle_to_one(sim, controller, windows=8)
        delay = controller.use_delay_of("/t/be")
        assert delay >= 1
        # One healthy window decrements use_delay but must not raise QD.
        feed_window(sim, controller, "/t/prio", latency_us=50.0)
        sim.run_until(9 * WINDOW)
        assert controller.use_delay_of("/t/be") == delay - 1
        assert controller.qd_limit_of("/t/be") == 1

    def test_recovery_after_use_delay_drains(self, env):
        sim, _, controller = env
        self._throttle_to_one(sim, controller, windows=8)
        windows_needed = controller.use_delay_of("/t/be") + 1
        for extra in range(windows_needed):
            feed_window(sim, controller, "/t/prio", latency_us=50.0)
            sim.run_until((9 + extra) * WINDOW)
        assert controller.qd_limit_of("/t/be") > 1


class TestDefaults:
    def test_unseen_group_reports_max_qd(self, env):
        _, _, controller = env
        assert controller.qd_limit_of("/t/ghost") == 64
        assert controller.use_delay_of("/t/ghost") == 0

    def test_unprotected_group_latency_never_triggers(self, env):
        sim, _, controller = env
        # Only the BE group (no target) sees terrible latency.
        feed_window(sim, controller, "/t/be", latency_us=10_000.0)
        sim.run_until(WINDOW)
        assert controller.qd_limit_of("/t/be") == 64
