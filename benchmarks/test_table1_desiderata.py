"""Table I: the paper's headline desiderata matrix.

Runs reduced versions of every D1-D4 sub-benchmark, scores each knob on
the four desiderata (yes / partial / no) and compares cell-by-cell with
the published Table I.
"""

from conftest import run_once

from repro.core.table_one import TableOneSettings, evaluate_table_one


def test_table1(benchmark, figure_output):
    settings = TableOneSettings(
        duration_s=0.35,
        warmup_s=0.1,
        fairness_duration_s=0.5,
        iolatency_duration_s=8.0,
        burst_duration_s=8.0,
        device_scale=8.0,
        burst_device_scale=16.0,
        sweep_points=5,
    )
    table = run_once(benchmark, lambda: evaluate_table_one(settings))
    matches = table.matches_paper()
    total = sum(matches.values())
    text = (
        table.render()
        + "\n\ncells matching the paper's Table I: "
        + f"{total}/{4 * len(matches)}  ({matches})"
    )
    figure_output("table1_desiderata", text)

    # The headline conclusion must reproduce: io.cost achieves the most
    # desiderata; the schedulers achieve none.
    by_knob = {row.knob: row for row in table.rows}
    yes_counts = {
        knob: sum(1 for cell in row.cells() if cell.symbol == "v")
        for knob, row in by_knob.items()
    }
    assert yes_counts["io.cost"] >= max(
        count for knob, count in yes_counts.items() if knob != "io.cost"
    )
    assert all(cell.symbol == "x" for cell in by_knob["mq-deadline"].cells())
    assert all(cell.symbol == "x" for cell in by_knob["bfq"].cells())
    # Overall agreement with the published table.
    assert total >= 15  # out of 20 cells
