"""Unit tests for surrogate-predicted interference-matrix pairs.

``build_matrix(measure_pairs=k, predictor=...)`` measures only the
first ``k`` tenant pairs and lets the predictor stand in for the rest.
The matrix must stay complete, predicted effects must carry
``predicted=True`` (and say so in JSON), and capping without a
predictor must be an explicit error rather than a silent hole.
"""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.executor import SweepExecutor
from repro.fleet.interference import (
    MINI_MATRIX,
    PairEffect,
    build_matrix,
    matrix_scenarios,
    tenant_pairs,
)
from repro.fleet.spec import demo_fleet
from repro.surrogate.corpus import corpus_from_pairs
from repro.surrogate.filter import fit_from_corpus
from repro.surrogate.model import SurrogateConfig
from repro.surrogate.predictor import SurrogatePairPredictor


@pytest.fixture(scope="module")
def fleet():
    return demo_fleet()


@pytest.fixture(scope="module")
def executor(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("cache"))
    with SweepExecutor(max_workers=1, cache=cache) as ex:
        yield ex


@pytest.fixture(scope="module")
def predictor(fleet, executor):
    """A predictor trained on the fleet's own measurement scenarios."""
    scenarios = matrix_scenarios(fleet, MINI_MATRIX)
    summaries = executor.run_strict(scenarios)
    corpus = corpus_from_pairs(zip(scenarios, summaries))
    model = fit_from_corpus(corpus, config=SurrogateConfig(n_members=2, n_rounds=8))
    return SurrogatePairPredictor(model=model, fleet=fleet, settings=MINI_MATRIX)


class TestPredictorHook:
    def test_capping_without_predictor_is_an_error(self, fleet, executor):
        with pytest.raises(ValueError, match="pass predictor="):
            build_matrix(fleet, MINI_MATRIX, executor=executor, measure_pairs=1)

    def test_predicted_pairs_complete_the_matrix(self, fleet, executor, predictor):
        pairs = tenant_pairs(fleet)
        assert len(pairs) >= 2, "demo fleet must have pairs to predict"
        matrix = build_matrix(
            fleet,
            MINI_MATRIX,
            executor=executor,
            predictor=predictor,
            measure_pairs=1,
        )
        assert predictor.predicted_pairs == len(pairs) - 1
        # Complete: every directional effect present.
        assert len(matrix.effects) == 2 * len(pairs)
        first, second = pairs[0]
        assert not matrix.effects[(first.name, second.name)].predicted
        for a, b in pairs[1:]:
            assert matrix.effects[(a.name, b.name)].predicted
            assert matrix.effects[(b.name, a.name)].predicted

    def test_predicted_effects_respect_measured_clamps(
        self, fleet, executor, predictor
    ):
        matrix = build_matrix(
            fleet,
            MINI_MATRIX,
            executor=executor,
            predictor=predictor,
            measure_pairs=0,
        )
        for effect in matrix.effects.values():
            assert effect.predicted
            assert effect.p99_ratio >= 1.0
            assert 0.0 < effect.bandwidth_retention <= 1.0

    def test_full_measurement_is_unchanged_by_the_hook(
        self, fleet, executor, predictor
    ):
        # predictor present but nothing capped: all effects measured.
        matrix = build_matrix(
            fleet, MINI_MATRIX, executor=executor, predictor=predictor
        )
        assert all(not effect.predicted for effect in matrix.effects.values())


class TestPairEffectSerialization:
    def test_predicted_flag_only_when_true(self):
        measured = PairEffect(
            tenant="a", partner="b", p99_ratio=1.5, bandwidth_retention=0.8
        )
        predicted = PairEffect(
            tenant="a",
            partner="b",
            p99_ratio=1.5,
            bandwidth_retention=0.8,
            predicted=True,
        )
        assert "predicted" not in measured.to_json_dict()
        assert predicted.to_json_dict()["predicted"] is True

    def test_round_trip(self):
        effect = PairEffect(
            tenant="a",
            partner="b",
            p99_ratio=2.0,
            bandwidth_retention=0.5,
            predicted=True,
        )
        assert PairEffect.from_json_dict(effect.to_json_dict()) == effect
