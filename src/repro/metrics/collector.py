"""Per-app completion recording and measurement-window views.

The collector is the simulation's fio output: every completed request is
recorded per app (completion time, latency, size, direction) and windowed
statistics are derived afterwards. Apps also report their cgroup so
results can be aggregated per group (the unit the fairness desideratum
is evaluated at).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iorequest import GIB, MIB, IoRequest, OpType
from repro.metrics.latency import LatencySummary, summarize_latencies


class _AppLog:
    """Completion log of one app."""

    __slots__ = ("cgroup_path", "times", "latencies", "sizes", "ops", "total_bytes")

    def __init__(self, cgroup_path: str):
        self.cgroup_path = cgroup_path
        self.times: list[float] = []
        self.latencies: list[float] = []
        self.sizes: list[int] = []
        self.ops: list[int] = []
        self.total_bytes = 0


@dataclass(frozen=True)
class AppWindowStats:
    """One app's (or group's) statistics over a measurement window."""

    name: str
    cgroup_path: str
    ios: int
    bytes: int
    window_us: float
    latency: LatencySummary | None

    @property
    def bandwidth_mib_s(self) -> float:
        return self.bytes / MIB / (self.window_us / 1e6) if self.window_us > 0 else 0.0

    @property
    def bandwidth_gib_s(self) -> float:
        return self.bytes / GIB / (self.window_us / 1e6) if self.window_us > 0 else 0.0

    @property
    def iops(self) -> float:
        return self.ios / (self.window_us / 1e6) if self.window_us > 0 else 0.0


class MetricsCollector:
    """Records completions for every app in a scenario."""

    def __init__(self) -> None:
        self._logs: dict[str, _AppLog] = {}

    def register_app(self, app_name: str, cgroup_path: str) -> None:
        if app_name in self._logs:
            raise ValueError(f"app {app_name!r} registered twice")
        self._logs[app_name] = _AppLog(cgroup_path)

    def on_complete(self, req: IoRequest) -> None:
        log = self._logs[req.app_name]
        log.times.append(req.complete_time)
        log.latencies.append(req.latency_us)
        log.sizes.append(req.size)
        log.ops.append(int(req.op))
        log.total_bytes += req.size

    # ------------------------------------------------------------------
    # Window views
    # ------------------------------------------------------------------
    def app_names(self) -> list[str]:
        return sorted(self._logs)

    def cgroup_of(self, app_name: str) -> str:
        return self._logs[app_name].cgroup_path

    def window_latencies(self, app_name: str, t_start: float, t_end: float) -> list[float]:
        """Raw latency samples completing within the window."""
        log = self._logs[app_name]
        return [
            lat
            for time, lat in zip(log.times, log.latencies)
            if t_start <= time < t_end
        ]

    def app_stats(self, app_name: str, t_start: float, t_end: float) -> AppWindowStats:
        """Window statistics for one app."""
        log = self._logs[app_name]
        total_bytes = 0
        ios = 0
        latencies: list[float] = []
        for time, lat, size in zip(log.times, log.latencies, log.sizes):
            if t_start <= time < t_end:
                total_bytes += size
                ios += 1
                latencies.append(lat)
        return AppWindowStats(
            name=app_name,
            cgroup_path=log.cgroup_path,
            ios=ios,
            bytes=total_bytes,
            window_us=t_end - t_start,
            latency=summarize_latencies(latencies) if latencies else None,
        )

    def cgroup_stats(self, t_start: float, t_end: float) -> dict[str, AppWindowStats]:
        """Aggregated per-cgroup statistics (the fairness unit)."""
        by_group: dict[str, list[AppWindowStats]] = {}
        for app_name in self._logs:
            stats = self.app_stats(app_name, t_start, t_end)
            by_group.setdefault(stats.cgroup_path, []).append(stats)
        merged: dict[str, AppWindowStats] = {}
        for path, stats_list in by_group.items():
            all_lat: list[float] = []
            for stats in stats_list:
                all_lat.extend(self.window_latencies(stats.name, t_start, t_end))
            merged[path] = AppWindowStats(
                name=path,
                cgroup_path=path,
                ios=sum(s.ios for s in stats_list),
                bytes=sum(s.bytes for s in stats_list),
                window_us=t_end - t_start,
                latency=summarize_latencies(all_lat) if all_lat else None,
            )
        return merged

    def total_bytes(self, t_start: float, t_end: float) -> int:
        """Aggregate bytes completed by all apps in the window."""
        return sum(
            self.app_stats(app_name, t_start, t_end).bytes for app_name in self._logs
        )

    def series_of(self, app_name: str) -> tuple[list[float], list[int]]:
        """Raw (completion_times, sizes) for time-series plotting."""
        log = self._logs[app_name]
        return log.times, log.sizes

    def full_log_of(
        self, app_name: str
    ) -> tuple[list[float], list[float], list[int], list[int]]:
        """Raw (times, latencies, sizes, ops) completion log of one app.

        The export surface for :mod:`repro.exec.summary`: everything the
        collector recorded, in completion order.
        """
        log = self._logs[app_name]
        return log.times, log.latencies, log.sizes, log.ops

    def lifetime_bytes_of_cgroup(self, cgroup_path: str) -> int:
        """Total bytes completed by a cgroup's apps since the start.

        Used by the dynamic io.max manager's activity detection.
        """
        return sum(
            log.total_bytes
            for log in self._logs.values()
            if log.cgroup_path == cgroup_path
        )

    # ------------------------------------------------------------------
    # Observability hooks
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Tee completions into a :class:`~repro.obs.span.RequestTracer`.

        Installed by wrapping :meth:`on_complete` with an instance
        attribute rather than adding a branch to the method, so the
        un-traced hot path stays identical to the seed.
        """
        inner = self.on_complete
        record = tracer.record

        def tapped(req: IoRequest) -> None:
            inner(req)
            record(req)

        self.on_complete = tapped  # type: ignore[method-assign]

    def iostat_cursor(self) -> "_IoStatCursor":
        """Incremental cumulative per-cgroup counters (io.stat lines).

        Each :meth:`_IoStatCursor.advance` call folds only completions
        recorded since the previous call into its running totals, so a
        periodic sampler pays O(new completions) per tick instead of
        rescanning every log.
        """
        return _IoStatCursor(self._logs)


class _IoStatCursor:
    """Running per-cgroup rbytes/wbytes/rios/wios totals."""

    _FIELDS = ("rbytes", "wbytes", "rios", "wios")

    def __init__(self, logs: dict[str, _AppLog]):
        self._logs = logs
        self._offsets: dict[str, int] = {name: 0 for name in logs}
        self._totals: dict[str, list[float]] = {}

    def advance(self) -> dict[str, float]:
        """Fold new completions in; return flat cumulative counters."""
        for app_name, log in self._logs.items():
            offset = self._offsets.get(app_name, 0)
            if offset >= len(log.sizes):
                continue
            totals = self._totals.get(log.cgroup_path)
            if totals is None:
                totals = [0.0, 0.0, 0.0, 0.0]
                self._totals[log.cgroup_path] = totals
            for size, op in zip(log.sizes[offset:], log.ops[offset:]):
                if op == int(OpType.READ):
                    totals[0] += size
                    totals[2] += 1
                else:
                    totals[1] += size
                    totals[3] += 1
            self._offsets[app_name] = len(log.sizes)
        row: dict[str, float] = {}
        for path, totals in self._totals.items():
            for field_name, value in zip(self._FIELDS, totals):
                row[f"cgroup.{path}.{field_name}"] = value
        return row
