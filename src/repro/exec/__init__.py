"""repro.exec: parallel sweep execution with content-addressed caching.

Every paper artifact (Table I, Figs. 2-7, the ablations) is a sweep of
independent :class:`~repro.core.config.Scenario` runs. This package
makes those sweeps scale with cores and survive re-runs:

* :class:`~repro.exec.summary.ScenarioSummary` -- a compact, picklable,
  JSON-able distillation of a run (per-app completion series, CPU
  report, engine counters) that supports every accessor the figure and
  table modules consume, without the live ``Host``;
* :mod:`~repro.exec.cachekey` -- a canonical recursive serialization of
  ``Scenario`` hashed with SHA-256 plus a schema-version salt;
* :class:`~repro.exec.cache.ResultCache` -- a content-addressed on-disk
  store (``.isolbench-cache/``) keyed by that hash;
* :class:`~repro.exec.executor.SweepExecutor` -- fans scenarios over a
  ``ProcessPoolExecutor`` (serial fallback for ``max_workers=1``),
  returns summaries in submission order, captures per-scenario failures
  as :class:`~repro.exec.executor.SweepError`, and reports
  ``k/n done, m cached, events/sec`` progress.
"""

from repro.exec.cache import CacheStats, ResultCache, default_cache_dir
from repro.exec.cachekey import SCHEMA_VERSION, canonical_text, scenario_key
from repro.exec.executor import (
    ExecutorStats,
    SweepError,
    SweepExecutor,
    SweepFailure,
    SweepProgress,
    default_executor,
    resolve_executor,
    set_default_executor,
    use_executor,
)
from repro.exec.summary import AppSeries, ScenarioSummary, run_scenario_summary, summarize

__all__ = [
    "AppSeries",
    "CacheStats",
    "ExecutorStats",
    "resolve_executor",
    "ResultCache",
    "SCHEMA_VERSION",
    "ScenarioSummary",
    "SweepError",
    "SweepExecutor",
    "SweepFailure",
    "SweepProgress",
    "canonical_text",
    "default_cache_dir",
    "default_executor",
    "run_scenario_summary",
    "scenario_key",
    "set_default_executor",
    "summarize",
    "use_executor",
]
