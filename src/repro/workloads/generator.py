"""The closed-loop workload driver (fio's engine loop).

An :class:`App` keeps ``queue_depth`` requests outstanding while inside
an activity window, picks each request's direction from the job's read
fraction, honours the job's rate limit by delaying submissions (fio's
``rate=`` semantics), and stops issuing -- letting in-flight requests
drain -- when a window closes.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Callable, Optional

from repro.iorequest import IoRequest, OpType
from repro.sim.engine import Simulator
from repro.sim.resources import TokenBucket
from repro.workloads.spec import JobSpec

SubmitFn = Callable[[IoRequest], None]


class App:
    """Runtime instance of one job spec."""

    def __init__(
        self,
        sim: Simulator,
        spec: JobSpec,
        submit: SubmitFn,
        rng: random.Random,
        device_index: int = 0,
        prio_class: int = 0,
        arrival_rng: Optional[random.Random] = None,
    ):
        self.sim = sim
        self.spec = spec
        self._submit = submit
        self.rng = rng
        self.device_index = device_index
        self.prio_class = prio_class
        self.outstanding = 0
        self.issued = 0
        # Macro-tick mode draws inter-arrival gaps from a dedicated
        # stream so the op-direction stream (self.rng) is untouched.
        self._arrival_rng = arrival_rng
        self._arrival_carry: dict = {}
        self._bucket: TokenBucket | None = None
        if spec.rate_limit_bps is not None:
            rate_per_us = spec.rate_limit_bps / 1e6
            self._bucket = TokenBucket(rate_per_us, burst=float(spec.size))
        # Always-on jobs (the default single [0, inf) window) skip the
        # window scan on every refill/issue.
        self._always_active = (
            len(spec.windows) == 1
            and spec.windows[0].start_us == 0.0
            and spec.windows[0].stop_us == math.inf
        )

    def start(self) -> None:
        """Arm window-start events."""
        if self.spec.arrival_phases is not None:
            for phase in self.spec.arrival_phases:
                self.sim.schedule_at(
                    phase.start_us, lambda p=phase: self._arrive_phase(p)
                )
        elif self.spec.arrival_rate_iops is not None:
            if self.spec.macro_tick_us is not None:
                for window in self.spec.windows:
                    self.sim.schedule_at(
                        window.start_us, lambda w=window: self._macro_tick(w)
                    )
            else:
                for window in self.spec.windows:
                    self.sim.schedule_at(
                        window.start_us, lambda w=window: self._arrive(w)
                    )
        else:
            for window in self.spec.windows:
                self.sim.schedule_at(window.start_us, self._fill)

    # ------------------------------------------------------------------
    def _active(self) -> bool:
        return self._always_active or self.spec.active_at(self.sim.now)

    def _arrive(self, window) -> None:
        """Open-loop Poisson arrivals, one chain per activity window."""
        if not window.start_us <= self.sim.now < window.stop_us:
            return
        self.outstanding += 1
        self._issue_one()
        gap = self.rng.expovariate(self.spec.arrival_rate_iops / 1e6)
        self.sim.schedule(gap, lambda: self._arrive(window))

    def _arrive_phase(self, phase) -> None:
        """Open-loop Poisson arrivals at a phase's rate, one chain each.

        Identical mechanics to :meth:`_arrive` (same RNG stream, so a
        single-phase job reproduces a constant-rate job bit-for-bit),
        but the rate is the phase's own: each phase of the timeline
        runs its chain inside ``[start_us, stop_us)`` and dies at the
        boundary, where the next phase's chain -- armed at
        :meth:`start` -- takes over at its rate.
        """
        if not phase.start_us <= self.sim.now < phase.stop_us:
            return
        self.outstanding += 1
        self._issue_one()
        gap = self.rng.expovariate(phase.rate_iops / 1e6)
        self.sim.schedule(gap, lambda: self._arrive_phase(phase))

    def _macro_tick(self, window) -> None:
        """Open-loop arrivals, one engine callback per macro tick.

        Every arrival whose (pre-drawn) Poisson timestamp falls inside
        ``[now, now + macro_tick_us)`` is issued together at the tick
        boundary; the residual gap carries into the next tick so the
        long-run arrival rate is exact. Compared to :meth:`_arrive`
        this quantizes submit times to the tick but replaces one engine
        callback per request with one per tick.
        """
        if not window.start_us <= self.sim.now < window.stop_us:
            return
        tick = self.spec.macro_tick_us
        arrival_rng = self._arrival_rng
        if arrival_rng is None:
            arrival_rng = self._arrival_rng = random.Random(
                zlib.crc32(self.spec.name.encode())
            )
        expovariate = arrival_rng.expovariate
        rate_per_us = self.spec.arrival_rate_iops / 1e6
        carry = self._arrival_carry.pop(window, None)
        if carry is None:
            # First tick of this window: draw the gap to its first arrival.
            carry = expovariate(rate_per_us)
        count = 0
        while carry < tick:
            count += 1
            carry += expovariate(rate_per_us)
        self._arrival_carry[window] = carry - tick
        for _ in range(count):
            self.outstanding += 1
            self._issue_one()
        self.sim.schedule(tick, lambda: self._macro_tick(window))

    def _fill(self) -> None:
        """Top the queue back up to the configured depth."""
        queue_depth = self.spec.queue_depth
        bucket = self._bucket
        if bucket is None:
            while self.outstanding < queue_depth and self._active():
                self.outstanding += 1
                self._issue_one()
            return
        size = float(self.spec.size)
        while self._active() and self.outstanding < queue_depth:
            self.outstanding += 1
            delay = bucket.reserve(size, self.sim.now)
            if delay > 0:
                self.sim.schedule(delay, self._issue_one)
            else:
                self._issue_one()

    def _issue_one(self) -> None:
        if not self._active():
            # The window closed while this submission was rate-delayed.
            self.outstanding -= 1
            return
        spec = self.spec
        op = (
            OpType.READ
            if self.rng.random() < spec.read_fraction
            else OpType.WRITE
        )
        req = IoRequest(
            app_name=spec.name,
            cgroup_path=spec.cgroup_path,
            op=op,
            pattern=spec.pattern,
            size=spec.size,
            device_index=self.device_index,
            prio_class=self.prio_class,
        )
        req.submit_time = self.sim.now
        self.issued += 1
        self._submit(req)

    def on_complete(self, req: IoRequest) -> None:
        """Called by the host when one of this app's requests completes."""
        self.outstanding -= 1
        if self.spec.arrival_rate_iops is None and self.spec.arrival_phases is None:
            self._fill()
