"""Latency statistics: percentiles, CDFs, summaries.

The paper evaluates latency "as P99 or as a CDF" (§III); these helpers
are shared by the metrics layer and by the controllers themselves
(io.latency's P90 window check, io.cost's QoS percentiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of ``samples``.

    Raises ``ValueError`` on an empty sample set: callers decide how to
    treat windows with no I/O rather than silently reading 0.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    # This form is monotone and never exceeds ordered[high], unlike the
    # (1-f)*a + f*b form which can overshoot by one ulp.
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def cdf(samples: Sequence[float], points: int = 200) -> tuple[list[float], list[float]]:
    """Empirical CDF resampled at ``points`` evenly spaced probabilities.

    Returns ``(latencies, cumulative_probabilities)`` -- the paper's
    Fig. 3 axes.
    """
    if not samples:
        raise ValueError("cdf of empty sample set")
    if points < 2:
        raise ValueError(f"cdf needs >= 2 points, got {points}")
    probs = [i / (points - 1) for i in range(points)]
    values = [percentile(samples, p * 100.0) for p in probs]
    return values, probs


@dataclass(frozen=True)
class LatencySummary:
    """The latency profile the paper reports per app."""

    count: int
    mean_us: float
    p50_us: float
    p90_us: float
    p95_us: float
    p99_us: float
    max_us: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_us:.1f}us "
            f"p50={self.p50_us:.1f} p90={self.p90_us:.1f} "
            f"p99={self.p99_us:.1f} max={self.max_us:.1f}"
        )


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Build a :class:`LatencySummary`; raises on an empty sample set."""
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean_us=sum(ordered) / len(ordered),
        p50_us=percentile(ordered, 50.0),
        p90_us=percentile(ordered, 90.0),
        p95_us=percentile(ordered, 95.0),
        p99_us=percentile(ordered, 99.0),
        max_us=ordered[-1],
    )
