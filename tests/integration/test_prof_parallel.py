"""Profiler vs the executor: bit-identity and cache/dedup bypass.

Profiling must not perturb results across the strictest process model
(spawned workers), and profiled scenarios must keep their own execution
-- a cache hit or an in-sweep dedup would skip the run that produces
the profile artifact.
"""

import pytest

from repro.core.config import MqDeadlineKnob, Scenario
from repro.exec.cache import ResultCache
from repro.exec.executor import SweepExecutor
from repro.exec.summary import run_scenario_summary
from repro.prof import ProfConfig
from repro.workloads.apps import batch_app, lc_app


def tiny_scenario(prof=None, seed=7) -> Scenario:
    """Same shape as the unit-test scenario: fast, mixed pipeline."""
    return Scenario(
        name="prof-tiny",
        knob=MqDeadlineKnob(classes={"/t/a": "realtime"}),
        apps=[batch_app("a", "/t/a", queue_depth=8), lc_app("b", "/t/b")],
        duration_s=0.05,
        warmup_s=0.01,
        seed=seed,
        device_scale=16.0,
        prof=prof,
    )


def test_profiled_worker_run_bit_identical():
    """Serial unprofiled vs 2-worker-spawn profiled: same summary."""
    serial = run_scenario_summary(tiny_scenario())
    with SweepExecutor(max_workers=2) as executor:
        profiled, also_profiled = executor.run_strict(
            [tiny_scenario(prof=ProfConfig()), tiny_scenario(prof=ProfConfig())]
        )
    assert serial.content_equal(profiled)
    assert serial.content_equal(also_profiled)
    # Identical profiled submissions must NOT dedupe onto one run.
    assert executor.stats.deduped == 0
    assert executor.stats.executed == 2
    # Spawned workers report their busy time back to the coordinator.
    assert executor.stats.busy_seconds > 0
    assert executor.stats.worker_busy
    assert 0 < executor.stats.utilization <= 1


def test_profiled_scenarios_bypass_cache(tmp_path):
    cache = ResultCache(tmp_path)
    with SweepExecutor(max_workers=1, cache=cache) as executor:
        executor.run_strict([tiny_scenario(prof=ProfConfig())])
        executor.run_strict([tiny_scenario(prof=ProfConfig())])
        assert executor.stats.executed == 2
        assert executor.stats.cached == 0
        assert cache.stats.stores == 0
        # The same scenario without prof caches normally.
        executor.run_strict([tiny_scenario()])
        executor.run_strict([tiny_scenario()])
        assert executor.stats.cached == 1


def test_serial_worker_accounting(tmp_path):
    import os

    with SweepExecutor(max_workers=1) as executor:
        executor.run_strict([tiny_scenario(seed=1), tiny_scenario(seed=2)])
    stats = executor.stats
    assert stats.busy_seconds > 0
    assert stats.elapsed_seconds >= stats.busy_seconds * 0.5
    assert list(stats.worker_busy) == [str(os.getpid())]
    assert stats.events_processed > 0
    assert stats.to_json_dict()["utilization"] == pytest.approx(
        stats.utilization
    )
    # Utilization appears in the human-readable stats line.
    assert "util)" in str(stats)


def test_progress_reports_utilization():
    ticks = []
    with SweepExecutor(max_workers=1, progress=ticks.append) as executor:
        executor.run_strict([tiny_scenario(seed=1)])
    final = ticks[-1]
    assert final.workers == 1
    assert final.busy_seconds > 0
    assert 0 < final.utilization <= 1
    assert final.idle_seconds >= 0
    assert "util=" in str(final)
