"""The configuration advisor: rank knobs against an SLO, Table-I style.

:func:`advise` runs one search per candidate knob (each against its own
:class:`~repro.tune.evaluator.TuneEvaluator`), scores every knob's
*untuned default* as the "before" column, and assembles an
:class:`AdvisorReport`: knobs ranked by tuned SLO-violation score, the
winning configuration rendered as concrete sysfs-flavoured settings, and
a machine-readable decision trace (every evaluation the searches
performed, in obs-style self-describing JSONL) for post-hoc audit.

This is the automated counterpart of the paper's hand-derived Table I:
instead of "which knob satisfies which desiderata", the report answers
"which knob -- configured how -- satisfies *your* SLO, and what did it
cost the others".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.report import render_table
from repro.tune.evaluator import Evaluation
from repro.tune.search import SearchOutcome, search
from repro.tune.slo import SloSpec


@dataclass
class KnobAdvice:
    """One knob's row in the advisor report: before, after, and how."""

    #: Knob name (Table I row).
    knob: str
    #: Strategy that searched the knob's space.
    strategy: str
    #: SLO score of the untuned default configuration.
    baseline: Evaluation
    #: Best full-fidelity configuration the search found.
    best: Evaluation
    #: Sysfs-flavoured rendering of the best configuration.
    settings: str
    #: Every evaluation the search performed, in order.
    evaluations: list[Evaluation] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        """True when tuning strictly reduced the SLO-violation score."""
        return self.best.score.total < self.baseline.score.total

    def to_json_dict(self) -> dict:
        """Golden-friendly document for one knob row."""
        return {
            "knob": self.knob,
            "strategy": self.strategy,
            "baseline_score": self.baseline.score.to_json_dict(),
            "tuned_score": self.best.score.to_json_dict(),
            "best_label": self.best.label,
            "best_values": dict(self.best.values),
            "settings": self.settings,
            "improved": self.improved,
            "evaluations": len(self.evaluations),
        }


@dataclass
class AdvisorReport:
    """The full advisor result: ranked knob rows plus provenance."""

    #: The SLO the knobs were tuned against, in ``parse_slo`` syntax.
    slo: str
    #: Per-search evaluation budget that produced the report.
    budget: int
    rows: list[KnobAdvice] = field(default_factory=list)

    def rank(self) -> list[KnobAdvice]:
        """Rows best-first: lowest tuned score, knob-name tie-break."""
        return sorted(self.rows, key=lambda row: (row.best.score.total, row.knob))

    def recommended(self) -> KnobAdvice:
        """The winning row (the advisor's recommendation)."""
        if not self.rows:
            raise ValueError("advisor report has no rows")
        return self.rank()[0]

    def row(self, knob: str) -> KnobAdvice:
        """The row for one knob name."""
        for candidate in self.rows:
            if candidate.knob == knob:
                return candidate
        raise KeyError(f"no advice for knob {knob!r}")

    def render(self) -> str:
        """The Table-I-style text report (the ``isol-bench tune`` output)."""
        headers = ("rank", "knob", "strategy", "untuned", "tuned", "meets SLO", "best configuration")
        rows = []
        for position, row in enumerate(self.rank(), start=1):
            rows.append(
                (
                    position,
                    row.knob,
                    row.strategy,
                    f"{row.baseline.score.total:.3f}",
                    f"{row.best.score.total:.3f}",
                    "yes" if row.best.score.meets_slo else "no",
                    row.best.label,
                )
            )
        table = render_table(headers, rows, title=f"SLO: {self.slo}")
        winner = self.recommended()
        return (
            f"{table}\n\n"
            f"recommended: {winner.knob} ({winner.best.label})\n"
            f"settings:    {winner.settings}"
        )

    def to_json_dict(self) -> dict:
        """Golden-friendly document (insertion order is rank order)."""
        return {
            "slo": self.slo,
            "budget": self.budget,
            "ranking": [row.knob for row in self.rank()],
            "recommended": self.recommended().knob,
            "rows": {row.knob: row.to_json_dict() for row in self.rank()},
        }


def advise(
    searches: list[tuple],
    slo: SloSpec,
    budget: int,
    strategy: str = "auto",
    seed: int = 42,
) -> AdvisorReport:
    """Search every (space, evaluator) pair and rank the knobs.

    ``searches`` pairs each :class:`~repro.tune.space.KnobSpace` with
    the :class:`~repro.tune.evaluator.TuneEvaluator` that runs its
    candidates (one evaluator per space, so per-space evaluation logs
    stay separable). The untuned-default baseline evaluation is *not*
    counted against ``budget`` -- the budget buys search.
    """
    report = AdvisorReport(slo=slo.describe(), budget=budget)
    for space, evaluator in searches:
        baseline = evaluator.evaluate_knob(space.default_knob(), "default")
        outcome: SearchOutcome = search(
            space, evaluator, budget, strategy=strategy, seed=seed
        )
        report.rows.append(
            KnobAdvice(
                knob=space.name,
                strategy=outcome.strategy,
                baseline=baseline,
                best=outcome.best,
                settings=space.render_settings(outcome.best.values),
                evaluations=list(outcome.evaluations),
            )
        )
    return report


def decision_trace_records(report: AdvisorReport) -> list[dict]:
    """The report as obs-style self-describing records (``type`` field).

    One ``advice`` record per knob followed by one ``evaluation`` record
    per candidate the search tried, in evaluation order -- enough to
    replay why the advisor picked what it picked.
    """
    records: list[dict] = [
        {"type": "slo", "spec": report.slo, "budget": report.budget}
    ]
    for row in report.rank():
        records.append({"type": "advice", **row.to_json_dict()})
        for evaluation in row.evaluations:
            records.append(
                {
                    "type": "evaluation",
                    "knob": row.knob,
                    "label": evaluation.label,
                    "values": dict(evaluation.values),
                    "fidelity": evaluation.fidelity,
                    "score": evaluation.score.to_json_dict(),
                }
            )
    return records


def write_decision_trace(report: AdvisorReport, path: str) -> None:
    """Write the decision trace as JSONL (obs export convention)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in decision_trace_records(report):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
