"""Event loop and simulated clock.

The engine is deliberately callback-based rather than coroutine-based:
callback scheduling through a binary heap is the fastest portable way to
run millions of events in pure Python, and the I/O pipeline modelled here
(submit -> throttle -> schedule -> device -> complete) maps naturally onto
chained callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class _Event:
    """A scheduled callback.

    Cancellation is implemented with a flag rather than heap removal:
    removing from the middle of a heap is O(n), flipping a flag is O(1)
    and cancelled events are simply skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], Any]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if already fired)."""
        self.cancelled = True


class Simulator:
    """A discrete-event simulator with a microsecond clock.

    Events scheduled for the same timestamp fire in FIFO scheduling order,
    which keeps runs deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Event] = []
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (useful for perf diagnostics)."""
        return self._events_processed

    def schedule(self, delay_us: float, fn: Callable[[], Any]) -> _Event:
        """Schedule ``fn`` to run ``delay_us`` microseconds from now.

        Returns an event handle whose :meth:`_Event.cancel` prevents firing.
        Negative delays are rejected: an event cannot fire in the past.
        """
        if delay_us < 0:
            raise SimulationError(f"cannot schedule event {delay_us}us in the past")
        event = _Event(self._now + delay_us, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time_us: float, fn: Callable[[], Any]) -> _Event:
        """Schedule ``fn`` at an absolute simulated time."""
        return self.schedule(time_us - self._now, fn)

    def run_until(self, end_time_us: float) -> None:
        """Run events until the clock reaches ``end_time_us``.

        Events scheduled exactly at ``end_time_us`` are executed; the clock
        finishes at ``end_time_us`` even if the heap drains earlier.
        """
        heap = self._heap
        while heap:
            event = heap[0]
            if event.time > end_time_us:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn()
        self._now = max(self._now, end_time_us)

    def run(self) -> None:
        """Run until no events remain."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fn()

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the heap."""
        return sum(1 for event in self._heap if not event.cancelled)
