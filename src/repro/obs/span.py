"""Per-request lifecycle spans and latency attribution.

One :class:`RequestSpan` is recorded per completed request, snapshotting
the timestamps the pipeline already stamps on the request as it moves
submit -> throttle-admit -> scheduler-dispatch -> device-start ->
complete (the same transitions blktrace exposes as Q/G/D/C actions).
The derived attribution splits app-visible latency into three disjoint
components:

* ``held_us``    — submit to throttle admission (cgroup I/O control hold
  plus the per-I/O submission CPU cost);
* ``queued_us``  — admission to scheduler dispatch (scheduler queues and
  the serialized dispatch section);
* ``service_us`` — dispatch to app-visible completion (device boundary
  wait, flash + bus service, completion CPU cost).

The three sum exactly to ``latency_us``, which the observability tests
assert as an invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iorequest import IoRequest, OpType, Pattern


class RequestSpan:
    """Lifecycle record of one completed request."""

    __slots__ = (
        "app",
        "cgroup",
        "op",
        "pattern",
        "size",
        "device_index",
        "submit_us",
        "admit_us",
        "dispatch_us",
        "device_us",
        "complete_us",
    )

    def __init__(
        self,
        app: str,
        cgroup: str,
        op: int,
        pattern: int,
        size: int,
        device_index: int,
        submit_us: float,
        admit_us: float,
        dispatch_us: float,
        device_us: float,
        complete_us: float,
    ):
        self.app = app
        self.cgroup = cgroup
        self.op = op
        self.pattern = pattern
        self.size = size
        self.device_index = device_index
        self.submit_us = submit_us
        self.admit_us = admit_us
        self.dispatch_us = dispatch_us
        self.device_us = device_us
        self.complete_us = complete_us

    # -- derived attribution -------------------------------------------
    @property
    def held_us(self) -> float:
        """Submission to throttle admission (cgroup hold + submit CPU)."""
        return self.admit_us - self.submit_us

    @property
    def queued_us(self) -> float:
        """Throttle admission to scheduler dispatch."""
        return self.dispatch_us - self.admit_us

    @property
    def service_us(self) -> float:
        """Scheduler dispatch to app-visible completion."""
        return self.complete_us - self.dispatch_us

    @property
    def device_wait_us(self) -> float:
        """Dispatch to device start (NVMe queue-bound boundary wait)."""
        return self.device_us - self.dispatch_us

    @property
    def latency_us(self) -> float:
        """End-to-end app-visible latency."""
        return self.complete_us - self.submit_us

    def op_name(self) -> str:
        """Lower-case operation name (``read``/``write``/...)."""
        return OpType(self.op).name.lower()

    def pattern_name(self) -> str:
        """Lower-case access-pattern name (``seq``/``rand``)."""
        return Pattern(self.pattern).name.lower()

    def as_dict(self) -> dict:
        """Flat record used by the JSONL/CSV exporters."""
        return {
            "app": self.app,
            "cgroup": self.cgroup,
            "op": self.op_name(),
            "pattern": self.pattern_name(),
            "size": self.size,
            "device_index": self.device_index,
            "submit_us": self.submit_us,
            "admit_us": self.admit_us,
            "dispatch_us": self.dispatch_us,
            "device_us": self.device_us,
            "complete_us": self.complete_us,
            "held_us": self.held_us,
            "queued_us": self.queued_us,
            "service_us": self.service_us,
            "latency_us": self.latency_us,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "RequestSpan":
        """Rebuild a span from an :meth:`as_dict` record (JSONL/CSV)."""
        return cls(
            app=record["app"],
            cgroup=record["cgroup"],
            op=int(OpType[record["op"].upper()]),
            pattern=int(Pattern[record["pattern"].upper()]),
            size=int(record["size"]),
            device_index=int(record["device_index"]),
            submit_us=float(record["submit_us"]),
            admit_us=float(record["admit_us"]),
            dispatch_us=float(record["dispatch_us"]),
            device_us=float(record["device_us"]),
            complete_us=float(record["complete_us"]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestSpan):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot) for slot in self.__slots__
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestSpan({self.app}, {self.op_name()}, "
            f"submit={self.submit_us:.1f}, latency={self.latency_us:.1f}us)"
        )


@dataclass(frozen=True)
class LatencyAttribution:
    """Summed latency components of one app (or cgroup)."""

    name: str
    ios: int
    held_us: float
    queued_us: float
    service_us: float
    latency_us: float

    @property
    def mean_held_us(self) -> float:
        """Mean per-IO time held by the throttling layer."""
        return self.held_us / self.ios if self.ios else 0.0

    @property
    def mean_queued_us(self) -> float:
        """Mean per-IO time queued in scheduler + device queues."""
        return self.queued_us / self.ios if self.ios else 0.0

    @property
    def mean_service_us(self) -> float:
        """Mean per-IO device service time."""
        return self.service_us / self.ios if self.ios else 0.0

    @property
    def mean_latency_us(self) -> float:
        """Mean end-to-end latency (held + queued + service)."""
        return self.latency_us / self.ios if self.ios else 0.0


class RequestTracer:
    """Accumulates request spans during a traced run.

    The tracer is only instantiated when ``Scenario.trace`` enables
    spans; the collector then *wraps* its completion handler with
    :meth:`record`, so the disabled path carries no extra branch.
    """

    def __init__(self, max_spans: int = 0):
        self.max_spans = max_spans
        self.spans: list[RequestSpan] = []
        self.dropped = 0

    def record(self, req: IoRequest) -> None:
        """Snapshot a completed request's lifecycle timestamps."""
        if self.max_spans and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(
            RequestSpan(
                app=req.app_name,
                cgroup=req.cgroup_path,
                op=int(req.op),
                pattern=int(req.pattern),
                size=req.size,
                device_index=req.device_index,
                submit_us=req.submit_time,
                admit_us=req.queued_time,
                dispatch_us=req.dispatch_time,
                device_us=req.device_start_time,
                complete_us=req.complete_time,
            )
        )

    # -- aggregation ----------------------------------------------------
    def attribution(self, by: str = "app") -> dict[str, LatencyAttribution]:
        """Per-app (or per-cgroup, ``by="cgroup"``) latency attribution."""
        if by not in ("app", "cgroup"):
            raise ValueError(f"attribution key must be 'app' or 'cgroup', got {by!r}")
        sums: dict[str, list[float]] = {}
        for span in self.spans:
            key = span.app if by == "app" else span.cgroup
            acc = sums.get(key)
            if acc is None:
                acc = [0, 0.0, 0.0, 0.0, 0.0]
                sums[key] = acc
            acc[0] += 1
            acc[1] += span.held_us
            acc[2] += span.queued_us
            acc[3] += span.service_us
            acc[4] += span.latency_us
        return {
            key: LatencyAttribution(
                name=key,
                ios=int(acc[0]),
                held_us=acc[1],
                queued_us=acc[2],
                service_us=acc[3],
                latency_us=acc[4],
            )
            for key, acc in sorted(sums.items())
        }
