"""Unit tests for the io.max controller (blk-throttle)."""

import pytest

from repro.cgroups.hierarchy import CgroupHierarchy
from repro.iocontrol.iomax import IoMaxController
from repro.iorequest import IoRequest, KIB, MIB, OpType, Pattern
from repro.sim.engine import Simulator

DEV = "259:0"


@pytest.fixture
def env():
    sim = Simulator()
    tree = CgroupHierarchy()
    tree.create("/tenants/a", processes=True)
    tree.create("/tenants/b", processes=True)
    controller = IoMaxController(sim, tree, DEV)
    return sim, tree, controller


def make_request(cgroup="/tenants/a", op=OpType.READ, size=4 * KIB):
    return IoRequest("app", cgroup, op, Pattern.RANDOM, size)


def submit_and_run(sim, controller, req):
    admitted = []
    controller.submit(req, lambda r: admitted.append(sim.now))
    sim.run()
    return admitted[0]


class TestPassthrough:
    def test_no_limits_admit_immediately(self, env):
        sim, _, controller = env
        assert submit_and_run(sim, controller, make_request()) == 0.0

    def test_unlimited_entry_admits_immediately(self, env):
        sim, tree, controller = env
        tree.find("/tenants/a").write("io.max", f"{DEV} rbps=max")
        assert submit_and_run(sim, controller, make_request()) == 0.0


class TestBandwidthLimits:
    def test_requests_beyond_burst_are_delayed(self, env):
        sim, tree, controller = env
        tree.find("/tenants/a").write("io.max", f"{DEV} rbps={MIB}")
        admitted = []
        # Burst is 10ms worth = ~10.5 KiB; a few 4 KiB pass, then delay.
        for _ in range(10):
            controller.submit(make_request(), lambda r: admitted.append(sim.now))
        sim.run()
        assert admitted[0] == 0.0
        assert admitted[-1] > 0.0

    def test_long_run_rate_respected(self, env):
        sim, tree, controller = env
        tree.find("/tenants/a").write("io.max", f"{DEV} rbps={MIB}")
        admitted = []
        n = 100
        for _ in range(n):
            controller.submit(make_request(), lambda r: admitted.append(sim.now))
        sim.run()
        duration_s = max(admitted) / 1e6
        effective_bps = (n * 4 * KIB - controller._buckets_for(
            tree.find("/tenants/a")
        ).rbps.burst) / duration_s
        assert effective_bps == pytest.approx(MIB, rel=0.15)

    def test_write_limit_independent_of_read(self, env):
        sim, tree, controller = env
        tree.find("/tenants/a").write("io.max", f"{DEV} wbps={MIB}")
        # Reads are unlimited.
        assert submit_and_run(sim, controller, make_request(op=OpType.READ)) == 0.0


class TestIopsLimits:
    def test_iops_limit_delays(self, env):
        sim, tree, controller = env
        tree.find("/tenants/a").write("io.max", f"{DEV} riops=1000")
        admitted = []
        for _ in range(50):
            controller.submit(make_request(), lambda r: admitted.append(sim.now))
        sim.run()
        # 1000 IOPS -> 1 request per ms, burst 10ms = 10 requests.
        assert max(admitted) == pytest.approx(40_000.0, rel=0.1)


class TestHierarchy:
    def test_parent_limit_applies_to_child(self, env):
        sim, tree, controller = env
        tree.find("/tenants").write("io.max", f"{DEV} riops=100")
        admitted = []
        for _ in range(5):
            controller.submit(
                make_request("/tenants/a"), lambda r: admitted.append(sim.now)
            )
            controller.submit(
                make_request("/tenants/b"), lambda r: admitted.append(sim.now)
            )
        sim.run()
        # Shared parent bucket: aggregated rate 100 IOPS after burst 1.
        assert max(admitted) > 0.0

    def test_sibling_limits_are_independent(self, env):
        sim, tree, controller = env
        tree.find("/tenants/a").write("io.max", f"{DEV} riops=1")
        assert submit_and_run(sim, controller, make_request("/tenants/b")) == 0.0

    def test_strictest_of_stacked_limits_wins(self, env):
        sim, tree, controller = env
        tree.find("/tenants").write("io.max", f"{DEV} riops=10")
        tree.find("/tenants/a").write("io.max", f"{DEV} riops=1000000")
        admitted = []
        for _ in range(30):
            controller.submit(make_request(), lambda r: admitted.append(sim.now))
        sim.run()
        # Gated by the parent's 10 IOPS (burst 10ms at 10 IOPS is tiny).
        assert max(admitted) > 1e6


class TestInvalidation:
    def test_invalidate_picks_up_new_limits(self, env):
        sim, tree, controller = env
        assert submit_and_run(sim, controller, make_request()) == 0.0
        tree.find("/tenants/a").write("io.max", f"{DEV} riops=1")
        controller.invalidate()
        admitted = []
        for _ in range(3):
            controller.submit(make_request(), lambda r: admitted.append(sim.now))
        sim.run()
        assert max(admitted) > 0.0
