"""Property-based tests for scheduler invariants."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iocontrol.bfq import BfqScheduler
from repro.iocontrol.mq_deadline import MqDeadlineScheduler
from repro.iocontrol.nonectl import NoneScheduler
from repro.iorequest import IoRequest, KIB, OpType, Pattern

request_strategy = st.tuples(
    st.sampled_from(["/a", "/b", "/c", "/d"]),  # cgroup
    st.sampled_from([0, 1, 2, 3]),  # prio class
    st.sampled_from([4 * KIB, 64 * KIB]),  # size
)


def build_requests(descriptions):
    requests = []
    for i, (cgroup, prio, size) in enumerate(descriptions):
        req = IoRequest(f"app{i}", cgroup, OpType.READ, Pattern.RANDOM, size, prio_class=prio)
        req.queued_time = float(i)
        requests.append(req)
    return requests


def drain(scheduler, now=1e9):
    """Pop until empty, completing each request immediately."""
    popped = []
    for _ in range(10_000):
        req, _ = scheduler.pop(now)
        if req is None:
            break
        popped.append(req)
        scheduler.on_complete(req)
    return popped


class TestConservation:
    """Nothing added to a scheduler is ever lost or duplicated."""

    @given(st.lists(request_strategy, min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_none_scheduler_conserves(self, descriptions):
        scheduler = NoneScheduler()
        requests = build_requests(descriptions)
        for req in requests:
            scheduler.add(req)
        popped = drain(scheduler)
        assert len(popped) == len(requests)
        assert {id(r) for r in popped} == {id(r) for r in requests}

    @given(st.lists(request_strategy, min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_mq_deadline_conserves(self, descriptions):
        scheduler = MqDeadlineScheduler(prio_aging_expire_us=100.0)
        requests = build_requests(descriptions)
        for req in requests:
            scheduler.add(req)
        popped = drain(scheduler)
        assert len(popped) == len(requests)
        assert scheduler.queued() == 0

    @given(st.lists(request_strategy, min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_bfq_conserves(self, descriptions):
        scheduler = BfqScheduler(
            weight_of=lambda path: 100.0, slice_idle_us=0.0
        )
        requests = build_requests(descriptions)
        for req in requests:
            scheduler.add(req)
        popped = drain(scheduler)
        assert len(popped) == len(requests)
        assert scheduler.queued() == 0


class TestWorkConservingWithoutIdling:
    @given(st.lists(request_strategy, min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_bfq_without_slice_idle_always_dispatches(self, descriptions):
        """With idling off, a non-empty BFQ never refuses to dispatch."""
        scheduler = BfqScheduler(weight_of=lambda path: 100.0, slice_idle_us=0.0)
        for req in build_requests(descriptions):
            scheduler.add(req)
        while scheduler.queued():
            req, retry_at = scheduler.pop(0.0)
            assert req is not None
            scheduler.on_complete(req)

    @given(st.lists(request_strategy, min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_mq_deadline_single_class_always_dispatches(self, descriptions):
        """Within one class there is no gating: FIFO must always serve."""
        scheduler = MqDeadlineScheduler()
        requests = build_requests(
            [(cgroup, 2, size) for cgroup, _, size in descriptions]
        )
        for req in requests:
            scheduler.add(req)
        for _ in requests:
            req, _ = scheduler.pop(0.0)
            assert req is not None
            scheduler.on_complete(req)


class TestMqDeadlinePriorityInvariant:
    @given(st.lists(request_strategy, min_size=2, max_size=60))
    @settings(max_examples=60)
    def test_realtime_always_served_before_blocked_lower_classes(self, descriptions):
        """Before any aging, pops never serve class C while a strictly
        higher class has queued requests."""
        scheduler = MqDeadlineScheduler(prio_aging_expire_us=1e12)
        requests = build_requests(descriptions)
        for req in requests:
            scheduler.add(req)
        order = []
        for _ in requests:
            req, _ = scheduler.pop(0.0)
            if req is None:
                break  # lower classes blocked behind in-flight higher ones
            order.append(req)
            scheduler.on_complete(req)

        def effective(req):
            return 2 if req.prio_class == 0 else req.prio_class

        classes = [effective(r) for r in order]
        assert classes == sorted(classes)


class TestBfqProportionality:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30)
    def test_long_run_service_ratio_tracks_weights(self, w_a, w_b):
        weights = {"/a": float(w_a * 100), "/b": float(w_b * 100)}
        scheduler = BfqScheduler(
            weight_of=lambda path: weights[path],
            slice_idle_us=0.0,
            slice_budget_bytes=4 * KIB,
        )
        served = {"/a": 0, "/b": 0}
        # Both groups stay saturated (arrivals exceed service), so the
        # service split is the scheduler's choice, not forced by demand.
        for round_ in range(400):
            for _ in range(2):
                scheduler.add(
                    IoRequest(f"a{round_}", "/a", OpType.READ, Pattern.RANDOM, 4 * KIB)
                )
                scheduler.add(
                    IoRequest(f"b{round_}", "/b", OpType.READ, Pattern.RANDOM, 4 * KIB)
                )
            for _ in range(2):
                req, _ = scheduler.pop(0.0)
                if req is not None:
                    served[req.cgroup_path] += 1
                    scheduler.on_complete(req)
        total = served["/a"] + served["/b"]
        expected_a = w_a / (w_a + w_b)
        measured_a = served["/a"] / total
        assert abs(measured_a - expected_a) < 0.15
