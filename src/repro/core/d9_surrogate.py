"""D9: surrogate-accelerated tuning — is the learned prefilter worth it?

The D6 study buys knob configurations with simulator runs; D9 asks
whether a surrogate model (:mod:`repro.surrogate`) makes each run buy
more. The comparison is budget-for-budget: for every knob, a **pure**
arm searches the space with the knob's default strategy, and a
**surrogate** arm scores a pool ``pool_factor`` times wider with the
model and verifies only the top candidates — both arms submitting the
*same* number of scenarios to the simulator.

The surrogate is trained on its own deterministic sweep (a seeded
per-knob pool disjoint from the search seed), not on whatever happens
to be in the ambient result cache, so the evaluation is reproducible
and golden-pinnable. Each row reports the achieved SLO score of both
arms, whether the surrogate arm met-or-beat the pure arm, and the
model's trust metrics — verified-set p99 MAE and rank correlation plus
per-target training-fit tables — because a prefilter is only useful if
its ranking can be audited.

Everything fans out through the sweep executor, so ``isol-bench d9
--workers N`` parallelizes the training sweeps and verification batches
and reruns hit the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.d6_autotune import default_slo
from repro.core.report import render_table
from repro.core.scenarios import BE_GROUP, PRIORITY_GROUP, robustness_specs
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like
from repro.surrogate import (
    SurrogateConfig,
    SurrogatePrefilter,
    corpus_from_pairs,
    evaluate_model,
    fit_from_corpus,
)
from repro.tune.evaluator import TuneEvaluator
from repro.tune.search import search, surrogate_pool
from repro.tune.slo import SloSpec
from repro.tune.space import TUNABLE_KNOBS, build_space

#: The three throttling knobs whose continuous spaces give a surrogate
#: room to matter (the ``--mini`` knob set).
THROTTLE_KNOBS = ("io.max", "io.latency", "io.cost")


@dataclass
class SurrogateStudySettings:
    """Effort level, workload shape and arm budgets for D9."""

    ssd: SsdModel = None  # type: ignore[assignment]
    #: Knobs compared; defaults to all five Table-I control knobs.
    knobs: tuple[str, ...] = TUNABLE_KNOBS
    #: Simulator runs spent training the surrogate, per knob.
    train_budget: int = 32
    #: Simulator runs each arm may submit, per knob (the comparison is
    #: budget-for-budget: both arms get exactly this many).
    budget: int = 12
    #: Candidates the surrogate scores per verified run.
    pool_factor: int = 64
    #: Model hyperparameters. D9 fits one model per knob on a small
    #: dedicated sweep, so it wants a lighter fit than the library
    #: default (which is tuned for pooled multi-knob cache corpora).
    model_config: SurrogateConfig = None  # type: ignore[assignment]
    duration_s: float = 2.0
    warmup_s: float = 0.5
    device_scale: float = 8.0
    be_queue_depth: int = 64
    n_be_apps: int = 4
    cores: int = 10
    seed: int = 42

    def __post_init__(self) -> None:
        if self.ssd is None:
            self.ssd = samsung_980pro_like()
        if self.model_config is None:
            self.model_config = SurrogateConfig(
                n_members=4,
                n_rounds=40,
                learning_rate=0.2,
                min_samples_leaf=3,
            )
        if not self.knobs:
            raise ValueError("need at least one knob to compare")
        unknown = set(self.knobs) - set(TUNABLE_KNOBS)
        if unknown:
            raise ValueError(f"unknown knobs {sorted(unknown)}; options: {TUNABLE_KNOBS}")
        if self.train_budget < 2:
            raise ValueError("train_budget must be >= 2")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.pool_factor < 1:
            raise ValueError("pool_factor must be >= 1")


def quick_settings() -> SurrogateStudySettings:
    """The ``d9 --quick`` effort level: all five knobs, CI fidelity."""
    return SurrogateStudySettings(
        train_budget=24,
        budget=8,
        pool_factor=32,
        duration_s=0.8,
        warmup_s=0.2,
        device_scale=8.0,
    )


def mini_settings() -> SurrogateStudySettings:
    """Tier-1 / CI-smoke effort: the three throttlers in seconds."""
    return SurrogateStudySettings(
        knobs=THROTTLE_KNOBS,
        train_budget=32,
        budget=6,
        pool_factor=16,
        duration_s=0.3,
        warmup_s=0.1,
        device_scale=16.0,
        be_queue_depth=32,
        n_be_apps=2,
    )


@dataclass
class ArmOutcome:
    """One arm's result for one knob: what the budget bought."""

    #: ``pure`` or ``surrogate``.
    arm: str
    #: Best measured SLO-violation total the arm found.
    best_total: float
    #: The space's label for the winning assignment.
    best_label: str
    #: True when the winner meets the SLO outright.
    meets_slo: bool
    #: Scenarios the arm submitted to the simulator.
    calls: int

    def to_json_dict(self) -> dict:
        """Golden-friendly arm record."""
        return {
            "arm": self.arm,
            "best_total": self.best_total,
            "best_label": self.best_label,
            "meets_slo": self.meets_slo,
            "calls": self.calls,
        }


@dataclass
class SurrogateStudyRow:
    """One knob's budget-for-budget comparison plus trust metrics."""

    knob: str
    pure: ArmOutcome
    surrogate: ArmOutcome
    #: Scenarios spent training the knob's surrogate model.
    train_calls: int
    #: Training-corpus rows the model was fitted on.
    train_rows: int
    #: Candidates the prefilter scored (the widened pool).
    scored: int
    #: Candidates the simulator verified (the arm's budget).
    verified: int
    #: Verified-set p99 error: surrogate prediction vs simulator.
    mae_p99_us: float
    spearman_p99: float
    #: Per-target training-fit metrics from ``evaluate_model``.
    fit: dict[str, dict] = field(default_factory=dict)

    @property
    def meets_or_beats(self) -> bool:
        """True when the surrogate arm's best is <= the pure arm's."""
        return self.surrogate.best_total <= self.pure.best_total + 1e-9

    @property
    def widening(self) -> float:
        """Candidates considered per simulator call, vs the pure arm."""
        if self.pure.calls <= 0:
            return 0.0
        return self.scored / self.pure.calls

    def to_json_dict(self) -> dict:
        """Golden-friendly knob row."""
        return {
            "knob": self.knob,
            "pure": self.pure.to_json_dict(),
            "surrogate": self.surrogate.to_json_dict(),
            "train_calls": self.train_calls,
            "train_rows": self.train_rows,
            "scored": self.scored,
            "verified": self.verified,
            "mae_p99_us": self.mae_p99_us,
            "spearman_p99": self.spearman_p99,
            "meets_or_beats": self.meets_or_beats,
            "widening": self.widening,
            "fit": {target: dict(metrics) for target, metrics in self.fit.items()},
        }


@dataclass
class SurrogateStudyReport:
    """The D9 result: per-knob arm comparisons plus trust tables."""

    slo: str
    budget: int
    train_budget: int
    pool_factor: int
    rows: list[SurrogateStudyRow] = field(default_factory=list)

    def row(self, knob: str) -> SurrogateStudyRow:
        """The row for one knob name."""
        for candidate in self.rows:
            if candidate.knob == knob:
                return candidate
        raise KeyError(f"no d9 row for knob {knob!r}")

    def meets_or_beats_all(self) -> bool:
        """True when every knob's surrogate arm met-or-beat pure."""
        return all(row.meets_or_beats for row in self.rows)

    def render(self) -> str:
        """Text report (the ``isol-bench d9`` output)."""
        headers = (
            "knob",
            "pure",
            "surrogate",
            "meets-or-beats",
            "calls/arm",
            "scored",
            "mae_p99(us)",
            "spearman",
        )
        rows = [
            (
                row.knob,
                f"{row.pure.best_total:.3f}",
                f"{row.surrogate.best_total:.3f}",
                "yes" if row.meets_or_beats else "no",
                row.pure.calls,
                row.scored,
                f"{row.mae_p99_us:.1f}",
                f"{row.spearman_p99:.2f}",
            )
            for row in self.rows
        ]
        arm_table = render_table(
            headers,
            rows,
            title=(
                f"SLO: {self.slo} -- pure vs surrogate at "
                f"{self.budget} simulator calls/knob "
                f"(train {self.train_budget}, pool x{self.pool_factor})"
            ),
        )
        fit_headers = ("knob", "target", "train MAE", "train spearman")
        fit_rows = [
            (row.knob, target, f"{metrics['mae']:.3f}", f"{metrics['spearman']:.2f}")
            for row in self.rows
            for target, metrics in row.fit.items()
        ]
        fit_table = render_table(
            fit_headers, fit_rows, title="surrogate training fit"
        )
        beat = sum(1 for row in self.rows if row.meets_or_beats)
        return (
            f"{arm_table}\n\n{fit_table}\n"
            f"meets-or-beats: {beat}/{len(self.rows)} knobs"
        )

    def to_json_dict(self) -> dict:
        """Golden-friendly document (rows keyed by knob)."""
        return {
            "slo": self.slo,
            "budget": self.budget,
            "train_budget": self.train_budget,
            "pool_factor": self.pool_factor,
            "meets_or_beats_all": self.meets_or_beats_all(),
            "rows": {row.knob: row.to_json_dict() for row in self.rows},
        }


def evaluate_surrogate_study(
    settings: SurrogateStudySettings | None = None,
    slo: SloSpec | None = None,
    executor: SweepExecutor | None = None,
) -> SurrogateStudyReport:
    """Run the per-knob pure-vs-surrogate comparison.

    For each knob: run the training sweep (a seeded pool offset from the
    search seed, so training points are not simply the search pool),
    fit the surrogate on it, then run both arms with fresh evaluators at
    the same submission budget. Deterministic end to end: the same
    settings produce a bit-identical report at any worker count.
    """
    settings = settings or SurrogateStudySettings()
    slo = slo or default_slo()
    runner = resolve_executor(executor)
    apps = robustness_specs(
        be_queue_depth=settings.be_queue_depth, n_be_apps=settings.n_be_apps
    )

    def make_evaluator(space) -> TuneEvaluator:
        return TuneEvaluator(
            space=space,
            slo=slo,
            apps=apps,
            ssd=settings.ssd,
            device_scale=settings.device_scale,
            duration_s=settings.duration_s,
            warmup_s=settings.warmup_s,
            seed=settings.seed,
            cores=settings.cores,
            executor=runner,
        )

    report = SurrogateStudyReport(
        slo=slo.describe(),
        budget=settings.budget,
        train_budget=settings.train_budget,
        pool_factor=settings.pool_factor,
    )
    for knob_name in settings.knobs:
        space = build_space(
            knob_name,
            settings.ssd,
            device_scale=settings.device_scale,
            priority_group=PRIORITY_GROUP,
            be_group=BE_GROUP,
        )

        trainer = make_evaluator(space)
        train_values = surrogate_pool(
            space, settings.train_budget, seed=settings.seed + 1
        )
        train_scenarios = [trainer.scenario_for(values) for values in train_values]
        train_summaries = runner.run_strict(train_scenarios)
        corpus = corpus_from_pairs(list(zip(train_scenarios, train_summaries)))
        model = fit_from_corpus(
            corpus, seed=settings.seed, config=settings.model_config
        )
        fit_metrics = evaluate_model(model, *corpus.matrices())

        pure_evaluator = make_evaluator(space)
        pure = search(
            space, pure_evaluator, settings.budget, strategy="auto",
            seed=settings.seed,
        )

        prefilter = SurrogatePrefilter(
            model=model,
            slo=slo,
            ssd=settings.ssd,
            pool_factor=settings.pool_factor,
        )
        surrogate_evaluator = make_evaluator(space)
        surrogate = search(
            space, surrogate_evaluator, settings.budget, seed=settings.seed,
            prefilter=prefilter,
        )

        report.rows.append(
            SurrogateStudyRow(
                knob=knob_name,
                pure=ArmOutcome(
                    arm="pure",
                    best_total=pure.best.score.total,
                    best_label=pure.best.label,
                    meets_slo=pure.best.score.meets_slo,
                    calls=pure_evaluator.scenarios_submitted,
                ),
                surrogate=ArmOutcome(
                    arm="surrogate",
                    best_total=surrogate.best.score.total,
                    best_label=surrogate.best.label,
                    meets_slo=surrogate.best.score.meets_slo,
                    calls=surrogate_evaluator.scenarios_submitted,
                ),
                train_calls=len(train_scenarios),
                train_rows=corpus.n_rows,
                scored=prefilter.scored,
                verified=len(prefilter.verified),
                mae_p99_us=prefilter.mae_p99_us(),
                spearman_p99=prefilter.spearman_p99(),
                fit=fit_metrics,
            )
        )
    return report
