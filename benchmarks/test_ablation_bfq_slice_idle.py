"""Ablation: BFQ's slice_idle (§IV-B).

The paper notes slice idling "is required for prioritization but idles
every queue for a short while", destabilizing bandwidth and costing
throughput for shallow-queue apps. This ablation runs the Fig. 2 BFQ
timeline with idling on and off and reports total bandwidth and the
bandwidth variability (coefficient of variation across 1 s buckets).
"""

import statistics

from conftest import run_once

from repro.core.fig2 import run_fig2_panel
from repro.core.report import render_table
import repro.core.fig2 as fig2_module
from repro.core.config import BfqKnob

SLICE_IDLE_SETTINGS = (0.0, 2000.0)


def _run_with_slice_idle(slice_idle_us):
    original = fig2_module.fig2_knob

    def patched(panel, ssd_scaled, device_scale):
        knob = original(panel, ssd_scaled, device_scale)
        if isinstance(knob, BfqKnob):
            knob.slice_idle_us = slice_idle_us
        return knob

    fig2_module.fig2_knob = patched
    try:
        return run_fig2_panel("bfq-uniform", time_scale=0.2, device_scale=8.0)
    finally:
        fig2_module.fig2_knob = original


def _variability(panel, app, start, stop):
    times, values = panel.series[app]
    window = [v for t, v in zip(times, values) if start <= t < stop and v > 0]
    if len(window) < 2:
        return 0.0
    mean = statistics.mean(window)
    return statistics.pstdev(window) / mean if mean else 0.0


def test_bfq_slice_idle(benchmark, figure_output):
    def experiment():
        rows = []
        for slice_idle in SLICE_IDLE_SETTINGS:
            panel = _run_with_slice_idle(slice_idle)
            total = sum(panel.mean_between(app, 30, 48) for app in "ABC")
            cv = _variability(panel, "A", 30, 48)
            rows.append([slice_idle / 1000.0, total, cv])
        return rows

    rows = run_once(benchmark, experiment)
    table = render_table(
        ["slice_idle ms", "total MiB/s @contention", "bandwidth CV (app A)"],
        rows,
        title="Ablation -- BFQ slice_idle: throughput and stability cost",
    )
    figure_output("ablation_bfq_slice_idle", table)

    no_idle_total = rows[0][1]
    idle_total = rows[1][1]
    # Idling costs throughput for shallow-queue (rate-limited) apps.
    assert idle_total < no_idle_total
