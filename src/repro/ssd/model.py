"""Parametric SSD performance model.

The device is modelled as two stations in series:

1. ``parallelism`` independent *flash units*, each charging a fixed,
   op-and-pattern-dependent access cost (this bounds small-request IOPS:
   ``IOPS_max = parallelism / fixed_cost``), then
2. a single shared *data bus* charging ``size / bus_bandwidth`` (this
   bounds large-request bandwidth).

This mirrors how the kernel's io.cost linear model decomposes device
capacity into per-I/O and per-byte terms, and produces the two saturation
regimes the paper measures (IOPS-bound at 4 KiB, bandwidth-bound at
64-256 KiB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.iorequest import GIB, OpType, Pattern

try:  # numpy accelerates batch cost evaluation; the scalar path is complete.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

#: True when the vectorized batch-cost path is available.
HAVE_NUMPY = _np is not None


@dataclass(frozen=True)
class GcParams:
    """Garbage-collection behaviour of the flash translation layer.

    ``write_amplification`` is the total flash-write volume per byte of
    host write once the device is preconditioned; the excess
    ``(waf - 1) * size`` accumulates as *debt* that a background GC agent
    clears by occupying flash units and bus time, interfering with
    foreground I/O (the read/write-interference collapse of Fig. 6b).
    """

    write_amplification: float = 2.5
    # Debt level at which background GC kicks in / stops, in bytes.
    high_watermark_bytes: int = 8 * 1024 * 1024
    low_watermark_bytes: int = 1 * 1024 * 1024
    # GC moves data in chunks of this size.
    chunk_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.write_amplification < 1.0:
            raise ValueError("write amplification must be >= 1")
        if self.low_watermark_bytes > self.high_watermark_bytes:
            raise ValueError("GC low watermark must not exceed high watermark")


@dataclass(frozen=True)
class SsdModel:
    """Static performance parameters of one simulated NVMe SSD."""

    name: str
    # Internal parallelism: number of flash units serving fixed costs.
    parallelism: int
    # Fixed per-request access cost (us) by (op, pattern).
    read_fixed_us: float
    write_fixed_us: float
    seq_read_fixed_us: float
    seq_write_fixed_us: float
    # Shared data-bus bandwidth, bytes/second, per direction.
    read_bus_bps: float
    write_bus_bps: float
    # NVMe queue bound: requests beyond this wait at the device boundary.
    nvme_max_qd: int = 1024
    # Multiplicative service-time noise: service = fixed * (base + tail),
    # tail ~ Exp(mean=noise_tail_mean). base + tail has mean 1.0 so the
    # model's nominal costs stay calibrated while P99 > mean.
    noise_base: float = 0.9
    noise_tail_mean: float = 0.1
    # Bus transfers are interleaved at this granularity: a large request
    # occupies the bus one segment at a time, so small requests slip in
    # between segments (NVMe interleaves transfers at MDTS/TLP
    # granularity; whole-request occupancy would add unrealistic
    # head-of-line blocking for 4 KiB reads behind 256 KiB writes).
    bus_segment_bytes: int = 32 * 1024
    gc: GcParams = field(default_factory=GcParams)
    # Whether sustained writes trigger GC at all (False for Optane-like
    # media, which has no erase-before-write asymmetry).
    gc_enabled: bool = True

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        for attr in ("read_fixed_us", "write_fixed_us", "seq_read_fixed_us", "seq_write_fixed_us"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.read_bus_bps <= 0 or self.write_bus_bps <= 0:
            raise ValueError("bus bandwidth must be positive")
        if self.nvme_max_qd < 1:
            raise ValueError("nvme_max_qd must be >= 1")

    def fixed_cost_us(self, op: OpType, pattern: Pattern) -> float:
        """Flash-unit occupancy for one request, before noise."""
        if op == OpType.READ:
            return self.read_fixed_us if pattern == Pattern.RANDOM else self.seq_read_fixed_us
        return self.write_fixed_us if pattern == Pattern.RANDOM else self.seq_write_fixed_us

    def bus_cost_us(self, op: OpType, size: int) -> float:
        """Data-bus occupancy for one request."""
        bps = self.read_bus_bps if op == OpType.READ else self.write_bus_bps
        return size / bps * 1e6

    def batch_costs(
        self,
        ops: Sequence[OpType],
        patterns: Sequence[Pattern],
        sizes: Sequence[int],
    ) -> tuple[list[float], list[float], list[int], list[float]]:
        """Evaluate per-request service costs for a batch of submissions.

        Returns ``(fixed_us, bus_us, segments, per_segment_us)`` aligned
        with the inputs, where ``segments`` is the bus interleaving plan
        (``ceil(size / bus_segment_bytes)``, at least 1) and
        ``per_segment_us = bus_us / segments``.

        The numpy path performs the *same IEEE-754 double operations*
        element-wise as the scalar methods, so every returned float is
        bit-identical to ``fixed_cost_us`` / ``bus_cost_us`` — callers
        (and the differential suite) may memoize either path
        interchangeably. Single-element batches and numpy-less installs
        take the scalar fallback.
        """
        n = len(sizes)
        if len(ops) != n or len(patterns) != n:
            raise ValueError("batch_costs inputs must have equal length")
        if _np is None or n < 2:
            fixed = [self.fixed_cost_us(op, pat) for op, pat in zip(ops, patterns)]
            bus = [self.bus_cost_us(op, size) for op, size in zip(ops, sizes)]
            segments = [max(1, -(-size // self.bus_segment_bytes)) for size in sizes]
            per_segment = [b / s for b, s in zip(bus, segments)]
            return fixed, bus, segments, per_segment
        is_read = _np.fromiter((op == OpType.READ for op in ops), dtype=bool, count=n)
        is_random = _np.fromiter(
            (pat == Pattern.RANDOM for pat in patterns), dtype=bool, count=n
        )
        size_arr = _np.fromiter(sizes, dtype=_np.int64, count=n)
        fixed_arr = _np.where(
            is_read,
            _np.where(is_random, self.read_fixed_us, self.seq_read_fixed_us),
            _np.where(is_random, self.write_fixed_us, self.seq_write_fixed_us),
        )
        bps = _np.where(is_read, self.read_bus_bps, self.write_bus_bps)
        bus_arr = size_arr / bps * 1e6
        seg_arr = _np.maximum(1, -(-size_arr // self.bus_segment_bytes))
        per_segment_arr = bus_arr / seg_arr
        return (
            fixed_arr.tolist(),
            bus_arr.tolist(),
            seg_arr.tolist(),
            per_segment_arr.tolist(),
        )

    def saturation_iops(self, op: OpType, pattern: Pattern, size: int) -> float:
        """Nominal saturation throughput for a uniform workload."""
        flash_bound = self.parallelism / self.fixed_cost_us(op, pattern) * 1e6
        bus_bound = 1e6 / self.bus_cost_us(op, size) if size else float("inf")
        return min(flash_bound, bus_bound)

    def saturation_bandwidth_bps(self, op: OpType, pattern: Pattern, size: int) -> float:
        """Nominal saturation bandwidth (bytes/s) for a uniform workload."""
        return self.saturation_iops(op, pattern, size) * size

    def scaled(self, device_scale: float) -> "SsdModel":
        """Return a model time-dilated by ``device_scale``.

        Used by benches to shrink event counts while preserving shape.
        Scaling is *pure time dilation*: every flash unit becomes
        ``device_scale`` times slower and the bus proportionally
        narrower, while parallelism and queue bounds stay untouched.
        Together with the host-side scaling (CPU costs and dispatch
        locks, see :mod:`repro.core.host`) the whole system runs
        ``device_scale`` times slower -- the number of requests in
        flight at every station, and thus every contention regime, is
        exactly preserved; only the clock stretches. Report equivalent
        full-speed numbers by multiplying bandwidth (or dividing
        latency) by the factor.
        """
        if device_scale < 1:
            raise ValueError("device_scale must be >= 1")
        if device_scale == 1:
            return self
        return SsdModel(
            name=f"{self.name}@1/{device_scale:g}",
            parallelism=self.parallelism,
            read_fixed_us=self.read_fixed_us * device_scale,
            write_fixed_us=self.write_fixed_us * device_scale,
            seq_read_fixed_us=self.seq_read_fixed_us * device_scale,
            seq_write_fixed_us=self.seq_write_fixed_us * device_scale,
            read_bus_bps=self.read_bus_bps / device_scale,
            write_bus_bps=self.write_bus_bps / device_scale,
            nvme_max_qd=self.nvme_max_qd,
            noise_base=self.noise_base,
            noise_tail_mean=self.noise_tail_mean,
            bus_segment_bytes=self.bus_segment_bytes,
            gc=self.gc,
            gc_enabled=self.gc_enabled,
        )


#: The workload shapes a device description reports saturation for:
#: (stable key, display label, op, pattern, request size). The key is
#: the contract of ``describe-device --json`` and of
#: :mod:`repro.tune.space`'s bound derivation; renaming one invalidates
#: scripted consumers, so treat keys as API.
DESCRIBE_CASES: tuple[tuple[str, str, OpType, Pattern, int], ...] = (
    ("rand-read-4k", "4 KiB rand read", OpType.READ, Pattern.RANDOM, 4096),
    ("rand-write-4k", "4 KiB rand write", OpType.WRITE, Pattern.RANDOM, 4096),
    ("rand-read-64k", "64 KiB rand read", OpType.READ, Pattern.RANDOM, 65536),
    ("seq-read-256k", "256 KiB seq read", OpType.READ, Pattern.SEQUENTIAL, 262144),
)


def describe_model_dict(model: SsdModel) -> dict:
    """Machine-readable saturation document for one device model.

    The single source of truth shared by ``isol-bench describe-device
    --json`` and :mod:`repro.tune.space`'s parameter-bound derivation:
    per-case nominal saturation IOPS/bandwidth plus the fixed access
    costs a latency-valued knob bound starts from.
    """
    cases = {}
    for key, label, op, pattern, size in DESCRIBE_CASES:
        iops = model.saturation_iops(op, pattern, size)
        cases[key] = {
            "label": label,
            "op": op.name.lower(),
            "pattern": pattern.name.lower(),
            "size_bytes": size,
            "iops": iops,
            "bandwidth_bps": iops * size,
        }
    return {
        "name": model.name,
        "parallelism": model.parallelism,
        "nvme_max_qd": model.nvme_max_qd,
        "read_fixed_us": model.read_fixed_us,
        "write_fixed_us": model.write_fixed_us,
        "gc_enabled": model.gc_enabled,
        "cases": cases,
    }


def describe_model(model: SsdModel) -> str:
    """Human-readable summary of a model's nominal saturation points."""
    doc = describe_model_dict(model)
    lines = [f"SSD model {model.name}:"]
    for case in doc["cases"].values():
        bw = case["bandwidth_bps"] / GIB
        lines.append(
            f"  {case['label']:18s}: {case['iops'] / 1000.0:8.1f} KIOPS, {bw:6.2f} GiB/s"
        )
    return "\n".join(lines)
