"""Fleet-scale tenant placement over simulated NVMe devices.

The paper answers "does Linux isolate tenants sharing *one* NVMe SSD?";
this package scales the question out: given a fleet of hosts and
devices and a set of tenants with SLOs, *where* should each tenant run,
and how should the chosen device's cgroup knobs be configured? The
pipeline is

1. :mod:`repro.fleet.spec` — describe the fleet and its tenants
   (:func:`~repro.fleet.spec.demo_fleet` is the pinned example);
2. :mod:`repro.fleet.interference` — measure every tenant solo and
   every pair co-located, producing an
   :class:`~repro.fleet.interference.InterferenceMatrix` of p99
   inflations and bandwidth retentions;
3. :mod:`repro.fleet.placement` — assign tenants to device slots with
   a ``random`` / ``binpack`` / ``serifos`` strategy, then shed load
   from saturated devices (migration/eviction);
4. :mod:`repro.fleet.report` — measure what each placement actually
   delivers, tune each contended device's knobs through the
   :mod:`repro.tune` advisor, and roll everything into one fleet-wide
   SLO-violation score.

``isol-bench place`` drives the whole pipeline; ``docs/fleet.md``
documents the methodology and its limits.
"""

from repro.fleet.interference import (
    MINI_MATRIX,
    QUICK_MATRIX,
    InterferenceMatrix,
    MatrixSettings,
    PairEffect,
    TenantMeasure,
    build_matrix,
)
from repro.fleet.placement import Migration, Placement, STRATEGIES, place
from repro.fleet.report import (
    DeviceEvaluation,
    PlacementReport,
    PlacementSettings,
    evaluate_placement,
)
from repro.fleet.spec import FleetSpec, TenantSpec, demo_fleet, load_fleet

__all__ = [
    "FleetSpec",
    "TenantSpec",
    "demo_fleet",
    "load_fleet",
    "InterferenceMatrix",
    "MatrixSettings",
    "MINI_MATRIX",
    "QUICK_MATRIX",
    "PairEffect",
    "TenantMeasure",
    "build_matrix",
    "Migration",
    "Placement",
    "STRATEGIES",
    "place",
    "DeviceEvaluation",
    "PlacementReport",
    "PlacementSettings",
    "evaluate_placement",
]
