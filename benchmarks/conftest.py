"""Shared helpers for the figure/table benchmarks.

Each bench regenerates one of the paper's tables or figures: it runs the
corresponding isol-bench experiment (at a documented device scale),
prints the rows/series the paper reports, and writes the same text to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference it.
The name is not free-form: ``test_<name>.py`` must write ``<name>.txt``
(the :func:`figure_output` fixture enforces it), and result files whose
bench module no longer exists are pruned at session start -- renaming a
bench cannot leave a stale orphan behind for EXPERIMENTS.md to cite.

The pytest-benchmark timer wraps the *whole experiment*, so
``--benchmark-only`` runs double as a performance regression check on
the simulator itself. Every bench uses a single round: the experiments
are deterministic and long.

Sweeps inside the experiments go through the process-global
:class:`~repro.exec.executor.SweepExecutor`; environment variables
configure a bench session:

* ``ISOLBENCH_BENCH_WORKERS`` -- worker processes per sweep (default 1:
  serial, so the benchmark timer measures the simulator, not the pool);
* ``ISOLBENCH_BENCH_CACHE`` -- set to ``1`` to reuse/store summaries in
  the result cache (default off: a bench that reads cached results
  would time the cache, not the experiment);
* ``ISOLBENCH_BENCH_RESULTS`` -- results directory override (default
  ``benchmarks/results/`` next to this file).
"""

from __future__ import annotations

import os
import pathlib

import pytest

BENCH_DIR = pathlib.Path(__file__).parent
DEFAULT_RESULTS_DIR = BENCH_DIR / "results"


def results_dir() -> pathlib.Path:
    """``$ISOLBENCH_BENCH_RESULTS`` or ``benchmarks/results/``."""
    override = os.environ.get("ISOLBENCH_BENCH_RESULTS")
    return pathlib.Path(override) if override else DEFAULT_RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def bench_executor():
    """Install the bench-session executor configured from the env."""
    from repro.exec import ResultCache, SweepExecutor, default_cache_dir, use_executor

    workers = int(os.environ.get("ISOLBENCH_BENCH_WORKERS", "1"))
    cache = (
        ResultCache(default_cache_dir())
        if os.environ.get("ISOLBENCH_BENCH_CACHE") == "1"
        else None
    )
    with SweepExecutor(max_workers=workers, cache=cache) as executor:
        with use_executor(executor):
            yield executor


@pytest.fixture(scope="session", autouse=True)
def prune_stale_results():
    """Delete ``<name>.txt`` results whose ``test_<name>.py`` is gone.

    Result files are committed artifacts referenced from EXPERIMENTS.md;
    when a bench module is renamed or removed its old output would
    otherwise linger forever and keep looking authoritative.
    """
    directory = results_dir()
    if directory.is_dir():
        for path in sorted(directory.glob("*.txt")):
            if not (BENCH_DIR / f"test_{path.stem}.py").is_file():
                path.unlink()
                print(f"pruned stale bench result: {path}")
    yield


@pytest.fixture
def figure_output(request):
    """Returns a writer: ``write(name, text)`` prints + persists.

    ``name`` must match the calling bench module (``test_<name>.py``
    writes ``<name>.txt``) so EXPERIMENTS.md references, result files
    and bench modules can never drift apart.
    """
    directory = results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    expected = pathlib.Path(str(request.fspath)).stem.removeprefix("test_")

    def write(name: str, text: str) -> None:
        """Persist ``text`` as ``<name>.txt`` (name-checked) and print it."""
        if name != expected:
            raise ValueError(
                f"bench result name {name!r} does not match its module: "
                f"test_{expected}.py must write {expected}.txt"
            )
        path = directory / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return write


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
