"""Unit tests for the simulator self-profiler (repro.prof).

The contract under test:

* phase attribution maps callback code objects onto the pipeline
  taxonomy and the breakdown covers (>= 90% of) the loop wall-clock;
* explicit phase spans nest with exclusive attribution and misuse
  raises instead of producing silently-wrong numbers;
* profiling NEVER changes simulation results (bit-identical summary
  vs an unprofiled run);
* the exports load with their standard consumers (``pstats.Stats``,
  Chrome trace JSON).
"""

import json
import pstats

import pytest

from repro.core.config import MqDeadlineKnob, Scenario
from repro.core.runner import run_scenario
from repro.exec.summary import run_scenario_summary
from repro.obs import TraceConfig
from repro.prof import (
    ENGINE_POP,
    PHASES,
    ProfConfig,
    ProfilerError,
    SimProfiler,
    format_phase_table,
    phase_of_code,
    write_chrome_trace,
    write_pstats,
)
from repro.prof.export import PROF_PID, chrome_profile_events
from repro.prof.phases import phase_of_filename
from repro.prof.profiler import merge_profiles
from repro.workloads.apps import batch_app, lc_app


def tiny_scenario(prof=None, trace=None, seed=7) -> Scenario:
    """A fast mixed scenario touching dispatch, device and metrics."""
    return Scenario(
        name="prof-tiny",
        knob=MqDeadlineKnob(classes={"/t/a": "realtime"}),
        apps=[batch_app("a", "/t/a", queue_depth=8), lc_app("b", "/t/b")],
        duration_s=0.05,
        warmup_s=0.01,
        seed=seed,
        device_scale=16.0,
        prof=prof,
        trace=trace,
    )


class TestPhases:
    def test_fragment_mapping(self):
        assert phase_of_filename("/x/src/repro/iocontrol/dispatch.py") == "dispatch"
        assert phase_of_filename("/x/src/repro/iocontrol/iomax.py") == "throttle"
        assert phase_of_filename("/x/src/repro/ssd/device.py") == "device"
        assert phase_of_filename("/x/src/repro/sim/resources.py") == "device"
        assert phase_of_filename("/x/src/repro/faults/injector.py") == "faults"
        assert phase_of_filename("/home/user/random.py") == "other"

    def test_windows_paths_normalize(self):
        assert phase_of_filename("C:\\src\\repro\\metrics\\collector.py") == "metrics"

    def test_phase_of_code(self):
        assert phase_of_code(tiny_scenario.__code__) == "other"

    def test_every_fragment_phase_is_in_taxonomy(self):
        from repro.prof.phases import _FRAGMENT_PHASES

        assert {phase for _, phase in _FRAGMENT_PHASES} <= set(PHASES)


class TestSpans:
    def test_nested_spans_close_in_order(self):
        prof = SimProfiler()
        prof.push("outer")
        prof.push("inner")
        assert prof.open_spans == ["outer", "inner"]
        prof.pop("inner")
        prof.pop("outer")
        assert prof.open_spans == []
        profile = prof.profile()
        assert profile.span_events == {"outer": 1, "inner": 1}
        assert profile.span_wall["outer"] >= 0.0
        assert profile.span_wall["inner"] >= 0.0

    def test_pop_mismatch_raises(self):
        prof = SimProfiler()
        prof.push("outer")
        with pytest.raises(ProfilerError, match="mismatch"):
            prof.pop("inner")

    def test_pop_without_push_raises(self):
        with pytest.raises(ProfilerError, match="no open phase span"):
            SimProfiler().pop()

    def test_profile_with_open_span_raises(self):
        prof = SimProfiler()
        prof.push("outer")
        with pytest.raises(ProfilerError, match="open phase spans"):
            prof.profile()

    def test_context_manager_is_exception_safe(self):
        prof = SimProfiler()
        with pytest.raises(RuntimeError, match="boom"):
            with prof.phase("stage"):
                raise RuntimeError("boom")
        assert prof.open_spans == []
        assert prof.profile().span_events == {"stage": 1}

    def test_reentered_span_accumulates(self):
        prof = SimProfiler()
        for _ in range(3):
            with prof.phase("stage"):
                pass
        assert prof.profile().span_events == {"stage": 3}


class TestProfiledRun:
    def test_profile_none_when_off(self):
        assert run_scenario(tiny_scenario()).profile is None

    def test_breakdown_covers_loop_wall(self):
        result = run_scenario(tiny_scenario(prof=ProfConfig()))
        profile = result.profile
        # The acceptance bar: phases must explain >= 90% of the loop.
        assert profile.coverage() >= 0.9
        assert profile.loop_wall_seconds > 0
        assert ENGINE_POP in profile.phase_wall
        assert set(profile.phase_wall) <= set(PHASES)
        # This scenario exercises the dispatch + device pipeline.
        assert profile.phase_wall["device"] > 0
        assert profile.phase_wall["dispatch"] > 0

    def test_counters_match_engine(self):
        result = run_scenario(tiny_scenario(prof=ProfConfig()))
        profile = result.profile
        assert profile.counters["events.fired"] == result.events_processed
        assert profile.events_accounted == result.events_processed
        assert profile.counters["events.scheduled"] >= profile.counters["events.fired"]
        assert profile.counters["events.heap_peak"] >= 1

    def test_bit_identical_to_unprofiled_run(self):
        plain = run_scenario_summary(tiny_scenario())
        profiled = run_scenario_summary(tiny_scenario(prof=ProfConfig()))
        assert plain.content_equal(profiled)

    def test_profiled_and_traced_together(self):
        result = run_scenario(
            tiny_scenario(
                prof=ProfConfig(), trace=TraceConfig(sample_period_us=2_000.0)
            )
        )
        profile = result.profile
        assert result.trace is not None
        # The sampler's periodic emission fires as events -> obs phase.
        assert profile.phase_wall.get("obs", 0.0) > 0
        assert profile.counters["obs.spans"] == len(result.trace.spans)
        assert profile.counters["obs.samples"] == len(result.trace.samples)


class TestTimeline:
    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            ProfConfig(timeline_bucket_us=-1.0)

    def test_buckets_cover_run(self):
        result = run_scenario(
            tiny_scenario(prof=ProfConfig(timeline_bucket_us=10_000.0))
        )
        profile = result.profile
        assert profile.bucket_us == 10_000.0
        assert profile.buckets
        ends = [row["t_us"] for row in profile.buckets]
        assert ends == sorted(ends)
        for row in profile.buckets:
            assert row["t_us"] % 10_000.0 == 0.0
        bucketed = sum(
            wall
            for row in profile.buckets
            for key, wall in row.items()
            if key != "t_us"
        )
        callback_wall = sum(
            wall for key, wall in profile.phase_wall.items() if key != ENGINE_POP
        )
        assert bucketed == pytest.approx(callback_wall)


class TestExports:
    @pytest.fixture(scope="class")
    def profile(self):
        prof = SimProfiler()
        result = run_scenario(tiny_scenario(prof=ProfConfig()))
        del prof
        return result.profile

    def test_format_phase_table(self, profile):
        text = format_phase_table(profile)
        assert "loop total" in text
        assert ENGINE_POP in text
        assert "coverage" in text

    def test_pstats_roundtrip(self, profile, tmp_path):
        path = tmp_path / "profile.pstats"
        write_pstats(profile, str(path))
        stats = pstats.Stats(str(path))
        names = {name for (_, _, name) in stats.stats}
        assert "device" in names
        assert ENGINE_POP in names
        total_tt = sum(entry[2] for entry in stats.stats.values())
        assert total_tt == pytest.approx(sum(profile.phase_wall.values()))

    def test_chrome_trace_structure(self, profile, tmp_path):
        path = tmp_path / "profile.trace.json"
        write_chrome_trace(profile, str(path))
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert all(e["pid"] == PROF_PID for e in counters)
        assert {e["name"] for e in counters} == {
            f"prof.{phase}" for phase in profile.phase_wall
        }

    def test_chrome_trace_merges_obs_trace(self, tmp_path):
        result = run_scenario(
            tiny_scenario(prof=ProfConfig(), trace=TraceConfig(sample_period_us=0.0))
        )
        path = tmp_path / "merged.trace.json"
        write_chrome_trace(result.profile, str(path), trace=result.trace)
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        prof_only = len(chrome_profile_events(result.profile))
        assert len(events) > prof_only  # request spans came along
        assert document["otherData"]["scenario"] == "prof-tiny"

    def test_json_dict_is_json_serializable(self, profile):
        encoded = json.dumps(profile.to_json_dict())
        decoded = json.loads(encoded)
        assert decoded["coverage"] == pytest.approx(profile.coverage())

    def test_merge_profiles_sums(self, profile):
        merged = merge_profiles([profile, profile])
        assert merged.loop_wall_seconds == pytest.approx(
            2 * profile.loop_wall_seconds
        )
        assert merged.events_accounted == 2 * profile.events_accounted
