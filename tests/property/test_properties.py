"""Property-based tests (hypothesis) for core data structures/invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iocontrol.iocost import _water_fill
from repro.metrics.fairness import jain_index, weighted_jain_index
from repro.metrics.latency import cdf, percentile
from repro.sim.engine import Simulator
from repro.sim.resources import TokenBucket

finite_positive = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
samples_strategy = st.lists(finite_positive, min_size=1, max_size=200)


class TestPercentileProperties:
    @given(samples_strategy, st.floats(min_value=0.0, max_value=100.0))
    def test_percentile_within_sample_bounds(self, samples, pct):
        value = percentile(samples, pct)
        assert min(samples) <= value <= max(samples)

    @given(samples_strategy)
    def test_percentile_monotone_in_pct(self, samples):
        values = [percentile(samples, p) for p in (0, 25, 50, 75, 90, 99, 100)]
        assert values == sorted(values)

    @given(samples_strategy, finite_positive)
    def test_percentile_translation_invariance(self, samples, shift):
        base = percentile(samples, 90.0)
        shifted = percentile([s + shift for s in samples], 90.0)
        assert math.isclose(shifted, base + shift, rel_tol=1e-9, abs_tol=1e-6)

    @given(st.lists(finite_positive, min_size=2, max_size=100))
    def test_cdf_is_monotone(self, samples):
        values, probs = cdf(samples, points=20)
        assert values == sorted(values)
        assert probs == sorted(probs)


class TestJainProperties:
    @given(st.lists(finite_positive, min_size=1, max_size=50))
    def test_jain_bounds(self, allocations):
        index = jain_index(allocations)
        assert 1.0 / len(allocations) - 1e-9 <= index <= 1.0 + 1e-9

    @given(st.lists(finite_positive, min_size=1, max_size=50), finite_positive)
    def test_jain_scale_invariance(self, allocations, factor):
        base = jain_index(allocations)
        scaled = jain_index([a * factor for a in allocations])
        assert math.isclose(base, scaled, rel_tol=1e-6)

    @given(st.integers(min_value=1, max_value=40), finite_positive)
    def test_equal_allocations_always_fair(self, n, value):
        assert jain_index([value] * n) > 1.0 - 1e-9

    @given(st.lists(finite_positive, min_size=1, max_size=30))
    def test_weighted_jain_of_proportional_split_is_one(self, weights):
        total = sum(weights)
        allocations = [100.0 * w / total for w in weights]
        assert weighted_jain_index(allocations, weights) > 1.0 - 1e-9

    @given(st.lists(finite_positive, min_size=2, max_size=30))
    def test_weighted_jain_never_exceeds_one(self, weights):
        allocations = [1.0] * len(weights)
        assert weighted_jain_index(allocations, weights) <= 1.0 + 1e-9


class TestWaterFillProperties:
    groups = st.dictionaries(
        st.text(alphabet="abcdef", min_size=1, max_size=3),
        st.tuples(finite_positive, st.one_of(finite_positive, st.just(math.inf))),
        min_size=1,
        max_size=8,
    )

    @given(groups, finite_positive)
    def test_allocations_bounded_by_demand_and_capacity(self, groups, capacity):
        weights = {k: w for k, (w, _) in groups.items()}
        demands = {k: d for k, (_, d) in groups.items()}
        alloc = _water_fill(weights, demands, capacity)
        assert set(alloc) == set(weights)
        for key in alloc:
            assert alloc[key] <= demands[key] + 1e-6
            assert alloc[key] >= -1e-9
        assert sum(alloc.values()) <= capacity + 1e-6

    @given(groups, finite_positive)
    def test_capacity_fully_used_when_demand_allows(self, groups, capacity):
        weights = {k: w for k, (w, _) in groups.items()}
        demands = {k: d for k, (_, d) in groups.items()}
        alloc = _water_fill(weights, demands, capacity)
        total_demand = sum(min(d, capacity * 10) for d in demands.values())
        if any(math.isinf(d) for d in demands.values()):
            assert sum(alloc.values()) >= capacity - 1e-6
        else:
            assert sum(alloc.values()) >= min(capacity, total_demand) - 1e-6


class TestTokenBucketProperties:
    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.0, max_value=1000.0),
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=50),
    )
    def test_rate_never_exceeded_in_long_run(self, rate, burst, amounts):
        bucket = TokenBucket(rate, burst)
        now = 0.0
        last_admit = 0.0
        total = 0.0
        for amount in amounts:
            wait = bucket.reserve(amount, now)
            last_admit = max(last_admit, now + wait)
            total += amount
        # Everything admitted by last_admit: total <= burst + rate * t.
        assert total <= burst + rate * last_admit + 1e-6

    @given(st.floats(min_value=0.01, max_value=100.0), finite_positive)
    def test_reserve_wait_is_nonnegative(self, rate, amount):
        bucket = TokenBucket(rate, burst=0.0)
        assert bucket.reserve(amount, now=0.0) >= 0.0


class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
