"""Generalizability: repeat key experiments on the Optane-like device.

The paper re-runs its experiments on an Intel Optane SSD ("a different
SSD performance model") to confirm the conclusions are not flash
artifacts. This bench repeats the bandwidth-scalability and weighted
fairness experiments on the Optane preset and checks the same winners.
"""

from conftest import run_once

from repro.core.d1_overhead import peak_bandwidth, run_bandwidth_scaling
from repro.core.d2_fairness import run_weighted_fairness
from repro.core.report import render_table
from repro.ssd.presets import intel_optane_like

DEVICE_SCALE = 8.0


def test_optane_generalizability(benchmark, figure_output):
    ssd = intel_optane_like()

    def experiment():
        bw = run_bandwidth_scaling(
            app_counts=(4, 17),
            device_counts=(1,),
            ssd=ssd,
            duration_s=0.25,
            warmup_s=0.08,
            device_scale=DEVICE_SCALE,
        )
        fair = run_weighted_fairness(
            group_counts=(2,),
            ssd=ssd,
            duration_s=0.4,
            warmup_s=0.12,
            device_scale=DEVICE_SCALE,
        )
        return bw, fair

    bw, fair = run_once(benchmark, experiment)
    rows = [
        ["bandwidth", p.knob, f"{p.n_apps} apps", p.bandwidth_gib_s] for p in bw
    ] + [["weighted-fairness", p.knob, f"{p.n_groups} groups", p.fairness] for p in fair]
    table = render_table(
        ["experiment", "knob", "setting", "value"],
        rows,
        title="Generalizability -- Optane-like SSD (no GC, ~10us media)",
    )
    figure_output("optane_generalizability", table)

    # Same winners as on flash: schedulers cap bandwidth; io.cost/io.max
    # provide weighted fairness.
    none_peak = peak_bandwidth(bw, "none", 1)
    assert peak_bandwidth(bw, "bfq", 1) < 0.5 * none_peak
    fairness = {p.knob: p.fairness for p in fair}
    assert fairness["io.cost"] > 0.95
    assert fairness["io.max"] > 0.95
    assert fairness["mq-deadline"] < fairness["none"]
