"""D2: proportional fairness (§VI-A, Fig. 5 & Fig. 6).

Fairness is weighted Jain's index over per-cgroup bandwidth, with four
batch-apps per cgroup so the device is saturated (fairness is only
meaningful under congestion). Four experiment families:

* **Q3** uniform weights & workloads, scaling cgroup count (Fig. 5a/b);
* **Q4** linearly increasing weights (Fig. 5c/d);
* **Q5** non-uniform workloads: mixed request sizes (Fig. 6a), mixed
  access patterns (reported, not plotted in the paper), and mixed
  read/write with GC (Fig. 6b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import Scenario
from repro.core.knob_catalog import ALL_KNOB_NAMES, fairness_knobs
from repro.core.scenarios import (
    FairnessGroupSpec,
    fairness_specs,
    linear_weight_fairness_groups,
    uniform_fairness_groups,
)
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.iorequest import KIB, Pattern
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like


@dataclass(frozen=True)
class FairnessPoint:
    """One fairness bar + bandwidth line point (Fig. 5/6)."""

    knob: str
    experiment: str
    n_groups: int
    fairness: float
    aggregate_bandwidth_gib_s: float
    per_group_mib_s: dict[str, float]


def _fairness_scenario(
    experiment: str,
    knob_name: str,
    groups: list[FairnessGroupSpec],
    ssd: SsdModel,
    weighted: bool,
    apps_per_group: int,
    cores: int,
    duration_s: float,
    warmup_s: float,
    seed: int,
    device_scale: float,
    queue_depth: int,
) -> Scenario:
    scaled_model = ssd.scaled(device_scale)
    knob = fairness_knobs(
        groups, scaled_model, weighted=weighted, latency_scale=device_scale
    )[knob_name]
    specs = fairness_specs(groups, apps_per_group=apps_per_group, queue_depth=queue_depth)
    has_writes = any(group.read_fraction < 1.0 for group in groups)
    return Scenario(
        name=f"d2-{experiment}-{knob_name}-{len(groups)}g",
        knob=knob,
        apps=specs,
        ssd_model=ssd,
        cores=cores,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        device_scale=device_scale,
        preconditioned=has_writes,
    )


def _fairness_point(
    summary: ScenarioSummary,
    experiment: str,
    knob_name: str,
    groups: list[FairnessGroupSpec],
    device_scale: float,
) -> FairnessPoint:
    weights = {group.path: float(group.weight) for group in groups}
    group_stats = summary.cgroup_stats()
    return FairnessPoint(
        knob=knob_name,
        experiment=experiment,
        n_groups=len(groups),
        fairness=summary.fairness(weights),
        aggregate_bandwidth_gib_s=summary.equivalent_bandwidth_gib_s,
        per_group_mib_s={
            path: stats.bandwidth_mib_s * device_scale
            for path, stats in group_stats.items()
        },
    )


def run_uniform_fairness(
    group_counts: tuple[int, ...] = (2, 4, 8, 16),
    knob_names: tuple[str, ...] = ALL_KNOB_NAMES,
    ssd: SsdModel | None = None,
    apps_per_group: int = 4,
    cores: int = 10,
    duration_s: float = 0.6,
    warmup_s: float = 0.2,
    seed: int = 42,
    device_scale: float = 8.0,
    queue_depth: int = 64,
    executor: SweepExecutor | None = None,
) -> list[FairnessPoint]:
    """Q3: uniform weights/workloads, scaling the number of cgroups."""
    ssd = ssd or samsung_980pro_like()
    return _run_fairness_family(
        "uniform",
        [uniform_fairness_groups(n_groups) for n_groups in group_counts],
        knob_names,
        ssd,
        weighted=False,
        apps_per_group=apps_per_group,
        cores=cores,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        device_scale=device_scale,
        queue_depth=queue_depth,
        executor=executor,
    )


def _run_fairness_family(
    experiment: str,
    group_sets: list[list[FairnessGroupSpec]],
    knob_names: tuple[str, ...],
    ssd: SsdModel,
    weighted: bool,
    apps_per_group: int,
    cores: int,
    duration_s: float,
    warmup_s: float,
    seed: int,
    device_scale: float,
    queue_depth: int,
    executor: SweepExecutor | None,
) -> list[FairnessPoint]:
    """Fan one experiment family (all group sets x knobs) as one sweep."""
    executor = resolve_executor(executor)
    scenarios: list[Scenario] = []
    cells: list[tuple[str, list[FairnessGroupSpec]]] = []
    for groups in group_sets:
        for knob_name in knob_names:
            scenarios.append(
                _fairness_scenario(
                    experiment,
                    knob_name,
                    groups,
                    ssd,
                    weighted=weighted,
                    apps_per_group=apps_per_group,
                    cores=cores,
                    duration_s=duration_s,
                    warmup_s=warmup_s,
                    seed=seed,
                    device_scale=device_scale,
                    queue_depth=queue_depth,
                )
            )
            cells.append((knob_name, groups))
    return [
        _fairness_point(summary, experiment, knob_name, groups, device_scale)
        for (knob_name, groups), summary in zip(
            cells, executor.run_strict(scenarios)
        )
    ]


def run_weighted_fairness(
    group_counts: tuple[int, ...] = (2, 16),
    knob_names: tuple[str, ...] = ALL_KNOB_NAMES,
    ssd: SsdModel | None = None,
    apps_per_group: int = 4,
    cores: int = 10,
    duration_s: float = 0.6,
    warmup_s: float = 0.2,
    seed: int = 42,
    device_scale: float = 8.0,
    queue_depth: int = 64,
    executor: SweepExecutor | None = None,
) -> list[FairnessPoint]:
    """Q4: linearly increasing weights."""
    ssd = ssd or samsung_980pro_like()
    return _run_fairness_family(
        "weighted",
        [linear_weight_fairness_groups(n_groups) for n_groups in group_counts],
        knob_names,
        ssd,
        weighted=True,
        apps_per_group=apps_per_group,
        cores=cores,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        device_scale=device_scale,
        queue_depth=queue_depth,
        executor=executor,
    )


def mixed_size_groups() -> list[FairnessGroupSpec]:
    """Fig. 6a: one 4 KiB group vs one 256 KiB group, uniform weights."""
    return [
        FairnessGroupSpec(path="/tenants/small", weight=100, size=4 * KIB),
        FairnessGroupSpec(path="/tenants/large", weight=100, size=256 * KIB),
    ]


def mixed_pattern_groups() -> list[FairnessGroupSpec]:
    """Q5 access-pattern case: random vs sequential readers."""
    return [
        FairnessGroupSpec(path="/tenants/rand", weight=100, pattern=Pattern.RANDOM),
        FairnessGroupSpec(path="/tenants/seq", weight=100, pattern=Pattern.SEQUENTIAL),
    ]


def mixed_rw_groups() -> list[FairnessGroupSpec]:
    """Fig. 6b: one reader group vs one writer group (GC territory)."""
    return [
        FairnessGroupSpec(path="/tenants/readers", weight=100, read_fraction=1.0),
        FairnessGroupSpec(path="/tenants/writers", weight=100, read_fraction=0.0),
    ]


def run_mixed_workload_fairness(
    case: str,
    knob_names: tuple[str, ...] = ALL_KNOB_NAMES,
    ssd: SsdModel | None = None,
    apps_per_group: int = 4,
    cores: int = 10,
    duration_s: float = 0.8,
    warmup_s: float = 0.3,
    seed: int = 42,
    device_scale: float = 8.0,
    queue_depth: int = 64,
    executor: SweepExecutor | None = None,
) -> list[FairnessPoint]:
    """Q5: fairness under non-uniform workloads.

    ``case`` is one of ``sizes``, ``patterns``, ``readwrite``.
    """
    builders = {
        "sizes": mixed_size_groups,
        "patterns": mixed_pattern_groups,
        "readwrite": mixed_rw_groups,
    }
    if case not in builders:
        raise ValueError(f"unknown case {case!r}; options: {sorted(builders)}")
    ssd = ssd or samsung_980pro_like()
    return _run_fairness_family(
        case,
        [builders[case]()],
        knob_names,
        ssd,
        weighted=False,
        apps_per_group=apps_per_group,
        cores=cores,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        device_scale=device_scale,
        queue_depth=queue_depth,
        executor=executor,
    )
