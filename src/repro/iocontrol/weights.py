"""Hierarchical weight resolution.

Both BFQ (io.bfq.weight) and io.cost (io.weight) turn per-group absolute
weights into *relative* shares through the cgroup hierarchy: a group's
share at each level is its weight divided by the sum of its **active**
siblings' weights, and the leaf's share is the product down the path
(§IV-B's ``1/1001`` example). Inactive groups are excluded, which is what
makes weight-based sharing work-conserving between active tenants and,
as the paper notes, hard to configure statically in dynamic environments.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.cgroups.hierarchy import Cgroup


def hierarchical_shares(
    active_leaves: Iterable[Cgroup],
    weight_of: Callable[[Cgroup], float],
) -> dict[str, float]:
    """Relative share per active leaf path.

    ``weight_of`` reads the knob-specific absolute weight of a group
    (io.weight or io.bfq.weight; both default to 100 when unset).
    Returns ``{leaf_path: share}`` with shares summing to 1 when any leaf
    is active.
    """
    leaves = list(active_leaves)
    if not leaves:
        return {}

    # A node is "active" if it is an active leaf or has an active descendant.
    active_paths: set[str] = set()
    for leaf in leaves:
        active_paths.add(leaf.path)
        for ancestor in leaf.ancestors():
            active_paths.add(ancestor.path)

    shares: dict[str, float] = {}
    for leaf in leaves:
        share = 1.0
        node = leaf
        while node.parent is not None:
            siblings = [
                child
                for child in node.parent.children.values()
                if child.path in active_paths
            ]
            total = sum(weight_of(sibling) for sibling in siblings)
            share *= weight_of(node) / total if total > 0 else 0.0
            node = node.parent
        shares[leaf.path] = share
    return shares


def normalized_shares(shares: dict[str, float]) -> dict[str, float]:
    """Scale shares so they sum to exactly 1 (guards fp drift)."""
    total = sum(shares.values())
    if total <= 0:
        return {path: 0.0 for path in shares}
    return {path: value / total for path, value in shares.items()}
