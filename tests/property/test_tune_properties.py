"""Property-based tests (hypothesis) for the tuner's binary search.

The io.max space is the canonical monotone dial: above some unknown
threshold fraction the latency SLO is violated (control must tighten),
below it only bandwidth suffers (control should loosen). Against *any*
such threshold objective, per-dimension binary search must converge on
the threshold at the bisection rate and never evaluate out of bounds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.presets import samsung_980pro_like
from repro.tune.evaluator import Evaluation
from repro.tune.search import binary_search
from repro.tune.slo import SloScore, SloTerm
from repro.tune.space import build_space


def threshold_score(x: float, threshold: float) -> SloScore:
    """Latency violated above the threshold, bandwidth hurt below it."""
    lat = max(0.0, x - threshold)
    bw = max(0.0, (threshold - x) * 0.5)
    return SloScore(
        terms=(
            SloTerm("p99", "/t", 100.0, 100.0 * (1 + lat), lat),
            SloTerm("bandwidth", "/t", 40.0, 40.0 * (1 - bw), bw),
        )
    )


class ThresholdEvaluator:
    """Scores ``bps_fraction`` against a step threshold, recording calls."""

    def __init__(self, space, threshold: float):
        self.space = space
        self.threshold = threshold
        self.seen: list[float] = []

    def evaluate_values(self, values_list, fidelity=1.0):
        out = []
        for values in values_list:
            normalized = self.space.normalize(values)
            x = normalized["bps_fraction"]
            self.seen.append(x)
            out.append(
                Evaluation(
                    label=self.space.label(normalized),
                    values=normalized,
                    fidelity=fidelity,
                    score=threshold_score(x, self.threshold),
                )
            )
        return out


thresholds = st.floats(min_value=0.06, max_value=0.99, allow_nan=False)


class TestBinarySearchConvergence:
    @given(thresholds)
    @settings(max_examples=60, deadline=None)
    def test_converges_at_the_bisection_rate(self, threshold):
        space = build_space("io.max", samsung_980pro_like(), device_scale=8.0)
        budget = 20  # 10 iterations per dimension
        evaluator = ThresholdEvaluator(space, threshold)
        outcome = binary_search(space, evaluator, budget=budget)
        iters = budget // len(space.parameters())
        # The bps bracket starts at [0.05, 1.0] and halves every
        # iteration, so the best point is within the final bracket width
        # of the threshold.
        width = (1.0 - 0.05) / 2**iters
        assert abs(outcome.best.values["bps_fraction"] - threshold) <= width * 2

    @given(thresholds)
    @settings(max_examples=60, deadline=None)
    def test_midpoints_stay_in_bounds_and_bracket_monotonically(self, threshold):
        space = build_space("io.max", samsung_980pro_like(), device_scale=8.0)
        evaluator = ThresholdEvaluator(space, threshold)
        binary_search(space, evaluator, budget=12)
        assert all(0.05 <= x <= 1.0 for x in evaluator.seen)
        # Bisection: successive midpoints of the bps dimension move by
        # exactly half the previous step (the bracket halves each time).
        bps = evaluator.seen[:6]
        steps = [abs(b - a) for a, b in zip(bps, bps[1:])]
        for prev, nxt in zip(steps, steps[1:]):
            assert nxt <= prev / 2 + 1e-12

    @given(thresholds, thresholds)
    @settings(max_examples=30, deadline=None)
    def test_tighter_threshold_never_yields_looser_recommendation(self, t1, t2):
        lo, hi = sorted((t1, t2))
        space = build_space("io.max", samsung_980pro_like(), device_scale=8.0)
        best_lo = binary_search(space, ThresholdEvaluator(space, lo), 16).best
        best_hi = binary_search(space, ThresholdEvaluator(space, hi), 16).best
        assert best_lo.values["bps_fraction"] <= best_hi.values["bps_fraction"] + 1e-9
