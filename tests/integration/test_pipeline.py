"""End-to-end pipeline tests: apps -> cgroups -> knob -> device -> metrics.

These use small scaled scenarios that still exercise every code path.
"""

import pytest

from repro import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MIB,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
    run_scenario,
)
from repro.iorequest import GIB, OpType
from repro.ssd.presets import intel_optane_like, samsung_980pro_like
from repro.workloads.apps import batch_app, be_app, lc_app


def quick_scenario(knob, apps, **overrides):
    kwargs = dict(
        name="it",
        knob=knob,
        apps=apps,
        duration_s=0.2,
        warmup_s=0.05,
        device_scale=8.0,
        cores=4,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


KNOBS = [
    NoneKnob(),
    # Short aging so the starved best-effort app still completes I/O
    # within this test's 0.2 s run.
    MqDeadlineKnob(classes={"/t/a0": "realtime"}, prio_aging_expire_us=20_000.0),
    BfqKnob(weights={"/t/a0": 500}),
    IoMaxKnob(limits={"/t/a0": {"rbps": 50 * MIB}}),
    IoLatencyKnob(targets_us={"/t/a0": 500.0}),
    IoCostKnob(weights={"/t/a0": 500}),
]


@pytest.mark.parametrize("knob", KNOBS, ids=lambda k: k.label)
def test_every_knob_end_to_end(knob):
    apps = [batch_app(f"a{i}", f"/t/a{i}", queue_depth=16) for i in range(2)]
    result = run_scenario(quick_scenario(knob, apps))
    for app in apps:
        stats = result.app_stats(app.name)
        assert stats.ios > 0, f"{knob.label}: {app.name} completed nothing"
        assert stats.latency is not None
    assert result.aggregate_bandwidth_gib_s > 0


def test_latencies_are_physically_plausible():
    result = run_scenario(
        quick_scenario(NoneKnob(), [lc_app("lc", "/t/lc")], device_scale=1.0, cores=1)
    )
    stats = result.app_stats("lc")
    # QD1 read: device ~63-75us + CPU ~8us.
    assert 60.0 < stats.latency.p50_us < 120.0
    assert stats.latency.p99_us < 220.0


def test_aggregate_saturation_close_to_device_nominal():
    ssd = samsung_980pro_like()
    apps = [batch_app(f"b{i}", f"/t/b{i}", queue_depth=64) for i in range(4)]
    result = run_scenario(
        quick_scenario(NoneKnob(), apps, device_scale=4.0, cores=10)
    )
    equivalent = result.equivalent_bandwidth_gib_s
    assert 2.5 < equivalent < 3.4  # paper: 2.94 GiB/s


def test_multi_device_round_robin():
    apps = [batch_app(f"b{i}", f"/t/b{i}", queue_depth=32) for i in range(4)]
    result = run_scenario(
        quick_scenario(NoneKnob(), apps, num_devices=2, cores=8)
    )
    host = result.host
    assert len(host.devices) == 2
    for device in host.devices.devices:
        assert device.requests_completed[OpType.READ] > 0


def test_two_devices_double_bandwidth():
    apps = [batch_app(f"b{i}", f"/t/b{i}", queue_depth=64) for i in range(4)]
    one = run_scenario(quick_scenario(NoneKnob(), apps, num_devices=1, cores=8))
    two = run_scenario(quick_scenario(NoneKnob(), apps, num_devices=2, cores=8))
    assert two.aggregate_bandwidth_gib_s > 1.6 * one.aggregate_bandwidth_gib_s


def test_optane_preset_runs():
    result = run_scenario(
        quick_scenario(
            NoneKnob(),
            [lc_app("lc", "/t/lc")],
            ssd_model=intel_optane_like(),
            device_scale=1.0,
            cores=1,
        )
    )
    # Optane QD1 latency is ~10us + CPU.
    assert result.app_stats("lc").latency.p50_us < 40.0


def test_write_workload_with_preconditioning_is_slower():
    writer = [batch_app("w", "/t/w", read_fraction=0.0, queue_depth=32)]
    fresh = run_scenario(quick_scenario(NoneKnob(), writer, preconditioned=False))
    steady = run_scenario(quick_scenario(NoneKnob(), writer, preconditioned=True))
    assert (
        steady.aggregate_bandwidth_gib_s < 0.7 * fresh.aggregate_bandwidth_gib_s
    )


def test_prio_class_read_from_own_group_only():
    knob = MqDeadlineKnob(classes={"/t/a0": "idle"})
    apps = [batch_app("a0", "/t/a0", queue_depth=8), batch_app("a1", "/t/a1", queue_depth=8)]
    result = run_scenario(quick_scenario(knob, apps))
    host = result.host
    assert host.apps["a0"].prio_class == 3  # idle
    assert host.apps["a1"].prio_class == 0  # unset


def test_deterministic_given_seed():
    apps = [batch_app("a", "/t/a", queue_depth=8)]
    first = run_scenario(quick_scenario(NoneKnob(), apps, seed=7))
    second = run_scenario(quick_scenario(NoneKnob(), apps, seed=7))
    assert first.app_stats("a").ios == second.app_stats("a").ios
    assert first.app_stats("a").latency.p99_us == second.app_stats("a").latency.p99_us


def test_different_seeds_differ():
    apps = [batch_app("a", "/t/a", queue_depth=8)]
    first = run_scenario(quick_scenario(NoneKnob(), apps, seed=1))
    second = run_scenario(quick_scenario(NoneKnob(), apps, seed=2))
    assert (
        first.app_stats("a").latency.p99_us != second.app_stats("a").latency.p99_us
    )


def test_describe_renders():
    apps = [batch_app("a", "/t/a", queue_depth=8)]
    result = run_scenario(quick_scenario(NoneKnob(), apps))
    text = result.describe()
    assert "aggregate bandwidth" in text
    assert "a" in text


def test_fairness_helper_defaults_to_uniform_weights():
    apps = [batch_app(f"b{i}", f"/t/b{i}", queue_depth=32) for i in range(2)]
    result = run_scenario(quick_scenario(NoneKnob(), apps))
    assert 0.9 <= result.fairness() <= 1.0


def test_fairness_helper_rejects_missing_weights():
    apps = [batch_app("a", "/t/a", queue_depth=8)]
    result = run_scenario(quick_scenario(NoneKnob(), apps))
    with pytest.raises(ValueError):
        result.fairness({"/t/other": 1.0})
