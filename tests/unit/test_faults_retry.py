"""RetryCoordinator unit tests: backoff math, bounded attempts, watchdog.

These drive the coordinator directly against a bare :class:`Simulator`
with stub resubmit/deliver callbacks — no device, no host — so each
policy clause (attempt bound, jitter envelope, timeout-then-stale) is
pinned in isolation from the stack's queueing behaviour.
"""

import random

import pytest

from repro.faults import RetryCoordinator, RetryPolicy, backoff_delay
from repro.iorequest import IoRequest, OpType, Pattern
from repro.sim.engine import Simulator


def make_request(name: str = "app0") -> IoRequest:
    return IoRequest(name, "/tenants/a", OpType.READ, Pattern.RANDOM, 4096)


class Harness:
    """A coordinator wired to recording stubs."""

    def __init__(self, policy: RetryPolicy, seed: int = 7):
        self.sim = Simulator()
        self.resubmitted: list[tuple[float, IoRequest]] = []
        self.failures: list[tuple[float, IoRequest]] = []
        self.faults = 0
        self.coordinator = RetryCoordinator(
            self.sim,
            policy,
            random.Random(seed),
            resubmit=lambda req: self.resubmitted.append((self.sim.now, req)),
            deliver_failure=lambda req: self.failures.append((self.sim.now, req)),
            on_fault=lambda req: setattr(self, "faults", self.faults + 1),
        )


class TestBackoffDelay:
    def test_first_attempt_has_no_backoff(self):
        with pytest.raises(ValueError):
            backoff_delay(RetryPolicy(), 1, random.Random(0))

    def test_exponential_progression_without_jitter(self):
        policy = RetryPolicy(backoff_base_us=100.0, backoff_mult=2.0, jitter=0.0)
        rng = random.Random(0)
        assert backoff_delay(policy, 2, rng) == 100.0
        assert backoff_delay(policy, 3, rng) == 200.0
        assert backoff_delay(policy, 4, rng) == 400.0

    def test_jitter_envelope(self):
        """Every jittered delay lands inside base * (1 ± jitter)."""
        policy = RetryPolicy(backoff_base_us=100.0, backoff_mult=1.0, jitter=0.25)
        rng = random.Random(123)
        delays = [backoff_delay(policy, 2, rng) for _ in range(500)]
        assert all(75.0 <= d <= 125.0 for d in delays)
        # The envelope is actually used, not collapsed to a point.
        assert max(delays) - min(delays) > 25.0

    def test_zero_base_skips_rng_draw(self):
        """Disabling backoff must not shift the retry RNG stream."""
        policy = RetryPolicy(backoff_base_us=0.0, jitter=0.5)
        rng = random.Random(42)
        before = rng.getstate()
        assert backoff_delay(policy, 2, rng) == 0.0
        assert rng.getstate() == before

    def test_determinism_per_seed(self):
        policy = RetryPolicy(backoff_base_us=100.0, jitter=0.3)
        a = [backoff_delay(policy, 2, random.Random(9)) for _ in range(1)]
        b = [backoff_delay(policy, 2, random.Random(9)) for _ in range(1)]
        assert a == b


class TestResolve:
    def test_clean_completion_passes_through(self):
        h = Harness(RetryPolicy())
        req = make_request()
        assert h.coordinator.resolve(req) is True
        assert not h.resubmitted and not h.failures and h.faults == 0

    def test_failed_completion_is_retried_after_backoff(self):
        policy = RetryPolicy(max_attempts=3, backoff_base_us=100.0, jitter=0.0)
        h = Harness(policy)
        req = make_request()
        req.failed = True
        assert h.coordinator.resolve(req) is False
        assert not h.resubmitted  # backoff pending, not immediate
        h.sim.run()
        assert len(h.resubmitted) == 1
        when, retried = h.resubmitted[0]
        assert when == 100.0
        assert retried is req  # same object: submit_time preserved
        assert retried.attempts == 2 and retried.failed is False
        assert h.coordinator.stats.retries == 1
        assert h.coordinator.stats.device_errors == 1
        assert h.faults == 1

    def test_attempts_are_bounded(self):
        """max_attempts failures => delivered as failure, never retried again."""
        policy = RetryPolicy(max_attempts=3, backoff_base_us=10.0, jitter=0.0)
        h = Harness(policy)
        req = make_request()
        for _ in range(policy.max_attempts):
            req.failed = True
            assert h.coordinator.resolve(req) is False
            h.sim.run()
        assert len(h.resubmitted) == 2  # attempts 2 and 3
        assert len(h.failures) == 1
        assert h.failures[0][1] is req and req.failed is True
        stats = h.coordinator.stats
        assert stats.device_errors == 3
        assert stats.retries == 2
        assert stats.failures_delivered == 1
        assert stats.backoff_us == 10.0 + 20.0

    def test_no_retry_policy_delivers_first_failure(self):
        h = Harness(RetryPolicy(max_attempts=1))
        req = make_request()
        req.failed = True
        assert h.coordinator.resolve(req) is False
        assert h.failures and not h.resubmitted


class TestWatchdog:
    POLICY = RetryPolicy(
        max_attempts=2, backoff_base_us=50.0, jitter=0.0, timeout_us=1_000.0
    )

    def test_timeout_fires_on_stalled_request(self):
        """An attempt that never completes is abandoned and retried."""
        h = Harness(self.POLICY)
        req = make_request()
        h.coordinator.watch(req)
        assert req.timeout_event is not None and h.sim.event_active(req.timeout_event)
        h.sim.run()  # nothing ever completes req: the watchdog fires
        assert req.abandoned is True
        assert h.coordinator.stats.timeouts == 1
        assert len(h.resubmitted) == 1
        when, clone = h.resubmitted[0]
        assert when == 1_000.0 + 50.0  # watchdog expiry + backoff
        assert clone is not req and clone.attempts == 2
        assert clone.submit_time == req.submit_time

    def test_stale_completion_is_dropped(self):
        """The abandoned original's late completion never reaches the app."""
        h = Harness(self.POLICY)
        req = make_request()
        h.coordinator.watch(req)
        h.sim.run_until(2_000.0)  # watchdog fired at t=1000
        assert req.abandoned
        assert h.coordinator.resolve(req) is False  # device finally answers
        assert h.coordinator.stats.stale_completions == 1
        assert not h.failures  # dropped silently, not delivered as failure

    def test_completion_before_timeout_disarms_watchdog(self):
        h = Harness(self.POLICY)
        req = make_request()
        h.coordinator.watch(req)
        assert h.coordinator.resolve(req) is True
        assert req.timeout_event is None
        h.sim.run()  # the cancelled watchdog must not fire
        assert h.coordinator.stats.timeouts == 0 and not h.resubmitted

    def test_exhausted_timeout_delivers_failure_at_expiry(self):
        h = Harness(self.POLICY)
        req = make_request()
        req.attempts = self.POLICY.max_attempts  # last attempt already
        h.coordinator.watch(req)
        h.sim.run()
        assert len(h.failures) == 1
        when, failed = h.failures[0]
        assert when == 1_000.0  # at watchdog expiry, not device completion
        assert failed is req and req.failed is True
        assert req.complete_time == 1_000.0
        assert h.coordinator.stats.failures_delivered == 1

    def test_zero_timeout_disables_watchdog(self):
        h = Harness(RetryPolicy(timeout_us=0.0))
        req = make_request()
        h.coordinator.watch(req)
        assert req.timeout_event is None
        assert h.sim.pending_events() == 0
