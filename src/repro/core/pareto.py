"""Pareto-front computation for the D3 trade-off study (Fig. 7).

Each knob configuration yields one point: x = aggregated bandwidth
(utilization, higher is better) and y = the priority app's metric
(bandwidth: higher is better; P99 latency: lower is better). The front
shows what trade-offs a knob can express; its size and span quantify
granularity (MQ-DL's three coarse clusters vs io.cost's smooth curve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class TradeoffPoint:
    """One knob configuration's outcome."""

    knob: str
    config_label: str
    be_variant: str
    aggregate_gib_s: float
    priority_metric: float
    # True when priority_metric is "higher is better" (bandwidth);
    # False for latency.
    metric_maximize: bool


def _dominates(a: TradeoffPoint, b: TradeoffPoint) -> bool:
    """Does ``a`` weakly dominate ``b`` (and strictly on one axis)?"""
    if a.metric_maximize:
        better_y = a.priority_metric >= b.priority_metric
        strictly_y = a.priority_metric > b.priority_metric
    else:
        better_y = a.priority_metric <= b.priority_metric
        strictly_y = a.priority_metric < b.priority_metric
    better_x = a.aggregate_gib_s >= b.aggregate_gib_s
    strictly_x = a.aggregate_gib_s > b.aggregate_gib_s
    return better_x and better_y and (strictly_x or strictly_y)


def pareto_front(points: Sequence[TradeoffPoint]) -> list[TradeoffPoint]:
    """Non-dominated subset, sorted by aggregate bandwidth."""
    front = [
        p
        for p in points
        if not any(_dominates(q, p) for q in points if q is not p)
    ]
    return sorted(front, key=lambda p: p.aggregate_gib_s)


def front_span(front: Sequence[TradeoffPoint]) -> tuple[float, float]:
    """(x-span, y-span) of a front: how much trade-off room it covers."""
    if not front:
        return (0.0, 0.0)
    xs = [p.aggregate_gib_s for p in front]
    ys = [p.priority_metric for p in front]
    return (max(xs) - min(xs), max(ys) - min(ys))


def distinct_clusters(
    front: Sequence[TradeoffPoint], x_resolution: float, y_resolution: float
) -> int:
    """Number of distinguishable operating points on a front.

    Two points within both resolutions of each other count as one
    cluster -- this is how we quantify MQ-DL's "coarse-grained (3
    options)" trade-offs versus a smooth curve (O6 vs O9).
    """
    if x_resolution <= 0 or y_resolution <= 0:
        raise ValueError("resolutions must be positive")
    clusters: list[TradeoffPoint] = []
    for point in front:
        if not any(
            abs(point.aggregate_gib_s - c.aggregate_gib_s) <= x_resolution
            and abs(point.priority_metric - c.priority_metric) <= y_resolution
            for c in clusters
        ):
            clusters.append(point)
    return len(clusters)
