"""Unit tests for Pareto-front computation."""

import pytest

from repro.core.pareto import TradeoffPoint, distinct_clusters, front_span, pareto_front


def point(x, y, maximize=True, label=""):
    return TradeoffPoint(
        knob="k",
        config_label=label or f"{x},{y}",
        be_variant="rand-4k",
        aggregate_gib_s=x,
        priority_metric=y,
        metric_maximize=maximize,
    )


class TestParetoFront:
    def test_dominated_point_removed_maximize(self):
        good = point(2.0, 10.0)
        bad = point(1.0, 5.0)
        assert pareto_front([good, bad]) == [good]

    def test_dominated_point_removed_minimize(self):
        good = point(2.0, 100.0, maximize=False)
        bad = point(1.0, 200.0, maximize=False)
        assert pareto_front([good, bad]) == [good]

    def test_tradeoff_points_both_kept(self):
        a = point(1.0, 10.0)
        b = point(2.0, 5.0)
        front = pareto_front([a, b])
        assert set(front) == {a, b}

    def test_front_sorted_by_x(self):
        points = [point(3.0, 1.0), point(1.0, 9.0), point(2.0, 5.0)]
        front = pareto_front(points)
        xs = [p.aggregate_gib_s for p in front]
        assert xs == sorted(xs)

    def test_duplicate_points_kept(self):
        a = point(1.0, 1.0)
        b = point(1.0, 1.0)
        assert len(pareto_front([a, b])) == 2

    def test_empty(self):
        assert pareto_front([]) == []


class TestSpanAndClusters:
    def test_span(self):
        front = [point(1.0, 10.0), point(3.0, 2.0)]
        assert front_span(front) == (2.0, 8.0)

    def test_span_empty(self):
        assert front_span([]) == (0.0, 0.0)

    def test_clusters_merge_close_points(self):
        front = [point(1.0, 10.0), point(1.01, 10.1), point(3.0, 2.0)]
        assert distinct_clusters(front, x_resolution=0.1, y_resolution=0.5) == 2

    def test_clusters_resolution_validated(self):
        with pytest.raises(ValueError):
            distinct_clusters([], x_resolution=0.0, y_resolution=1.0)

    def test_all_distinct(self):
        front = [point(float(i), float(i)) for i in range(5)]
        assert distinct_clusters(front, x_resolution=0.1, y_resolution=0.1) == 5
