"""Measurement layer: the simulation's fio/sar/perf output.

Latency percentiles and CDFs, bandwidth aggregation and time series,
Jain's (weighted) fairness index, and per-app completion recording over
measurement windows.
"""

from repro.metrics.latency import LatencySummary, cdf, percentile, summarize_latencies
from repro.metrics.fairness import jain_index, weighted_jain_index
from repro.metrics.timeseries import bandwidth_series
from repro.metrics.collector import AppWindowStats, MetricsCollector

__all__ = [
    "percentile",
    "cdf",
    "LatencySummary",
    "summarize_latencies",
    "jain_index",
    "weighted_jain_index",
    "bandwidth_series",
    "MetricsCollector",
    "AppWindowStats",
]
