"""Unit tests for the SSD performance model."""

import pytest

from repro.iorequest import GIB, KIB, OpType, Pattern
from repro.ssd.model import GcParams, SsdModel, describe_model
from repro.ssd.presets import get_preset, intel_optane_like, samsung_980pro_like


def make_model(**overrides) -> SsdModel:
    params = dict(
        name="test",
        parallelism=10,
        read_fixed_us=50.0,
        write_fixed_us=100.0,
        seq_read_fixed_us=40.0,
        seq_write_fixed_us=80.0,
        read_bus_bps=1 * GIB,
        write_bus_bps=0.5 * GIB,
    )
    params.update(overrides)
    return SsdModel(**params)


class TestValidation:
    def test_parallelism_must_be_positive(self):
        with pytest.raises(ValueError):
            make_model(parallelism=0)

    @pytest.mark.parametrize(
        "attr",
        ["read_fixed_us", "write_fixed_us", "seq_read_fixed_us", "seq_write_fixed_us"],
    )
    def test_fixed_costs_must_be_positive(self, attr):
        with pytest.raises(ValueError):
            make_model(**{attr: 0.0})

    def test_bus_bandwidth_must_be_positive(self):
        with pytest.raises(ValueError):
            make_model(read_bus_bps=0)

    def test_nvme_qd_must_be_positive(self):
        with pytest.raises(ValueError):
            make_model(nvme_max_qd=0)

    def test_gc_waf_below_one_rejected(self):
        with pytest.raises(ValueError):
            GcParams(write_amplification=0.5)

    def test_gc_watermarks_ordered(self):
        with pytest.raises(ValueError):
            GcParams(high_watermark_bytes=1, low_watermark_bytes=2)


class TestCosts:
    def test_fixed_cost_by_op_and_pattern(self):
        model = make_model()
        assert model.fixed_cost_us(OpType.READ, Pattern.RANDOM) == 50.0
        assert model.fixed_cost_us(OpType.READ, Pattern.SEQUENTIAL) == 40.0
        assert model.fixed_cost_us(OpType.WRITE, Pattern.RANDOM) == 100.0
        assert model.fixed_cost_us(OpType.WRITE, Pattern.SEQUENTIAL) == 80.0

    def test_bus_cost_scales_with_size(self):
        model = make_model()
        small = model.bus_cost_us(OpType.READ, 4 * KIB)
        large = model.bus_cost_us(OpType.READ, 64 * KIB)
        assert large == pytest.approx(small * 16)

    def test_bus_cost_direction_asymmetry(self):
        model = make_model()
        assert model.bus_cost_us(OpType.WRITE, KIB) > model.bus_cost_us(OpType.READ, KIB)


class TestSaturation:
    def test_small_requests_are_iops_bound(self):
        model = make_model()
        iops = model.saturation_iops(OpType.READ, Pattern.RANDOM, 4 * KIB)
        # Flash bound: 10 units / 50us = 200k IOPS (bus bound higher).
        assert iops == pytest.approx(200_000.0)

    def test_large_requests_are_bus_bound(self):
        model = make_model()
        bw = model.saturation_bandwidth_bps(OpType.READ, Pattern.RANDOM, 1024 * KIB)
        assert bw == pytest.approx(1 * GIB, rel=0.01)

    def test_bandwidth_is_iops_times_size(self):
        model = make_model()
        size = 4 * KIB
        assert model.saturation_bandwidth_bps(
            OpType.READ, Pattern.RANDOM, size
        ) == pytest.approx(model.saturation_iops(OpType.READ, Pattern.RANDOM, size) * size)


class TestScaling:
    def test_scale_one_returns_same_object(self):
        model = make_model()
        assert model.scaled(1.0) is model

    def test_scale_below_one_rejected(self):
        with pytest.raises(ValueError):
            make_model().scaled(0.5)

    def test_scaling_divides_saturation(self):
        model = make_model(parallelism=20)
        scaled = model.scaled(4.0)
        from repro.iorequest import OpType, Pattern

        assert scaled.saturation_iops(
            OpType.READ, Pattern.RANDOM, 4 * KIB
        ) == pytest.approx(
            model.saturation_iops(OpType.READ, Pattern.RANDOM, 4 * KIB) / 4
        )
        assert scaled.read_bus_bps == pytest.approx(model.read_bus_bps / 4)

    def test_scaling_is_pure_time_dilation(self):
        model = make_model()
        scaled = model.scaled(8.0)
        # Parallelism (and thus every in-flight regime) is preserved;
        # each unit just runs slower.
        assert scaled.parallelism == model.parallelism
        assert scaled.read_fixed_us == pytest.approx(model.read_fixed_us * 8)
        assert scaled.nvme_max_qd == model.nvme_max_qd

    def test_scaled_name_is_annotated(self):
        assert "1/4" in make_model().scaled(4.0).name


class TestPresets:
    def test_flash_preset_saturation_close_to_paper(self):
        ssd = samsung_980pro_like()
        bw = ssd.saturation_bandwidth_bps(OpType.READ, Pattern.RANDOM, 4 * KIB)
        # Paper's "none" peak: 2.94 GiB/s on one SSD.
        assert 2.5 * GIB < bw < 3.3 * GIB

    def test_optane_is_low_latency_and_symmetric(self):
        optane = intel_optane_like()
        flash = samsung_980pro_like()
        assert optane.read_fixed_us < flash.read_fixed_us / 3
        ratio = optane.write_fixed_us / optane.read_fixed_us
        assert ratio < 1.5  # near-symmetric

    def test_optane_has_no_gc(self):
        assert not intel_optane_like().gc_enabled

    def test_get_preset_unknown_name(self):
        with pytest.raises(KeyError):
            get_preset("floppy")

    def test_describe_model_mentions_cases(self):
        text = describe_model(samsung_980pro_like())
        assert "4 KiB rand read" in text
        assert "GiB/s" in text
