"""Unit tests for fleet/tenant specs: validation, round-trips, overrides."""

import json

import pytest

from repro.fleet.spec import (
    FleetSpec,
    TenantSpec,
    apply_slo_overrides,
    demo_fleet,
    load_fleet,
    save_fleet,
)
from repro.ssd.model import SsdModel
from repro.tune.slo import parse_slo
from repro.workloads.apps import LC_QUEUE_DEPTH


class TestTenantSpec:
    def test_cgroup_and_job_spec(self):
        tenant = TenantSpec("lc-api", kind="lc", slo="p99<=150")
        assert tenant.cgroup == "/tenants/lc-api"
        job = tenant.job_spec()
        assert job.cgroup_path == "/tenants/lc-api"
        assert job.queue_depth == LC_QUEUE_DEPTH
        assert job.app_class == "lc"

    def test_batch_job_spec_carries_size_and_direction(self):
        tenant = TenantSpec(
            "log", kind="batch", size_kib=64, read_fraction=0.0, slo="bw>=100"
        )
        job = tenant.job_spec()
        assert job.size == 64 * 1024
        assert job.read_fraction == 0.0
        assert job.app_class == "batch"

    def test_group_slo_and_objective_count(self):
        both = TenantSpec("a", slo="p99<=100,bw>=40")
        assert both.objective_count == 2
        group = both.group_slo()
        assert group.p99_latency_us == 100.0
        assert group.min_bandwidth_mib_s == 40.0
        assert TenantSpec("b").group_slo() is None
        assert TenantSpec("b").objective_count == 0
        assert TenantSpec("c", slo="p99<=50").p99_target_us == 50.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="Bad_Name"),
            dict(name="x", kind="database"),
            dict(name="x", size_kib=0),
            dict(name="x", queue_depth=0),
            dict(name="x", read_fraction=1.5),
            dict(name="x", slo="p99<100"),
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            TenantSpec(**kwargs)

    def test_json_round_trip(self):
        tenant = TenantSpec(
            "scan", kind="batch", size_kib=256, queue_depth=128, slo="bw>=900"
        )
        assert TenantSpec.from_json_dict(tenant.to_json_dict()) == tenant


class TestFleetSpec:
    def test_slots_are_host_major(self):
        fleet = demo_fleet()
        assert fleet.slots() == ("h0d0", "h0d1", "h1d0", "h1d1")
        assert fleet.num_devices == 4

    def test_demo_fleet_is_well_formed(self):
        fleet = demo_fleet()
        assert isinstance(fleet.ssd_model(), SsdModel)
        assert len(fleet.tenants) == 5
        assert fleet.tenant("lc-api").kind == "lc"
        with pytest.raises(KeyError):
            fleet.tenant("nope")
        # Real placement pressure: more tenants than devices would fit
        # one-per-device only if capacity allows, and at least one
        # latency-critical tenant must share.
        assert len(fleet.tenants) > fleet.num_devices

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(hosts=0),
            dict(devices_per_host=0),
            dict(tenants=()),
            dict(max_tenants_per_device=0),
            dict(saturation_threshold=0.0),
            dict(device="tape"),
            dict(tenants=(TenantSpec("a"), TenantSpec("a"))),
        ],
    )
    def test_validation_rejects(self, kwargs):
        base = dict(
            name="f", hosts=1, devices_per_host=1, tenants=(TenantSpec("a"),)
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            FleetSpec(**base)

    def test_file_round_trip(self, tmp_path):
        fleet = demo_fleet()
        path = tmp_path / "fleet.json"
        save_fleet(fleet, str(path))
        assert load_fleet(str(path)) == fleet
        # The file is plain sorted JSON an operator can hand-edit.
        doc = json.loads(path.read_text())
        assert doc["name"] == "demo-fleet"
        assert [t["name"] for t in doc["tenants"]] == list(fleet.tenant_names())


class TestSloOverrides:
    def test_override_replaces_tenant_terms(self):
        fleet = demo_fleet()
        spec = parse_slo("/tenants/lc-api:p99<=99;/tenants/batch-etl:bw>=123")
        updated = apply_slo_overrides(fleet, spec)
        assert updated.tenant("lc-api").slo == "p99<=99"
        assert updated.tenant("batch-etl").slo == "bw>=123"
        # Untouched tenants keep their declared SLOs.
        assert updated.tenant("lc-kv").slo == fleet.tenant("lc-kv").slo

    def test_unknown_tenant_is_an_error(self):
        with pytest.raises(ValueError, match="no fleet tenant"):
            apply_slo_overrides(demo_fleet(), parse_slo("/tenants/ghost:bw>=1"))

    def test_util_clause_is_rejected(self):
        spec = parse_slo("/tenants/lc-api:p99<=99;util>=0.5")
        with pytest.raises(ValueError, match="util>="):
            apply_slo_overrides(demo_fleet(), spec)
