"""The paper's app archetypes (§II-A, §III).

* **LC-apps** need low P99 tail latency: 4 KiB random reads at QD=1.
* **batch-apps** need high bandwidth: 4 KiB random reads at QD=256
  (request size and direction overridable for the mixed-workload
  fairness experiments).
* **BE-apps** have no requirements; configured like batch-apps and used
  as background load/interference.
"""

from __future__ import annotations

from repro.iorequest import KIB, Pattern
from repro.workloads.spec import ActivityWindow, JobSpec

LC_QUEUE_DEPTH = 1
BATCH_QUEUE_DEPTH = 256


def lc_app(
    name: str,
    cgroup_path: str,
    size: int = 4 * KIB,
    windows: tuple[ActivityWindow, ...] = (ActivityWindow(0.0),),
) -> JobSpec:
    """A latency-critical app: QD=1 random reads."""
    return JobSpec(
        name=name,
        cgroup_path=cgroup_path,
        size=size,
        pattern=Pattern.RANDOM,
        read_fraction=1.0,
        queue_depth=LC_QUEUE_DEPTH,
        windows=windows,
        app_class="lc",
    )


def batch_app(
    name: str,
    cgroup_path: str,
    size: int = 4 * KIB,
    pattern: Pattern = Pattern.RANDOM,
    read_fraction: float = 1.0,
    queue_depth: int = BATCH_QUEUE_DEPTH,
    rate_limit_bps: float | None = None,
    windows: tuple[ActivityWindow, ...] = (ActivityWindow(0.0),),
) -> JobSpec:
    """A throughput-oriented batch app: deep-queue random reads."""
    return JobSpec(
        name=name,
        cgroup_path=cgroup_path,
        size=size,
        pattern=pattern,
        read_fraction=read_fraction,
        queue_depth=queue_depth,
        rate_limit_bps=rate_limit_bps,
        windows=windows,
        app_class="batch",
    )


def be_app(
    name: str,
    cgroup_path: str,
    size: int = 4 * KIB,
    pattern: Pattern = Pattern.RANDOM,
    read_fraction: float = 1.0,
    queue_depth: int = BATCH_QUEUE_DEPTH,
    windows: tuple[ActivityWindow, ...] = (ActivityWindow(0.0),),
) -> JobSpec:
    """A best-effort app: background load with no requirements."""
    return JobSpec(
        name=name,
        cgroup_path=cgroup_path,
        size=size,
        pattern=pattern,
        read_fraction=read_fraction,
        queue_depth=queue_depth,
        windows=windows,
        app_class="be",
    )
