"""The I/O request record shared across the whole pipeline.

A request is created by an app, timestamped as it traverses the stack
(submit -> cgroup throttling -> scheduler -> device -> completion), and
finally handed to the metrics layer. ``__slots__`` keeps the hot path
allocation-light: a 60-second scenario creates millions of these.
"""

from __future__ import annotations

import enum


class OpType(enum.IntEnum):
    """Request direction."""

    READ = 0
    WRITE = 1


class Pattern(enum.IntEnum):
    """Access pattern of the issuing job (per-job, like fio's readwrite=)."""

    RANDOM = 0
    SEQUENTIAL = 1


KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


class IoRequest:
    """One block I/O request flowing through the simulated stack.

    Timestamps (microseconds, simulated clock):

    * ``submit_time`` -- the app issued the request (clock starts for
      app-visible latency).
    * ``queued_time`` -- admitted past cgroup throttling into the scheduler.
    * ``dispatch_time`` -- dispatched from the scheduler to the device.
    * ``device_start_time`` -- entered device service (past the NVMe
      queue-depth boundary); ``device_start_time - dispatch_time`` is the
      boundary wait.
    * ``complete_time`` -- device completion reached the app.
    """

    __slots__ = (
        "app_name",
        "cgroup_path",
        "op",
        "pattern",
        "size",
        "device_index",
        "prio_class",
        "submit_time",
        "queued_time",
        "dispatch_time",
        "device_start_time",
        "complete_time",
        "abs_cost",
        "attempts",
        "failed",
        "abandoned",
        "timeout_event",
    )

    def __init__(
        self,
        app_name: str,
        cgroup_path: str,
        op: OpType,
        pattern: Pattern,
        size: int,
        device_index: int = 0,
        prio_class: int = 0,
    ):
        self.app_name = app_name
        self.cgroup_path = cgroup_path
        self.op = op
        self.pattern = pattern
        self.size = size
        self.device_index = device_index
        self.prio_class = prio_class
        self.submit_time = 0.0
        self.queued_time = 0.0
        self.dispatch_time = 0.0
        self.device_start_time = 0.0
        self.complete_time = 0.0
        # Filled in by the io.cost controller: the request's absolute cost
        # in device-microseconds according to the configured io.cost.model.
        self.abs_cost = 0.0
        # Fault-injection state (see repro.faults.retry): attempt number
        # of the current submission, device-error flag for this attempt,
        # watchdog-abandoned flag (completion will be dropped as stale)
        # and the armed watchdog event handle, if any.
        self.attempts = 1
        self.failed = False
        self.abandoned = False
        self.timeout_event = None

    def clone_for_retry(self) -> "IoRequest":
        """A fresh attempt replacing a watchdog-abandoned submission.

        The clone keeps ``submit_time`` (app-visible latency spans every
        attempt) and the attempt count of the abandoned original; stack
        timestamps reset as the clone re-enters the block layer.
        """
        clone = IoRequest(
            self.app_name,
            self.cgroup_path,
            self.op,
            self.pattern,
            self.size,
            self.device_index,
            self.prio_class,
        )
        clone.submit_time = self.submit_time
        clone.attempts = self.attempts
        return clone

    @property
    def latency_us(self) -> float:
        """App-visible completion latency."""
        return self.complete_time - self.submit_time

    @property
    def throttle_wait_us(self) -> float:
        """Time spent held back by cgroup I/O control."""
        return self.queued_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IoRequest({self.app_name}, {self.op.name}, {self.pattern.name}, "
            f"{self.size}B, dev={self.device_index})"
        )
