"""repro.prof: simulator self-observability and continuous benchmarking.

Where :mod:`repro.obs` answers "where does a *request's* latency go?",
``repro.prof`` answers "where does the *simulator's* wall-clock time
go?" — the prerequisite for the engine speedup work (ROADMAP item 2):
a hot-path change is only a win if the per-phase breakdown says so.

Two layers:

* :class:`SimProfiler` — near-zero-overhead-when-disabled phase timers
  over the engine hot path. Every fired event callback is attributed to
  a phase of the request pipeline (workload issue, throttle decision,
  scheduler dispatch, device service, fault injection, obs emission, …)
  by the module that owns the callback, plus explicit nested phase
  timers and allocation/event counters. Enable by passing
  ``prof=ProfConfig()`` to a :class:`~repro.core.config.Scenario`; read
  the :class:`SimProfile` back from ``ScenarioResult.profile``. With
  ``prof=None`` (the default) the simulator runs the exact
  un-instrumented event loop — the same pay-for-what-you-use contract
  :mod:`repro.obs` honours, guarded by the same overhead benchmark.
* :mod:`repro.prof.bench` — a pinned benchmark suite (``isol-bench
  bench``) over representative scenarios, emitting ``BENCH_<n>.json``
  trajectory files and comparing runs against the committed trajectory
  with machine-normalized paired-median thresholds.

Exporters mirror :mod:`repro.obs.export` conventions: JSON documents, a
pstats-compatible dump loadable by :class:`pstats.Stats`, and Chrome
Trace Event Format that merges with a request-span timeline.
"""

from repro.prof.config import ProfConfig
from repro.prof.export import (
    format_phase_table,
    write_chrome_trace,
    write_pstats,
)
from repro.prof.phases import ENGINE_POP, PHASES, phase_of_code
from repro.prof.profiler import ProfilerError, SimProfile, SimProfiler

__all__ = [
    "ProfConfig",
    "SimProfiler",
    "SimProfile",
    "ProfilerError",
    "PHASES",
    "ENGINE_POP",
    "phase_of_code",
    "format_phase_table",
    "write_pstats",
    "write_chrome_trace",
]
