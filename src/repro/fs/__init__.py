"""Higher storage-stack layers (the paper's §VII future work).

The paper evaluates cgroup I/O control under direct I/O and explicitly
asks whether the desiderata survive higher layers: "does the page cache
or Linux's file systems maintain the desiderata of io.cost?". This
package provides the substrate to ask that question in simulation:

* :class:`~repro.fs.pagecache.PageCache` -- a write-back page cache with
  dirty-ratio thresholds, per-cgroup writeback attribution (cgroup v2
  style) or unattributed flusher-thread writeback (v1 style), and a
  read-hit model.

The extension bench (``benchmarks/test_ext_pagecache_isolation.py``)
uses it to show that io.cost's latency protection survives buffered
writers only when writeback is charged to the dirtying cgroup.
"""

from repro.fs.pagecache import PageCache, PageCacheConfig

__all__ = ["PageCache", "PageCacheConfig"]
