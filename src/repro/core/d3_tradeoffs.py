"""D3: prioritization / utilization trade-offs (§VI-B, Fig. 7).

One priority app (an LC-app for latency trade-offs, a QD=32 batch app
for bandwidth trade-offs) runs against four saturating BE-apps. For each
knob we sweep its configuration space exactly as the paper does:

* MQ-DL: all (priority, BE) io.prio.class permutations (Q6);
* BFQ:   io.bfq.weight of the priority group from 1 to 1000 (Q6);
* io.latency: the priority group's target from "achievable in
  isolation" up past the unprotected latency (Q7);
* io.max: the BE group's read/write cap from a small fraction to full
  saturation (Q8);
* io.cost: priority io.weight=10000 and a sweep of io.cost.qos ``min``
  (plus latency targets for the LC variant) (Q9).

Each configuration yields a :class:`~repro.core.pareto.TradeoffPoint`;
the Pareto front over them is the knob's Fig. 7 curve. BE-workload
variants (4 KiB rand/seq, 256 KiB, writes) exercise flash idiosyncrasies.
"""

from __future__ import annotations

import math

from repro.cgroups.knobs import IoCostQosParams
from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    KnobConfig,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
)
from repro.core.pareto import TradeoffPoint
from repro.core.scenarios import (
    BE_GROUP,
    PRIORITY_GROUP,
    scaled_priority_qd,
    tradeoff_specs,
)
from repro.exec.executor import SweepExecutor, resolve_executor
from repro.exec.summary import ScenarioSummary
from repro.iorequest import KIB, OpType, Pattern
from repro.ssd.model import SsdModel
from repro.ssd.presets import samsung_980pro_like

_PRIO_CLASSES = ("realtime", "best-effort", "idle")


def _config_scenario(
    knob: KnobConfig,
    label: str,
    priority_kind: str,
    be_variant: str,
    ssd: SsdModel,
    cores: int,
    duration_s: float,
    warmup_s: float,
    seed: int,
    device_scale: float,
    be_queue_depth: int,
) -> Scenario:
    specs = tradeoff_specs(
        priority_kind,
        be_variant=be_variant,
        be_queue_depth=be_queue_depth,
        priority_queue_depth=scaled_priority_qd(device_scale),
    )
    has_writes = any(spec.read_fraction < 1.0 for spec in specs)
    return Scenario(
        name=f"d3-{knob.profile_name}-{label}-{priority_kind}-{be_variant}",
        knob=knob,
        apps=specs,
        ssd_model=ssd,
        cores=cores,
        duration_s=duration_s,
        warmup_s=warmup_s,
        seed=seed,
        device_scale=device_scale,
        preconditioned=has_writes,
    )


def _config_point(
    summary: ScenarioSummary,
    knob: KnobConfig,
    label: str,
    priority_kind: str,
    be_variant: str,
    device_scale: float,
) -> TradeoffPoint:
    prio = summary.app_stats("prio")
    if priority_kind == "batch":
        metric = prio.bandwidth_mib_s * device_scale
        maximize = True
    else:
        # Report the full-device-speed equivalent latency (time dilation).
        metric = prio.latency.p99_us / device_scale if prio.latency else math.inf
        maximize = False
    return TradeoffPoint(
        knob=knob.profile_name,
        config_label=label,
        be_variant=be_variant,
        aggregate_gib_s=summary.equivalent_bandwidth_gib_s,
        priority_metric=metric,
        metric_maximize=maximize,
    )


def unprotected_baseline(
    priority_kind: str,
    be_variant: str = "rand-4k",
    ssd: SsdModel | None = None,
    cores: int = 10,
    duration_s: float = 0.5,
    warmup_s: float = 0.15,
    seed: int = 42,
    device_scale: float = 8.0,
    be_queue_depth: int = 256,
    executor: SweepExecutor | None = None,
) -> TradeoffPoint:
    """The no-knob corner: full utilization, no protection."""
    ssd = ssd or samsung_980pro_like()
    executor = resolve_executor(executor)
    knob = NoneKnob()
    scenario = _config_scenario(
        knob,
        "baseline",
        priority_kind,
        be_variant,
        ssd,
        cores,
        duration_s,
        warmup_s,
        seed,
        device_scale,
        be_queue_depth,
    )
    return _config_point(
        executor.run_one(scenario),
        knob,
        "baseline",
        priority_kind,
        be_variant,
        device_scale,
    )


def sweep_knob(
    knob_name: str,
    priority_kind: str,
    be_variant: str = "rand-4k",
    ssd: SsdModel | None = None,
    cores: int = 10,
    duration_s: float = 0.5,
    warmup_s: float = 0.15,
    seed: int = 42,
    device_scale: float = 8.0,
    sweep_points: int = 7,
    be_queue_depth: int = 256,
    baseline_p99_us: float | None = None,
    executor: SweepExecutor | None = None,
) -> list[TradeoffPoint]:
    """Sweep one knob's configuration space (the paper's Q6-Q9 recipes).

    io.latency and io.cost LC sweeps need the unprotected P99 to pick a
    meaningful target range; pass ``baseline_p99_us`` (otherwise it is
    measured first with a none-knob run).
    """
    ssd = ssd or samsung_980pro_like()
    executor = resolve_executor(executor)
    scaled = ssd.scaled(device_scale)

    configs: list[tuple[KnobConfig, str]] = []
    if knob_name == "mq-deadline":
        for prio_cls in _PRIO_CLASSES:
            for be_cls in _PRIO_CLASSES:
                knob = MqDeadlineKnob(
                    classes={PRIORITY_GROUP: prio_cls, BE_GROUP: be_cls}
                )
                configs.append((knob, f"prio={prio_cls},be={be_cls}"))
    elif knob_name == "bfq":
        weights = _spaced(1, 1000, sweep_points)
        for weight in weights:
            knob = BfqKnob(weights={PRIORITY_GROUP: int(weight), BE_GROUP: 100})
            configs.append((knob, f"w={int(weight)}"))
    elif knob_name == "io.max":
        saturation = scaled.saturation_bandwidth_bps(
            OpType.READ, Pattern.RANDOM, 4 * KIB
        )
        for fraction in _spaced(0.05, 1.0, sweep_points):
            cap = saturation * fraction
            knob = IoMaxKnob(limits={BE_GROUP: {"rbps": cap, "wbps": cap}})
            configs.append((knob, f"be_cap={fraction:.2f}sat"))
    elif knob_name == "io.latency":
        lo, hi = _latency_target_range(priority_kind, ssd, baseline_p99_us)
        for target in _log_spaced(lo, hi, sweep_points):
            # Knob values live in the time-dilated world of the scaled
            # device; labels stay in full-speed-equivalent microseconds.
            knob = IoLatencyKnob(
                targets_us={PRIORITY_GROUP: target * device_scale}
            )
            configs.append((knob, f"target={target:.0f}us"))
    elif knob_name == "io.cost":
        lo, hi = _latency_target_range(priority_kind, ssd, baseline_p99_us)
        # Pin vrate with min=max (the "fixed scaling window" recipe): the
        # utilization dial, while io.weight=10000 protects the priority
        # app out of whatever budget remains (Q9).
        for vrate in _spaced(20.0, 100.0, sweep_points):
            rlat = 0.0 if priority_kind == "batch" else (lo + hi) / 2 * device_scale
            knob = IoCostKnob(
                weights={PRIORITY_GROUP: 10000, BE_GROUP: 100},
                qos=IoCostQosParams(
                    enable=True,
                    ctrl="user",
                    rpct=99.0,
                    rlat_us=rlat,
                    vrate_min_pct=vrate,
                    vrate_max_pct=vrate,
                ),
            )
            configs.append((knob, f"vrate={vrate:.0f}%"))
        if priority_kind == "lc":
            for rlat in _log_spaced(lo, hi, sweep_points):
                knob = IoCostKnob(
                    weights={PRIORITY_GROUP: 10000, BE_GROUP: 100},
                    qos=IoCostQosParams(
                        enable=True,
                        ctrl="user",
                        rpct=99.0,
                        rlat_us=rlat * device_scale,
                        vrate_min_pct=25.0,
                        vrate_max_pct=100.0,
                    ),
                )
                configs.append((knob, f"rlat={rlat:.0f}us"))
    else:
        raise ValueError(f"no D3 sweep defined for knob {knob_name!r}")

    scenarios = [
        _config_scenario(
            knob,
            label,
            priority_kind,
            be_variant,
            ssd,
            cores,
            duration_s,
            warmup_s,
            seed,
            device_scale,
            be_queue_depth,
        )
        for knob, label in configs
    ]
    return [
        _config_point(summary, knob, label, priority_kind, be_variant, device_scale)
        for (knob, label), summary in zip(configs, executor.run_strict(scenarios))
    ]


def _latency_target_range(
    priority_kind: str, ssd: SsdModel, baseline_p99_us: float | None
) -> tuple[float, float]:
    """Target sweep endpoints in full-speed-equivalent microseconds.

    From "achievable in isolation" up past the unprotected P99, matching
    the paper's 75 us .. 1.2 ms recipe but self-calibrating to the
    device and background load. The floor sits marginally *below* the
    isolated P90 so the tightest settings keep the target persistently
    violated -- the regime where io.latency pins the background to QD=1
    and the trade-off's low-utilization end exists at all.
    """
    isolated = ssd.fixed_cost_us(OpType.READ, Pattern.RANDOM) * 0.9
    if baseline_p99_us is not None and baseline_p99_us > isolated:
        return isolated, baseline_p99_us * 1.2
    # Fall back to the paper's static range.
    return isolated, 1200.0


def _spaced(lo: float, hi: float, n: int) -> list[float]:
    if n < 2:
        return [hi]
    return [lo + (hi - lo) * i / (n - 1) for i in range(n)]


def _log_spaced(lo: float, hi: float, n: int) -> list[float]:
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi for a log sweep")
    if n < 2:
        return [hi]
    ratio = (hi / lo) ** (1.0 / (n - 1))
    return [lo * ratio**i for i in range(n)]
