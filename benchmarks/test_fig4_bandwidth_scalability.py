"""Fig. 4: bandwidth and CPU scalability, 1-17 batch apps on 1 and 7 SSDs.

Regenerates the aggregated-bandwidth and CPU-utilization curves of §V-Q2
at device scale 1/8 (pure time dilation; reported numbers are full-speed
equivalents).
"""

from conftest import run_once

from repro.core.d1_overhead import peak_bandwidth, run_bandwidth_scaling
from repro.core.report import render_table

APP_COUNTS = (1, 2, 4, 8, 12, 17)
DEVICE_COUNTS = (1, 7)
DEVICE_SCALE = 8.0


def test_fig4_bandwidth_scaling(benchmark, figure_output):
    points = run_once(
        benchmark,
        lambda: run_bandwidth_scaling(
            app_counts=APP_COUNTS,
            device_counts=DEVICE_COUNTS,
            duration_s=0.25,
            warmup_s=0.08,
            device_scale=DEVICE_SCALE,
        ),
    )
    rows = [
        [p.knob, p.n_devices, p.n_apps, p.bandwidth_gib_s, p.cpu_utilization * 100.0]
        for p in points
    ]
    table = render_table(
        ["knob", "SSDs", "apps", "GiB/s (equiv)", "cpu %"],
        rows,
        title=f"Fig. 4 -- batch-app scaling (device 1/{DEVICE_SCALE:g}, 10 cores)",
    )
    peaks = [
        [knob, n, peak_bandwidth(points, knob, n)]
        for n in DEVICE_COUNTS
        for knob in ("none", "mq-deadline", "bfq", "io.max", "io.latency", "io.cost")
    ]
    peak_table = render_table(
        ["knob", "SSDs", "peak GiB/s"],
        peaks,
        title="Peaks (paper: none 2.94/9.87, MQ-DL 1.81/4.24, BFQ 0.69/2.14, "
        "io.max -/8.94, io.cost -/9.32)",
    )
    figure_output("fig4_bandwidth_scalability", table + "\n\n" + peak_table)

    # Shape guards: O2.
    none_1 = peak_bandwidth(points, "none", 1)
    assert peak_bandwidth(points, "mq-deadline", 1) < 0.75 * none_1
    assert peak_bandwidth(points, "bfq", 1) < 0.35 * none_1
    none_7 = peak_bandwidth(points, "none", 7)
    assert none_7 > 2.5 * none_1  # multi-SSD scaling
    assert peak_bandwidth(points, "io.cost", 7) < none_7  # slight decrement
