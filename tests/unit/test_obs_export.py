"""Exporter round-trips: JSONL, CSV, and Chrome Trace Event Format."""

import json

import pytest

from repro import NoneKnob, Scenario, TraceConfig, run_scenario
from repro.iorequest import KIB
from repro.obs.export import (
    SPAN_FIELDS,
    Trace,
    chrome_trace_events,
    read_jsonl,
    read_samples_csv,
    read_spans_csv,
    write_chrome_trace,
    write_jsonl,
    write_samples_csv,
    write_spans_csv,
)
from repro.workloads.apps import batch_app, lc_app


@pytest.fixture(scope="module")
def trace():
    scenario = Scenario(
        name="export-test",
        knob=NoneKnob(),
        apps=[
            batch_app("batch0", "/tenants/batch", size=64 * KIB),
            lc_app("lc0", "/tenants/lc"),
        ],
        duration_s=0.05,
        warmup_s=0.01,
        device_scale=8.0,
        trace=TraceConfig(sample_period_us=5_000.0),
    )
    return run_scenario(scenario).trace


class TestJsonl:
    def test_round_trip(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(trace, path)
        parsed = read_jsonl(path)
        assert parsed.spans == trace.spans
        assert parsed.samples == trace.samples
        assert parsed.meta == trace.meta
        assert parsed.dropped_spans == trace.dropped_spans

    def test_every_line_is_valid_json_with_a_type(self, trace, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(trace, path)
        with open(path) as fh:
            kinds = [json.loads(line)["type"] for line in fh]
        assert kinds[0] == "meta"
        assert kinds.count("span") == len(trace.spans)
        assert kinds.count("sample") == len(trace.samples)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError):
            read_jsonl(str(path))


class TestCsv:
    def test_spans_round_trip(self, trace, tmp_path):
        path = str(tmp_path / "spans.csv")
        write_spans_csv(trace, path)
        parsed = read_spans_csv(path)
        assert parsed == trace.spans

    def test_span_columns_are_stable(self, trace, tmp_path):
        path = str(tmp_path / "spans.csv")
        write_spans_csv(trace, path)
        with open(path) as fh:
            header = fh.readline().strip().split(",")
        assert tuple(header) == SPAN_FIELDS

    def test_samples_round_trip(self, trace, tmp_path):
        path = str(tmp_path / "samples.csv")
        write_samples_csv(trace, path)
        parsed = read_samples_csv(path)
        assert len(parsed) == len(trace.samples)
        for row, original in zip(parsed, trace.samples):
            assert row == pytest.approx(original)


class TestChromeTrace:
    def test_document_is_valid_json_with_trace_events(self, trace, tmp_path):
        path = str(tmp_path / "chrome.json")
        write_chrome_trace(trace, path)
        with open(path) as fh:
            document = json.load(fh)
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"]
        assert document["otherData"]["scenario"] == "export-test"

    def test_every_event_has_required_fields(self, trace):
        for event in chrome_trace_events(trace):
            assert "ph" in event
            assert "ts" in event
            assert "pid" in event

    def test_three_phase_slices_per_span(self, trace):
        events = chrome_trace_events(trace)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3 * len(trace.spans)
        names = {e["name"] for e in slices}
        assert names == {"held", "queued", "service"}

    def test_counter_events_for_sampled_series(self, trace):
        events = chrome_trace_events(trace)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert all("value" in e["args"] for e in counters)

    def test_lanes_never_overlap(self, trace):
        """Slices sharing a (pid, tid) lane must not overlap in time."""
        lanes: dict[tuple, list] = {}
        for event in chrome_trace_events(trace):
            if event["ph"] != "X" or event["name"] != "service":
                continue
            lanes.setdefault((event["pid"], event["tid"]), []).append(
                (event["ts"], event["ts"] + event["dur"])
            )
        for intervals in lanes.values():
            intervals.sort()
            for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
                assert start_b >= end_a - 1e-9

    def test_empty_trace_exports_cleanly(self, tmp_path):
        path = str(tmp_path / "empty.json")
        write_chrome_trace(Trace(), path)
        with open(path) as fh:
            assert json.load(fh)["traceEvents"] == []
