"""Tenant placement strategies over an interference matrix.

Given a :class:`~repro.fleet.spec.FleetSpec` and a measured
:class:`~repro.fleet.interference.InterferenceMatrix`, :func:`place`
assigns every tenant to a device slot under the per-device capacity
bound, using one of three strategies:

* ``random`` — the null baseline: each tenant picks uniformly among
  slots with remaining capacity, drawing from the named
  :data:`~repro.ssd.array.PLACEMENT_STREAM` RNG stream so the result is
  a pure function of the seed.
* ``binpack`` — interference-*oblivious* first-fit decreasing: tenants
  sorted by solo bandwidth demand, packed into the first slot with
  capacity. The classic consolidation baseline; it minimizes devices
  used and maximizes co-location damage.
* ``serifos`` — interference-*aware* greedy consolidation in the style
  of Serifos: tenants are placed hardest-first (tightest p99 ceiling,
  then largest bandwidth demand), each onto the slot that minimizes the
  increase in predicted fleet SLO violation, followed by a
  load-balancing rebalance pass that relocates tenants while total
  predicted violation strictly improves.

All strategies then pass through :func:`enforce_saturation`: while any
device's predicted violation exceeds the fleet's
``saturation_threshold``, the pass migrates the worst offender to the
best other slot, and evicts it when no migration helps — mirroring how
a fleet scheduler sheds load it mispredicted. Every decision is
deterministic: same fleet, matrix and seed give byte-identical
placements at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.interference import InterferenceMatrix, slo_violation
from repro.fleet.spec import FleetSpec
from repro.sim.rng import RngStreams
from repro.ssd.array import PLACEMENT_STREAM
from repro.tune.slo import VIOLATION_CAP

#: The placement strategies ``isol-bench place --strategy`` accepts.
STRATEGIES = ("random", "binpack", "serifos")


@dataclass(frozen=True)
class Migration:
    """One saturation-pass action: a tenant moved or evicted."""

    #: The tenant that was moved.
    tenant: str
    #: Slot the tenant left.
    source: str
    #: Slot the tenant landed on; empty string for an eviction.
    dest: str
    #: Human-readable why (predicted violations before/after).
    reason: str

    def to_json_dict(self) -> dict:
        """Plain-dict form."""
        return {
            "tenant": self.tenant,
            "source": self.source,
            "dest": self.dest,
            "reason": self.reason,
        }


@dataclass
class Placement:
    """A complete tenant-to-slot assignment plus its decision record."""

    #: The fleet placed.
    fleet_name: str
    #: Strategy that produced the assignment.
    strategy: str
    #: Slot name -> tenants resident on that device (placement order).
    assignment: dict[str, tuple[str, ...]]
    #: Tenants that could not be placed (capacity) or were evicted.
    evicted: tuple[str, ...] = ()
    #: Saturation-pass actions, in the order they were taken.
    migrations: tuple[Migration, ...] = ()
    #: Total predicted SLO violation (devices + eviction penalties).
    predicted_violation: float = 0.0

    def residents(self, slot: str) -> tuple[str, ...]:
        """Tenants on one slot (empty tuple for an empty device)."""
        return self.assignment.get(slot, ())

    def slot_of(self, tenant: str) -> str | None:
        """The slot hosting a tenant, or None if evicted/unplaced."""
        for slot, names in self.assignment.items():
            if tenant in names:
                return slot
        return None

    def to_json_dict(self) -> dict:
        """Plain-dict form (slot order preserved for goldens)."""
        return {
            "fleet_name": self.fleet_name,
            "strategy": self.strategy,
            "assignment": {
                slot: list(names) for slot, names in self.assignment.items()
            },
            "evicted": list(self.evicted),
            "migrations": [m.to_json_dict() for m in self.migrations],
            "predicted_violation": self.predicted_violation,
        }


def device_violation(
    matrix: InterferenceMatrix, fleet: FleetSpec, residents: tuple[str, ...]
) -> float:
    """Predicted summed SLO violation of one device's resident set."""
    total = 0.0
    for name in residents:
        others = tuple(other for other in residents if other != name)
        measure = matrix.predicted(name, others)
        total += slo_violation(measure, fleet.tenant(name))
    return total


def eviction_penalty(fleet: FleetSpec, tenant: str) -> float:
    """The score an evicted tenant contributes: cap times its objectives.

    An eviction must never look cheaper than hosting the tenant badly,
    so it costs the :data:`~repro.tune.slo.VIOLATION_CAP` on every
    declared objective (minimum one, so even best-effort tenants are
    not dropped for free).
    """
    return VIOLATION_CAP * max(1, fleet.tenant(tenant).objective_count)


def total_predicted_violation(
    matrix: InterferenceMatrix,
    fleet: FleetSpec,
    assignment: dict[str, tuple[str, ...]],
    evicted: tuple[str, ...] = (),
) -> float:
    """Fleet-wide predicted violation: devices plus eviction penalties."""
    total = sum(
        device_violation(matrix, fleet, residents)
        for residents in assignment.values()
    )
    total += sum(eviction_penalty(fleet, name) for name in evicted)
    return total


@dataclass
class _State:
    """Mutable assignment under construction (internal to this module)."""

    fleet: FleetSpec
    matrix: InterferenceMatrix
    assignment: dict[str, list[str]] = field(default_factory=dict)
    evicted: list[str] = field(default_factory=list)
    migrations: list[Migration] = field(default_factory=list)

    def __post_init__(self) -> None:
        for slot in self.fleet.slots():
            self.assignment.setdefault(slot, [])

    def open_slots(self) -> list[str]:
        """Slots with remaining capacity, in fleet slot order."""
        cap = self.fleet.max_tenants_per_device
        return [
            slot
            for slot in self.fleet.slots()
            if len(self.assignment[slot]) < cap
        ]

    def violation_of(self, slot: str) -> float:
        """Predicted violation of one slot's current residents."""
        return device_violation(
            self.matrix, self.fleet, tuple(self.assignment[slot])
        )

    def delta_if_added(self, slot: str, tenant: str) -> float:
        """Predicted-violation increase from adding a tenant to a slot."""
        before = self.violation_of(slot)
        after = device_violation(
            self.matrix, self.fleet, tuple(self.assignment[slot]) + (tenant,)
        )
        return after - before

    def frozen(self, strategy: str) -> Placement:
        """The finished, immutable placement."""
        assignment = {
            slot: tuple(names) for slot, names in self.assignment.items()
        }
        evicted = tuple(self.evicted)
        return Placement(
            fleet_name=self.fleet.name,
            strategy=strategy,
            assignment=assignment,
            evicted=evicted,
            migrations=tuple(self.migrations),
            predicted_violation=total_predicted_violation(
                self.matrix, self.fleet, assignment, evicted
            ),
        )


def _demand(matrix: InterferenceMatrix, tenant: str) -> float:
    """A tenant's solo bandwidth demand (the bin-packing item size)."""
    return matrix.solo[tenant].bandwidth_mib_s


def _random_fill(state: _State, seed: int) -> None:
    """Uniform placement over open slots, seeded via the named stream."""
    rng = RngStreams(seed).stream(PLACEMENT_STREAM)
    for tenant in state.fleet.tenant_names():
        slots = state.open_slots()
        if not slots:
            state.evicted.append(tenant)
            continue
        state.assignment[slots[rng.randrange(len(slots))]].append(tenant)


def _binpack_fill(state: _State) -> None:
    """First-fit decreasing by solo bandwidth demand."""
    order = sorted(
        state.fleet.tenant_names(),
        key=lambda name: (-_demand(state.matrix, name), name),
    )
    for tenant in order:
        slots = state.open_slots()
        if not slots:
            state.evicted.append(tenant)
            continue
        state.assignment[slots[0]].append(tenant)


def _serifos_fill(state: _State) -> None:
    """Interference-aware greedy placement, hardest tenants first."""
    fleet = state.fleet

    def difficulty(name: str) -> tuple:
        tenant = fleet.tenant(name)
        p99 = tenant.p99_target_us
        # Tenants with a p99 ceiling place first (tightest first);
        # the rest by descending bandwidth demand.
        return (
            0 if p99 is not None else 1,
            p99 if p99 is not None else -_demand(state.matrix, name),
            name,
        )

    for tenant in sorted(fleet.tenant_names(), key=difficulty):
        slots = state.open_slots()
        if not slots:
            state.evicted.append(tenant)
            continue
        # Tie-break prefers the *fuller* slot: at equal predicted harm,
        # consolidate (that is what frees whole devices for the heavy
        # tenants still waiting in the queue), then slot order.
        best = min(
            slots,
            key=lambda slot: (
                state.delta_if_added(slot, tenant),
                -len(state.assignment[slot]),
                slot,
            ),
        )
        state.assignment[best].append(tenant)


def _rebalance(state: _State, max_moves: int | None = None) -> None:
    """Relocate tenants while total predicted violation strictly drops.

    Each round scans every (tenant, destination) pair in deterministic
    order and applies the single best strictly-improving move; rounds
    repeat until no move improves or ``max_moves`` (default: tenant
    count) is exhausted. Moves are recorded as :class:`Migration`
    entries with a ``rebalance`` reason.
    """
    fleet = state.fleet
    budget = max_moves if max_moves is not None else len(fleet.tenants)
    for _ in range(budget):
        best_gain = 0.0
        best_move: tuple[str, str, str] | None = None
        for source in fleet.slots():
            for tenant in list(state.assignment[source]):
                others = tuple(
                    name for name in state.assignment[source] if name != tenant
                )
                source_before = state.violation_of(source)
                source_after = device_violation(state.matrix, fleet, others)
                for dest in state.open_slots():
                    if dest == source:
                        continue
                    gain = (
                        source_before
                        - source_after
                        - state.delta_if_added(dest, tenant)
                    )
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_move = (tenant, source, dest)
        if best_move is None:
            return
        tenant, source, dest = best_move
        state.assignment[source].remove(tenant)
        state.assignment[dest].append(tenant)
        state.migrations.append(
            Migration(
                tenant=tenant,
                source=source,
                dest=dest,
                reason=f"rebalance: predicted violation -{best_gain:.3f}",
            )
        )


def enforce_saturation(state: _State) -> None:
    """Shed load from devices whose predicted violation saturates.

    While any device's predicted violation exceeds the fleet's
    ``saturation_threshold``: migrate the resident whose removal helps
    most to the best open slot if that strictly reduces total predicted
    violation; otherwise evict it (recorded, penalized in the fleet
    score). Bounded by the tenant count, so it always terminates.
    """
    fleet = state.fleet
    threshold = fleet.saturation_threshold
    for _ in range(len(fleet.tenants)):
        saturated = [
            slot for slot in fleet.slots() if state.violation_of(slot) > threshold
        ]
        if not saturated:
            return
        slot = max(saturated, key=lambda name: (state.violation_of(name), name))
        before = state.violation_of(slot)
        # The offender: the resident whose removal drops the device most.
        def remaining_violation(tenant: str) -> float:
            others = tuple(
                name for name in state.assignment[slot] if name != tenant
            )
            return device_violation(state.matrix, fleet, others)

        offender = min(
            state.assignment[slot],
            key=lambda name: (remaining_violation(name), name),
        )
        source_after = remaining_violation(offender)
        best_dest: str | None = None
        best_total_gain = 0.0
        for dest in state.open_slots():
            if dest == slot:
                continue
            gain = before - source_after - state.delta_if_added(dest, offender)
            if gain > best_total_gain + 1e-12:
                best_total_gain = gain
                best_dest = dest
        state.assignment[slot].remove(offender)
        if best_dest is not None:
            state.assignment[best_dest].append(offender)
            state.migrations.append(
                Migration(
                    tenant=offender,
                    source=slot,
                    dest=best_dest,
                    reason=(
                        f"saturation: device at {before:.3f} > "
                        f"{threshold:g}, migrated"
                    ),
                )
            )
        else:
            state.evicted.append(offender)
            state.migrations.append(
                Migration(
                    tenant=offender,
                    source=slot,
                    dest="",
                    reason=(
                        f"saturation: device at {before:.3f} > "
                        f"{threshold:g}, no improving slot, evicted"
                    ),
                )
            )


def place(
    fleet: FleetSpec,
    matrix: InterferenceMatrix,
    strategy: str,
    seed: int = 42,
) -> Placement:
    """Place every tenant with the named strategy.

    ``seed`` only affects the ``random`` strategy (via the
    ``fleet.placement`` RNG stream); ``binpack`` and ``serifos`` are
    deterministic functions of the fleet and matrix alone. All
    strategies run the saturation pass before the placement freezes.
    """
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; options: {STRATEGIES}"
        )
    state = _State(fleet=fleet, matrix=matrix)
    if strategy == "random":
        _random_fill(state, seed)
    elif strategy == "binpack":
        _binpack_fill(state)
    else:
        _serifos_fill(state)
        _rebalance(state)
    enforce_saturation(state)
    return state.frozen(strategy)
