"""Ablation: io.latency's window length and unthrottle step (O10 root cause).

The paper traces io.latency's seconds-long burst response to two
constants: the 500 ms evaluation window (one QD halving per window) and
the +max_nr_requests/4 unthrottle step. This ablation re-runs the burst
experiment with modified constants to confirm the mechanism: shorter
windows shrink the response proportionally.
"""

from conftest import run_once

from repro.core.d4_bursts import burst_knobs, measure_burst_response
from repro.core.report import render_table
from repro.iocontrol.iolatency import IoLatencyController
from repro.ssd.presets import samsung_980pro_like

DEVICE_SCALE = 16.0
WINDOWS_MS = (100.0, 500.0, 1000.0)


def test_iolatency_window_ablation(benchmark, figure_output):
    ssd = samsung_980pro_like()
    scaled = ssd.scaled(DEVICE_SCALE)
    knob = burst_knobs(scaled, "batch", lc_target_us=100.0 * DEVICE_SCALE)["io.latency"]

    def experiment():
        rows = []
        original = IoLatencyController.WINDOW_US
        try:
            for window_ms in WINDOWS_MS:
                IoLatencyController.WINDOW_US = window_ms * 1e3
                response = measure_burst_response(
                    knob,
                    "batch",
                    burst_start_s=2.0,
                    duration_s=9.0,
                    ssd=ssd,
                    device_scale=DEVICE_SCALE,
                    bucket_ms=50.0,
                )
                rows.append(
                    [
                        window_ms,
                        response.response_ms
                        if response.response_ms is not None
                        else "never",
                        response.steady_metric,
                    ]
                )
        finally:
            IoLatencyController.WINDOW_US = original
        return rows

    rows = run_once(benchmark, experiment)
    table = render_table(
        ["window ms", "burst response ms", "steady MiB/s"],
        rows,
        title="Ablation -- io.latency control-window length vs burst response",
    )
    figure_output("ablation_iolatency_window", table)

    numeric = {
        row[0]: row[1] for row in rows if isinstance(row[1], (int, float))
    }
    # The response time tracks the window length (staircase mechanism).
    if 100.0 in numeric and 500.0 in numeric:
        assert numeric[100.0] < numeric[500.0]
