"""Canonical scenario serialization and content-addressed cache keys.

A cache key must change when -- and only when -- something that affects
the simulation's output changes. The canonicalizer therefore renders a
:class:`~repro.core.config.Scenario` (and everything it transitively
contains: knob dataclasses, job specs, device presets, GC params, QoS
params, enums) into a deterministic text form with these properties:

* **No identity leakage**: object ids, dict insertion order and
  ``PYTHONHASHSEED`` never reach the key. Dicts are sorted by their
  canonical key text; dataclass fields are sorted by field name.
* **Type-tagged**: the rendering embeds each dataclass's qualified class
  name and each enum's class + member name, so two knobs with identical
  field values but different types (e.g. ``IoMaxKnob`` vs a subclass)
  key differently.
* **Exact floats**: floats are rendered with ``repr`` (shortest
  round-trip form, stable across CPython platforms), so a weight of
  ``0.1`` and ``0.1000000000000001`` key differently -- the simulation
  would diverge too. ``inf``/``nan`` render symbolically.

The SHA-256 runs over that text plus :data:`SCHEMA_VERSION` (bumped
whenever the summary layout or simulation semantics change incompatibly)
and the summary's own schema version, so stale entries are structurally
unreachable rather than "probably invalidated".
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math

from repro.exec.summary import SUMMARY_SCHEMA_VERSION

#: Bump to invalidate every existing cache entry (e.g. after a simulator
#: change that alters results without touching any Scenario field).
#: v2: fault-injection layer (Scenario.faults, retry/timeout completion
#: path) — pre-faults entries were produced by a semantically different
#: simulator and must read as misses.
#: v3: JobSpec.macro_tick_us arrival batching — specs render with a new
#: field, and macro-tick runs draw from a dedicated arrival RNG stream
#: older entries never saw.
#: v4: online control plane (Scenario.ctl, repro.ctl) plus
#: JobSpec.arrival_phases time-varying arrivals — scenarios render with
#: new fields whose defaults older entries never carried, and ctl runs
#: rewrite knob files mid-run, which no pre-v4 simulator could.
SCHEMA_VERSION = 4

_SALT = f"isolbench-cache:v{SCHEMA_VERSION}:summary-v{SUMMARY_SCHEMA_VERSION}"


def _render(obj, out: list[str]) -> None:
    """Append the canonical text of ``obj`` to ``out``."""
    if obj is None:
        out.append("N")
    elif obj is True:
        out.append("T")
    elif obj is False:
        out.append("F")
    elif isinstance(obj, enum.Enum):
        out.append(f"E:{type(obj).__module__}.{type(obj).__qualname__}.{obj.name}")
    elif isinstance(obj, int):
        out.append(f"i:{obj}")
    elif isinstance(obj, float):
        if math.isnan(obj):
            out.append("f:nan")
        elif math.isinf(obj):
            out.append("f:+inf" if obj > 0 else "f:-inf")
        else:
            out.append(f"f:{obj!r}")
    elif isinstance(obj, str):
        out.append(f"s:{len(obj)}:{obj}")
    elif isinstance(obj, bytes):
        out.append(f"b:{len(obj)}:{obj.hex()}")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out.append(f"D:{type(obj).__module__}.{type(obj).__qualname__}{{")
        for field in sorted(dataclasses.fields(obj), key=lambda f: f.name):
            out.append(f"{field.name}=")
            _render(getattr(obj, field.name), out)
            out.append(";")
        out.append("}")
    elif isinstance(obj, (list, tuple)):
        out.append("[")
        for item in obj:
            _render(item, out)
            out.append(",")
        out.append("]")
    elif isinstance(obj, (set, frozenset)):
        rendered = sorted(canonical_text(item) for item in obj)
        out.append("{" + ",".join(rendered) + "}")
    elif isinstance(obj, dict):
        out.append("M{")
        entries = sorted(
            (canonical_text(key), value) for key, value in obj.items()
        )
        for key_text, value in entries:
            out.append(key_text)
            out.append(":")
            _render(value, out)
            out.append(";")
        out.append("}")
    elif hasattr(obj, "__dict__") and not callable(obj):
        # Plain configuration objects (e.g. a bare KnobConfig subclass
        # that is not a dataclass): class identity + sorted attributes.
        out.append(f"O:{type(obj).__module__}.{type(obj).__qualname__}{{")
        for name in sorted(vars(obj)):
            out.append(f"{name}=")
            _render(vars(obj)[name], out)
            out.append(";")
        out.append("}")
    else:
        raise TypeError(
            f"cannot canonicalize {type(obj).__module__}.{type(obj).__qualname__} "
            f"for cache keying; add dataclass/enum support or exclude it "
            f"from the Scenario"
        )


def canonical_text(obj) -> str:
    """Deterministic, content-complete text rendering of ``obj``."""
    out: list[str] = []
    _render(obj, out)
    return "".join(out)


def scenario_key(scenario) -> str:
    """SHA-256 content address of a scenario (hex, 64 chars)."""
    text = _SALT + "|" + canonical_text(scenario)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
