"""Bandwidth time series (the paper's Fig. 2 plots).

Completions are bucketized into fixed intervals; each bucket reports
MiB/s. Used by the knob-example bench and the burst-response analysis.
"""

from __future__ import annotations

from typing import Sequence

from repro.iorequest import MIB


def bandwidth_series(
    completion_times_us: Sequence[float],
    sizes: Sequence[int],
    t_start_us: float,
    t_end_us: float,
    bucket_us: float = 1_000_000.0,
) -> tuple[list[float], list[float]]:
    """Bucketize completions into a ``(times_s, mib_per_s)`` series.

    Buckets cover ``[t_start_us, t_end_us)``; the returned times are
    bucket start offsets in seconds from ``t_start_us``.
    """
    if bucket_us <= 0:
        raise ValueError("bucket width must be positive")
    if t_end_us <= t_start_us:
        raise ValueError("empty time range")
    n_buckets = int((t_end_us - t_start_us) / bucket_us)
    if n_buckets < 1:
        raise ValueError("time range shorter than one bucket")
    bytes_per_bucket = [0] * n_buckets
    for time_us, size in zip(completion_times_us, sizes):
        if not t_start_us <= time_us < t_start_us + n_buckets * bucket_us:
            continue
        bytes_per_bucket[int((time_us - t_start_us) / bucket_us)] += size
    seconds_per_bucket = bucket_us / 1e6
    times_s = [i * seconds_per_bucket for i in range(n_buckets)]
    mib_per_s = [b / MIB / seconds_per_bucket for b in bytes_per_bucket]
    return times_s, mib_per_s


def time_to_reach(
    times_s: Sequence[float],
    values: Sequence[float],
    threshold: float,
    after_s: float = 0.0,
) -> float | None:
    """First bucket time >= ``after_s`` whose value reaches ``threshold``.

    Returns None if the threshold is never reached -- the primitive the
    burst-response benchmark (Q10) is built on.
    """
    for time_s, value in zip(times_s, values):
        if time_s >= after_s and value >= threshold:
            return time_s
    return None
