"""isol-bench command-line interface.

Subcommands mirror the benchmark suite::

    isol-bench describe-device [flash|optane] [--json]
    isol-bench coef-gen [flash|optane]       # io.cost model generation
    isol-bench run --knob io.cost ...        # one ad-hoc scenario
    isol-bench run --faults gc-storm ...     # ... on a degraded device
    isol-bench run --prof ...                # ... with the self-profiler on
    isol-bench trace --knob io.cost --out t.json   # traced run -> timeline
    isol-bench table1 [--quick] [--workers N] [--no-cache]  # Table I
    isol-bench d5 [--quick|--mini] [--faults a,b]  # robustness ranking
    isol-bench tune --slo ... [--knob auto] [--budget N]  # SLO autotuner
    isol-bench tune --surrogate[=auto|off|path] [--verify-top-k N]  # wider search
    isol-bench place [--fleet spec.json] [--strategy serifos]  # fleet placement
    isol-bench ctl [--mini] [--trace-out d.jsonl]  # D8 online control matrix
    isol-bench d9 [--mini] [--json out.json]  # D9 surrogate-vs-pure study
    isol-bench surrogate fit|eval|report     # model from the result cache
    isol-bench bench [--mini] [--compare]    # pinned perf suite + trajectory
    isol-bench cache stats|path|clear        # result-cache maintenance

``table1`` fans its scenario sweeps over worker processes and caches
summaries content-addressed under ``.isolbench-cache/`` (see
:mod:`repro.exec`); a re-run with unchanged scenarios executes nothing.
All output is plain text; heavy lifting lives in :mod:`repro.core`.
Every workload-running subcommand ends with a uniform machine-parseable
footer: ``perf: events=<n> elapsed=<s>s events/sec=<r> engine=<mode>``
(``mode`` is ``batched`` or ``legacy`` per ``ISOLBENCH_ENGINE``).
"""

from __future__ import annotations

import argparse
import sys

from repro import KIB
from repro.core.config import (
    BfqKnob,
    IoCostKnob,
    IoLatencyKnob,
    IoMaxKnob,
    MqDeadlineKnob,
    NoneKnob,
    Scenario,
)
from repro.core.runner import run_scenario
from repro.faults import FAULT_CLASSES, get_fault_plan
from repro.sim.engine import EngineConfig
from repro.obs import (
    TraceConfig,
    write_chrome_trace,
    write_jsonl,
    write_samples_csv,
    write_spans_csv,
)
from repro.ssd.model import describe_model, describe_model_dict
from repro.ssd.presets import get_preset
from repro.tools.iocost_coef_gen import derive_model, format_model_line
from repro.workloads.apps import batch_app, lc_app


def _cmd_describe_device(args: argparse.Namespace) -> int:
    model = get_preset(args.device)
    if args.json:
        import json

        print(json.dumps(describe_model_dict(model), indent=2, sort_keys=True))
    else:
        print(describe_model(model))
    return 0


def _cmd_coef_gen(args: argparse.Namespace) -> int:
    ssd = get_preset(args.device)
    model = derive_model(ssd, conservatism=args.conservatism)
    print(format_model_line("259:0", model))
    return 0


def _make_knob(name: str):
    knobs = {
        "none": NoneKnob,
        "mq-deadline": MqDeadlineKnob,
        "bfq": BfqKnob,
        "io.max": IoMaxKnob,
        "io.latency": IoLatencyKnob,
        "io.cost": IoCostKnob,
    }
    if name not in knobs:
        raise SystemExit(f"unknown knob {name!r}; options: {sorted(knobs)}")
    return knobs[name]()


def _perf_line(events: int | float, elapsed: float) -> str:
    """The uniform machine-parseable perf footer every subcommand prints."""
    events = int(events)
    rate = events / elapsed if elapsed > 0 else 0.0
    mode = "batched" if EngineConfig.from_env().batching else "legacy"
    return (
        f"perf: events={events} elapsed={elapsed:.3f}s "
        f"events/sec={rate:.0f} engine={mode}"
    )


def _scenario_from_args(
    args: argparse.Namespace, name: str, trace=None, prof=None
) -> Scenario:
    apps = []
    for i in range(args.batch_apps):
        apps.append(
            batch_app(f"batch{i}", f"/tenants/batch{i}", size=args.size * KIB)
        )
    for i in range(args.lc_apps):
        apps.append(lc_app(f"lc{i}", f"/tenants/lc{i}"))
    if not apps:
        raise SystemExit("need at least one app (--batch-apps/--lc-apps)")
    return Scenario(
        name=name,
        knob=_make_knob(args.knob),
        apps=apps,
        ssd_model=get_preset(args.device),
        num_devices=args.devices,
        cores=args.cores,
        duration_s=args.duration,
        warmup_s=args.duration * 0.25,
        device_scale=args.device_scale,
        seed=args.seed,
        trace=trace,
        faults=get_fault_plan(args.faults) if args.faults else None,
        prof=prof,
    )


def _print_fault_counters(result) -> None:
    """The failure-accounting block of run/trace output."""
    counters = result.fault_counters
    if not counters:
        return
    print(f"\nfault injection ({result.scenario.faults.label}):")
    for key in sorted(counters):
        print(f"  {key:<28s} {counters[key]:,.0f}")


def _cmd_run(args: argparse.Namespace) -> int:
    prof = None
    if args.prof or args.prof_out:
        from repro.prof import ProfConfig

        prof = ProfConfig(timeline_bucket_us=args.prof_bucket_us)
    result = run_scenario(_scenario_from_args(args, "cli-run", prof=prof))
    print(result.describe())
    _print_fault_counters(result)
    if prof is not None:
        from repro.prof import format_phase_table, write_pstats
        from repro.prof import write_chrome_trace as write_prof_chrome

        profile = result.profile
        print(f"\nengine phase breakdown:\n{format_phase_table(profile)}")
        if args.prof_out:
            if args.prof_format == "json":
                import json

                with open(args.prof_out, "w", encoding="utf-8") as handle:
                    json.dump(
                        profile.to_json_dict(), handle, indent=2, sort_keys=True
                    )
            elif args.prof_format == "pstats":
                write_pstats(profile, args.prof_out)
            else:  # chrome
                write_prof_chrome(profile, args.prof_out)
            print(f"wrote {args.prof_format} profile: {args.prof_out}")
    print(_perf_line(result.events_processed, result.wall_seconds))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(sample_period_us=args.sample_period_us)
    scenario = _scenario_from_args(args, "cli-trace", trace=config)
    result = run_scenario(scenario)
    trace = result.trace
    assert trace is not None

    if args.format == "chrome":
        write_chrome_trace(trace, args.out)
        written = [args.out]
    elif args.format == "jsonl":
        write_jsonl(trace, args.out)
        written = [args.out]
    else:  # csv: two flat tables next to each other
        spans_path = args.out + ".spans.csv"
        samples_path = args.out + ".samples.csv"
        write_spans_csv(trace, spans_path)
        write_samples_csv(trace, samples_path)
        written = [spans_path, samples_path]

    print(result.describe())
    print(
        f"\ntraced {len(trace.spans)} request spans"
        + (f" ({trace.dropped_spans} dropped)" if trace.dropped_spans else "")
        + f", {len(trace.samples)} sampler rows "
        f"(period {config.sample_period_us:g} us)"
    )
    print("\nlatency attribution (mean us per request):")
    header = f"  {'app':<12s} {'ios':>9s} {'held':>10s} {'queued':>10s} {'service':>10s} {'end-to-end':>11s}"
    print(header)
    for name, attr in result.trace.attribution().items():
        print(
            f"  {name:<12s} {attr.ios:>9d} {attr.mean_held_us:>10.1f} "
            f"{attr.mean_queued_us:>10.1f} {attr.mean_service_us:>10.1f} "
            f"{attr.mean_latency_us:>11.1f}"
        )
    # "held" above is throttle wait; the block below is fault-induced
    # slowness (retries/timeouts) — together they attribute tail latency.
    _print_fault_counters(result)
    for path in written:
        print(f"\nwrote {args.format} trace: {path}")
    if args.format == "chrome":
        print("open in https://ui.perfetto.dev or chrome://tracing")
    print(_perf_line(result.events_processed, result.wall_seconds))
    return 0


def _progress_printer(stream):
    """Per-sweep ``k/n done, m cached, events/sec`` lines on one tty row."""

    def emit(progress) -> None:
        end = "\n" if progress.done == progress.total else "\r"
        print(f"  {progress}", end=end, file=stream, flush=True)

    return emit


def _build_executor(args: argparse.Namespace):
    from pathlib import Path

    from repro.exec import ResultCache, SweepExecutor, default_cache_dir

    if args.no_cache:
        cache = None
    else:
        root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
        cache = ResultCache(root)
    progress = None if args.quiet else _progress_printer(sys.stderr)
    return SweepExecutor(
        max_workers=args.workers, cache=cache, progress=progress
    )


def _sweep_stats_line(executor) -> str:
    """Machine-checkable sweep-stats footer (CI greps ``executed=``/``cached=``)."""
    stats = executor.stats
    cache_line = (
        f", cache: {executor.cache.stats}" if executor.cache is not None else ""
    )
    return (
        f"sweep stats: executed={stats.executed} cached={stats.cached} "
        f"deduped={stats.deduped} failed={stats.failed} sweeps={stats.sweeps} "
        f"busy={stats.busy_seconds:.1f}s idle={stats.idle_seconds:.1f}s "
        f"util={stats.utilization:.0%}{cache_line}"
    )


def _add_executor_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per sweep (default: cpu_count - 1; 1 = serial)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="always execute; do not read or write the result cache",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="result cache directory (default: $ISOLBENCH_CACHE_DIR or .isolbench-cache/)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-sweep progress lines"
    )


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.core.table_one import (
        TableOneSettings,
        evaluate_table_one,
        quick_settings,
    )

    settings = quick_settings() if args.quick else TableOneSettings()
    with _build_executor(args) as executor:
        table = evaluate_table_one(settings, executor=executor)
        stats = executor.stats
    print(table.render())
    matches = table.matches_paper()
    total = sum(matches.values())
    print(f"\ncells matching the paper: {total}/{4 * len(matches)}")
    # Machine-checkable summary (CI asserts executed=0 on a warm cache).
    print(_sweep_stats_line(executor))
    print(_perf_line(stats.events_processed, stats.elapsed_seconds))
    return 0


def _cmd_d5(args: argparse.Namespace) -> int:
    from repro.core.d5_robustness import (
        RobustnessSettings,
        evaluate_robustness,
        mini_settings,
        quick_settings,
    )

    if args.mini:
        settings = mini_settings()
    elif args.quick:
        settings = quick_settings()
    else:
        settings = RobustnessSettings()
    if args.faults:
        names = tuple(name.strip() for name in args.faults.split(",") if name.strip())
        for name in names:
            get_fault_plan(name)  # fail fast on typos, with the options list
        settings.fault_classes = names

    with _build_executor(args) as executor:
        table = evaluate_robustness(settings, executor=executor)
        stats = executor.stats
    print(table.render())
    best = table.rank()[0]
    print(
        f"\nmost robust knob: {best.knob} "
        f"(mean p99 degradation {best.mean_p99_ratio:.2f}x across "
        f"{len(table.fault_classes)} fault classes)"
    )
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(table.to_json_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote ranking JSON: {args.json}")
    print(_sweep_stats_line(executor))
    print(_perf_line(stats.events_processed, stats.elapsed_seconds))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.d6_autotune import (
        AutotuneSettings,
        evaluate_autotune,
        mini_settings,
        quick_settings,
        resolve_slo,
    )
    from repro.tune.advisor import write_decision_trace
    from repro.tune.space import TUNABLE_KNOBS

    if args.mini:
        settings = mini_settings()
    elif args.quick:
        settings = quick_settings()
    else:
        settings = AutotuneSettings()
    if args.knob != "auto":
        names = tuple(name.strip() for name in args.knob.split(",") if name.strip())
        unknown = set(names) - set(TUNABLE_KNOBS)
        if unknown:
            raise SystemExit(
                f"unknown knob(s) {sorted(unknown)}; options: auto,{','.join(TUNABLE_KNOBS)}"
            )
        settings.knobs = names
    if args.budget is not None:
        settings.budget = args.budget
    settings.strategy = args.strategy
    if args.faults:
        get_fault_plan(args.faults)  # fail fast on typos, with the options list
        settings.fault_class = args.faults
    settings.surrogate = args.surrogate
    if args.verify_top_k is not None:
        settings.verify_top_k = args.verify_top_k
    slo = resolve_slo(args.slo)

    with _build_executor(args) as executor:
        report = evaluate_autotune(settings, slo=slo, executor=executor)
        stats = executor.stats
    print(report.render())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote advisor JSON: {args.json}")
    if args.trace_out:
        write_decision_trace(report, args.trace_out)
        print(f"wrote decision trace: {args.trace_out}")
    print(_sweep_stats_line(executor))
    print(_perf_line(stats.events_processed, stats.elapsed_seconds))
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.core.d7_placement import (
        compare_placements,
        mini_settings,
        quick_settings,
    )
    from repro.fleet.placement import STRATEGIES
    from repro.fleet.report import PlacementSettings
    from repro.fleet.spec import apply_slo_overrides, demo_fleet, load_fleet
    from repro.tune.slo import parse_slo

    if args.mini:
        settings = mini_settings()
    elif args.quick:
        settings = quick_settings()
    else:
        settings = PlacementSettings()
    if args.budget is not None:
        settings = replace(settings, budget=args.budget)
    try:
        fleet = load_fleet(args.fleet) if args.fleet else demo_fleet()
        if args.slo:
            fleet = apply_slo_overrides(fleet, parse_slo(args.slo))
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    strategies = STRATEGIES if args.strategy == "all" else (args.strategy,)

    with _build_executor(args) as executor:
        comparison = compare_placements(
            fleet,
            strategies=strategies,
            settings=settings,
            seed=args.seed,
            executor=executor,
        )
        stats = executor.stats
    print(comparison.render())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(comparison.to_json_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote placement JSON: {args.json}")
    print(_sweep_stats_line(executor))
    print(_perf_line(stats.events_processed, stats.elapsed_seconds))
    return 0


def _cmd_ctl(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.core.d8_online import (
        CTL_KNOBS,
        DEFAULT_PATTERNS,
        ONLINE,
        OnlineControlSettings,
        build_scenarios,
        evaluate_online_control,
        mini_settings,
        quick_settings,
    )

    if args.mini:
        settings = mini_settings()
    elif args.quick:
        settings = quick_settings()
    else:
        settings = OnlineControlSettings()
    if args.knobs:
        settings.knobs = tuple(
            name.strip() for name in args.knobs.split(",") if name.strip()
        )
    if args.patterns:
        settings.patterns = tuple(
            name.strip() for name in args.patterns.split(",") if name.strip()
        )
    unknown = set(settings.knobs) - set(CTL_KNOBS)
    if unknown:
        raise SystemExit(
            f"unknown knobs: {sorted(unknown)}; options: {list(CTL_KNOBS)}"
        )
    unknown = set(settings.patterns) - set(DEFAULT_PATTERNS)
    if unknown:
        raise SystemExit(
            f"unknown patterns: {sorted(unknown)}; "
            f"options: {list(DEFAULT_PATTERNS)}"
        )

    with _build_executor(args) as executor:
        table = evaluate_online_control(settings, executor=executor)
        stats = executor.stats
    print(table.render())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(table.to_json_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote control matrix JSON: {args.json}")
    if args.trace_out or args.prof:
        # The sweep only returns summaries; the decision trace and the
        # profile live on the Host, so re-run the requested online cell
        # locally (cheap: one scenario out of the matrix).
        knob, _, pattern = args.cell.partition("/")
        try:
            narrowed = dataclasses.replace(
                settings, knobs=(knob,), patterns=(pattern,)
            )
        except ValueError as exc:
            raise SystemExit(f"--cell: {exc}") from None
        scenarios, labels = build_scenarios(narrowed)
        online = next(
            scenario
            for scenario, label in zip(scenarios, labels)
            if label[2] == ONLINE
        )
        if args.prof:
            from repro.prof import ProfConfig

            online = dataclasses.replace(online, prof=ProfConfig())
        result = run_scenario(online)
        if args.trace_out:
            from repro.ctl import write_ctl_trace

            count = write_ctl_trace(result.ctl_trace, args.trace_out)
            print(
                f"wrote decision trace ({count} records, "
                f"{knob}/{pattern} online): {args.trace_out}"
            )
        if args.prof:
            from repro.prof import format_phase_table

            print(f"\nengine phase breakdown ({knob}/{pattern} online):")
            print(format_phase_table(result.profile))
    print(_sweep_stats_line(executor))
    print(_perf_line(stats.events_processed, stats.elapsed_seconds))
    return 0


def _cmd_d9(args: argparse.Namespace) -> int:
    from repro.core.d9_surrogate import (
        SurrogateStudySettings,
        evaluate_surrogate_study,
        mini_settings,
        quick_settings,
    )
    from repro.tune.space import TUNABLE_KNOBS

    if args.mini:
        settings = mini_settings()
    elif args.quick:
        settings = quick_settings()
    else:
        settings = SurrogateStudySettings()
    if args.knobs:
        names = tuple(name.strip() for name in args.knobs.split(",") if name.strip())
        unknown = set(names) - set(TUNABLE_KNOBS)
        if unknown:
            raise SystemExit(
                f"unknown knobs: {sorted(unknown)}; options: {list(TUNABLE_KNOBS)}"
            )
        settings.knobs = names
    if args.budget is not None:
        settings.budget = args.budget
    if args.train_budget is not None:
        settings.train_budget = args.train_budget

    with _build_executor(args) as executor:
        report = evaluate_surrogate_study(settings, executor=executor)
        stats = executor.stats
    print(report.render())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report.to_json_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote study JSON: {args.json}")
    print(_sweep_stats_line(executor))
    print(_perf_line(stats.events_processed, stats.elapsed_seconds))
    return 0


def _cmd_surrogate(args: argparse.Namespace) -> int:
    from repro.core.report import render_table
    from repro.surrogate import (
        MIN_CORPUS_ROWS,
        SurrogateModel,
        evaluate_model,
        fit_from_corpus,
        holdout_split,
        load_corpus,
    )

    corpus = load_corpus(args.cache_dir)
    print(f"corpus: {corpus.stats} ({corpus.n_rows} rows)")

    def _fit_metrics_table(model, corpus_for_eval, title: str) -> str:
        X, y = corpus_for_eval.matrices()
        metrics = evaluate_model(model, X, y)
        rows = [
            (target, f"{m['mae']:.3f}", f"{m['spearman']:.2f}")
            for target, m in metrics.items()
        ]
        return render_table((title, "MAE", "spearman"), rows)

    if args.action == "fit":
        min_rows = args.min_rows if args.min_rows is not None else MIN_CORPUS_ROWS
        if corpus.n_rows < min_rows:
            raise SystemExit(
                f"corpus has {corpus.n_rows} rows (< {min_rows} required); "
                "run some sweeps first (e.g. isol-bench tune --mini)"
            )
        model = fit_from_corpus(corpus, seed=args.seed)
        model.save(args.out)
        print(f"fitted on {model.n_rows} rows; wrote model: {args.out}")
        print(_fit_metrics_table(model, corpus, "train target"))
        return 0

    if args.action == "eval":
        if args.model:
            model = SurrogateModel.load(args.model)
            print(f"loaded model: {args.model} ({model.n_rows} training rows)")
            print(_fit_metrics_table(model, corpus, "corpus target"))
            return 0
        train, held = holdout_split(corpus, every=args.holdout_every)
        if not held.rows or train.n_rows < 2:
            raise SystemExit(
                f"corpus has {corpus.n_rows} rows -- too few for a "
                f"1-in-{args.holdout_every} held-out split"
            )
        model = fit_from_corpus(train, seed=args.seed)
        print(
            f"held-out eval: fit on {train.n_rows} rows, "
            f"scored on {held.n_rows} held-out rows "
            f"(every {args.holdout_every}th)"
        )
        print(_fit_metrics_table(model, held, "held-out target"))
        return 0

    # report: corpus provenance plus the saved model's shape, no fitting.
    print(f"corpus digest: {corpus.digest()}")
    print(
        f"feature schema: v{corpus.feature_schema_version} "
        f"({len(corpus.feature_names)} features)"
    )
    if args.model:
        model = SurrogateModel.load(args.model)
        config = model.config
        print(
            f"model: {args.model} rows={model.n_rows} "
            f"targets={','.join(model.target_names)} "
            f"members={config.n_members} rounds={config.n_rounds} "
            f"depth={config.max_depth} lr={config.learning_rate}"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import time

    from repro.prof import bench

    cases = None
    if args.cases:
        cases = tuple(name.strip() for name in args.cases.split(",") if name.strip())

    directory = args.dir
    baseline_path = args.baseline or bench.latest_bench_path(directory)

    if args.candidate:
        record = bench.load_bench(args.candidate)
        elapsed = 0.0
        print(f"loaded candidate bench record: {args.candidate}")
    else:
        started = time.perf_counter()
        record = bench.run_bench(
            repeats=args.repeats,
            mini=args.mini,
            cases=cases,
            workers=args.workers,
            label=args.label,
        )
        elapsed = time.perf_counter() - started

    for name, entry in record["cases"].items():
        line = (
            f"case {name:<14s} events={entry['events']:>9,d} "
            f"events/sec={entry['median_rate']:>9,.0f} "
            f"normalized={entry['median_normalized']:.3f}"
        )
        if entry["kind"] == "profiled" and "coverage" in entry:
            line += f" coverage={entry['coverage']:.1%}"
        elif entry["kind"] == "executor" and "executor" in entry:
            line += (
                f" util={entry['executor']['utilization']:.0%} "
                f"cache-hits={entry['cache']['hits']}"
            )
        print(line)

    if not args.no_write and not args.candidate:
        path = bench.write_bench(record, directory)
        print(f"wrote bench record: {path}")

    status = 0
    if args.compare:
        if baseline_path is None:
            raise SystemExit(
                f"bench --compare: no baseline record under {directory} "
                "(pass --baseline or commit one first)"
            )
        baseline = bench.load_bench(baseline_path)
        threshold = (
            args.threshold if args.threshold is not None else bench.DEFAULT_THRESHOLD
        )
        report = bench.compare_benches(baseline, record, threshold=threshold)
        print(f"\ncompare vs {baseline_path}:")
        print(report.render())
        status = 0 if report.ok else 1

    total_events = sum(entry["events"] for entry in record["cases"].values())
    print(_perf_line(total_events, elapsed))
    return status


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec.cache import main as cache_main

    argv = []
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    argv.append(args.action)
    return cache_main(argv)


def _add_scenario_args(p: argparse.ArgumentParser, default_lc_apps: int = 0) -> None:
    p.add_argument("--knob", default="none")
    p.add_argument("--device", default="flash", choices=("flash", "optane"))
    p.add_argument("--devices", type=int, default=1)
    p.add_argument("--cores", type=int, default=10)
    p.add_argument("--batch-apps", type=int, default=2)
    p.add_argument("--lc-apps", type=int, default=default_lc_apps)
    p.add_argument("--size", type=int, default=4, help="request size in KiB")
    p.add_argument("--duration", type=float, default=0.5)
    p.add_argument("--device-scale", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--faults",
        default=None,
        choices=sorted(FAULT_CLASSES),
        help="inject a named fault class (repro.faults preset)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="isol-bench",
        description="Storage performance-isolation benchmark (IISWC'25 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("describe-device", help="print a device preset's saturation points")
    p.add_argument("device", nargs="?", default="flash", choices=("flash", "optane"))
    p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable saturation document (the tune.space source of truth)",
    )
    p.set_defaults(fn=_cmd_describe_device)

    p = sub.add_parser("coef-gen", help="generate an io.cost.model line")
    p.add_argument("device", nargs="?", default="flash", choices=("flash", "optane"))
    p.add_argument("--conservatism", type=float, default=0.78)
    p.set_defaults(fn=_cmd_coef_gen)

    p = sub.add_parser("run", help="run one ad-hoc scenario")
    _add_scenario_args(p)
    p.add_argument(
        "--prof",
        action="store_true",
        help="run with the self-profiler on and print the phase breakdown",
    )
    p.add_argument(
        "--prof-out",
        default=None,
        help="also write the profile to this path (implies --prof)",
    )
    p.add_argument(
        "--prof-format",
        default="json",
        choices=("json", "pstats", "chrome"),
        help="profile export format for --prof-out (default: json)",
    )
    p.add_argument(
        "--prof-bucket-us",
        type=float,
        default=0.0,
        help="timeline bucket width in simulated us (0 = totals only)",
    )
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "trace",
        help="run a traced scenario and export a browsable timeline",
    )
    _add_scenario_args(p, default_lc_apps=1)
    p.add_argument(
        "--out",
        default="/tmp/isol-bench-trace.json",
        help="output path (csv format appends .spans.csv/.samples.csv)",
    )
    p.add_argument(
        "--format",
        default="chrome",
        choices=("chrome", "jsonl", "csv"),
        help="chrome = Perfetto/chrome://tracing JSON (default)",
    )
    p.add_argument(
        "--sample-period-us",
        type=float,
        default=5_000.0,
        help="stack sampler period in simulated us (0 disables sampling)",
    )
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("table1", help="reproduce the paper's Table I")
    p.add_argument("--quick", action="store_true")
    _add_executor_args(p)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser(
        "d5", help="rank the knobs under fault injection (robustness)"
    )
    p.add_argument("--quick", action="store_true", help="reduced effort level")
    p.add_argument(
        "--mini", action="store_true", help="smoke effort level (CI; seconds)"
    )
    p.add_argument(
        "--faults",
        default=None,
        help="comma-separated fault classes (default: latency-spike,"
        "gc-storm,transient-error; options: " + ",".join(sorted(FAULT_CLASSES)) + ")",
    )
    p.add_argument("--json", default=None, help="also write the ranking as JSON")
    _add_executor_args(p)
    p.set_defaults(fn=_cmd_d5)

    p = sub.add_parser(
        "tune", help="search knob configurations against a tenant SLO"
    )
    p.add_argument(
        "--slo",
        default=None,
        help="SLO spec, e.g. '/tenants/prio:p99<=100,bw>=40;util>=0.25' "
        "(default: a calibrated demo SLO for the D5 workload)",
    )
    p.add_argument(
        "--knob",
        default="auto",
        help="comma-separated knobs to search, or 'auto' for all five",
    )
    p.add_argument(
        "--budget", type=int, default=None, help="evaluations per knob search"
    )
    p.add_argument(
        "--strategy",
        default="auto",
        choices=("auto", "binary", "coordinate", "random", "grid"),
        help="search strategy (auto: each knob's declared default)",
    )
    p.add_argument(
        "--faults",
        default=None,
        choices=sorted(FAULT_CLASSES),
        help="tune under a fault class (robustness-aware recommendations)",
    )
    p.add_argument(
        "--surrogate",
        nargs="?",
        const="auto",
        default="off",
        help="surrogate-prefiltered search: 'auto' fits on the result cache "
        "(falls back to pure search when the corpus is too small), a path "
        "loads a saved model, 'off' disables (bare --surrogate means auto)",
    )
    p.add_argument(
        "--verify-top-k",
        type=int,
        default=None,
        help="simulator verifications per knob when the surrogate is on "
        "(default: the budget)",
    )
    p.add_argument("--quick", action="store_true", help="reduced effort level")
    p.add_argument(
        "--mini", action="store_true", help="smoke effort level (CI; seconds)"
    )
    p.add_argument("--json", default=None, help="also write the report as JSON")
    p.add_argument(
        "--trace-out", default=None, help="write the decision trace as JSONL"
    )
    _add_executor_args(p)
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser(
        "place",
        help="place fleet tenants on devices and compare strategies",
    )
    p.add_argument(
        "--fleet",
        default=None,
        help="fleet spec JSON (default: the pinned demo fleet)",
    )
    p.add_argument(
        "--slo",
        default=None,
        help="override tenant SLOs, e.g. '/tenants/lc-api:p99<=100;"
        "/tenants/batch-etl:bw>=1000' (cgroups must name fleet tenants)",
    )
    p.add_argument(
        "--strategy",
        default="all",
        choices=("all", "random", "binpack", "serifos"),
        help="placement strategy to run (default: all three, compared)",
    )
    p.add_argument(
        "--budget", type=int, default=None, help="advisor evaluations per knob per device"
    )
    p.add_argument("--seed", type=int, default=42, help="random-strategy seed")
    p.add_argument("--quick", action="store_true", help="reduced effort level")
    p.add_argument(
        "--mini", action="store_true", help="smoke effort level (CI; seconds)"
    )
    p.add_argument("--json", default=None, help="also write the comparison as JSON")
    _add_executor_args(p)
    p.set_defaults(fn=_cmd_place)

    p = sub.add_parser(
        "ctl",
        help="D8: online knob control vs static tuning across arrival patterns",
    )
    p.add_argument(
        "--quick", action="store_true", help="longer-run effort level"
    )
    p.add_argument(
        "--mini", action="store_true", help="smoke effort level (CI; the default)"
    )
    p.add_argument(
        "--knobs",
        default=None,
        help="comma-separated knob filter (default: io.max,io.cost,io.latency)",
    )
    p.add_argument(
        "--patterns",
        default=None,
        help="comma-separated arrival-pattern filter (default: all five)",
    )
    p.add_argument("--json", default=None, help="also write the matrix as JSON")
    p.add_argument(
        "--trace-out",
        default=None,
        help="re-run the --cell online scenario and write its decision trace JSONL",
    )
    p.add_argument(
        "--cell",
        default="io.max/flash-crowd",
        help="knob/pattern cell for --trace-out/--prof (default: io.max/flash-crowd)",
    )
    p.add_argument(
        "--prof",
        action="store_true",
        help="self-profile the --cell online scenario and print the phase table",
    )
    _add_executor_args(p)
    p.set_defaults(fn=_cmd_ctl)

    p = sub.add_parser(
        "d9",
        help="D9: surrogate-prefiltered vs pure search, budget for budget",
    )
    p.add_argument("--quick", action="store_true", help="reduced effort level")
    p.add_argument(
        "--mini", action="store_true", help="smoke effort level (CI; seconds)"
    )
    p.add_argument(
        "--knobs",
        default=None,
        help="comma-separated knob filter (default: effort level's set)",
    )
    p.add_argument(
        "--budget", type=int, default=None, help="simulator calls per arm per knob"
    )
    p.add_argument(
        "--train-budget",
        type=int,
        default=None,
        help="simulator calls spent training the surrogate per knob",
    )
    p.add_argument("--json", default=None, help="also write the study as JSON")
    _add_executor_args(p)
    p.set_defaults(fn=_cmd_d9)

    p = sub.add_parser(
        "surrogate",
        help="fit, evaluate, or describe a surrogate model from the cache",
    )
    p.add_argument(
        "action",
        choices=("fit", "eval", "report"),
        help="fit: train+save; eval: held-out (or saved-model) error; "
        "report: corpus/model provenance",
    )
    p.add_argument(
        "--out",
        default="surrogate_model.json",
        help="model output path for fit (default: surrogate_model.json)",
    )
    p.add_argument(
        "--model",
        default=None,
        help="saved model to evaluate/describe instead of fitting fresh",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="corpus source (default: $ISOLBENCH_CACHE_DIR or .isolbench-cache/)",
    )
    p.add_argument("--seed", type=int, default=42, help="fit seed")
    p.add_argument(
        "--min-rows",
        type=int,
        default=None,
        help="fewest corpus rows fit will accept (default: the auto threshold)",
    )
    p.add_argument(
        "--holdout-every",
        type=int,
        default=4,
        help="eval holds out every Nth corpus row (default 4)",
    )
    p.set_defaults(fn=_cmd_surrogate)

    p = sub.add_parser(
        "bench",
        help="run the pinned perf suite; compare against the trajectory",
    )
    p.add_argument(
        "--mini", action="store_true", help="single repeat (CI; same case content)"
    )
    p.add_argument(
        "--repeats", type=int, default=3, help="paired repeats per case (default 3)"
    )
    p.add_argument(
        "--cases",
        default=None,
        help="comma-separated case filter (default: the full suite)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker-pool size for the executor case (default 2)",
    )
    p.add_argument("--label", default=None, help="free-form label stored in the record")
    p.add_argument(
        "--dir",
        default="benchmarks/trajectory",
        help="trajectory directory of BENCH_<n>.json records",
    )
    p.add_argument(
        "--no-write", action="store_true", help="do not write a BENCH_<n>.json record"
    )
    p.add_argument(
        "--compare",
        action="store_true",
        help="diff against the baseline; exit 1 on regression",
    )
    p.add_argument(
        "--baseline",
        default=None,
        help="baseline record path (default: latest BENCH_<n>.json in --dir)",
    )
    p.add_argument(
        "--candidate",
        default=None,
        help="compare a pre-recorded candidate instead of running the suite",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="slowdown factor that counts as a regression (default 1.3)",
    )
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("action", choices=("stats", "path", "clear"))
    p.add_argument("--cache-dir", default=None)
    p.set_defaults(fn=_cmd_cache)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
