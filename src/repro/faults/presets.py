"""Named fault-class presets: the degraded-device axis of the D5 sweep.

Each preset is a :class:`~repro.faults.plan.FaultPlan` calibrated (at
device scale 1) against the Samsung-980-PRO-like flash preset so the
fault is *material but survivable*: the device keeps completing requests,
but tail latency, fairness and work conservation are visibly stressed —
the regime where isolation knobs differentiate. The D5 robustness sweep
(:mod:`repro.core.d5_robustness`) ranks the five cgroup knobs under each
class; ``isol-bench run/trace --faults <name>`` applies one to an ad-hoc
scenario.

Time-valued parameters are at device scale 1; callers running scaled
scenarios apply :meth:`~repro.faults.plan.FaultPlan.scaled`.
"""

from __future__ import annotations

from typing import Callable

from repro.faults.plan import (
    FaultPlan,
    GcStorm,
    LatencySpike,
    RetryPolicy,
    Slowdown,
    TransientErrors,
)

#: Default host resilience used by the presets: a few attempts with
#: sub-millisecond backoff, no watchdog (timeouts are their own preset).
DEFAULT_RETRY = RetryPolicy(
    max_attempts=3, backoff_base_us=100.0, backoff_mult=2.0, jitter=0.1
)


def latency_spike_plan() -> FaultPlan:
    """Full-device stalls of 2 ms every 20 ms: ~10% time under stall."""
    return FaultPlan(
        label="latency-spike",
        spikes=(
            LatencySpike(
                first_at_us=10_000.0,
                period_us=20_000.0,
                stall_us=2_000.0,
                unit_fraction=1.0,
            ),
        ),
        retry=DEFAULT_RETRY,
    )


def gc_storm_plan() -> FaultPlan:
    """Forced GC 40% of the time: 2x extra WAF + half the flash units busy."""
    return FaultPlan(
        label="gc-storm",
        storms=(
            GcStorm(
                first_at_us=10_000.0,
                period_us=50_000.0,
                storm_us=20_000.0,
                extra_waf=2.0,
                unit_fraction=0.5,
                duty=0.6,
                chunk_period_us=1_000.0,
            ),
        ),
        retry=DEFAULT_RETRY,
    )


def slowdown_plan() -> FaultPlan:
    """Worn media: every read 2x, every write 3x slower, whole run."""
    return FaultPlan(
        label="slowdown",
        slowdowns=(Slowdown(read_mult=2.0, write_mult=3.0),),
        retry=DEFAULT_RETRY,
    )


def transient_error_plan() -> FaultPlan:
    """2% of requests fail at the device; host retries up to 4 attempts."""
    return FaultPlan(
        label="transient-error",
        errors=(TransientErrors(probability=0.02, error_latency_us=50.0),),
        retry=RetryPolicy(
            max_attempts=4, backoff_base_us=50.0, backoff_mult=2.0, jitter=0.1
        ),
    )


def timeout_storm_plan() -> FaultPlan:
    """Rare 20 ms whole-device hangs with a 5 ms host watchdog armed."""
    return FaultPlan(
        label="timeout-storm",
        spikes=(
            LatencySpike(
                first_at_us=25_000.0,
                period_us=100_000.0,
                stall_us=20_000.0,
                unit_fraction=1.0,
            ),
        ),
        retry=RetryPolicy(
            max_attempts=3,
            backoff_base_us=200.0,
            backoff_mult=2.0,
            jitter=0.1,
            timeout_us=5_000.0,
        ),
    )


#: Registry used by ``isol-bench --faults`` and the D5 sweep.
FAULT_CLASSES: dict[str, Callable[[], FaultPlan]] = {
    "latency-spike": latency_spike_plan,
    "gc-storm": gc_storm_plan,
    "slowdown": slowdown_plan,
    "transient-error": transient_error_plan,
    "timeout-storm": timeout_storm_plan,
}


def get_fault_plan(name: str) -> FaultPlan:
    """Look up a preset by name (``isol-bench --faults`` values)."""
    try:
        return FAULT_CLASSES[name]()
    except KeyError:
        raise KeyError(
            f"unknown fault class {name!r}; options: {sorted(FAULT_CLASSES)}"
        ) from None
