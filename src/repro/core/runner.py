"""Scenario execution and results.

:func:`run_scenario` builds a :class:`~repro.core.host.Host`, runs it and
returns a :class:`ScenarioResult` exposing the measurements the paper's
plots are built from: per-app/per-cgroup window statistics, latency
CDFs, aggregate bandwidth, weighted fairness, and the CPU profile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import Scenario
from repro.core.host import Host
from repro.cpu.accounting import CpuReport
from repro.iorequest import GIB
from repro.metrics.collector import AppWindowStats, MetricsCollector
from repro.metrics.fairness import weighted_jain_index
from repro.metrics.latency import cdf
from repro.obs.export import Trace


@dataclass
class ScenarioResult:
    """Measurements of one scenario run over its measurement window."""

    scenario: Scenario
    collector: MetricsCollector
    cpu: CpuReport
    t_start_us: float
    t_end_us: float
    host: Host
    # Engine performance counters: events fired and the wall-clock time
    # spent firing them (perf diagnostics for the simulator itself).
    events_processed: int = 0
    wall_seconds: float = 0.0

    @property
    def window_us(self) -> float:
        return self.t_end_us - self.t_start_us

    @property
    def events_per_sec(self) -> float:
        """Wall-clock event-loop throughput of this run."""
        return self.events_processed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def fault_counters(self) -> dict[str, float]:
        """Failure accounting under ``Scenario.faults`` (empty when off).

        Host-level retry/timeout/error counters plus per-device injector
        counters (``dev<i>.*``); carried into ``ScenarioSummary`` so
        cached and cross-process results keep the same accounting.
        """
        return self.host.fault_counters()

    @property
    def ctl_counters(self) -> dict[str, float]:
        """Control-plane accounting under ``Scenario.ctl`` (empty when off).

        Plane-level step/skip counts plus per-controller applied/skipped
        and final-setting counters; carried into ``ScenarioSummary`` so
        cached and cross-process results keep the same accounting.
        """
        return self.host.ctl_counters()

    @property
    def ctl_trace(self) -> list[dict] | None:
        """The control-plane decision trace, or None when ctl was off.

        A list of self-describing JSONL-ready records (``observe`` /
        ``actuation`` / ``skip``), exportable with
        :func:`repro.ctl.write_ctl_trace`. Like the observability trace
        the artifact lives on the Host, so it is only available on a
        freshly executed (non-cached) result.
        """
        plane = self.host.ctl_plane
        if plane is None:
            return None
        return plane.records

    @property
    def trace(self) -> Trace | None:
        """The observability artifact, or None if tracing was off.

        Bundles the recorded request spans and sampler rows with run
        metadata, ready for the :mod:`repro.obs.export` writers.
        """
        tracer = self.host.tracer
        sampler = self.host.sampler
        if tracer is None and sampler is None:
            return None
        return Trace(
            meta={
                "scenario": self.scenario.name,
                "knob": self.scenario.knob.label,
                "num_devices": self.scenario.num_devices,
                "device_scale": self.scenario.device_scale,
                "seed": self.scenario.seed,
                "duration_us": self.scenario.duration_us,
                "warmup_us": self.scenario.warmup_us,
                "faults": (
                    self.scenario.faults.label
                    if self.scenario.faults is not None
                    else None
                ),
            },
            spans=tracer.spans if tracer is not None else [],
            samples=sampler.samples if sampler is not None else [],
            dropped_spans=tracer.dropped if tracer is not None else 0,
        )

    @property
    def profile(self):
        """The self-profiling artifact, or None if profiling was off.

        A :class:`~repro.prof.profiler.SimProfile` with the per-phase
        wall-clock breakdown of the event loop that produced this
        result, ready for the :mod:`repro.prof.export` writers.
        """
        profiler = self.host.profiler
        if profiler is None:
            return None
        return profiler.profile()

    # ------------------------------------------------------------------
    # Per-app / per-group views
    # ------------------------------------------------------------------
    def app_stats(self, app_name: str) -> AppWindowStats:
        return self.collector.app_stats(app_name, self.t_start_us, self.t_end_us)

    def all_app_stats(self) -> dict[str, AppWindowStats]:
        return {
            name: self.app_stats(name) for name in self.collector.app_names()
        }

    def cgroup_stats(self) -> dict[str, AppWindowStats]:
        return self.collector.cgroup_stats(self.t_start_us, self.t_end_us)

    def latency_cdf(self, app_name: str, points: int = 200):
        samples = self.collector.window_latencies(
            app_name, self.t_start_us, self.t_end_us
        )
        return cdf(samples, points=points)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def aggregate_bandwidth_gib_s(self) -> float:
        total = self.collector.total_bytes(self.t_start_us, self.t_end_us)
        return total / GIB / (self.window_us / 1e6)

    @property
    def equivalent_bandwidth_gib_s(self) -> float:
        """Bandwidth scaled back to full device speed.

        Scenarios run at ``device_scale > 1`` slow every bottleneck by the
        same factor; multiplying the measured bandwidth back yields the
        full-speed equivalent the paper's absolute numbers correspond to.
        """
        return self.aggregate_bandwidth_gib_s * self.scenario.device_scale

    @property
    def work_conservation_violation(self) -> float:
        """Worst per-device "idle while work pending" fraction (§II-B D3).

        0.0 for a fully work-conserving stack; grows as a knob holds
        requests back while the device has idle flash units.
        """
        fractions = [probe.violation_fraction for probe in self.host.wc_probes]
        return max(fractions) if fractions else 0.0

    def fairness(self, weights_by_group: dict[str, float] | None = None) -> float:
        """Weighted Jain's index over per-cgroup bandwidth (§VI-A).

        ``weights_by_group`` defaults to uniform weights.
        """
        groups = self.cgroup_stats()
        if not groups:
            raise ValueError("no completions in the measurement window")
        paths = sorted(groups)
        bandwidths = [groups[path].bytes / (self.window_us / 1e6) for path in paths]
        if weights_by_group is None:
            weights = [1.0] * len(paths)
        else:
            missing = [path for path in paths if path not in weights_by_group]
            if missing:
                raise ValueError(f"missing weights for groups: {missing}")
            weights = [weights_by_group[path] for path in paths]
        return weighted_jain_index(bandwidths, weights)

    def describe(self) -> str:
        """One-paragraph text summary (used by examples and the CLI)."""
        lines = [
            f"scenario {self.scenario.name!r} "
            f"[knob={self.scenario.knob.label}, "
            f"{self.scenario.num_devices} SSD(s), {self.scenario.cores} cores]",
            f"  aggregate bandwidth: {self.aggregate_bandwidth_gib_s:.3f} GiB/s",
            f"  cpu: {self.cpu}",
            f"  engine: {self.events_processed:,} events in "
            f"{self.wall_seconds:.2f}s wall ({self.events_per_sec:,.0f} events/s)",
        ]
        for name, stats in sorted(self.all_app_stats().items()):
            latency = f", {stats.latency}" if stats.latency else ""
            lines.append(
                f"  app {name:<12s} {stats.bandwidth_mib_s:9.1f} MiB/s "
                f"({stats.iops:9.0f} IOPS){latency}"
            )
        return "\n".join(lines)


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Build, run and measure one scenario."""
    host = Host(scenario)
    wall_start = time.perf_counter()
    host.run()
    wall_seconds = time.perf_counter() - wall_start
    return ScenarioResult(
        scenario=scenario,
        collector=host.collector,
        cpu=host.accounting.report(),
        t_start_us=scenario.warmup_us,
        t_end_us=scenario.duration_us,
        host=host,
        events_processed=host.sim.events_processed,
        wall_seconds=wall_seconds,
    )
