#!/usr/bin/env python3
"""Where should each tenant land, before any knob is turned?

The paper tunes cgroup knobs for one device; this example composes its
findings at fleet scale with `repro.fleet`: measure the pairwise
interference matrix once, place tenants with three strategies, then
knob-tune each contended device and compare fleet-wide SLO-violation
scores.

Part 1 builds the interference matrix for the pinned demo fleet (2
hosts x 2 devices, two latency-critical tenants + three saturating
batch tenants) and prints the pairs that matter: which co-locations are
benign, and which blow a p99 ceiling 7-11x.

Part 2 runs the full D7 comparison (`isol-bench place --mini`, from
Python): random and bin-packing strand capacity conflicts tuning cannot
repair, while the Serifos-style consolidator meets every SLO.

Part 3 stress-tests the consolidator: three saturating tenants on two
devices, each demanding more than a whole device delivers shared — the
saturation pass finds no migration that helps and evicts, with the
eviction priced into the fleet score.

Run:  python examples/fleet_placement.py

(The ``__main__`` guard is required: the sweep executor fans scenarios
over spawn-context worker processes, which re-import this module.)
"""

from repro.core.d7_placement import compare_placements, mini_settings
from repro.exec import SweepExecutor
from repro.fleet import (
    MINI_MATRIX,
    FleetSpec,
    TenantSpec,
    build_matrix,
    demo_fleet,
    place,
)


def show_matrix(executor: SweepExecutor):
    fleet = demo_fleet()
    print(f"Interference matrix for fleet {fleet.name!r}:")
    matrix = build_matrix(fleet, MINI_MATRIX, executor=executor)
    for (tenant, partner), effect in sorted(matrix.effects.items()):
        if effect.p99_ratio < 1.5:
            continue
        print(
            f"  {tenant:<10} with {partner:<10} "
            f"p99 x{effect.p99_ratio:5.1f}   "
            f"keeps {effect.bandwidth_retention:4.0%} of its bandwidth"
        )
    return matrix


def compare_strategies(executor: SweepExecutor) -> None:
    print("\nPlacing with every strategy and tuning contended devices:")
    comparison = compare_placements(settings=mini_settings(), executor=executor)
    print(comparison.render())


def force_an_eviction(executor: SweepExecutor) -> None:
    fleet = FleetSpec(
        name="overloaded",
        hosts=1,
        devices_per_host=2,
        max_tenants_per_device=2,
        saturation_threshold=1.0,
        tenants=tuple(
            TenantSpec(f"scan-{i}", kind="batch", size_kib=256, slo="bw>=4000")
            for i in range(3)
        ),
    )
    print(
        f"\nOverloaded fleet ({len(fleet.tenants)} saturating tenants, "
        f"{fleet.num_devices} devices):"
    )
    matrix = build_matrix(fleet, MINI_MATRIX, executor=executor)
    placement = place(fleet, matrix, "serifos")
    for migration in placement.migrations:
        action = f"-> {migration.dest}" if migration.dest else "EVICTED"
        print(f"  {migration.tenant}: {migration.source} {action}"
              f"  ({migration.reason})")
    print(
        f"  predicted fleet score {placement.predicted_violation:.3f} "
        f"(evictions priced in)"
    )


if __name__ == "__main__":
    with SweepExecutor(max_workers=2) as executor:
        show_matrix(executor)
        compare_strategies(executor)
        force_an_eviction(executor)
        print(f"\nsweep: {executor.stats}")
