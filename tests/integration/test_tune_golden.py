"""Golden regression for the D6 autotuner, plus its determinism bar.

Mirrors ``test_d5_golden.py``: a ``mini`` autotune of all five knobs
runs in tier-1 on every invocation (seconds) against the golden in
``tests/data/tune_mini_golden.json``; the same module-scoped run doubles
as the warm-cache proof (re-advising against the populated cache must
execute zero scenarios) and anchors the ISSUE's acceptance bars -- a
2-worker spawned search reproduces the recommendation bit-identically,
and tuning strictly reduces the SLO-violation score vs the untuned
default for at least 3 of the 5 knobs on the flash preset.

The knob *ranking*, recommended knob, winning labels and improvement
flags are compared exactly; score totals with a tolerance (the
simulator is deterministic, so the tolerance only absorbs deliberate
small re-calibrations -- anything larger should be acknowledged by
regenerating the golden).

Regenerate after an intentional simulator change::

    PYTHONPATH=src python -m tests.integration.test_tune_golden
"""

import json
import pathlib

import pytest

from repro.core.d6_autotune import evaluate_autotune, mini_settings
from repro.exec import ResultCache, SweepExecutor

DATA_DIR = pathlib.Path(__file__).parent.parent / "data"
MINI_GOLDEN = DATA_DIR / "tune_mini_golden.json"

#: Relative tolerance for score totals; ranking/labels compare exactly.
REL_TOL = 0.5
#: Absolute slack so near-zero tuned scores compare stably.
ABS_TOL = 0.02


def assert_matches_golden(report, golden_path: pathlib.Path) -> None:
    golden = json.loads(golden_path.read_text())
    doc = report.to_json_dict()
    assert doc["slo"] == golden["slo"]
    assert doc["budget"] == golden["budget"]
    assert doc["ranking"] == golden["ranking"]
    assert doc["recommended"] == golden["recommended"]
    for knob, expected in golden["rows"].items():
        measured = doc["rows"][knob]
        assert measured["strategy"] == expected["strategy"], knob
        assert measured["best_label"] == expected["best_label"], knob
        assert measured["improved"] == expected["improved"], knob
        for score_key in ("baseline_score", "tuned_score"):
            assert measured[score_key]["total"] == pytest.approx(
                expected[score_key]["total"], rel=REL_TOL, abs=ABS_TOL
            ), f"{knob}.{score_key}"


@pytest.fixture(scope="module")
def mini_run(tmp_path_factory):
    """One cold mini autotune of all five knobs against a fresh cache."""
    cache_dir = tmp_path_factory.mktemp("tune-cache")
    with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as executor:
        report = evaluate_autotune(mini_settings(), executor=executor)
        stats = executor.stats
    # Search loops re-propose candidates, so even a cold run may hit the
    # cache its own earlier sweeps populated -- but most work executes.
    assert stats.executed > 0 and stats.executed > stats.cached
    return report, cache_dir, stats


class TestMiniAutotune:
    def test_matches_golden(self, mini_run):
        report, _, _ = mini_run
        assert_matches_golden(report, MINI_GOLDEN)

    def test_improves_at_least_three_knobs(self, mini_run):
        """The acceptance bar: tuning beats the untuned default >= 3/5."""
        report, _, _ = mini_run
        assert len(report.rows) == 5
        improved = [row.knob for row in report.rows if row.improved]
        assert len(improved) >= 3, f"only improved: {improved}"
        for row in report.rows:
            assert row.best.score.total <= row.baseline.score.total or not row.improved

    def test_recommendation_actually_meets_more_slo_than_default(self, mini_run):
        report, _, _ = mini_run
        winner = report.recommended()
        assert winner.improved
        assert winner.best.score.total < winner.baseline.score.total
        assert winner.settings  # concrete sysfs-flavoured rendering

    def test_warm_cache_executes_zero_scenarios(self, mini_run):
        report, cache_dir, cold_stats = mini_run
        with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as warm:
            rerun = evaluate_autotune(mini_settings(), executor=warm)
            assert warm.stats.executed == 0
            assert warm.stats.failed == 0
            assert warm.stats.cached + warm.stats.deduped >= cold_stats.executed
        assert rerun.render() == report.render()
        assert rerun.to_json_dict() == report.to_json_dict()

    def test_two_worker_search_bit_identical_to_serial(self, mini_run):
        """The ISSUE's determinism bar: --workers 2 vs serial, uncached."""
        report, _, _ = mini_run
        with SweepExecutor(max_workers=2) as pool:
            parallel = evaluate_autotune(mini_settings(), executor=pool)
            assert pool.stats.executed > 0  # genuinely recomputed
        assert parallel.to_json_dict() == report.to_json_dict()
        assert parallel.render() == report.render()

    def test_decision_trace_replays_the_choice(self, mini_run, tmp_path):
        from repro.tune.advisor import decision_trace_records, write_decision_trace

        report, _, _ = mini_run
        records = decision_trace_records(report)
        assert records[0]["type"] == "slo"
        advice = [r for r in records if r["type"] == "advice"]
        assert [r["knob"] for r in advice] == report.to_json_dict()["ranking"]
        evaluations = [r for r in records if r["type"] == "evaluation"]
        assert len(evaluations) == sum(len(row.evaluations) for row in report.rows)
        path = tmp_path / "trace.jsonl"
        write_decision_trace(report, str(path))
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line) for line in lines] == records


def _regenerate() -> None:
    with SweepExecutor(max_workers=None) as executor:
        report = evaluate_autotune(mini_settings(), executor=executor)
    MINI_GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    MINI_GOLDEN.write_text(
        json.dumps(report.to_json_dict(), indent=2, sort_keys=True) + "\n"
    )
    print(report.render())
    print(f"wrote {MINI_GOLDEN}")


if __name__ == "__main__":
    _regenerate()
