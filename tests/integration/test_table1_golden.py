"""Golden regression for the Table I pipeline, plus the warm-cache proof.

Two effort levels share one machinery:

* ``mini`` runs in tier-1 on every test invocation (~20 s): a heavily
  reduced :func:`evaluate_table_one` whose verdict symbols and measured
  inputs are pinned in ``tests/data/table1_mini_golden.json``. The same
  module-scoped run doubles as the warm-cache proof: re-evaluating the
  full pipeline against the populated cache must execute **zero**
  scenarios and reproduce the table bit-identically.
* ``quick`` is the real ``isol-bench table1 --quick`` configuration
  (minutes); its golden ``tests/data/table1_quick_golden.json`` is
  compared only when ``ISOLBENCH_GOLDEN=1`` (CI runs it; local tier-1
  skips it).

Verdict symbols are compared exactly; measured numbers with tolerances
(the simulator is deterministic, so drift means a semantics change --
the tolerances only absorb deliberate small re-calibrations; anything
larger should be acknowledged by regenerating the golden).

Regenerate after an intentional simulator change::

    PYTHONPATH=src python -m tests.integration.test_table1_golden mini
    PYTHONPATH=src python -m tests.integration.test_table1_golden quick
"""

import json
import math
import os
import pathlib

import pytest

from repro.core.table_one import TableOneSettings, evaluate_table_one, quick_settings
from repro.exec import ResultCache, SweepExecutor

DATA_DIR = pathlib.Path(__file__).parent.parent / "data"
MINI_GOLDEN = DATA_DIR / "table1_mini_golden.json"
QUICK_GOLDEN = DATA_DIR / "table1_quick_golden.json"

#: Absolute tolerance for scores in [0, 1] (fairness, ratios, spans).
UNIT_ATOL = 0.06
#: Relative tolerance for dimensionful numbers (latency overheads, ms).
REL_TOL = 0.5


def mini_settings() -> TableOneSettings:
    """A tier-1-sized pipeline run: every stage, minimal durations."""
    return TableOneSettings(
        duration_s=0.06,
        warmup_s=0.02,
        fairness_duration_s=0.08,
        iolatency_duration_s=0.5,
        burst_duration_s=2.5,
        device_scale=16.0,
        burst_device_scale=24.0,
        sweep_points=2,
    )


def golden_doc(table) -> dict:
    """The JSON shape both goldens use: verdicts + headline numbers."""
    return {
        "verdicts": {
            row.knob: [cell.symbol for cell in row.cells()] for row in table.rows
        },
        "matches_paper": table.matches_paper(),
        "inputs": {
            knob: {
                "peak_bandwidth_ratio_vs_none": inp.peak_bandwidth_ratio_vs_none,
                "p99_overhead_1app": inp.p99_overhead_1app,
                "p99_overhead_saturated": inp.p99_overhead_saturated,
                "fairness_uniform_16": inp.fairness_uniform_16,
                "fairness_weighted_2": inp.fairness_weighted_2,
                "fairness_weighted_16": inp.fairness_weighted_16,
                "fairness_mixed_sizes": inp.fairness_mixed_sizes,
                "front_clusters_rand4k": inp.front_clusters_rand4k,
                "front_utilization_span_fraction": inp.front_utilization_span_fraction,
                "hard_variants_effective": inp.hard_variants_effective,
                "burst_response_ms": inp.burst_response_ms,
            }
            for knob, inp in sorted(table.inputs.items())
        },
    }


def assert_matches_golden(table, golden_path: pathlib.Path) -> None:
    golden = json.loads(golden_path.read_text())
    doc = golden_doc(table)
    assert doc["verdicts"] == golden["verdicts"]
    assert doc["matches_paper"] == golden["matches_paper"]
    for knob, expected in golden["inputs"].items():
        measured = doc["inputs"][knob]
        for field, want in expected.items():
            got = measured[field]
            context = f"{knob}.{field}: measured {got!r}, golden {want!r}"
            if isinstance(want, bool) or want is None or isinstance(want, int):
                assert got == want, context
            elif field.startswith("fairness") or field in (
                "peak_bandwidth_ratio_vs_none",
                "front_utilization_span_fraction",
            ):
                assert got == pytest.approx(want, abs=UNIT_ATOL), context
            else:
                assert got == pytest.approx(
                    want, rel=REL_TOL, abs=UNIT_ATOL
                ), context


@pytest.fixture(scope="module")
def mini_run(tmp_path_factory):
    """One cold mini pipeline run against a fresh cache."""
    cache_dir = tmp_path_factory.mktemp("table1-cache")
    with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as executor:
        table = evaluate_table_one(mini_settings(), executor=executor)
        stats = executor.stats
    assert stats.executed > 0 and stats.cached == 0
    return table, cache_dir, stats


class TestMiniPipeline:
    def test_matches_golden(self, mini_run):
        table, _, _ = mini_run
        assert_matches_golden(table, MINI_GOLDEN)

    def test_warm_cache_executes_zero_scenarios(self, mini_run):
        """The ISSUE's acceptance bar: a warm re-run does no work."""
        table, cache_dir, cold_stats = mini_run
        with SweepExecutor(max_workers=1, cache=ResultCache(cache_dir)) as warm:
            rerun = evaluate_table_one(mini_settings(), executor=warm)
            assert warm.stats.executed == 0
            assert warm.stats.failed == 0
            assert warm.stats.cached == cold_stats.executed
        assert rerun.render() == table.render()
        assert golden_doc(rerun) == golden_doc(table)


@pytest.mark.skipif(
    os.environ.get("ISOLBENCH_GOLDEN") != "1",
    reason="full table1 --quick golden takes minutes; set ISOLBENCH_GOLDEN=1",
)
def test_quick_matches_golden(tmp_path):
    # Honor $ISOLBENCH_CACHE_DIR so CI can reuse the cache its CLI steps
    # populated (which also proves key stability across processes);
    # without it, run cold in an isolated directory.
    from repro.exec import default_cache_dir

    cache_root = (
        default_cache_dir()
        if os.environ.get("ISOLBENCH_CACHE_DIR")
        else tmp_path / "cache"
    )
    with SweepExecutor(max_workers=1, cache=ResultCache(cache_root)) as executor:
        table = evaluate_table_one(quick_settings(), executor=executor)
    assert_matches_golden(table, QUICK_GOLDEN)


def _regenerate(which: str) -> None:
    settings = {"mini": mini_settings, "quick": quick_settings}[which]()
    path = {"mini": MINI_GOLDEN, "quick": QUICK_GOLDEN}[which]
    table = evaluate_table_one(settings)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(golden_doc(table), indent=2, sort_keys=True) + "\n")
    print(table.render())
    print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    _regenerate(sys.argv[1] if len(sys.argv) > 1 else "mini")
