#!/usr/bin/env python3
"""Which cgroup knob meets my tenant SLO, and configured how?

The paper's Table I tells you *which* controller to reach for; this
example shows the autotuner answering the follow-up question — *what do
I write into the sysfs files* — for a concrete SLO.

Part 1 tunes all five knobs at the mini effort level against the
calibrated demo SLO (LC tenant p99 <= 100 us at full device speed,
bandwidth >= 40 MiB/s, device >= 25% utilized) and prints the
Table-I-style advisor report: the `isol-bench tune --mini` output,
from Python.

Part 2 tightens the SLO with the `parse_slo` grammar and re-tunes just
the winning throttler: the stricter p99 ceiling raises the violation
score on both sides, showing how much headroom the knob has left.

Run:  python examples/autotune_slo.py

(The ``__main__`` guard is required: the sweep executor fans scenarios
over spawn-context worker processes, which re-import this module.)
"""

from repro.core.d6_autotune import evaluate_autotune, mini_settings
from repro.exec import SweepExecutor
from repro.tune import parse_slo


def tune_all_knobs(executor: SweepExecutor):
    print("Tuning all five knobs against the demo SLO (mini effort):")
    report = evaluate_autotune(mini_settings(), executor=executor)
    print(report.render())
    print(f"\nsweep: {executor.stats}")
    return report.recommended()


def retune_tighter(executor: SweepExecutor, knob: str) -> None:
    slo = parse_slo("/tenants/prio:p99<=60,bw>=40;util>=0.25")
    print(f"\nRe-tuning {knob} under a tighter SLO ({slo.describe()}):")
    settings = mini_settings()
    settings.knobs = (knob,)
    report = evaluate_autotune(settings, slo=slo, executor=executor)
    row = report.recommended()
    print(f"  settings : {row.settings}")
    print(
        f"  score    : {row.baseline.score.total:.3f} untuned "
        f"-> {row.best.score.total:.3f} tuned"
        f" ({'meets SLO' if row.best.score.meets_slo else 'best effort'})"
    )


if __name__ == "__main__":
    with SweepExecutor(max_workers=2) as executor:
        best = tune_all_knobs(executor)
        print(
            f"recommended: {best.knob} ({best.settings}) — "
            f"SLO score {best.baseline.score.total:.3f} -> "
            f"{best.best.score.total:.3f}"
        )
        retune_tighter(executor, best.knob)
