"""Unit tests for the three I/O schedulers (policy logic in isolation)."""

import pytest

from repro.cgroups.knobs import PrioClass
from repro.iocontrol.bfq import BfqScheduler
from repro.iocontrol.mq_deadline import (
    MqDeadlineScheduler,
    affinity_strength,
    group_affinity_unit,
)
from repro.iocontrol.nonectl import NoneScheduler
from repro.iorequest import IoRequest, KIB, OpType, Pattern


def make_request(app="a", cgroup="/g", prio=0, size=4 * KIB, queued_time=0.0):
    req = IoRequest(app, cgroup, OpType.READ, Pattern.RANDOM, size, prio_class=prio)
    req.queued_time = queued_time
    return req


class TestNoneScheduler:
    def test_fifo(self):
        sched = NoneScheduler()
        first, second = make_request("a"), make_request("b")
        sched.add(first)
        sched.add(second)
        assert sched.pop(0.0)[0] is first
        assert sched.pop(0.0)[0] is second

    def test_empty_pop(self):
        assert NoneScheduler().pop(0.0) == (None, None)

    def test_queued_count(self):
        sched = NoneScheduler()
        sched.add(make_request())
        assert sched.queued() == 1
        sched.pop(0.0)
        assert sched.queued() == 0

    def test_negligible_lock_overhead(self):
        assert NoneScheduler.lock_overhead_us < 1.0


class TestMqDeadlineClasses:
    def test_higher_class_dispatches_first(self):
        sched = MqDeadlineScheduler()
        be = make_request("be", "/be", prio=int(PrioClass.BEST_EFFORT))
        rt = make_request("rt", "/rt", prio=int(PrioClass.REALTIME))
        sched.add(be)
        sched.add(rt)
        assert sched.pop(0.0)[0] is rt

    def test_lower_class_blocked_while_higher_in_flight(self):
        sched = MqDeadlineScheduler()
        rt = make_request("rt", "/rt", prio=int(PrioClass.REALTIME))
        be = make_request("be", "/be", prio=int(PrioClass.BEST_EFFORT))
        sched.add(rt)
        sched.add(be)
        assert sched.pop(0.0)[0] is rt  # rt now in flight
        req, retry_at = sched.pop(0.0)
        assert req is None
        assert retry_at is not None  # aging deadline reported

    def test_lower_class_unblocked_after_completion(self):
        sched = MqDeadlineScheduler()
        rt = make_request("rt", "/rt", prio=int(PrioClass.REALTIME))
        be = make_request("be", "/be", prio=int(PrioClass.BEST_EFFORT))
        sched.add(rt)
        sched.add(be)
        popped, _ = sched.pop(0.0)
        sched.on_complete(popped)
        assert sched.pop(0.0)[0] is be

    def test_no_class_defaults_to_best_effort(self):
        sched = MqDeadlineScheduler()
        none_class = make_request("x", "/x", prio=int(PrioClass.NONE))
        idle = make_request("i", "/i", prio=int(PrioClass.IDLE))
        sched.add(idle)
        sched.add(none_class)
        assert sched.pop(0.0)[0] is none_class

    def test_aging_lets_starved_request_through(self):
        sched = MqDeadlineScheduler(prio_aging_expire_us=100.0)
        rt = make_request("rt", "/rt", prio=int(PrioClass.REALTIME))
        be = make_request("be", "/be", prio=int(PrioClass.BEST_EFFORT), queued_time=0.0)
        sched.add(rt)
        sched.add(be)
        sched.pop(0.0)  # rt in flight, be blocked
        req, _ = sched.pop(200.0)  # past the aging deadline
        assert req is be

    def test_same_class_is_fifo(self):
        sched = MqDeadlineScheduler()
        first = make_request("a", "/a", queued_time=0.0)
        second = make_request("b", "/b", queued_time=1.0)
        sched.add(first)
        sched.add(second)
        assert sched.pop(0.0)[0] is first

    def test_aging_parameter_validated(self):
        with pytest.raises(ValueError):
            MqDeadlineScheduler(prio_aging_expire_us=0.0)

    def test_queued_counts_all_classes(self):
        sched = MqDeadlineScheduler()
        sched.add(make_request(prio=int(PrioClass.REALTIME)))
        sched.add(make_request(prio=int(PrioClass.IDLE)))
        assert sched.queued() == 2


class TestAffinityHelpers:
    def test_affinity_unit_is_deterministic_and_bounded(self):
        assert group_affinity_unit("/a") == group_affinity_unit("/a")
        for path in ("/a", "/b", "/tenants/x"):
            assert -1.0 <= group_affinity_unit(path) <= 1.0

    def test_strength_ramp(self):
        assert affinity_strength(2) == 0.0
        assert affinity_strength(6) == 0.0
        assert affinity_strength(16) == 1.0
        assert 0.0 < affinity_strength(10) < 1.0


class TestBfq:
    @staticmethod
    def make_sched(weights, **kwargs):
        return BfqScheduler(weight_of=lambda path: weights.get(path, 100.0), **kwargs)

    def test_validates_slice_parameters(self):
        with pytest.raises(ValueError):
            self.make_sched({}, slice_budget_bytes=0)

    def test_single_group_dispatches_fifo(self):
        sched = self.make_sched({})
        first, second = make_request("a", "/g"), make_request("b", "/g")
        sched.add(first)
        sched.add(second)
        assert sched.pop(0.0)[0] is first
        assert sched.pop(0.0)[0] is second

    def test_weighted_service_proportionality(self):
        # Heavy group should receive ~4x the service of the light group.
        sched = self.make_sched(
            {"/heavy": 400.0, "/light": 100.0},
            slice_idle_us=0.0,
            slice_budget_bytes=4 * KIB,  # one request per slice
        )
        served = {"/heavy": 0, "/light": 0}
        # Keep both groups continuously backlogged.
        for _ in range(10):
            sched.add(make_request("h", "/heavy"))
            sched.add(make_request("l", "/light"))
        for _ in range(10):
            req, _ = sched.pop(0.0)
            served[req.cgroup_path] += 1
        assert served["/heavy"] >= 3 * served["/light"]

    def test_slice_idle_returns_wait_hint(self):
        sched = self.make_sched({}, slice_idle_us=100.0)
        sched.add(make_request("a", "/g"))
        req, _ = sched.pop(0.0)
        assert req is not None
        # Group queue now empty: scheduler idles instead of switching.
        none_req, retry_at = sched.pop(10.0)
        assert none_req is None
        assert retry_at == pytest.approx(110.0)

    def test_idle_cancelled_by_new_io_from_owner(self):
        sched = self.make_sched({}, slice_idle_us=100.0)
        sched.add(make_request("a", "/g"))
        sched.pop(0.0)
        sched.pop(10.0)  # start idling
        follow_up = make_request("a2", "/g")
        sched.add(follow_up)
        assert sched.pop(20.0)[0] is follow_up

    def test_idle_expiry_switches_to_other_group(self):
        sched = self.make_sched({}, slice_idle_us=100.0)
        sched.add(make_request("a", "/a"))
        other = make_request("b", "/b")
        sched.add(other)
        sched.pop(0.0)  # serve /a
        req, retry_at = sched.pop(10.0)  # /a empty -> idle
        assert req is None
        req, _ = sched.pop(retry_at)  # idle expired -> switch
        assert req is other

    def test_slice_idle_zero_switches_immediately(self):
        sched = self.make_sched({}, slice_idle_us=0.0)
        sched.add(make_request("a", "/a"))
        other = make_request("b", "/b")
        sched.add(other)
        sched.pop(0.0)
        assert sched.pop(0.0)[0] is other

    def test_newly_backlogged_group_cannot_bank_credit(self):
        sched = self.make_sched({}, slice_idle_us=0.0, slice_budget_bytes=4 * KIB)
        # /a runs alone for a while, building up vfinish.
        for _ in range(50):
            sched.add(make_request("a", "/a"))
            sched.pop(0.0)
        # /b arrives late; it must not monopolize service to "catch up".
        for _ in range(10):
            sched.add(make_request("a", "/a"))
            sched.add(make_request("b", "/b"))
        served_b = 0
        for _ in range(10):
            req, _ = sched.pop(0.0)
            if req.cgroup_path == "/b":
                served_b += 1
        assert served_b <= 6  # roughly half, not all

    def test_queued_and_empty(self):
        sched = self.make_sched({})
        assert sched.pop(0.0) == (None, None)
        sched.add(make_request())
        assert sched.queued() == 1
